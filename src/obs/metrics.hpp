/**
 * @file
 * Thread-safe metrics registry: named counters, gauges, and streaming
 * latency quantiles.
 *
 * The estimator is a fixed-log-bucket histogram (HDR-style, not P²):
 * each power-of-two octave is split into kSubBuckets linear sub-buckets,
 * so any reported quantile is the midpoint of a bucket whose relative
 * width is 1/kSubBuckets — a guaranteed relative error bound of
 * 1/(2*kSubBuckets) ≈ 3.2% (see LogHistogram::kMaxRelativeError), which
 * obs_test pins against exact sorted percentiles. Unlike P² the bucket
 * layout is value-independent, so histograms merge exactly (batch jobs,
 * future serve-daemon shards) and record() is a couple of relaxed
 * atomic adds — safe from any thread with no coordination.
 *
 * Hot instruments are enum-indexed (Met/Gau/Hist) into fixed arrays: no
 * name hashing or locking on the compile hot path. String-named
 * instruments exist too (mutex-guarded map) for tests and for callers
 * outside the built-in set.
 *
 * Snapshots (`writeJson`) emit keys in sorted order, so two snapshots
 * of equally-counted registries are byte-identical; only histogram
 * timing fields (sum/min/max/p*) vary run to run.
 */

#ifndef CMSWITCH_OBS_METRICS_HPP
#define CMSWITCH_OBS_METRICS_HPP

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "support/common.hpp"

namespace cmswitch {

class JsonWriter;

namespace obs {

/** Monotonic event counter (relaxed atomic; any thread may add). */
class Counter
{
  public:
    void add(s64 delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
    s64 get() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<s64> value_{0};
};

/** Last-write-wins level (thread count, queue depth, ...). */
class Gauge
{
  public:
    void set(s64 value) { value_.store(value, std::memory_order_relaxed); }
    s64 get() const { return value_.load(std::memory_order_relaxed); }
    void reset() { set(0); }

  private:
    std::atomic<s64> value_{0};
};

/**
 * Streaming quantile estimator over non-negative samples.
 *
 * Layout: kOctaves power-of-two octaves covering [2^kMinExponent,
 * 2^kMaxExponent), each split into kSubBuckets equal-width sub-buckets,
 * plus one underflow bucket (zero and sub-range values) and one
 * overflow bucket. A sample lands in the bucket by frexp: wait-free
 * relaxed fetch_add, plus CAS-maintained exact min/max/sum.
 *
 * quantile(q) returns the midpoint of the bucket holding the
 * nearest-rank sample, clamped to the exact [min, max] observed — so
 * the estimate is within kMaxRelativeError of the true percentile, and
 * p0/p100 are exact.
 */
class LogHistogram
{
  public:
    static constexpr int kSubBuckets = 16;
    static constexpr int kMinExponent = -40; ///< below ~9.1e-13 underflows
    static constexpr int kMaxExponent = 40;  ///< at/above ~1.1e12 overflows
    static constexpr int kOctaves = kMaxExponent - kMinExponent;
    static constexpr int kBuckets = kOctaves * kSubBuckets + 2;

    /** Documented estimator bound: half a sub-bucket's relative width. */
    static constexpr double kMaxRelativeError = 0.5 / kSubBuckets;

    LogHistogram() { reset(); }

    /** @{ Copyable (relaxed-load snapshot): a copy is a consistent-
     *  enough point-in-time view for interval deltas and report
     *  aggregation; it is not a linearizable snapshot under concurrent
     *  record(), which is fine for every current caller (serve status
     *  copies under the engine mutex, the simulator is
     *  single-threaded). */
    LogHistogram(const LogHistogram &other) { copyFrom(other); }
    LogHistogram &
    operator=(const LogHistogram &other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }
    /** @} */

    /** Record one sample; negatives clamp to 0, NaN is dropped. */
    void record(double value);

    s64 count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const;
    double min() const; ///< exact; 0 when empty
    double max() const; ///< exact; 0 when empty

    /** Nearest-rank quantile estimate, @p q in [0, 1]; 0 when empty. */
    double quantile(double q) const;

    /** Fold @p other into this histogram (exact: same bucket layout). */
    void merge(const LogHistogram &other);

    /**
     * merge() inverted: subtract @p earlier — a previous snapshot
     * (copy) of *this histogram* — leaving only the samples recorded
     * since. Bucket counts, count and sum subtract exactly (same
     * layout); the interval's min/max are not recoverable from
     * cumulative extremes, so they are re-derived as the bounds of the
     * first/last surviving bucket — within the estimator's documented
     * kMaxRelativeError, and quantile() stays clamped inside them.
     * Calling this with anything but an earlier snapshot of the same
     * histogram gives meaningless (clamped-at-zero) results.
     */
    void subtractSnapshot(const LogHistogram &earlier);

    /** Zero all state. Not atomic w.r.t. concurrent record(). */
    void reset();

    /** count/sum/min/max/p50/p90/p95/p99 as one JSON object. */
    void writeJson(JsonWriter &w) const;

    /** Bucket index a sample maps to (exposed for the unit test). */
    static int bucketIndex(double value);

  private:
    void copyFrom(const LogHistogram &other);

    std::array<std::atomic<s64>, kBuckets> buckets_;
    std::atomic<s64> count_;
    std::atomic<double> sum_;
    std::atomic<double> min_;
    std::atomic<double> max_;
};

/** Built-in counters (enum-indexed: no lookup on the hot path). */
enum class Met : u32 {
    kAllocBisectionIters,
    kAllocProbeShortcuts,
    kAllocProbes,
    kAllocRuns,
    kCompiles,
    kDiskCacheHits,
    kDiskCacheMisses,
    kDiskCacheRejected,
    kDiskCacheStores,
    kDiskCacheTouchFailed,
    kDpBoundaries,
    kDpSigCacheHits,
    kDpSigCacheMisses,
    kIncrementalDpRowsReused,
    kIncrementalNeighborHits,
    kIncrementalNeighborMisses,
    kIncrementalNeighborPartials,
    kIncrementalSigImports,
    kLpSolves,
    kLpWarmHits,
    kLpWarmMisses,
    kMipNodes,
    kMipSolves,
    kPlanCacheEvictions,
    kPlanCacheHits,
    kPlanCacheMisses,
    kServeAdmitted,
    kServeCacheCold,
    kServeCacheDisk,
    kServeCacheMemory,
    kServeCacheNeighbor,
    kServeCoalesced,
    kServeErrors,
    kServeReceived,
    kServeShedAdmission,
    kServeShedDeadline,
    kCount,
};

/** Built-in gauges (declared in name order: the snapshot's gauge keys
 *  come straight from the enum, not through a sorting map). */
enum class Gau : u32 {
    kServeInflight,
    kServeQueueDepth,
    kSearchThreads,
    kServiceThreads,
    kCount,
};

/** Built-in latency histograms (all record seconds). */
enum class Hist : u32 {
    kPhaseAllocate,
    kPhaseBackend,
    kPhaseCodegen,
    kPhaseCompile,
    kPhaseEnergy,
    kPhasePartition,
    kPhasePasses,
    kPhaseSegment,
    kPhaseValidate,
    kServeExecute,
    kServeQueueWait,
    kServeTotal,
    kServiceExecute,
    kServiceQueueWait,
    kCount,
};

const char *metName(Met m);
const char *gauName(Gau g);
const char *histName(Hist h);

/**
 * The registry: owns every instrument for one observation session.
 * Built-ins live in fixed arrays; string-named extras are created on
 * first use under a mutex and live until the registry dies (returned
 * references stay valid).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(Met m) { return counters_[static_cast<u32>(m)]; }
    Gauge &gauge(Gau g) { return gauges_[static_cast<u32>(g)]; }
    LogHistogram &histogram(Hist h) { return histograms_[static_cast<u32>(h)]; }

    /** @{ Dynamic string-named instruments (mutex on first use). */
    Counter &counter(std::string_view name);
    LogHistogram &histogram(std::string_view name);
    /** @} */

    /** Zero every instrument (built-in and dynamic). */
    void reset();

    /**
     * Snapshot as {"counters": {...}, "gauges": {...}, "quantiles":
     * {...}} with sorted keys. Counter/gauge values and histogram
     * counts are deterministic for a deterministic workload; histogram
     * sum/min/max/p* are the timing fields.
     */
    void writeJson(JsonWriter &w) const;

    /** writeJson() as a standalone document. */
    std::string snapshotJson(int indent = 2) const;

  private:
    std::array<Counter, static_cast<u32>(Met::kCount)> counters_;
    std::array<Gauge, static_cast<u32>(Gau::kCount)> gauges_;
    std::array<LogHistogram, static_cast<u32>(Hist::kCount)> histograms_;

    mutable std::mutex dynamicMutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> dynamicCounters_;
    std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>> dynamicHistograms_;
};

} // namespace obs
} // namespace cmswitch

#endif // CMSWITCH_OBS_METRICS_HPP
