#include "obs/metrics.hpp"

#include <cmath>
#include <limits>

#include "support/json.hpp"
#include "support/logging.hpp"

namespace cmswitch {
namespace obs {

namespace {

/** CAS-accumulate: keeps atomic<double> portable pre-fetch_add. */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMin(std::atomic<double> &target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (value < current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (value > current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

int
LogHistogram::bucketIndex(double value)
{
    // Bucket 0 holds zero and anything below the covered range; the
    // last bucket holds anything at/above it. In between, frexp gives
    // value = f * 2^e with f in [0.5, 1), and (2f - 1) in [0, 1)
    // selects one of kSubBuckets equal-width sub-buckets of the octave.
    if (!(value > 0.0)) // also catches NaN (record() drops it earlier)
        return 0;
    int exponent = 0;
    double fraction = std::frexp(value, &exponent);
    if (exponent <= kMinExponent)
        return 0;
    if (exponent > kMaxExponent)
        return kBuckets - 1;
    int sub = static_cast<int>((2.0 * fraction - 1.0) * kSubBuckets);
    if (sub >= kSubBuckets) // guard the f -> 1.0 rounding edge
        sub = kSubBuckets - 1;
    return 1 + (exponent - kMinExponent - 1) * kSubBuckets + sub;
}

/** Midpoint of bucket @p index; inverse of bucketIndex for estimates. */
static double
bucketMidpoint(int index)
{
    if (index <= 0)
        return 0.0;
    if (index >= LogHistogram::kBuckets - 1)
        return std::ldexp(1.0, LogHistogram::kMaxExponent);
    int flat = index - 1;
    int octave = flat / LogHistogram::kSubBuckets;
    int sub = flat % LogHistogram::kSubBuckets;
    int exponent = LogHistogram::kMinExponent + 1 + octave;
    double fraction =
        0.5 * (1.0 + (sub + 0.5) / LogHistogram::kSubBuckets);
    return std::ldexp(fraction, exponent);
}

/** @{ Value range of bucket @p index: [lower, upper). The underflow
 *  bucket starts at 0; the overflow bucket is collapsed onto its lower
 *  edge (same convention as bucketMidpoint). */
static double
bucketLowerEdge(int index)
{
    if (index <= 0)
        return 0.0;
    if (index >= LogHistogram::kBuckets - 1)
        return std::ldexp(1.0, LogHistogram::kMaxExponent);
    int flat = index - 1;
    int octave = flat / LogHistogram::kSubBuckets;
    int sub = flat % LogHistogram::kSubBuckets;
    int exponent = LogHistogram::kMinExponent + 1 + octave;
    double fraction =
        0.5 * (1.0 + static_cast<double>(sub) / LogHistogram::kSubBuckets);
    return std::ldexp(fraction, exponent);
}

static double
bucketUpperEdge(int index)
{
    if (index <= 0)
        return std::ldexp(1.0, LogHistogram::kMinExponent);
    if (index >= LogHistogram::kBuckets - 1)
        return std::ldexp(1.0, LogHistogram::kMaxExponent);
    return bucketLowerEdge(index + 1);
}
/** @} */

void
LogHistogram::copyFrom(const LogHistogram &other)
{
    for (int i = 0; i < kBuckets; ++i)
        buckets_[static_cast<std::size_t>(i)].store(
            other.buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed),
            std::memory_order_relaxed);
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    min_.store(other.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

void
LogHistogram::subtractSnapshot(const LogHistogram &earlier)
{
    s64 remaining = 0;
    int first = -1;
    int last = -1;
    for (int i = 0; i < kBuckets; ++i) {
        std::size_t b = static_cast<std::size_t>(i);
        s64 left = buckets_[b].load(std::memory_order_relaxed)
                   - earlier.buckets_[b].load(std::memory_order_relaxed);
        if (left < 0) // not actually an earlier snapshot; clamp
            left = 0;
        buckets_[b].store(left, std::memory_order_relaxed);
        if (left > 0) {
            remaining += left;
            if (first < 0)
                first = i;
            last = i;
        }
    }
    count_.store(remaining, std::memory_order_relaxed);
    if (remaining == 0) {
        sum_.store(0.0, std::memory_order_relaxed);
        min_.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
        max_.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
        return;
    }
    double sumLeft = sum_.load(std::memory_order_relaxed)
                     - earlier.sum_.load(std::memory_order_relaxed);
    if (sumLeft < 0.0) // float round-off across the subtraction
        sumLeft = 0.0;
    sum_.store(sumLeft, std::memory_order_relaxed);
    // Cumulative min/max do not localize to the interval; bucket
    // bounds of the surviving samples are the tightest safe envelope.
    min_.store(bucketLowerEdge(first), std::memory_order_relaxed);
    max_.store(bucketUpperEdge(last), std::memory_order_relaxed);
}

void
LogHistogram::record(double value)
{
    if (std::isnan(value))
        return;
    if (value < 0.0)
        value = 0.0;
    buckets_[static_cast<std::size_t>(bucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, value);
    atomicMin(min_, value);
    atomicMax(max_, value);
}

double
LogHistogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
LogHistogram::min() const
{
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double
LogHistogram::max() const
{
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double
LogHistogram::quantile(double q) const
{
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    s64 total = 0;
    std::array<s64, kBuckets> snapshot;
    for (int i = 0; i < kBuckets; ++i) {
        snapshot[static_cast<std::size_t>(i)] =
            buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);
        total += snapshot[static_cast<std::size_t>(i)];
    }
    if (total == 0)
        return 0.0;
    // Nearest-rank: the smallest bucket whose cumulative count covers
    // rank ceil(q * total), clamped to the exact observed range so the
    // bucket-midpoint estimate never leaves [min, max].
    s64 rank = static_cast<s64>(std::ceil(q * static_cast<double>(total)));
    if (rank < 1)
        rank = 1;
    s64 cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
        cumulative += snapshot[static_cast<std::size_t>(i)];
        if (cumulative >= rank) {
            // The underflow/overflow buckets have no meaningful
            // midpoint; report the exact observed extreme instead.
            if (i == 0)
                return min();
            if (i == kBuckets - 1)
                return max();
            double estimate = bucketMidpoint(i);
            double lo = min();
            double hi = max();
            return estimate < lo ? lo : (estimate > hi ? hi : estimate);
        }
    }
    return max();
}

void
LogHistogram::merge(const LogHistogram &other)
{
    for (int i = 0; i < kBuckets; ++i)
        buckets_[static_cast<std::size_t>(i)].fetch_add(
            other.buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed),
            std::memory_order_relaxed);
    s64 otherCount = other.count();
    if (otherCount == 0)
        return;
    count_.fetch_add(otherCount, std::memory_order_relaxed);
    atomicAdd(sum_, other.sum_.load(std::memory_order_relaxed));
    atomicMin(min_, other.min_.load(std::memory_order_relaxed));
    atomicMax(max_, other.max_.load(std::memory_order_relaxed));
}

void
LogHistogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

void
LogHistogram::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("count", count());
    w.field("sum", sum());
    w.field("min", min());
    w.field("max", max());
    w.field("p50", quantile(0.50));
    w.field("p90", quantile(0.90));
    w.field("p95", quantile(0.95));
    w.field("p99", quantile(0.99));
    w.endObject();
}

const char *
metName(Met m)
{
    switch (m) {
    case Met::kAllocBisectionIters: return "alloc.bisection_iters";
    case Met::kAllocProbeShortcuts: return "alloc.probe_shortcuts";
    case Met::kAllocProbes: return "alloc.probes";
    case Met::kAllocRuns: return "alloc.runs";
    case Met::kCompiles: return "compile.compiles";
    case Met::kDiskCacheHits: return "disk_cache.hits";
    case Met::kDiskCacheMisses: return "disk_cache.misses";
    case Met::kDiskCacheRejected: return "disk_cache.rejected";
    case Met::kDiskCacheStores: return "disk_cache.stores";
    case Met::kDiskCacheTouchFailed: return "disk_cache.touch_failed";
    case Met::kDpBoundaries: return "dp.boundaries";
    case Met::kDpSigCacheHits: return "dp.sig_cache_hits";
    case Met::kDpSigCacheMisses: return "dp.sig_cache_misses";
    case Met::kIncrementalDpRowsReused:
        return "incremental.dp_rows_reused";
    case Met::kIncrementalNeighborHits:
        return "incremental.neighbor_hits";
    case Met::kIncrementalNeighborMisses:
        return "incremental.neighbor_misses";
    case Met::kIncrementalNeighborPartials:
        return "incremental.neighbor_partials";
    case Met::kIncrementalSigImports:
        return "incremental.sig_imports";
    case Met::kLpSolves: return "lp.solves";
    case Met::kLpWarmHits: return "lp.warm_hits";
    case Met::kLpWarmMisses: return "lp.warm_misses";
    case Met::kMipNodes: return "mip.nodes";
    case Met::kMipSolves: return "mip.solves";
    case Met::kPlanCacheEvictions: return "plan_cache.evictions";
    case Met::kPlanCacheHits: return "plan_cache.hits";
    case Met::kPlanCacheMisses: return "plan_cache.misses";
    case Met::kServeAdmitted: return "serve.admitted";
    case Met::kServeCacheCold: return "serve.cache_cold";
    case Met::kServeCacheDisk: return "serve.cache_disk";
    case Met::kServeCacheMemory: return "serve.cache_memory";
    case Met::kServeCacheNeighbor: return "serve.cache_neighbor";
    case Met::kServeCoalesced: return "serve.coalesced";
    case Met::kServeErrors: return "serve.errors";
    case Met::kServeReceived: return "serve.received";
    case Met::kServeShedAdmission: return "serve.shed_admission";
    case Met::kServeShedDeadline: return "serve.shed_deadline";
    case Met::kCount: break;
    }
    cmswitch_panic("metName: bad counter id ", static_cast<u32>(m));
}

const char *
gauName(Gau g)
{
    switch (g) {
    case Gau::kServeInflight: return "serve.inflight";
    case Gau::kServeQueueDepth: return "serve.queue_depth";
    case Gau::kSearchThreads: return "service.search_threads";
    case Gau::kServiceThreads: return "service.threads";
    case Gau::kCount: break;
    }
    cmswitch_panic("gauName: bad gauge id ", static_cast<u32>(g));
}

const char *
histName(Hist h)
{
    switch (h) {
    case Hist::kPhaseAllocate: return "phase.allocate_seconds";
    case Hist::kPhaseBackend: return "phase.backend_seconds";
    case Hist::kPhaseCodegen: return "phase.codegen_seconds";
    case Hist::kPhaseCompile: return "phase.compile_seconds";
    case Hist::kPhaseEnergy: return "phase.energy_seconds";
    case Hist::kPhasePartition: return "phase.partition_seconds";
    case Hist::kPhasePasses: return "phase.frontend_passes_seconds";
    case Hist::kPhaseSegment: return "phase.segment_seconds";
    case Hist::kPhaseValidate: return "phase.validate_seconds";
    case Hist::kServeExecute: return "serve.execute_seconds";
    case Hist::kServeQueueWait: return "serve.queue_wait_seconds";
    case Hist::kServeTotal: return "serve.total_seconds";
    case Hist::kServiceExecute: return "service.execute_seconds";
    case Hist::kServiceQueueWait: return "service.queue_wait_seconds";
    case Hist::kCount: break;
    }
    cmswitch_panic("histName: bad histogram id ", static_cast<u32>(h));
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(dynamicMutex_);
    auto it = dynamicCounters_.find(name);
    if (it == dynamicCounters_.end())
        it = dynamicCounters_
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

LogHistogram &
MetricsRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(dynamicMutex_);
    auto it = dynamicHistograms_.find(name);
    if (it == dynamicHistograms_.end())
        it = dynamicHistograms_
                 .emplace(std::string(name),
                          std::make_unique<LogHistogram>())
                 .first;
    return *it->second;
}

void
MetricsRegistry::reset()
{
    for (auto &c : counters_)
        c.reset();
    for (auto &g : gauges_)
        g.reset();
    for (auto &h : histograms_)
        h.reset();
    std::lock_guard<std::mutex> lock(dynamicMutex_);
    for (auto &[name, c] : dynamicCounters_)
        c->reset();
    for (auto &[name, h] : dynamicHistograms_)
        h->reset();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    // Built-in name tables are already sorted (the enums are declared
    // in name order), but merging through std::map keeps the sorted-key
    // guarantee independent of enum declaration order and interleaves
    // dynamic instruments correctly.
    std::map<std::string, s64, std::less<>> counters;
    for (u32 i = 0; i < static_cast<u32>(Met::kCount); ++i)
        counters[metName(static_cast<Met>(i))] = counters_[i].get();
    std::map<std::string, const LogHistogram *, std::less<>> histograms;
    for (u32 i = 0; i < static_cast<u32>(Hist::kCount); ++i)
        histograms[histName(static_cast<Hist>(i))] = &histograms_[i];
    {
        std::lock_guard<std::mutex> lock(dynamicMutex_);
        for (const auto &[name, c] : dynamicCounters_)
            counters[name] = c->get();
        for (const auto &[name, h] : dynamicHistograms_)
            histograms[name] = h.get();
    }

    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, value] : counters)
        w.field(name, value);
    w.endObject();
    w.key("gauges").beginObject();
    for (u32 i = 0; i < static_cast<u32>(Gau::kCount); ++i)
        w.field(gauName(static_cast<Gau>(i)), gauges_[i].get());
    w.endObject();
    w.key("quantiles").beginObject();
    for (const auto &[name, hist] : histograms) {
        w.key(name);
        hist->writeJson(w);
    }
    w.endObject();
    w.endObject();
}

std::string
MetricsRegistry::snapshotJson(int indent) const
{
    JsonWriter w(indent);
    writeJson(w);
    return w.str();
}

} // namespace obs
} // namespace cmswitch
