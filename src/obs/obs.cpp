#include "obs/obs.hpp"

namespace cmswitch {
namespace obs {

namespace detail {

std::atomic<u32> g_enableBits{0};
std::atomic<MetricsRegistry *> g_metrics{nullptr};
std::atomic<TraceRecorder *> g_trace{nullptr};

} // namespace detail

void
install(MetricsRegistry *metrics, TraceRecorder *trace)
{
    // Pointers first (release), bits last: a site that observes a
    // raised bit is guaranteed to see the matching pointer.
    detail::g_metrics.store(metrics, std::memory_order_release);
    detail::g_trace.store(trace, std::memory_order_release);
    u32 bits = 0;
    if (metrics != nullptr)
        bits |= detail::kMetricsBit;
    if (trace != nullptr)
        bits |= detail::kTraceBit;
    detail::g_enableBits.store(bits, std::memory_order_release);
}

void
uninstall()
{
    detail::g_enableBits.store(0, std::memory_order_release);
    detail::g_metrics.store(nullptr, std::memory_order_release);
    detail::g_trace.store(nullptr, std::memory_order_release);
}

void
Span::begin(TraceRecorder *recorder, const char *name, const char *cat)
{
    recorder_ = recorder;
    event_.name = name;
    event_.cat = cat;
    event_.tsNanos = recorder->nowNanos();
}

void
Span::end()
{
    event_.durNanos = recorder_->nowNanos() - event_.tsNanos;
    recorder_->append(event_);
}

void
ScopedPhase::begin(Hist h, const char *name, const char *cat)
{
    active_ = true;
    hist_ = h;
    recorder_ = trace();
    event_.name = name;
    event_.cat = cat;
    start_ = std::chrono::steady_clock::now();
    if (recorder_ != nullptr)
        event_.tsNanos = recorder_->nowNanos();
}

void
ScopedPhase::end()
{
    s64 durNanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
    recordSeconds(hist_, static_cast<double>(durNanos) * 1e-9);
    if (recorder_ != nullptr) {
        event_.durNanos = durNanos;
        recorder_->append(event_);
    }
}

} // namespace obs
} // namespace cmswitch
