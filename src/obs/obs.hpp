/**
 * @file
 * Global observability control plane: one enable word, two install
 * pointers, and the RAII helpers every instrumentation site uses.
 *
 * The contract the bench gate holds us to: with observability disabled
 * (the default), every instrumentation site costs exactly one relaxed
 * atomic load and one predictable branch — no clock reads, no pointer
 * chasing, no locks. Sites therefore test the packed enable bits
 * first and only then take the acquire-ordered pointer load.
 *
 * install() publishes a registry and/or recorder with release stores
 * and raises the matching bits last; uninstall() clears the bits first
 * and the pointers after. Installation is process-global (it is a CLI
 * session concept, like logging); the CLI installs before compiling
 * and uninstalls before exporting, and tests that install their own
 * instances do the same.
 *
 * Instrumentation never changes behavior: everything here observes,
 * so plans are byte-identical with tracing on or off
 * (segmenter_diff_test pins this).
 */

#ifndef CMSWITCH_OBS_OBS_HPP
#define CMSWITCH_OBS_OBS_HPP

#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cmswitch {
namespace obs {

namespace detail {

constexpr u32 kMetricsBit = 1u << 0;
constexpr u32 kTraceBit = 1u << 1;

extern std::atomic<u32> g_enableBits;
extern std::atomic<MetricsRegistry *> g_metrics;
extern std::atomic<TraceRecorder *> g_trace;

inline u32
enableBits()
{
    return g_enableBits.load(std::memory_order_relaxed);
}

} // namespace detail

/** Publish @p metrics / @p trace (either may be null) process-wide.
 *  The caller keeps ownership and must uninstall() before destroying
 *  them. Not meant to race with in-flight compiles. */
void install(MetricsRegistry *metrics, TraceRecorder *trace);

/** Clear the enable bits, then the pointers. */
void uninstall();

/** @{ Single-branch-when-disabled enable tests. */
inline bool
metricsEnabled()
{
    return (detail::enableBits() & detail::kMetricsBit) != 0;
}

inline bool
tracingEnabled()
{
    return (detail::enableBits() & detail::kTraceBit) != 0;
}

inline bool
enabled()
{
    return detail::enableBits() != 0;
}
/** @} */

/** The installed registry/recorder; null while the bit is down. */
inline MetricsRegistry *
metrics()
{
    if (!metricsEnabled())
        return nullptr;
    return detail::g_metrics.load(std::memory_order_acquire);
}

inline TraceRecorder *
trace()
{
    if (!tracingEnabled())
        return nullptr;
    return detail::g_trace.load(std::memory_order_acquire);
}

/** @{ Hot-path helpers: one branch, then straight to the instrument. */
inline void
count(Met m, s64 delta = 1)
{
    if (MetricsRegistry *registry = metrics())
        registry->counter(m).add(delta);
}

inline void
setGauge(Gau g, s64 value)
{
    if (MetricsRegistry *registry = metrics())
        registry->gauge(g).set(value);
}

inline void
recordSeconds(Hist h, double seconds)
{
    if (MetricsRegistry *registry = metrics())
        registry->histogram(h).record(seconds);
}
/** @} */

/**
 * RAII trace span: one complete ('X') event from construction to
 * destruction, on the calling thread's lane. Inert (one branch, no
 * clock read) when tracing is off. Name/category/arg-name strings
 * must outlive the recorder — use literals.
 */
class Span
{
  public:
    Span(const char *name, const char *cat)
    {
        if (TraceRecorder *recorder = trace())
            begin(recorder, name, cat);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (recorder_ != nullptr)
            end();
    }

    /** Attach up to two integer args (later calls overwrite slot 2). */
    void arg(const char *name, s64 value)
    {
        if (recorder_ == nullptr)
            return;
        int slot = event_.argName[0] == nullptr ? 0 : 1;
        event_.argName[slot] = name;
        event_.argValue[slot] = value;
    }

  private:
    void begin(TraceRecorder *recorder, const char *name, const char *cat);
    void end();

    TraceRecorder *recorder_ = nullptr;
    TraceEvent event_;
};

/**
 * RAII phase scope: a Span plus a duration sample into the built-in
 * histogram @p h, so one object gives a phase both its trace lane and
 * its latency quantiles. Inert (one branch) when everything is off.
 */
class ScopedPhase
{
  public:
    ScopedPhase(Hist h, const char *name, const char *cat)
    {
        if (enabled())
            begin(h, name, cat);
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase()
    {
        if (active_)
            end();
    }

    void arg(const char *name, s64 value)
    {
        if (!active_)
            return;
        int slot = event_.argName[0] == nullptr ? 0 : 1;
        event_.argName[slot] = name;
        event_.argValue[slot] = value;
    }

  private:
    void begin(Hist h, const char *name, const char *cat);
    void end();

    bool active_ = false;
    Hist hist_ = Hist::kCount;
    TraceRecorder *recorder_ = nullptr; ///< null when only metrics are on
    std::chrono::steady_clock::time_point start_;
    TraceEvent event_;
};

} // namespace obs
} // namespace cmswitch

#endif // CMSWITCH_OBS_OBS_HPP
