#include "obs/trace.hpp"

#include "support/json.hpp"

namespace cmswitch {
namespace obs {

namespace {

/** Process-unique recorder ids: the thread-local buffer cache matches
 *  on id, never on address, so a recorder allocated where a dead one
 *  used to live cannot inherit a stale (dangling) buffer pointer. */
std::atomic<u64> g_nextRecorderId{1};

struct TlsBufferCache
{
    u64 recorderId = 0;
    void *buffer = nullptr;
};

thread_local TlsBufferCache t_bufferCache;

} // namespace

TraceRecorder::TraceRecorder()
    : t0_(std::chrono::steady_clock::now()),
      id_(g_nextRecorderId.fetch_add(1, std::memory_order_relaxed))
{
}

TraceRecorder::ThreadBuffer &
TraceRecorder::threadBuffer()
{
    if (t_bufferCache.recorderId == id_)
        return *static_cast<ThreadBuffer *>(t_bufferCache.buffer);
    std::lock_guard<std::mutex> lock(registryMutex_);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = static_cast<s64>(buffers_.size()) + 1;
    owned->name = "thread-" + std::to_string(owned->tid);
    buffers_.push_back(std::move(owned));
    ThreadBuffer &buffer = *buffers_.back();
    t_bufferCache.recorderId = id_;
    t_bufferCache.buffer = &buffer;
    return buffer;
}

void
TraceRecorder::append(const TraceEvent &event)
{
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (static_cast<s64>(buffer.events.size()) >= kMaxEventsPerThread) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buffer.events.push_back(event);
}

void
TraceRecorder::setThreadName(std::string name)
{
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.name = std::move(name);
}

s64
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    s64 total = 0;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        total += static_cast<s64>(buffer->events.size());
    }
    return total;
}

void
TraceRecorder::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        // Thread metadata first so viewers label the lane before any
        // span lands in it.
        w.beginObject();
        w.field("ph", "M");
        w.field("name", "thread_name");
        w.field("ts", s64{0});
        w.field("pid", s64{1});
        w.field("tid", buffer->tid);
        w.key("args").beginObject().field("name", buffer->name).endObject();
        w.endObject();
        for (const TraceEvent &event : buffer->events) {
            w.beginObject();
            w.field("ph", "X");
            w.field("name", event.name);
            w.field("cat", event.cat ? event.cat : "cmswitch");
            // Chrome expects microseconds; keep sub-microsecond
            // resolution as a fractional part.
            w.field("ts", static_cast<double>(event.tsNanos) / 1000.0);
            w.field("dur", static_cast<double>(event.durNanos) / 1000.0);
            w.field("pid", s64{1});
            w.field("tid", buffer->tid);
            if (event.argName[0] != nullptr) {
                w.key("args").beginObject();
                w.field(event.argName[0], event.argValue[0]);
                if (event.argName[1] != nullptr)
                    w.field(event.argName[1], event.argValue[1]);
                w.endObject();
            }
            w.endObject();
        }
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
}

std::string
TraceRecorder::exportJson(int indent) const
{
    JsonWriter w(indent);
    writeJson(w);
    return w.str();
}

} // namespace obs
} // namespace cmswitch
