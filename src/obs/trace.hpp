/**
 * @file
 * Low-overhead phase tracing, exported as Chrome trace-event JSON.
 *
 * A TraceRecorder owns one event buffer per participating thread;
 * threads register lazily on first append (a thread_local pointer
 * caches the buffer, so steady-state appends touch only the calling
 * thread's buffer under its own — uncontended — mutex). Buffers are
 * heap-owned by the recorder, so export works after worker threads
 * have joined, and tids are assigned in registration order, keeping
 * them small and stable for a given schedule.
 *
 * Events carry static-string names/categories (no allocation on the
 * record path) and up to two integer args. Timestamps are steady-clock
 * nanoseconds relative to the recorder's construction; export converts
 * to the microseconds Chrome's trace-event format expects, as complete
 * ('X') events plus one 'M' thread_name metadata record per thread.
 *
 * Open the exported file directly in chrome://tracing or Perfetto.
 */

#ifndef CMSWITCH_OBS_TRACE_HPP
#define CMSWITCH_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

class JsonWriter;

namespace obs {

/** One complete span. Name/cat/arg names must be static strings. */
struct TraceEvent
{
    const char *name = nullptr;
    const char *cat = nullptr;
    s64 tsNanos = 0;
    s64 durNanos = 0;
    const char *argName[2] = {nullptr, nullptr};
    s64 argValue[2] = {0, 0};
};

class TraceRecorder
{
  public:
    /** Stop appending past this many events per thread (keep traces
     *  openable); overruns are counted, not silently lost. */
    static constexpr s64 kMaxEventsPerThread = s64{1} << 20;

    TraceRecorder();
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Nanoseconds since this recorder's construction (the trace t0). */
    s64 nowNanos() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - t0_)
            .count();
    }

    /** Append a finished span from the calling thread. */
    void append(const TraceEvent &event);

    /** Label the calling thread in the exported trace (else thread-N). */
    void setThreadName(std::string name);

    /** Events dropped by the per-thread cap, across all threads. */
    s64 droppedEvents() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Events currently buffered, across all threads. */
    s64 eventCount() const;

    /**
     * The whole trace as one {"traceEvents": [...]} document. Event
     * order is (tid, append order), so structure is deterministic for
     * a deterministic schedule; ts/dur are wall-clock.
     */
    void writeJson(JsonWriter &w) const;
    std::string exportJson(int indent = 1) const;

  private:
    struct ThreadBuffer
    {
        std::mutex mutex;
        s64 tid = 0;
        std::string name;
        std::vector<TraceEvent> events;
    };

    ThreadBuffer &threadBuffer();

    std::chrono::steady_clock::time_point t0_;
    u64 id_; ///< process-unique, keys the thread-local buffer cache
    std::atomic<s64> dropped_{0};

    mutable std::mutex registryMutex_;
    std::deque<std::unique_ptr<ThreadBuffer>> buffers_;
};

} // namespace obs
} // namespace cmswitch

#endif // CMSWITCH_OBS_TRACE_HPP
