#include "metaop/meta_op.hpp"

#include "support/logging.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

const char *
metaOpKindName(MetaOpKind kind)
{
    switch (kind) {
      case MetaOpKind::kSwitch: return "CM.switch";
      case MetaOpKind::kLoadWeight: return "MEM.load_weight";
      case MetaOpKind::kLoad: return "MEM.load";
      case MetaOpKind::kStore: return "MEM.store";
      case MetaOpKind::kCompute: return "CIM.compute";
      case MetaOpKind::kFuCompute: return "FU.compute";
    }
    cmswitch_panic("unknown meta-op kind");
}

MetaOp
MetaOp::makeSwitch(ArrayMode to, s64 addr, s64 count)
{
    MetaOp op;
    op.kind = MetaOpKind::kSwitch;
    op.switchTo = to;
    op.arrayAddr = addr;
    op.arrayCount = count;
    return op;
}

MetaOp
MetaOp::makeLoadWeight(const std::string &target, s64 bytes, s64 arrays,
                       OpId graph_op)
{
    MetaOp op;
    op.kind = MetaOpKind::kLoadWeight;
    op.target = target;
    op.bytes = bytes;
    op.arrayCount = arrays;
    op.graphOp = graph_op;
    return op;
}

MetaOp
MetaOp::makeLoad(const std::string &target, s64 bytes)
{
    MetaOp op;
    op.kind = MetaOpKind::kLoad;
    op.target = target;
    op.bytes = bytes;
    return op;
}

MetaOp
MetaOp::makeStore(const std::string &target, s64 bytes)
{
    MetaOp op;
    op.kind = MetaOpKind::kStore;
    op.target = target;
    op.bytes = bytes;
    return op;
}

MetaOp
MetaOp::makeCompute(const OpWorkload &work, const OpAllocation &alloc)
{
    MetaOp op;
    op.kind = MetaOpKind::kCompute;
    op.target = work.name;
    op.graphOp = work.opId;
    op.work = work;
    op.alloc = alloc;
    return op;
}

MetaOp
MetaOp::makeFuCompute(const std::string &target, s64 elems)
{
    MetaOp op;
    op.kind = MetaOpKind::kFuCompute;
    op.target = target;
    op.work.vectorElems = elems;
    return op;
}

void
MetaOp::writeBinary(BinaryWriter &w) const
{
    w.writeS64(static_cast<s64>(kind));
    w.writeString(target);
    w.writeS64(static_cast<s64>(switchTo));
    w.writeS64(arrayAddr);
    w.writeS64(arrayCount);
    w.writeS64(bytes);
    w.writeS64(graphOp);
    work.writeBinary(w);
    alloc.writeBinary(w);
}

MetaOp
MetaOp::readBinary(BinaryReader &r)
{
    MetaOp op;
    op.kind = static_cast<MetaOpKind>(
        r.readBounded(static_cast<s64>(MetaOpKind::kFuCompute),
                      "meta-op kind"));
    op.target = r.readString();
    op.switchTo = static_cast<ArrayMode>(
        r.readBounded(static_cast<s64>(ArrayMode::kMemory), "array mode"));
    op.arrayAddr = r.readS64();
    op.arrayCount = r.readS64();
    op.bytes = r.readS64();
    op.graphOp = static_cast<OpId>(r.readS64());
    op.work = OpWorkload::readBinary(r);
    op.alloc = OpAllocation::readBinary(r);
    return op;
}

} // namespace cmswitch
