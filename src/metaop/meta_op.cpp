#include "metaop/meta_op.hpp"

#include "support/logging.hpp"

namespace cmswitch {

const char *
metaOpKindName(MetaOpKind kind)
{
    switch (kind) {
      case MetaOpKind::kSwitch: return "CM.switch";
      case MetaOpKind::kLoadWeight: return "MEM.load_weight";
      case MetaOpKind::kLoad: return "MEM.load";
      case MetaOpKind::kStore: return "MEM.store";
      case MetaOpKind::kCompute: return "CIM.compute";
      case MetaOpKind::kFuCompute: return "FU.compute";
    }
    cmswitch_panic("unknown meta-op kind");
}

MetaOp
MetaOp::makeSwitch(ArrayMode to, s64 addr, s64 count)
{
    MetaOp op;
    op.kind = MetaOpKind::kSwitch;
    op.switchTo = to;
    op.arrayAddr = addr;
    op.arrayCount = count;
    return op;
}

MetaOp
MetaOp::makeLoadWeight(const std::string &target, s64 bytes, s64 arrays,
                       OpId graph_op)
{
    MetaOp op;
    op.kind = MetaOpKind::kLoadWeight;
    op.target = target;
    op.bytes = bytes;
    op.arrayCount = arrays;
    op.graphOp = graph_op;
    return op;
}

MetaOp
MetaOp::makeLoad(const std::string &target, s64 bytes)
{
    MetaOp op;
    op.kind = MetaOpKind::kLoad;
    op.target = target;
    op.bytes = bytes;
    return op;
}

MetaOp
MetaOp::makeStore(const std::string &target, s64 bytes)
{
    MetaOp op;
    op.kind = MetaOpKind::kStore;
    op.target = target;
    op.bytes = bytes;
    return op;
}

MetaOp
MetaOp::makeCompute(const OpWorkload &work, const OpAllocation &alloc)
{
    MetaOp op;
    op.kind = MetaOpKind::kCompute;
    op.target = work.name;
    op.graphOp = work.opId;
    op.work = work;
    op.alloc = alloc;
    return op;
}

MetaOp
MetaOp::makeFuCompute(const std::string &target, s64 elems)
{
    MetaOp op;
    op.kind = MetaOpKind::kFuCompute;
    op.target = target;
    op.work.vectorElems = elems;
    return op;
}

} // namespace cmswitch
