/**
 * @file
 * Textual rendering of meta-operator programs in the Fig. 13 grammar,
 * extended with key=value payload fields so programs round-trip through
 * the parser losslessly.
 */

#ifndef CMSWITCH_METAOP_PRINTER_HPP
#define CMSWITCH_METAOP_PRINTER_HPP

#include <string>

#include "metaop/program.hpp"

namespace cmswitch {

/** Render one meta-op as a single line (no trailing newline). */
std::string printMetaOp(const MetaOp &op);

/** Render the whole program (header, segments, parallel blocks). */
std::string printProgram(const MetaProgram &program);

} // namespace cmswitch

#endif // CMSWITCH_METAOP_PRINTER_HPP
