/**
 * @file
 * Dual-mode meta-operator IR (paper Sec. 4.4, Fig. 13). The compiler
 * expresses its result as a flow of meta-operators rather than machine
 * code so it can be retargeted to any dual-mode CIM backend. The
 * CM.switch operator carries the TOM/TOC mode transitions; compute
 * meta-operators carry their workload/allocation payload so the timing
 * simulator can price the program without consulting the compiler.
 */

#ifndef CMSWITCH_METAOP_META_OP_HPP
#define CMSWITCH_METAOP_META_OP_HPP

#include <string>

#include "arch/chip_config.hpp"
#include "cost/cost_model.hpp"
#include "support/common.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;

/** Kinds of meta-operators in the generated flow. */
enum class MetaOpKind {
    kSwitch,     ///< CM.switch(TOM/TOC, addr, n): change array modes
    kLoadWeight, ///< MEM.load_weight: program static weights into arrays
    kLoad,       ///< MEM.load: main memory -> on-chip buffer/arrays
    kStore,      ///< MEM.store: on-chip -> main memory (write-back)
    kCompute,    ///< CIM.compute: run one mapped operator
    kFuCompute,  ///< FU.compute: vector function-unit work
};

const char *metaOpKindName(MetaOpKind kind);

/** One meta-operator. Fields are used per-kind; unused stay defaulted. */
struct MetaOp
{
    MetaOpKind kind = MetaOpKind::kCompute;
    std::string target;   ///< operator or tensor this acts on

    /** @{ kSwitch payload. */
    ArrayMode switchTo = ArrayMode::kCompute; ///< TOC or TOM
    s64 arrayAddr = 0;    ///< first array address affected
    s64 arrayCount = 0;   ///< arrays switched / loaded
    /** @} */

    /** @{ kLoad / kStore / kLoadWeight payload. */
    s64 bytes = 0;
    /** @} */

    /** @{ kCompute / kFuCompute payload. */
    OpId graphOp = kInvalidOp; ///< originating graph operator
    OpWorkload work;
    OpAllocation alloc;
    /** @} */

    /** @{ Factories. */
    static MetaOp makeSwitch(ArrayMode to, s64 addr, s64 count);
    static MetaOp makeLoadWeight(const std::string &target, s64 bytes,
                                 s64 arrays, OpId graph_op = kInvalidOp);
    static MetaOp makeLoad(const std::string &target, s64 bytes);
    static MetaOp makeStore(const std::string &target, s64 bytes);
    static MetaOp makeCompute(const OpWorkload &work,
                              const OpAllocation &alloc);
    static MetaOp makeFuCompute(const std::string &target, s64 elems);
    /** @} */

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static MetaOp readBinary(BinaryReader &r); ///< throws SerializeError
    /** @} */
};

} // namespace cmswitch

#endif // CMSWITCH_METAOP_META_OP_HPP
