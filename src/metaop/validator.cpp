#include "metaop/validator.hpp"

#include <sstream>

#include "support/serialize.hpp"
#include "support/strings.hpp"

namespace cmswitch {

void
ValidationReport::writeBinary(BinaryWriter &w) const
{
    w.writeS64(static_cast<s64>(problems.size()));
    for (const std::string &problem : problems)
        w.writeString(problem);
}

ValidationReport
ValidationReport::readBinary(BinaryReader &r)
{
    ValidationReport report;
    s64 count = r.readBounded(static_cast<s64>(r.remaining()),
                              "validation problem count");
    for (s64 i = 0; i < count; ++i)
        report.problems.push_back(r.readString());
    return report;
}

std::string
ValidationReport::summary() const
{
    if (ok())
        return "valid";
    std::ostringstream oss;
    oss << problems.size() << " problem(s):\n";
    for (const std::string &p : problems)
        oss << "  - " << p << "\n";
    return oss.str();
}

ValidationReport
validateProgram(const MetaProgram &program, const Deha &deha)
{
    ValidationReport report;
    const ChipConfig &chip = deha.config();

    auto complain = [&](s64 seg, const std::string &what) {
        report.problems.push_back("segment " + std::to_string(seg) + ": "
                                  + what);
    };

    // The chip boots with all switchable arrays in compute mode (the
    // fixed-mode baseline configuration).
    s64 phys_compute = chip.numSwitchArrays;

    for (const SegmentRecord &seg : program.segments()) {
        if (seg.plan.total() > chip.numSwitchArrays) {
            complain(seg.index,
                     "plan " + std::to_string(seg.plan.computeArrays) + "c+"
                         + std::to_string(seg.plan.memoryArrays)
                         + "m exceeds " + std::to_string(chip.numSwitchArrays)
                         + " arrays");
            continue; // remaining checks assume a plan that fits
        }

        // Expected switch delta vs. what the prologue encodes.
        SwitchDelta expect = deha.switchesBetween(phys_compute, seg.plan);
        s64 to_compute = 0, to_memory = 0;
        for (const MetaOp &op : seg.prologue) {
            if (op.kind != MetaOpKind::kSwitch)
                continue;
            if (op.switchTo == ArrayMode::kCompute)
                to_compute += op.arrayCount;
            else
                to_memory += op.arrayCount;
        }
        if (to_compute != expect.memToCompute
            || to_memory != expect.computeToMem) {
            complain(seg.index,
                     "switch prologue (" + std::to_string(to_compute) + " TOC, "
                         + std::to_string(to_memory) + " TOM) != expected ("
                         + std::to_string(expect.memToCompute) + " TOC, "
                         + std::to_string(expect.computeToMem) + " TOM)");
        }
        phys_compute = deha.applySwitches(phys_compute, expect);

        // Per-op allocations vs. the segment plan (Eqs. 5-8, counts).
        s64 sum_com = 0, sum_mem = 0;
        for (const MetaOp &op : seg.body) {
            if (op.kind != MetaOpKind::kCompute)
                continue;
            sum_com += op.alloc.computeArrays;
            sum_mem += op.alloc.memoryArrays();
            if (op.alloc.computeArrays < op.work.weightTiles) {
                complain(seg.index,
                         op.target + ": " + std::to_string(op.alloc.computeArrays)
                             + " compute arrays cannot hold "
                             + std::to_string(op.work.weightTiles) + " tiles");
            }
        }
        if (sum_com != seg.plan.computeArrays) {
            complain(seg.index, "sum of op compute arrays "
                                    + std::to_string(sum_com) + " != plan "
                                    + std::to_string(seg.plan.computeArrays));
        }
        if (sum_mem - seg.reusedArrays != seg.plan.memoryArrays) {
            complain(seg.index,
                     "sum of op memory arrays " + std::to_string(sum_mem)
                         + " - reuse " + std::to_string(seg.reusedArrays)
                         + " != plan " + std::to_string(seg.plan.memoryArrays));
        }
        if (seg.reusedArrays < 0 || seg.reusedArrays > sum_mem)
            complain(seg.index, "reuse count out of range");
    }
    return report;
}

} // namespace cmswitch
