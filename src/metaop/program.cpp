#include "metaop/program.hpp"

#include "support/serialize.hpp"

namespace cmswitch {

namespace {

void
writeMetaOps(BinaryWriter &w, const std::vector<MetaOp> &ops)
{
    w.writeS64(static_cast<s64>(ops.size()));
    for (const MetaOp &op : ops)
        op.writeBinary(w);
}

std::vector<MetaOp>
readMetaOps(BinaryReader &r)
{
    // Every serialised MetaOp occupies far more than one byte, so the
    // remaining buffer size bounds any honest count; a corrupt length
    // fails here instead of walking off the buffer. Deliberately no
    // reserve(): growth stays proportional to bytes actually parsed,
    // so a hostile count cannot trigger a huge up-front allocation.
    s64 count = r.readBounded(static_cast<s64>(r.remaining()),
                              "meta-op count");
    std::vector<MetaOp> ops;
    for (s64 i = 0; i < count; ++i)
        ops.push_back(MetaOp::readBinary(r));
    return ops;
}

} // namespace

void
SegmentRecord::writeBinary(BinaryWriter &w) const
{
    w.writeS64(index);
    w.writeS64(plan.computeArrays);
    w.writeS64(plan.memoryArrays);
    w.writeS64(reusedArrays);
    w.writeBool(pipelinedBody);
    writeMetaOps(w, prologue);
    writeMetaOps(w, body);
    writeMetaOps(w, epilogue);
    w.writeS64(plannedIntra);
    w.writeS64(plannedInter);
}

SegmentRecord
SegmentRecord::readBinary(BinaryReader &r)
{
    SegmentRecord seg;
    seg.index = r.readS64();
    seg.plan.computeArrays = r.readS64();
    seg.plan.memoryArrays = r.readS64();
    seg.reusedArrays = r.readS64();
    seg.pipelinedBody = r.readBool();
    seg.prologue = readMetaOps(r);
    seg.body = readMetaOps(r);
    seg.epilogue = readMetaOps(r);
    seg.plannedIntra = r.readS64();
    seg.plannedInter = r.readS64();
    return seg;
}

void
MetaProgram::writeBinary(BinaryWriter &w) const
{
    w.writeString(modelName_);
    w.writeString(chipName_);
    w.writeS64(static_cast<s64>(segments_.size()));
    for (const SegmentRecord &seg : segments_)
        seg.writeBinary(w);
}

MetaProgram
MetaProgram::readBinary(BinaryReader &r)
{
    MetaProgram program;
    program.modelName_ = r.readString();
    program.chipName_ = r.readString();
    s64 count = r.readBounded(static_cast<s64>(r.remaining()),
                              "segment count");
    for (s64 i = 0; i < count; ++i)
        program.segments_.push_back(SegmentRecord::readBinary(r));
    return program;
}

void
MetaProgram::addSegment(SegmentRecord segment)
{
    segment.index = static_cast<s64>(segments_.size());
    segments_.push_back(std::move(segment));
}

s64
MetaProgram::totalSwitchedArrays() const
{
    s64 total = 0;
    for (const SegmentRecord &seg : segments_)
        for (const MetaOp &op : seg.prologue)
            if (op.kind == MetaOpKind::kSwitch)
                total += op.arrayCount;
    return total;
}

s64
MetaProgram::totalWeightLoadBytes() const
{
    s64 total = 0;
    for (const SegmentRecord &seg : segments_)
        for (const MetaOp &op : seg.prologue)
            if (op.kind == MetaOpKind::kLoadWeight)
                total += op.bytes;
    return total;
}

s64
MetaProgram::totalWritebackBytes() const
{
    s64 total = 0;
    for (const SegmentRecord &seg : segments_)
        for (const MetaOp &op : seg.epilogue)
            if (op.kind == MetaOpKind::kStore)
                total += op.bytes;
    return total;
}

double
MetaProgram::avgMemoryArrayRatio() const
{
    if (segments_.empty())
        return 0.0;
    double sum = 0.0;
    for (const SegmentRecord &seg : segments_) {
        s64 total = seg.plan.total();
        sum += total > 0 ? static_cast<double>(seg.plan.memoryArrays)
                               / static_cast<double>(total)
                         : 0.0;
    }
    return sum / static_cast<double>(segments_.size());
}

} // namespace cmswitch
