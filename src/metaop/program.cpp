#include "metaop/program.hpp"

namespace cmswitch {

void
MetaProgram::addSegment(SegmentRecord segment)
{
    segment.index = static_cast<s64>(segments_.size());
    segments_.push_back(std::move(segment));
}

s64
MetaProgram::totalSwitchedArrays() const
{
    s64 total = 0;
    for (const SegmentRecord &seg : segments_)
        for (const MetaOp &op : seg.prologue)
            if (op.kind == MetaOpKind::kSwitch)
                total += op.arrayCount;
    return total;
}

s64
MetaProgram::totalWeightLoadBytes() const
{
    s64 total = 0;
    for (const SegmentRecord &seg : segments_)
        for (const MetaOp &op : seg.prologue)
            if (op.kind == MetaOpKind::kLoadWeight)
                total += op.bytes;
    return total;
}

s64
MetaProgram::totalWritebackBytes() const
{
    s64 total = 0;
    for (const SegmentRecord &seg : segments_)
        for (const MetaOp &op : seg.epilogue)
            if (op.kind == MetaOpKind::kStore)
                total += op.bytes;
    return total;
}

double
MetaProgram::avgMemoryArrayRatio() const
{
    if (segments_.empty())
        return 0.0;
    double sum = 0.0;
    for (const SegmentRecord &seg : segments_) {
        s64 total = seg.plan.total();
        sum += total > 0 ? static_cast<double>(seg.plan.memoryArrays)
                               / static_cast<double>(total)
                         : 0.0;
    }
    return sum / static_cast<double>(segments_.size());
}

} // namespace cmswitch
