/**
 * @file
 * Meta-operator program: an ordered list of network segments, each with
 * a prologue (switches + weight loads), a `parallel { ... }` body
 * (pipelined computes) and an epilogue (write-backs), mirroring the
 * code-generation grammar of paper Fig. 13.
 */

#ifndef CMSWITCH_METAOP_PROGRAM_HPP
#define CMSWITCH_METAOP_PROGRAM_HPP

#include <string>
#include <vector>

#include "arch/deha.hpp"
#include "metaop/meta_op.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;

/** One compiled network segment. */
struct SegmentRecord
{
    s64 index = 0;
    ModePlan plan;         ///< compute/memory arrays this segment uses
    s64 reusedArrays = 0;  ///< Eq. 6 output->input buffer reuse count
    bool pipelinedBody = true; ///< false: body operators issue serially
    std::vector<MetaOp> prologue;
    std::vector<MetaOp> body;     ///< executes inside parallel { }
    std::vector<MetaOp> epilogue;

    /** Compiler-side latency estimates (cycles), kept for reporting. */
    Cycles plannedIntra = 0;
    Cycles plannedInter = 0;

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static SegmentRecord readBinary(BinaryReader &r); ///< throws SerializeError
    /** @} */
};

/** Whole-network compiled artifact. */
class MetaProgram
{
  public:
    MetaProgram() = default;
    MetaProgram(std::string model, std::string chip)
        : modelName_(std::move(model)), chipName_(std::move(chip))
    {
    }

    const std::string &modelName() const { return modelName_; }
    const std::string &chipName() const { return chipName_; }

    void addSegment(SegmentRecord segment);
    const std::vector<SegmentRecord> &segments() const { return segments_; }
    std::vector<SegmentRecord> &segments() { return segments_; }
    s64 numSegments() const { return static_cast<s64>(segments_.size()); }

    /** @{ Aggregate statistics used by the evaluation harnesses. */
    s64 totalSwitchedArrays() const; ///< arrays flipped across all segments
    s64 totalWeightLoadBytes() const;
    s64 totalWritebackBytes() const;
    double avgMemoryArrayRatio() const; ///< Fig. 16 bottom-row metric
    /** @} */

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static MetaProgram readBinary(BinaryReader &r); ///< throws SerializeError
    /** @} */

  private:
    std::string modelName_;
    std::string chipName_;
    std::vector<SegmentRecord> segments_;
};

} // namespace cmswitch

#endif // CMSWITCH_METAOP_PROGRAM_HPP
