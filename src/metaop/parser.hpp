/**
 * @file
 * Parser for the textual meta-operator format emitted by the printer.
 * Lets users inspect, edit and re-ingest compiled programs, and gives
 * the tests a round-trip property to certify.
 */

#ifndef CMSWITCH_METAOP_PARSER_HPP
#define CMSWITCH_METAOP_PARSER_HPP

#include <string>

#include "metaop/program.hpp"

namespace cmswitch {

/** Parse one meta-op line (as produced by printMetaOp). fatals on
 *  malformed text. */
MetaOp parseMetaOp(const std::string &line);

/** Parse a full program (as produced by printProgram). */
MetaProgram parseProgram(const std::string &text);

} // namespace cmswitch

#endif // CMSWITCH_METAOP_PARSER_HPP
