#include "metaop/parser.hpp"

#include <map>
#include <sstream>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

/** Split "NAME(arg0, k1=v1, k2=v2)" into head, positional arg, kv map. */
struct CallSyntax
{
    std::string head;
    std::string positional;
    std::map<std::string, std::string> kv;
};

CallSyntax
parseCall(const std::string &line)
{
    CallSyntax out;
    std::size_t open = line.find('(');
    std::size_t close = line.rfind(')');
    cmswitch_fatal_if(open == std::string::npos || close == std::string::npos
                          || close < open,
                      "malformed meta-op line: ", line);
    out.head = trim(line.substr(0, open));
    std::string args = line.substr(open + 1, close - open - 1);
    bool first = true;
    for (const std::string &raw : split(args, ',')) {
        std::string part = trim(raw);
        if (part.empty())
            continue;
        std::size_t eq = part.find('=');
        if (eq == std::string::npos) {
            cmswitch_fatal_if(!first, "unexpected positional arg: ", part);
            out.positional = part;
        } else {
            out.kv[trim(part.substr(0, eq))] = trim(part.substr(eq + 1));
        }
        first = false;
    }
    return out;
}

s64
kvInt(const CallSyntax &call, const std::string &key)
{
    auto it = call.kv.find(key);
    cmswitch_fatal_if(it == call.kv.end(), "missing field '", key, "'");
    return std::stoll(it->second);
}

double
kvDouble(const CallSyntax &call, const std::string &key)
{
    auto it = call.kv.find(key);
    cmswitch_fatal_if(it == call.kv.end(), "missing field '", key, "'");
    return std::stod(it->second);
}

OpKind
opKindFromToken(const std::string &token)
{
    static const std::pair<const char *, OpKind> table[] = {
        {"conv2d", OpKind::kConv2d},
        {"dwconv2d", OpKind::kDepthwiseConv2d},
        {"matmul", OpKind::kMatMul},
        {"dynmatmul", OpKind::kDynMatMul},
    };
    for (const auto &[name, kind] : table)
        if (token == name)
            return kind;
    cmswitch_fatal("unknown CIM op kind '", token, "'");
}

} // namespace

MetaOp
parseMetaOp(const std::string &line)
{
    CallSyntax call = parseCall(line);
    MetaOp op;
    if (call.head == "CM.switch") {
        op.kind = MetaOpKind::kSwitch;
        cmswitch_fatal_if(call.positional != "TOM" && call.positional != "TOC",
                          "CM.switch type must be TOM or TOC");
        op.switchTo = call.positional == "TOM" ? ArrayMode::kMemory
                                               : ArrayMode::kCompute;
        op.arrayAddr = kvInt(call, "addr");
        op.arrayCount = kvInt(call, "n");
    } else if (call.head == "MEM.load_weight") {
        op.kind = MetaOpKind::kLoadWeight;
        op.target = call.positional;
        op.bytes = kvInt(call, "bytes");
        op.arrayCount = kvInt(call, "arrays");
        op.graphOp = static_cast<OpId>(kvInt(call, "gop"));
    } else if (call.head == "MEM.load") {
        op.kind = MetaOpKind::kLoad;
        op.target = call.positional;
        op.bytes = kvInt(call, "bytes");
    } else if (call.head == "MEM.store") {
        op.kind = MetaOpKind::kStore;
        op.target = call.positional;
        op.bytes = kvInt(call, "bytes");
    } else if (call.head == "CIM.compute") {
        op.kind = MetaOpKind::kCompute;
        op.target = call.positional;
        op.work.name = call.positional;
        op.work.kind = opKindFromToken(call.kv.at("kind"));
        op.graphOp = static_cast<OpId>(kvInt(call, "gop"));
        op.work.opId = op.graphOp;
        op.work.macs = kvInt(call, "macs");
        op.work.weightBytes = kvInt(call, "wbytes");
        op.work.inputBytes = kvInt(call, "ibytes");
        op.work.outputBytes = kvInt(call, "obytes");
        op.work.vectorElems = kvInt(call, "velems");
        op.work.weightTiles = kvInt(call, "tiles");
        op.work.utilization = kvDouble(call, "util");
        op.work.movingRows = kvInt(call, "rows");
        op.work.dynamicWeights = kvInt(call, "dyn") != 0;
        op.work.aiMacsPerByte = kvDouble(call, "ai");
        op.alloc.computeArrays = kvInt(call, "com");
        op.alloc.memInArrays = kvInt(call, "min");
        op.alloc.memOutArrays = kvInt(call, "mout");
    } else if (call.head == "FU.compute") {
        op.kind = MetaOpKind::kFuCompute;
        op.target = call.positional;
        op.work.vectorElems = kvInt(call, "elems");
    } else {
        cmswitch_fatal("unknown meta-op '", call.head, "'");
    }
    return op;
}

MetaProgram
parseProgram(const std::string &text)
{
    std::istringstream iss(text);
    std::string line;

    MetaProgram program;
    SegmentRecord current;
    bool in_segment = false;
    bool in_parallel = false;
    bool saw_parallel = false;

    auto flush_segment = [&]() {
        if (in_segment) {
            program.addSegment(current);
            current = SegmentRecord{};
            saw_parallel = false;
        }
    };

    while (std::getline(iss, line)) {
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        if (startsWith(t, "program ")) {
            auto parts = split(t, ' ');
            cmswitch_fatal_if(parts.size() < 4 || parts[2] != "@",
                              "malformed program header");
            program = MetaProgram(parts[1], parts[3]);
        } else if (startsWith(t, "segment ")) {
            flush_segment();
            in_segment = true;
            std::istringstream ls(t);
            std::string tag, field;
            s64 index;
            ls >> tag >> index;
            while (ls >> field) {
                auto kv = split(field, '=');
                cmswitch_fatal_if(kv.size() != 2, "bad segment field ", field);
                if (kv[0] == "compute")
                    current.plan.computeArrays = std::stoll(kv[1]);
                else if (kv[0] == "memory")
                    current.plan.memoryArrays = std::stoll(kv[1]);
                else if (kv[0] == "reuse")
                    current.reusedArrays = std::stoll(kv[1]);
                else if (kv[0] == "pipelined")
                    current.pipelinedBody = std::stoll(kv[1]) != 0;
                else if (kv[0] == "intra")
                    current.plannedIntra = std::stoll(kv[1]);
                else if (kv[0] == "inter")
                    current.plannedInter = std::stoll(kv[1]);
                else
                    cmswitch_fatal("unknown segment field ", kv[0]);
            }
        } else if (t == "parallel {") {
            cmswitch_fatal_if(!in_segment, "parallel outside segment");
            in_parallel = true;
            saw_parallel = true;
        } else if (t == "}") {
            cmswitch_fatal_if(!in_parallel, "unmatched }");
            in_parallel = false;
        } else {
            cmswitch_fatal_if(!in_segment, "meta-op outside segment");
            MetaOp op = parseMetaOp(t);
            if (in_parallel)
                current.body.push_back(std::move(op));
            else if (!saw_parallel)
                current.prologue.push_back(std::move(op));
            else
                current.epilogue.push_back(std::move(op));
        }
    }
    cmswitch_fatal_if(in_parallel, "unterminated parallel block");
    flush_segment();
    return program;
}

} // namespace cmswitch
