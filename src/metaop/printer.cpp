#include "metaop/printer.hpp"

#include <sstream>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

const char *
opKindToken(OpKind kind)
{
    return opKindName(kind);
}

} // namespace

std::string
printMetaOp(const MetaOp &op)
{
    std::ostringstream oss;
    switch (op.kind) {
      case MetaOpKind::kSwitch:
        oss << "CM.switch(" << (op.switchTo == ArrayMode::kMemory ? "TOM"
                                                                  : "TOC")
            << ", addr=" << op.arrayAddr << ", n=" << op.arrayCount << ")";
        break;
      case MetaOpKind::kLoadWeight:
        oss << "MEM.load_weight(" << op.target << ", bytes=" << op.bytes
            << ", arrays=" << op.arrayCount << ", gop=" << op.graphOp << ")";
        break;
      case MetaOpKind::kLoad:
        oss << "MEM.load(" << op.target << ", bytes=" << op.bytes << ")";
        break;
      case MetaOpKind::kStore:
        oss << "MEM.store(" << op.target << ", bytes=" << op.bytes << ")";
        break;
      case MetaOpKind::kCompute:
        oss << "CIM.compute(" << op.target << ", kind="
            << opKindToken(op.work.kind) << ", gop=" << op.graphOp
            << ", macs=" << op.work.macs << ", wbytes=" << op.work.weightBytes
            << ", ibytes=" << op.work.inputBytes
            << ", obytes=" << op.work.outputBytes
            << ", velems=" << op.work.vectorElems
            << ", tiles=" << op.work.weightTiles
            << ", util=" << formatDouble(op.work.utilization, 6)
            << ", rows=" << op.work.movingRows
            << ", dyn=" << (op.work.dynamicWeights ? 1 : 0)
            << ", ai=" << formatDouble(op.work.aiMacsPerByte, 6)
            << ", com=" << op.alloc.computeArrays
            << ", min=" << op.alloc.memInArrays
            << ", mout=" << op.alloc.memOutArrays << ")";
        break;
      case MetaOpKind::kFuCompute:
        oss << "FU.compute(" << op.target << ", elems=" << op.work.vectorElems
            << ")";
        break;
    }
    return oss.str();
}

std::string
printProgram(const MetaProgram &program)
{
    std::ostringstream oss;
    oss << "program " << program.modelName() << " @ " << program.chipName()
        << "\n";
    for (const SegmentRecord &seg : program.segments()) {
        oss << "segment " << seg.index << " compute=" << seg.plan.computeArrays
            << " memory=" << seg.plan.memoryArrays
            << " reuse=" << seg.reusedArrays
            << " pipelined=" << (seg.pipelinedBody ? 1 : 0)
            << " intra=" << seg.plannedIntra
            << " inter=" << seg.plannedInter << "\n";
        for (const MetaOp &op : seg.prologue)
            oss << "  " << printMetaOp(op) << "\n";
        oss << "  parallel {\n";
        for (const MetaOp &op : seg.body)
            oss << "    " << printMetaOp(op) << "\n";
        oss << "  }\n";
        for (const MetaOp &op : seg.epilogue)
            oss << "  " << printMetaOp(op) << "\n";
    }
    return oss.str();
}

} // namespace cmswitch
