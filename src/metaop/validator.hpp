/**
 * @file
 * Structural validation of meta-operator programs against a chip
 * description: resource limits (Eq. 8), mode-plan consistency, and
 * switch-sequence correctness across segments.
 */

#ifndef CMSWITCH_METAOP_VALIDATOR_HPP
#define CMSWITCH_METAOP_VALIDATOR_HPP

#include <string>
#include <vector>

#include "arch/deha.hpp"
#include "metaop/program.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;

/** Result of validating a program; empty problems == valid. */
struct ValidationReport
{
    std::vector<std::string> problems;

    bool ok() const { return problems.empty(); }
    std::string summary() const;

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static ValidationReport readBinary(BinaryReader &r);
    /** @} */
};

/**
 * Check @p program against @p deha:
 *  - every segment plan fits on the chip (Eq. 8 at segment granularity);
 *  - per-operator allocations are covered by the segment plan, with
 *    reuse accounting (Eqs. 5-7 at count granularity);
 *  - CM.switch prologues reproduce exactly the mode deltas between
 *    consecutive segments starting from an all-compute chip;
 *  - compute ops can hold their weights (compute arrays >= tiles).
 */
ValidationReport validateProgram(const MetaProgram &program, const Deha &deha);

} // namespace cmswitch

#endif // CMSWITCH_METAOP_VALIDATOR_HPP
