/**
 * @file
 * cmswitchc — command-line driver for the CMSwitch compiler.
 *
 * Flags, defaults and examples live in one place: the kUsage text
 * below, printed by `cmswitchc --help`. Running without arguments
 * prints the same text and exits with status 2, as does any malformed
 * invocation; semantic errors (unknown model/chip) exit 1 via fatal().
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "arch/chip_parser.hpp"
#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "graph/passes.hpp"
#include "graph/serialize.hpp"
#include "metaop/printer.hpp"
#include "metaop/validator.hpp"
#include "sim/energy.hpp"
#include "sim/timing.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"

#ifndef CMSWITCH_VERSION
#define CMSWITCH_VERSION "dev"
#endif

namespace cmswitch {
namespace {

const char kUsage[] =
    R"(usage: cmswitchc --model <zoo-name | file.graph> [options]

Compile a DNN for a dual-mode CIM chip and report the schedule.

Options:
  --model NAME|FILE   zoo model name (vgg16, resnet18, resnet50,
                      mobilenetv2, bert-base, bert-large, gpt,
                      llama2-7b, opt-6.7b, opt-13b) or a path to a
                      textual graph file (graph/serialize.hpp format)
  --chip NAME|FILE    dynaplasia (default), prime, or a chip
                      description file (arch/chip_parser.hpp format)
  --compiler NAME     cmswitch (default), cim-mlc, occ, puma
  --batch N           batch size for zoo models (default 1)
  --seq N             sequence length for transformers (default 64)
  --decode N          compile a decode step with kv length N instead
                      of a prefill pass (decoder-only models)
  --layers N          override transformer layer count
  --optimize          run the frontend graph passes before compiling
  --out FILE          write the meta-operator program to FILE
  --stats             print the latency/energy breakdown only
  --help              print this message and exit
  --version           print the version and exit

Examples:
  cmswitchc --model opt-6.7b --decode 512 --layers 2 --stats
  cmswitchc --model vgg16 --compiler cim-mlc --out vgg16.cmprog
)";

/** CLI usage error: complain, point at --help, exit 2 (not a crash). */
[[noreturn]] void
usageError(const std::string &message)
{
    std::cerr << "cmswitchc: error: " << message << "\n"
              << "run 'cmswitchc --help' for usage\n";
    std::exit(2);
}

struct CliArgs
{
    std::string model;
    std::string chip = "dynaplasia";
    std::string compiler = "cmswitch";
    s64 batch = 1;
    s64 seq = 64;
    s64 decodeKv = 0;
    s64 layers = 0;
    std::string outFile;
    bool statsOnly = false;
    bool optimize = false;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    cmswitch_fatal_if(!in, "cannot open ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

CliArgs
parseCli(int argc, char **argv)
{
    if (argc <= 1) {
        std::cerr << kUsage;
        std::exit(2);
    }
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError(flag + " needs a value");
            return argv[++i];
        };
        auto nextInt = [&](s64 min_value) -> s64 {
            std::string value = next();
            s64 parsed = 0;
            try {
                size_t used = 0;
                parsed = std::stoll(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                usageError(flag + " needs an integer, got '" + value + "'");
            }
            if (parsed < min_value)
                usageError(flag + " must be >= " + std::to_string(min_value)
                           + ", got " + value);
            return parsed;
        };
        if (flag == "--model")
            args.model = next();
        else if (flag == "--chip")
            args.chip = next();
        else if (flag == "--compiler")
            args.compiler = next();
        else if (flag == "--batch")
            args.batch = nextInt(1);
        else if (flag == "--seq")
            args.seq = nextInt(1);
        else if (flag == "--decode")
            args.decodeKv = nextInt(0); // 0 == prefill, same as the default
        else if (flag == "--layers")
            args.layers = nextInt(0); // 0 == keep the zoo's layer count
        else if (flag == "--out")
            args.outFile = next();
        else if (flag == "--stats")
            args.statsOnly = true;
        else if (flag == "--optimize")
            args.optimize = true;
        else if (flag == "--help") {
            std::cout << kUsage;
            std::exit(0);
        } else if (flag == "--version") {
            std::cout << "cmswitchc " << CMSWITCH_VERSION << "\n";
            std::exit(0);
        } else {
            usageError("unknown flag '" + flag + "'");
        }
    }
    if (args.model.empty())
        usageError("--model is required");
    return args;
}

ChipConfig
resolveChip(const std::string &name)
{
    if (name == "dynaplasia")
        return ChipConfig::dynaplasia();
    if (name == "prime")
        return ChipConfig::prime();
    if (fileExists(name))
        return parseChipConfig(readFile(name));
    cmswitch_fatal("unknown chip '", name, "' (not a preset, not a file)");
}

std::unique_ptr<Compiler>
resolveCompiler(const std::string &name, const ChipConfig &chip)
{
    if (name == "cmswitch")
        return makeCmSwitchCompiler(chip);
    if (name == "cim-mlc")
        return makeCimMlcCompiler(chip);
    if (name == "occ")
        return makeOccCompiler(chip);
    if (name == "puma")
        return makePumaCompiler(chip);
    cmswitch_fatal("unknown compiler '", name, "'");
}

Graph
resolveModel(const CliArgs &args)
{
    if (fileExists(args.model))
        return parseGraph(readFile(args.model));
    if (args.decodeKv > 0) {
        TransformerConfig cfg = transformerConfigByName(args.model);
        if (args.layers > 0)
            cfg.layers = args.layers;
        return buildTransformerDecodeStep(cfg, args.batch, args.decodeKv);
    }
    if (args.model == "vgg16" || args.model == "resnet18"
        || args.model == "resnet50" || args.model == "mobilenetv2") {
        return buildModelByName(args.model, args.batch);
    }
    TransformerConfig cfg = transformerConfigByName(args.model);
    if (args.layers > 0)
        cfg.layers = args.layers;
    return buildTransformerPrefill(cfg, args.batch, args.seq);
}

} // namespace

int
cliMain(int argc, char **argv)
{
    CliArgs args = parseCli(argc, argv);
    ChipConfig chip = resolveChip(args.chip);
    Graph model = resolveModel(args);
    if (args.optimize) {
        PassStats stats = runFrontendPasses(&model);
        std::cerr << "cmswitchc: frontend passes removed "
                  << stats.removedOps << " op(s)\n";
    }
    auto compiler = resolveCompiler(args.compiler, chip);

    CompileResult result = compiler->compile(model);

    Deha deha(chip);
    ValidationReport report = validateProgram(result.program, deha);
    cmswitch_fatal_if(!report.ok(), "generated program failed validation:\n",
                      report.summary());

    std::cerr << "cmswitchc: " << model.name() << " -> "
              << result.numSegments() << " segments, "
              << result.totalCycles() << " cycles (intra "
              << result.latency.intra << ", write-back "
              << result.latency.writeback << ", switch "
              << result.latency.modeSwitch << ", rewrite "
              << result.latency.rewrite << "), memory-array ratio "
              << formatDouble(result.avgMemoryArrayRatio(), 3)
              << ", compiled in "
              << formatDouble(result.compileSeconds, 3) << "s\n";

    EnergyModel energy(deha, EnergyParams::forChip(chip));
    EnergyReport joules = energy.price(result.program, result.totalCycles());
    std::cerr << "cmswitchc: estimated energy "
              << formatDouble(joules.totalUj(), 2) << " uJ\n";

    if (!args.statsOnly) {
        std::string text = printProgram(result.program);
        if (args.outFile.empty()) {
            std::cout << text;
        } else {
            std::ofstream out(args.outFile);
            cmswitch_fatal_if(!out, "cannot write ", args.outFile);
            out << text;
            std::cerr << "cmswitchc: program written to " << args.outFile
                      << "\n";
        }
    }
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::cliMain(argc, argv);
}
