/**
 * @file
 * cmswitchc — command-line driver for the CMSwitch compiler.
 *
 * Modes:
 *   cmswitchc --model ... [options]   single compile (the classic CLI)
 *   cmswitchc batch --jobs FILE ...   many compiles through the
 *                                     thread-pooled compile service
 *   cmswitchc serve [options]         long-lived compile daemon over
 *                                     stdin/stdout or a Unix socket
 *                                     (docs/serving.md)
 *   cmswitchc sim --scenario FILE     discrete-event serving
 *                                     simulator: compiled plans under
 *                                     traffic (docs/simulation.md)
 *   cmswitchc cache <gc|stats|verify> lifecycle maintenance of a
 *                                     --cache-dir plan directory
 *   cmswitchc fingerprint             plan fingerprint + algorithm
 *                                     revision table as JSON
 *
 * Flags, defaults and examples live in one place: the kUsage text
 * below, printed by `cmswitchc --help`. Running without arguments
 * prints the same text and exits with status 2, as does any malformed
 * invocation; semantic errors (unknown model/chip) exit 1 via fatal().
 */

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "arch/chip_parser.hpp"
#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "graph/serialize.hpp"
#include "metaop/printer.hpp"
#include "metaop/validator.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "service/artifact_io.hpp"
#include "service/cache_maintenance.hpp"
#include "service/compile_service.hpp"
#include "service/disk_plan_cache.hpp"
#include "service/incremental/incremental_compile.hpp"
#include "service/json_report.hpp"
#include "service/plan_fingerprint.hpp"
#include "service/serve/serve_engine.hpp"
#include "service/serve/serve_io.hpp"
#include "sim/energy.hpp"
#include "sim/serving/scenario.hpp"
#include "sim/serving/simulator.hpp"
#include "sim/timing.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"

#ifndef CMSWITCH_VERSION
#define CMSWITCH_VERSION "dev"
#endif

namespace cmswitch {
namespace {

const char kUsage[] =
    R"(usage: cmswitchc --model <zoo-name | file.graph> [options]
       cmswitchc batch --jobs <file> --out-dir <dir> [batch options]
       cmswitchc serve [--socket <path>] [serve options]
       cmswitchc serve --connect <path> --script <file>
       cmswitchc sim --scenario <file> [sim options]
       cmswitchc cache <gc|stats|verify> --cache-dir <dir> [cache options]
       cmswitchc fingerprint

Compile a DNN for a dual-mode CIM chip and report the schedule.

Options:
  --model NAME|FILE   zoo model name (vgg16, resnet18, resnet50,
                      mobilenetv2, bert-base, bert-large, gpt,
                      llama2-7b, opt-6.7b, opt-13b) or a path to a
                      textual graph file (graph/serialize.hpp format)
  --chip NAME|FILE    dynaplasia (default), prime, or a chip
                      description file (arch/chip_parser.hpp format)
  --compiler NAME     cmswitch (default), cim-mlc, occ, puma
  --batch N           batch size for zoo models (default 1)
  --seq N             sequence length for transformers (default 64)
  --decode N          compile a decode step with kv length N instead
                      of a prefill pass (decoder-only models)
  --layers N          override transformer layer count
  --optimize          run the frontend graph passes before compiling
  --out FILE          write the meta-operator program to FILE
  --emit-json FILE    write the machine-readable compile report to
                      FILE (schema: docs/schemas.md)
  --cache-dir DIR     persistent plan cache: reuse a previously
                      compiled plan for this exact request from DIR
                      (cmswitch-plan-v1 artifact files, shared across
                      processes) and store fresh compiles back
  --search-threads N  plan-search threads inside the compile
                      (default 1). Plans are byte-identical for any
                      value, so this only changes compile time — and
                      cached plans are shared across values
  --stats             print the latency/energy breakdown only
  --trace FILE        record the compile pipeline (frontend passes,
                      segmenter DP phases, allocator probes, solver
                      calls, cache lookups) and write a Chrome
                      trace-event JSON to FILE; open it in
                      chrome://tracing or https://ui.perfetto.dev.
                      Plans are byte-identical with or without tracing
  --metrics FILE      write a JSON metrics snapshot (counters, gauges
                      and per-phase latency quantiles) to FILE.
                      --trace/--metrics also add an "observability"
                      section to --emit-json reports
  --help              print this message and exit
  --version           print version + plan fingerprint and exit

Batch mode compiles one job per line of the jobs file (each line is a
list of the single-mode flags above; '#' starts a comment) through a
worker pool with a shared content-keyed plan cache, writing one JSON
report per job plus an aggregate summary:
  --jobs FILE            job list (required)
  --out-dir DIR          directory for per-job reports (required)
  --threads N            worker threads (default 1)
  --summary FILE         summary path (default: <out-dir>/summary.json)
  --cache-capacity N     compiled plans kept in memory (default 256)
  --cache-dir DIR        persistent plan cache shared with other runs
                         (lookups go memory -> disk -> compile)
  --search-threads N     plan-search threads inside each compile
                         (default 1; batch-level, not per job —
                         deterministic, see single-mode flag above)
  --trace FILE           one Chrome trace-event JSON covering every
                         job; service workers and search-pool threads
                         appear as separate trace threads
  --job-latency          add each job's queue-wait/execute split to its
                         report (the same "observability"."request"
                         section serve responses and single-mode
                         --metrics reports carry). Off by default:
                         timing fields make per-job reports
                         non-byte-comparable across runs

Serve mode runs a long-lived compile daemon: one JSON request object
per line in, one JSON response line per request out (protocol and
schemas: docs/serving.md). Requests carry priorities and deadlines; a
max-in-flight admission gate sheds overload with explicit backpressure
responses, duplicate in-flight requests coalesce onto one compile, and
a status op reports cumulative latency quantiles and cache
outcomes (periodic --status-every lines add interval deltas):
  --socket PATH          listen on a Unix-domain socket; without it the
                         daemon serves one session on stdin/stdout
  --pid-file FILE        write the daemon pid once the socket is
                         listening (the file doubles as the readiness
                         signal for scripts; --socket only)
  --max-inflight N       concurrent compiles (default 1)
  --max-queue N          admitted requests waiting behind them
                         (default 16); an arriving request beyond this
                         either evicts a strictly lower-priority entry
                         or is shed with a backpressure response
  --status-every N       emit a status line to stderr every N completed
                         compiles (default 0 = off)
  --cache-capacity N     compiled plans kept in memory (default 256)
  --cache-dir DIR        persistent plan cache; lookups go memory ->
                         disk -> neighbor -> cold and responses say
                         which step served them
  --search-threads N     plan-search threads inside each compile
                         (default 1)
  --trace FILE           Chrome trace-event JSON covering the whole
                         serve run, written on exit
  --metrics FILE         JSON metrics snapshot written on exit
  --connect PATH         client mode: connect to a serving daemon,
                         send the --script request lines ('#' comments
                         and blanks skipped), print every response
  --script FILE          request lines for --connect (required with it)

Sim mode runs the discrete-event serving simulator: a scenario file
(cmswitch-sim-scenario-v1, see docs/simulation.md) describes a fleet
of CIM chips, a workload mix and an open-loop arrival process; the
report (cmswitch-sim-v1) carries throughput, latency quantiles,
per-chip utilization and mode-switch counts. Runs are deterministic:
all randomness comes from the scenario's seed, for any --threads:
  --scenario FILE        scenario config (required)
  --out FILE             write the report to FILE (default stdout)
  --threads N            plan-table compile threads (default 1; the
                         event loop itself is single-threaded)
  --search-threads N     plan-search threads inside each compile
                         (default 1)

Cache mode maintains a --cache-dir populated by earlier runs; every
verb prints a JSON report to stdout:
  cache gc --cache-dir DIR --max-bytes N [--max-age SEC]
                         delete the least-recently-used artifacts (by
                         file mtime; hits refresh it) until the *.plan
                         bytes fit under N; --max-age SEC first expires
                         artifacts unused for longer than SEC seconds.
                         At least one bound is required. Orphaned
                         writer temp files are reaped; the stats
                         sidecar is never deleted
  cache stats --cache-dir DIR
                         cross-process lifetime hit/miss/store/reject
                         totals (the cache-stats.sidecar file), plan
                         file count/bytes, and the build fingerprint
  cache verify --cache-dir DIR [--delete]
                         validate every artifact envelope, digest and
                         embedded key; --delete removes damaged files;
                         exits 1 when damaged files remain

Fingerprint mode prints the build's plan fingerprint — the digest that
keys --cache-dir compatibility — plus the per-pass algorithm revision
table behind it, as JSON on stdout:
  cmswitchc fingerprint

Examples:
  cmswitchc --model opt-6.7b --decode 512 --layers 2 --stats
  cmswitchc --model vgg16 --compiler cim-mlc --out vgg16.cmprog
  cmswitchc --model resnet18 --emit-json resnet18.json --stats
  cmswitchc --model bert-base --stats --trace bert.trace.json
  cmswitchc batch --jobs jobs.txt --threads 4 --out-dir reports/
  cmswitchc serve --socket /tmp/cmswitch.sock --max-inflight 2 \
      --pid-file /tmp/cmswitch.pid --cache-dir plans/
  cmswitchc serve --connect /tmp/cmswitch.sock --script requests.txt
  cmswitchc sim --scenario traffic.json --out sim-report.json
  cmswitchc cache gc --cache-dir plans/ --max-bytes 104857600
)";

/** CLI usage error: complain, point at --help, exit 2 (not a crash). */
[[noreturn]] void
usageError(const std::string &message)
{
    std::cerr << "cmswitchc: error: " << message << "\n"
              << "run 'cmswitchc --help' for usage\n";
    std::exit(2);
}

struct CliArgs
{
    std::string model;
    std::string chip = "dynaplasia";
    std::string compiler = "cmswitch";
    s64 batch = 1;
    s64 seq = 64;
    s64 decodeKv = 0;
    s64 layers = 0;
    std::string outFile;
    std::string emitJson;
    std::string cacheDir;
    std::string traceFile;
    std::string metricsFile;
    s64 searchThreads = 1;
    bool statsOnly = false;
    bool optimize = false;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    cmswitch_fatal_if(!in, "cannot open ", path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

/** "<context>: <msg>", or just @p msg for the bare command line. */
std::string
inContext(const std::string &context, const std::string &msg)
{
    return context.empty() ? msg : context + ": " + msg;
}

/** Parse @p value as an integer >= @p min_value; usage error naming
 *  @p flag (and @p context) otherwise. Shared by every flag parser. */
s64
parseIntToken(const std::string &flag, const std::string &value,
              s64 min_value, const std::string &context)
{
    s64 parsed = 0;
    try {
        size_t used = 0;
        parsed = std::stoll(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
    } catch (const std::exception &) {
        usageError(inContext(context, flag + " needs an integer, got '"
                                          + value + "'"));
    }
    if (parsed < min_value)
        usageError(inContext(context,
                             flag + " must be >= "
                                 + std::to_string(min_value) + ", got "
                                 + value));
    return parsed;
}

/**
 * Parse single-mode flags from @p tokens. @p context names the source
 * in errors ("" for the command line, "jobs file line N" for batch).
 */
CliArgs
parseFlags(const std::vector<std::string> &tokens, const std::string &context)
{
    CliArgs args;
    auto where = [&](const std::string &msg) {
        return inContext(context, msg);
    };
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string &flag = tokens[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= tokens.size())
                usageError(where(flag + " needs a value"));
            return tokens[++i];
        };
        auto nextInt = [&](s64 min_value) -> s64 {
            return parseIntToken(flag, next(), min_value, context);
        };
        if (flag == "--model")
            args.model = next();
        else if (flag == "--chip")
            args.chip = next();
        else if (flag == "--compiler")
            args.compiler = next();
        else if (flag == "--batch")
            args.batch = nextInt(1);
        else if (flag == "--seq")
            args.seq = nextInt(1);
        else if (flag == "--decode")
            args.decodeKv = nextInt(0); // 0 == prefill, same as the default
        else if (flag == "--layers")
            args.layers = nextInt(0); // 0 == keep the zoo's layer count
        else if (flag == "--out")
            args.outFile = next();
        else if (flag == "--emit-json")
            args.emitJson = next();
        else if (flag == "--cache-dir")
            args.cacheDir = next();
        else if (flag == "--trace")
            args.traceFile = next();
        else if (flag == "--metrics")
            args.metricsFile = next();
        else if (flag == "--search-threads")
            args.searchThreads = nextInt(1);
        else if (flag == "--stats")
            args.statsOnly = true;
        else if (flag == "--optimize")
            args.optimize = true;
        else if (flag == "--help" && context.empty()) {
            std::cout << kUsage;
            std::exit(0);
        } else if (flag == "--version" && context.empty()) {
            std::cout << "cmswitchc " << CMSWITCH_VERSION << "\n"
                      << "plan fingerprint " << buildFingerprintHex()
                      << "\n";
            std::exit(0);
        } else {
            usageError(where("unknown flag '" + flag + "'"));
        }
    }
    if (args.model.empty())
        usageError(where("--model is required"));
    return args;
}

CliArgs
parseCli(int argc, char **argv)
{
    if (argc <= 1) {
        std::cerr << kUsage;
        std::exit(2);
    }
    std::vector<std::string> tokens(argv + 1, argv + argc);
    return parseFlags(tokens, "");
}

ChipConfig
resolveChip(const std::string &name)
{
    if (name == "dynaplasia")
        return ChipConfig::dynaplasia();
    if (name == "prime")
        return ChipConfig::prime();
    if (fileExists(name))
        return parseChipConfig(readFile(name));
    cmswitch_fatal("unknown chip '", name, "' (not a preset, not a file)");
}

bool
isCnnZooName(const std::string &name)
{
    return name == "vgg16" || name == "resnet18" || name == "resnet50"
        || name == "mobilenetv2";
}

/** Build a model-zoo workload (@p args.model is NOT a file path). The
 *  only fatal() here is an unknown transformer name — callers that run
 *  off the main thread must have name-checked first. */
Graph
buildZooModel(const CliArgs &args)
{
    if (args.decodeKv > 0) {
        TransformerConfig cfg = transformerConfigByName(args.model);
        if (args.layers > 0)
            cfg.layers = args.layers;
        return buildTransformerDecodeStep(cfg, args.batch, args.decodeKv);
    }
    if (isCnnZooName(args.model))
        return buildModelByName(args.model, args.batch);
    TransformerConfig cfg = transformerConfigByName(args.model);
    if (args.layers > 0)
        cfg.layers = args.layers;
    return buildTransformerPrefill(cfg, args.batch, args.seq);
}

Graph
resolveModel(const CliArgs &args)
{
    if (fileExists(args.model))
        return parseGraph(readFile(args.model));
    return buildZooModel(args);
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    cmswitch_fatal_if(!out, "cannot write ", path);
    out << text;
}

/** Lowercase token safe for file names: non-alnum squashed to '-'. */
std::string
sanitizeToken(const std::string &text)
{
    std::string out;
    for (char c : text) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!out.empty() && out.back() != '-')
            out += '-';
    }
    while (!out.empty() && out.back() == '-')
        out.pop_back();
    return out.empty() ? "job" : out;
}

/**
 * Owns a --trace/--metrics observability session: installs the
 * registry/recorder pair into the process-wide obs hooks for the
 * duration of the compile, then writes the requested files. When
 * neither flag is given nothing is installed and every obs:: call in
 * the pipeline stays a single disabled-branch.
 */
struct ObsSession
{
    std::unique_ptr<obs::MetricsRegistry> registry;
    std::unique_ptr<obs::TraceRecorder> recorder;

    void start(const std::string &trace_file,
               const std::string &metrics_file)
    {
        if (trace_file.empty() && metrics_file.empty())
            return;
        registry = std::make_unique<obs::MetricsRegistry>();
        if (!trace_file.empty()) {
            recorder = std::make_unique<obs::TraceRecorder>();
            recorder->setThreadName("main");
        }
        obs::install(registry.get(), recorder.get());
    }

    /** Uninstall and write the output files; safe to call when start()
     *  was a no-op. Must run before the recorder/registry die. */
    void finish(const std::string &trace_file,
                const std::string &metrics_file)
    {
        if (!registry)
            return;
        obs::uninstall();
        if (recorder) {
            writeTextFile(trace_file, recorder->exportJson());
            std::cerr << "cmswitchc: trace written to " << trace_file
                      << " (" << recorder->eventCount() << " event(s)";
            if (recorder->droppedEvents() > 0)
                std::cerr << ", " << recorder->droppedEvents()
                          << " dropped";
            std::cerr << ")\n";
        }
        if (!metrics_file.empty()) {
            writeTextFile(metrics_file, registry->snapshotJson());
            std::cerr << "cmswitchc: metrics written to " << metrics_file
                      << "\n";
        }
    }
};

int
singleMain(int argc, char **argv)
{
    CliArgs args = parseCli(argc, argv);
    ObsSession session;
    session.start(args.traceFile, args.metricsFile);
    obs::setGauge(obs::Gau::kSearchThreads, args.searchThreads);

    // The passes run inside compileArtifact (driven by request.optimize)
    // so a single-mode compile and the identical batch job line hash to
    // the same request key.
    CompileRequest request;
    request.chip = resolveChip(args.chip);
    request.workload = resolveModel(args);
    request.compilerId = args.compiler;
    request.optimize = args.optimize;
    request.searchThreads = args.searchThreads;

    ArtifactPtr artifact;
    auto executeStart = std::chrono::steady_clock::now();
    if (args.cacheDir.empty()) {
        artifact = compileArtifact(request);
    } else {
        // Persistent plan cache: a prior run of any process with this
        // --cache-dir and the same request key supplies the plan.
        DiskPlanCache disk(args.cacheDir);
        std::string key = requestKey(request);
        artifact = disk.load(key);
        if (artifact) {
            std::cerr << "cmswitchc: plan cache disk hit (" << key
                      << ") in " << disk.directory() << "\n";
        } else {
            // Miss: compile warm-started from the structurally closest
            // retained search state in this cache dir (byte-identical
            // to a cold compile; only faster when a neighbor exists).
            WarmStateStore warm_store(args.cacheDir);
            artifact = compileArtifactIncremental(request, key, warm_store,
                                                  &disk);
            disk.store(key, artifact);
            std::cerr << "cmswitchc: plan cache miss; stored " << key
                      << " in " << disk.directory() << "\n";
        }
    }
    // Same queue-wait/execute split the serve daemon and batch jobs
    // report; single mode has no queue, so the wait is identically 0.
    ServiceRequestLatency latency;
    latency.executeSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - executeStart)
            .count();
    if (args.optimize) {
        std::cerr << "cmswitchc: frontend passes removed "
                  << artifact->passStats.removedOps << " op(s)\n";
    }

    const CompileResult &result = artifact->result;
    cmswitch_fatal_if(!artifact->validation.ok(),
                      "generated program failed validation:\n",
                      artifact->validation.summary());

    std::cerr << "cmswitchc: " << result.program.modelName() << " -> "
              << result.numSegments() << " segments, "
              << result.totalCycles() << " cycles (intra "
              << result.latency.intra << ", write-back "
              << result.latency.writeback << ", switch "
              << result.latency.modeSwitch << ", rewrite "
              << result.latency.rewrite << "), memory-array ratio "
              << formatDouble(result.avgMemoryArrayRatio(), 3)
              << ", compiled in "
              << formatDouble(result.compileSeconds, 3) << "s\n";
    std::cerr << "cmswitchc: estimated energy "
              << formatDouble(artifact->energy.totalUj(), 2) << " uJ\n";

    // The compile is over: stop recording before rendering reports so
    // the trace/metrics files and the --emit-json observability section
    // all see the same final snapshot.
    session.finish(args.traceFile, args.metricsFile);

    if (!args.emitJson.empty()) {
        // The latency section rides with the metrics snapshot: both are
        // timing-dependent, so reports without --trace/--metrics stay
        // byte-comparable across runs (json_smoke pins this).
        writeTextFile(args.emitJson,
                      renderCompileReport(*artifact,
                                          session.registry.get(),
                                          session.registry ? &latency
                                                           : nullptr));
        std::cerr << "cmswitchc: report written to " << args.emitJson
                  << "\n";
    }

    if (!args.statsOnly) {
        std::string text = printProgram(result.program);
        if (args.outFile.empty()) {
            std::cout << text;
        } else {
            writeTextFile(args.outFile, text);
            std::cerr << "cmswitchc: program written to " << args.outFile
                      << "\n";
        }
    }
    return 0;
}

/** One parsed batch job: the request plus report bookkeeping. */
struct BatchJob
{
    CliArgs cliArgs;        ///< parsed flags; resolveJobs() turns them
                            ///< into the request
    CompileRequest request;
    std::string key;
    std::string reportFile;
    bool graphResolved = false; ///< workload already built (file models)
    bool expectHit = false; ///< key already submitted by an earlier job
};

/**
 * Resolve every job's chip + workload graph and request key, spreading
 * the expensive part — zoo graph construction and request hashing —
 * over up to @p threads worker threads.
 *
 * Everything that can fatal() on user error stays on the main thread:
 * fatal() calls std::exit, and exiting from a worker while its
 * siblings run would tear down static state under them. So the serial
 * prologue resolves every unique chip once (memoized — also skipping
 * repeated chip-file parsing), parses file-based model graphs, and
 * name-checks zoo models; workers then only run buildZooModel on
 * validated names (never re-probing the filesystem, so a file
 * appearing mid-run cannot reroute them onto a fatal() path) plus
 * requestKey hashing. Each job is independent and deterministic, so
 * the parallel fill is observationally identical to a serial loop —
 * only faster for long job lists.
 */
void
resolveJobs(std::vector<BatchJob> *jobs, s64 threads)
{
    std::map<std::string, ChipConfig> chips;
    for (BatchJob &job : *jobs) {
        auto [it, inserted] = chips.try_emplace(job.cliArgs.chip);
        if (inserted)
            it->second = resolveChip(job.cliArgs.chip);
        job.request.chip = it->second;
        job.request.compilerId = job.cliArgs.compiler;
        job.request.optimize = job.cliArgs.optimize;
        if (fileExists(job.cliArgs.model)) {
            job.request.workload = resolveModel(job.cliArgs);
            job.graphResolved = true;
        } else if (job.cliArgs.decodeKv > 0
                   || !isCnnZooName(job.cliArgs.model)) {
            // Cheap name validation; fatals here, not in a worker.
            transformerConfigByName(job.cliArgs.model);
        }
    }

    auto resolveOne = [](BatchJob &job) {
        if (!job.graphResolved)
            job.request.workload = buildZooModel(job.cliArgs);
        job.key = requestKey(job.request);
    };

    s64 workers = std::min(threads, static_cast<s64>(jobs->size()));
    if (workers <= 1) {
        for (BatchJob &job : *jobs)
            resolveOne(job);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (s64 i = 0; i < workers; ++i) {
        pool.emplace_back([&] {
            for (;;) {
                std::size_t index = next.fetch_add(1);
                if (index >= jobs->size())
                    return;
                resolveOne((*jobs)[index]);
            }
        });
    }
    for (std::thread &worker : pool)
        worker.join();
}

struct BatchArgs
{
    std::string jobsFile;
    std::string outDir;
    std::string summaryFile;
    std::string cacheDir;
    std::string traceFile;
    s64 threads = 1;
    s64 cacheCapacity = 256;
    s64 searchThreads = 1;
    bool jobLatency = false;
};

BatchArgs
parseBatchArgs(int argc, char **argv)
{
    BatchArgs args;
    for (int i = 2; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError(flag + " needs a value");
            return argv[++i];
        };
        auto nextInt = [&](s64 min_value) -> s64 {
            return parseIntToken(flag, next(), min_value, "");
        };
        if (flag == "--jobs")
            args.jobsFile = next();
        else if (flag == "--out-dir")
            args.outDir = next();
        else if (flag == "--summary")
            args.summaryFile = next();
        else if (flag == "--threads")
            args.threads = nextInt(1);
        else if (flag == "--cache-capacity")
            args.cacheCapacity = nextInt(1);
        else if (flag == "--cache-dir")
            args.cacheDir = next();
        else if (flag == "--search-threads")
            args.searchThreads = nextInt(1);
        else if (flag == "--trace")
            args.traceFile = next();
        else if (flag == "--job-latency")
            args.jobLatency = true;
        else if (flag == "--help") {
            std::cout << kUsage;
            std::exit(0);
        } else {
            usageError("unknown batch flag '" + flag + "'");
        }
    }
    if (args.jobsFile.empty())
        usageError("batch mode requires --jobs");
    if (args.outDir.empty())
        usageError("batch mode requires --out-dir");
    if (args.summaryFile.empty())
        args.summaryFile = (std::filesystem::path(args.outDir)
                            / "summary.json").string();
    return args;
}

std::vector<BatchJob>
parseJobs(const BatchArgs &batch)
{
    std::vector<BatchJob> jobs;
    std::istringstream iss(readFile(batch.jobsFile));
    std::string line;
    s64 line_no = 0;
    std::map<std::string, bool> seen;
    while (std::getline(iss, line)) {
        ++line_no;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;

        std::vector<std::string> tokens;
        std::istringstream ls(t);
        std::string tok;
        while (ls >> tok)
            tokens.push_back(tok);

        std::string context =
            batch.jobsFile + " line " + std::to_string(line_no);
        CliArgs args = parseFlags(tokens, context);
        if (!args.outFile.empty() || !args.emitJson.empty()
            || !args.cacheDir.empty() || args.statsOnly
            || args.searchThreads != 1 || !args.traceFile.empty()
            || !args.metricsFile.empty()) {
            usageError(context + ": --out/--emit-json/--cache-dir/--stats/"
                       "--search-threads/--trace/--metrics are not valid "
                       "in batch jobs (reports go to --out-dir; the "
                       "cache, search width and trace are batch-level)");
        }

        BatchJob job;
        job.cliArgs = args;

        std::ostringstream name;
        name << "job" << std::setw(3) << std::setfill('0') << jobs.size()
             << "_" << sanitizeToken(args.model) << "_"
             << sanitizeToken(args.chip) << "_"
             << sanitizeToken(args.compiler) << ".json";
        job.reportFile = name.str();
        jobs.push_back(std::move(job));
    }
    cmswitch_fatal_if(jobs.empty(), batch.jobsFile, " contains no jobs");

    // Model/chip graph construction is the expensive half of job setup
    // (huge job lists spend seconds here), so it runs on the batch's
    // thread budget instead of serially on the main thread. Each job is
    // independent; requestKey hashing rides along.
    resolveJobs(&jobs, batch.threads);

    // Hit/miss labels derive from submission order (first occurrence of
    // a key compiles, repeats hit) — serial on purpose, so the labels
    // are deterministic under any thread count.
    for (BatchJob &job : jobs) {
        job.expectHit = seen[job.key];
        seen[job.key] = true;
    }
    return jobs;
}

int
batchMain(int argc, char **argv)
{
    BatchArgs batch = parseBatchArgs(argc, argv);
    std::vector<BatchJob> jobs = parseJobs(batch);
    std::filesystem::create_directories(batch.outDir);

    // Metrics are always on in batch mode — the summary's latency
    // quantiles come from them. Declared before the service so workers
    // never outlive the registry; tracing stays opt-in (--trace).
    obs::MetricsRegistry registry;
    std::unique_ptr<obs::TraceRecorder> recorder;
    if (!batch.traceFile.empty()) {
        recorder = std::make_unique<obs::TraceRecorder>();
        recorder->setThreadName("main");
    }
    obs::install(&registry, recorder.get());
    obs::setGauge(obs::Gau::kServiceThreads, batch.threads);
    obs::setGauge(obs::Gau::kSearchThreads, batch.searchThreads);

    auto t0 = std::chrono::steady_clock::now();
    CompileService service({.threads = batch.threads,
                            .cacheCapacity = batch.cacheCapacity,
                            .searchThreads = batch.searchThreads,
                            .cacheDir = batch.cacheDir});

    // Stable addresses for the per-job latency out-structs: workers
    // write them before their futures become ready (--job-latency).
    std::vector<ServiceRequestLatency> latencies(jobs.size());
    std::vector<std::future<ArtifactPtr>> futures;
    futures.reserve(jobs.size());
    for (std::size_t k = 0; k < jobs.size(); ++k)
        futures.push_back(service.submit(
            jobs[k].request,
            batch.jobLatency ? &latencies[k] : nullptr));

    s64 invalid = 0;
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        // Drop the ArtifactPtr as soon as its report is on disk: the
        // plan cache (bounded by --cache-capacity) is the only thing
        // keeping plans alive across jobs.
        ArtifactPtr artifact = futures[k].get();
        if (!artifact->validation.ok()) {
            ++invalid;
            warn("batch job ", k, " (", jobs[k].cliArgs.model, " / ",
                 jobs[k].cliArgs.chip, " / ", jobs[k].cliArgs.compiler,
                 ") failed validation:\n",
                 artifact->validation.summary());
        }
        writeTextFile((std::filesystem::path(batch.outDir)
                       / jobs[k].reportFile).string(),
                      renderCompileReport(*artifact, nullptr,
                                          batch.jobLatency
                                              ? &latencies[k]
                                              : nullptr));
    }
    auto t1 = std::chrono::steady_clock::now();
    double wall = std::chrono::duration<double>(t1 - t0).count();

    // Every future is drained, so the workers are idle: stop observing
    // before reading the registry for the summary. Late stragglers
    // (none expected) would see the disabled branch, not a torn write.
    obs::uninstall();
    if (recorder) {
        writeTextFile(batch.traceFile, recorder->exportJson());
        std::cerr << "cmswitchc: trace written to " << batch.traceFile
                  << " (" << recorder->eventCount() << " event(s)";
        if (recorder->droppedEvents() > 0)
            std::cerr << ", " << recorder->droppedEvents() << " dropped";
        std::cerr << ")\n";
    }

    CompileServiceStats stats = service.stats();
    // Lifetime totals across every process that ever used this
    // --cache-dir: flush this run's deltas into the sidecar now (the
    // destructor's flush then adds nothing) and report the merged sums.
    DiskPlanCacheStats sidecar;
    if (service.diskCache())
        sidecar = service.diskCache()->flushSidecar();
    JsonWriter w;
    w.beginObject()
        .field("schema", "cmswitch-batch-summary-v5")
        .field("jobs", static_cast<s64>(jobs.size()))
        .field("threads", batch.threads)
        .field("search_threads", batch.searchThreads)
        .field("invalid_jobs", invalid)
        .field("wall_seconds", wall);
    w.key("cache")
        .beginObject()
        .field("capacity", batch.cacheCapacity)
        .field("hits", stats.cache.hits)
        .field("misses", stats.cache.misses)
        .field("evictions", stats.cache.evictions)
        .field("dir", batch.cacheDir)
        .field("fingerprint", buildFingerprintHex());
    // In-memory misses that a --cache-dir plan file satisfied show up
    // as disk_hits; only (misses - disk_hits) actually compiled.
    stats.disk.writeJsonFields(w);
    // Cross-process lifetime totals from the stats sidecar (all zero
    // when --cache-dir is off).
    w.field("sidecar_hits", sidecar.hits)
        .field("sidecar_misses", sidecar.misses)
        .field("sidecar_stores", sidecar.stores)
        .field("sidecar_rejected", sidecar.rejected)
        .field("sidecar_touch_failed", sidecar.touchFailed)
        // v5: incremental-compilation neighbor totals (see
        // service/incremental/incremental_compile.hpp).
        .field("sidecar_neighbor_hits", sidecar.neighborHits)
        .field("sidecar_neighbor_partials", sidecar.neighborPartials)
        .field("sidecar_neighbor_misses", sidecar.neighborMisses);
    w.endObject();
    // v4: compile-latency quantiles (p50/p90/p95/p99 from the log
    // histograms) plus the full metrics snapshot — the timing half of
    // the summary, intentionally not byte-stable across runs.
    w.key("latency").beginObject();
    w.key("compile_seconds");
    registry.histogram(obs::Hist::kPhaseCompile).writeJson(w);
    w.key("execute_seconds");
    registry.histogram(obs::Hist::kServiceExecute).writeJson(w);
    w.key("queue_wait_seconds");
    registry.histogram(obs::Hist::kServiceQueueWait).writeJson(w);
    w.endObject();
    w.key("metrics");
    registry.writeJson(w);
    w.key("job_reports").beginArray();
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        w.beginObject()
            .field("index", static_cast<s64>(k))
            .field("report", jobs[k].reportFile)
            .field("key", jobs[k].key)
            .field("model", jobs[k].cliArgs.model)
            .field("chip", jobs[k].cliArgs.chip)
            .field("compiler", jobs[k].cliArgs.compiler)
            // First submission of a key compiles, repeats hit the plan
            // cache — derived from submission order, so deterministic
            // under any thread count. If --cache-capacity is smaller
            // than the unique-key count, evicted repeats recompile and
            // the aggregate counters above will exceed these labels.
            .field("cache", jobs[k].expectHit ? "hit" : "miss")
            .endObject();
    }
    w.endArray();
    w.endObject();
    writeTextFile(batch.summaryFile, w.str());

    std::cerr << "cmswitchc: batch of " << jobs.size() << " job(s) on "
              << batch.threads << " thread(s): "
              << stats.cache.misses - stats.disk.hits << " compiled, "
              << stats.cache.hits << " cache hit(s), ";
    if (!batch.cacheDir.empty())
        std::cerr << stats.disk.hits << " disk hit(s), ";
    std::cerr << invalid << " invalid, in " << formatDouble(wall, 2)
              << "s\n"
              << "cmswitchc: summary written to " << batch.summaryFile
              << "\n";
    return invalid == 0 ? 0 : 1;
}

struct ServeArgs
{
    std::string socketPath;
    std::string pidFile;
    std::string connectPath;
    std::string scriptFile;
    std::string cacheDir;
    std::string traceFile;
    std::string metricsFile;
    s64 maxInflight = 1;
    s64 maxQueue = 16;
    s64 statusEvery = 0;
    s64 cacheCapacity = 256;
    s64 searchThreads = 1;
};

ServeArgs
parseServeArgs(int argc, char **argv)
{
    ServeArgs args;
    for (int i = 2; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError(flag + " needs a value");
            return argv[++i];
        };
        auto nextInt = [&](s64 min_value) -> s64 {
            return parseIntToken(flag, next(), min_value, "");
        };
        if (flag == "--socket")
            args.socketPath = next();
        else if (flag == "--pid-file")
            args.pidFile = next();
        else if (flag == "--connect")
            args.connectPath = next();
        else if (flag == "--script")
            args.scriptFile = next();
        else if (flag == "--max-inflight")
            args.maxInflight = nextInt(1);
        else if (flag == "--max-queue")
            args.maxQueue = nextInt(1);
        else if (flag == "--status-every")
            args.statusEvery = nextInt(0);
        else if (flag == "--cache-capacity")
            args.cacheCapacity = nextInt(1);
        else if (flag == "--cache-dir")
            args.cacheDir = next();
        else if (flag == "--search-threads")
            args.searchThreads = nextInt(1);
        else if (flag == "--trace")
            args.traceFile = next();
        else if (flag == "--metrics")
            args.metricsFile = next();
        else if (flag == "--help") {
            std::cout << kUsage;
            std::exit(0);
        } else {
            usageError("unknown serve flag '" + flag + "'");
        }
    }
    if (!args.connectPath.empty() && args.scriptFile.empty())
        usageError("serve --connect requires --script");
    if (args.connectPath.empty() && !args.scriptFile.empty())
        usageError("serve --script only makes sense with --connect");
    if (!args.connectPath.empty() && !args.socketPath.empty())
        usageError("serve --connect (client) and --socket (daemon) are "
                   "mutually exclusive");
    if (!args.pidFile.empty() && args.socketPath.empty())
        usageError("serve --pid-file requires --socket");
    return args;
}

/** `cmswitchc serve`: the long-lived compile daemon (docs/serving.md),
 *  or — with --connect — the script-driven client that tests and
 *  operators use to talk to one. */
int
serveMain(int argc, char **argv)
{
    ServeArgs args = parseServeArgs(argc, argv);
    if (!args.connectPath.empty())
        return runServeClient(args.connectPath, args.scriptFile);

    installServeSignalHandlers();
    ObsSession session;
    session.start(args.traceFile, args.metricsFile);
    obs::setGauge(obs::Gau::kSearchThreads, args.searchThreads);

    int exitCode = 0;
    {
        // stdin mode answers on stdout (fd 1); socket mode retargets
        // the writer at each accepted connection.
        ServeWriter writer(args.socketPath.empty() ? 1 : -1);
        ServeEngineOptions options;
        options.maxInflight = args.maxInflight;
        options.maxQueue = args.maxQueue;
        options.statusEvery = args.statusEvery;
        options.service.cacheCapacity = args.cacheCapacity;
        options.service.searchThreads = args.searchThreads;
        options.service.cacheDir = args.cacheDir;
        ServeEngine engine(
            options,
            [&writer](const std::string &line) { writer.writeLine(line); },
            [](const std::string &line) { std::cerr << line + "\n"; });
        if (args.socketPath.empty()) {
            runServeSession(engine, 0);
            engine.drainIdle();
            std::cerr << "cmswitchc: serve: session ended\n";
        } else {
            exitCode = runServeSocketDaemon(engine, writer,
                                            args.socketPath, args.pidFile);
        }
    } // engine destructor: drain admitted work, join the workers
    session.finish(args.traceFile, args.metricsFile);
    return exitCode;
}

/** `cmswitchc cache <gc|stats|verify>`: plan-cache lifecycle ops. All
 *  verbs print their JSON report to stdout (stderr stays free for
 *  warnings), so CI steps and scripts can pipe straight into a JSON
 *  parser. */
int
cacheMain(int argc, char **argv)
{
    if (argc <= 2)
        usageError("cache mode requires a verb: gc, stats, or verify");
    std::string verb = argv[2];
    if (verb == "--help") {
        std::cout << kUsage;
        return 0;
    }
    if (verb != "gc" && verb != "stats" && verb != "verify")
        usageError("unknown cache verb '" + verb
                   + "' (expected gc, stats, or verify)");

    std::string dir;
    s64 max_bytes = -1;
    s64 max_age = -1;
    bool remove_damaged = false;
    for (int i = 3; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError(flag + " needs a value");
            return argv[++i];
        };
        if (flag == "--cache-dir")
            dir = next();
        else if (flag == "--max-bytes" && verb == "gc")
            max_bytes = parseIntToken(flag, next(), 0, "");
        else if (flag == "--max-age" && verb == "gc")
            max_age = parseIntToken(flag, next(), 0, "");
        else if (flag == "--delete" && verb == "verify")
            remove_damaged = true;
        else if (flag == "--help") {
            std::cout << kUsage;
            return 0;
        } else {
            usageError("unknown cache " + verb + " flag '" + flag + "'");
        }
    }
    if (dir.empty())
        usageError("cache " + verb + " requires --cache-dir");

    JsonWriter w;
    if (verb == "gc") {
        if (max_bytes < 0 && max_age < 0)
            usageError("cache gc needs --max-bytes and/or --max-age "
                       "(otherwise there is nothing to collect)");
        CacheGcReport report = gcPlanCache({dir, max_bytes, max_age});
        report.writeJson(w);
        std::cout << w.str() << "\n";
        std::cerr << "cmswitchc: cache gc deleted " << report.deletedFiles
                  << " of " << report.scannedFiles << " artifact(s) ("
                  << report.deletedBytes << " of " << report.scannedBytes
                  << " bytes) in " << dir << "\n";
        return 0;
    }
    if (verb == "stats") {
        statsPlanCache(dir).writeJson(w);
        std::cout << w.str() << "\n";
        return 0;
    }
    CacheVerifyReport report = verifyPlanCache({dir, remove_damaged});
    report.writeJson(w);
    std::cout << w.str() << "\n";
    std::cerr << "cmswitchc: cache verify found " << report.damagedFiles
              << " damaged of " << report.scannedFiles << " artifact(s) in "
              << dir << "\n";
    return report.clean() ? 0 : 1;
}

/** `cmswitchc fingerprint`: the plan-fingerprint digest that keys
 *  --cache-dir compatibility, plus the algorithm-revision table it
 *  hashes, as JSON on stdout — so scripts can tell whether two builds
 *  share plan caches without compiling anything. */
int
fingerprintMain(int argc, char **argv)
{
    for (int i = 2; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--help") {
            std::cout << kUsage;
            return 0;
        }
        usageError("unknown fingerprint flag '" + flag + "'");
    }
    std::string plan_format(kPlanFormatTag);
    if (!plan_format.empty() && plan_format.back() == '\n')
        plan_format.pop_back();
    JsonWriter w;
    w.beginObject()
        .field("schema", "cmswitch-fingerprint-v1")
        .field("version", CMSWITCH_VERSION)
        .field("fingerprint", buildFingerprintHex())
        .field("plan_format", plan_format);
    w.key("algorithm_revisions").beginArray();
    for (const AlgorithmRevision &rev : algorithmRevisions()) {
        w.beginObject()
            .field("pass", rev.pass)
            .field("revision", rev.revision)
            .endObject();
    }
    w.endArray().endObject();
    std::cout << w.str() << "\n";
    return 0;
}

/** `cmswitchc sim`: compile a scenario's plan table and replay its
 *  traffic through the discrete-event serving simulator. Scenario
 *  errors exit 1 with a message (they are semantic, not usage); the
 *  report goes to --out or stdout, a one-line summary to stderr. */
int
simMain(int argc, char **argv)
{
    std::string scenario_file;
    std::string out_file;
    s64 threads = 1;
    s64 search_threads = 1;
    for (int i = 2; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError(flag + " needs a value");
            return argv[++i];
        };
        if (flag == "--scenario")
            scenario_file = next();
        else if (flag == "--out")
            out_file = next();
        else if (flag == "--threads")
            threads = parseIntToken(flag, next(), 1, "");
        else if (flag == "--search-threads")
            search_threads = parseIntToken(flag, next(), 1, "");
        else if (flag == "--help") {
            std::cout << kUsage;
            return 0;
        } else {
            usageError("unknown sim flag '" + flag + "'");
        }
    }
    if (scenario_file.empty())
        usageError("sim mode requires --scenario");

    SimScenario scenario;
    std::string error;
    if (!parseSimScenario(readFile(scenario_file), &scenario, &error)) {
        std::cerr << "cmswitchc: sim: bad scenario '" << scenario_file
                  << "': " << error << "\n";
        return 1;
    }
    ServingSimOptions options;
    options.compileThreads = threads;
    options.searchThreads = search_threads;
    SimResult result;
    if (!runServingSimulation(scenario, options, &result, &error)) {
        std::cerr << "cmswitchc: sim: " << error << "\n";
        return 1;
    }
    std::string report = renderSimReport(scenario, result);
    if (out_file.empty())
        std::cout << report << "\n";
    else
        writeTextFile(out_file, report + "\n");
    std::cerr << "cmswitchc: sim '" << scenario.name << "': "
              << result.arrived << " arrived, " << result.completed
              << " completed, "
              << result.shedAdmission + result.shedDeadline
              << " shed; throughput "
              << result.throughputPerSecond() << " req/s, p99 total "
              << result.totalSeconds.quantile(0.99) << " s\n";
    return 0;
}

} // namespace

int
cliMain(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "batch")
        return batchMain(argc, argv);
    if (argc > 1 && std::string(argv[1]) == "serve")
        return serveMain(argc, argv);
    if (argc > 1 && std::string(argv[1]) == "sim")
        return simMain(argc, argv);
    if (argc > 1 && std::string(argv[1]) == "cache")
        return cacheMain(argc, argv);
    if (argc > 1 && std::string(argv[1]) == "fingerprint")
        return fingerprintMain(argc, argv);
    return singleMain(argc, argv);
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::cliMain(argc, argv);
}
