#include "baselines/baseline.hpp"

namespace cmswitch {

std::unique_ptr<Compiler>
makeOccCompiler(ChipConfig chip, bool referenceSearch, s64 searchThreads)
{
    CmSwitchOptions options;
    options.segmenter.referenceSearch = referenceSearch;
    options.segmenter.searchThreads = searchThreads;
    options.segmenter.useDp = false; // greedy one-pass segmentation
    options.segmenter.livenessAwareWriteback = true;
    options.segmenter.alloc.allowMemoryMode = false;
    // OCC's tiling/loop-unrolling spreads an operator across idle
    // crossbars, which the shared engine models as duplication.
    options.segmenter.alloc.allowDuplication = true;
    options.segmenter.alloc.pipelined = false; // operators issue serially
    return std::make_unique<CmSwitchCompiler>(std::move(chip), options,
                                              "occ");
}

} // namespace cmswitch
