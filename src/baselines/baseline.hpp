/**
 * @file
 * Baseline CIM compilers of the paper's evaluation (Sec. 5.1), realised
 * as restricted configurations of the shared scheduling engine so every
 * compiler prices its schedule through the identical cost model:
 *
 *  - PUMA (Ankit et al., ASPLOS'19): weight duplication, serial
 *    operator execution within a segment, naive full write-back.
 *  - OCC (Siemieniuk et al., TCAD'21): tiling/loop-unrolling mapping of
 *    single operators (serial, no duplication), buffer-aware
 *    write-back.
 *  - CIM-MLC (Qu et al., ASPLOS'24): multi-grained pipelining + weight
 *    duplication, liveness-aware write-back — the main baseline.
 *
 * All three treat every CIM array as a compute array (fixed mode),
 * which is precisely the assumption CMSwitch relaxes.
 */

#ifndef CMSWITCH_BASELINES_BASELINE_HPP
#define CMSWITCH_BASELINES_BASELINE_HPP

#include <memory>

#include "compiler/cmswitch_compiler.hpp"

namespace cmswitch {

/**
 * Every factory takes an optional @p referenceSearch switch: true
 * builds the compiler on the retained pre-optimization search stack
 * (SegmenterOptions::referenceSearch — reference DP, exact allocator
 * probes). The differential tests pin that both modes produce
 * byte-identical compile results across the scenario matrix.
 *
 * @p searchThreads (>= 1) sets SegmenterOptions::searchThreads: the
 * plan search of one compile runs on that many threads with plans
 * byte-identical for any value (see segmenter.hpp). Ignored when
 * referenceSearch is set.
 */

/** PUMA-style compiler over @p chip. */
std::unique_ptr<Compiler> makePumaCompiler(ChipConfig chip,
                                           bool referenceSearch = false,
                                           s64 searchThreads = 1);

/** OCC-style compiler over @p chip. */
std::unique_ptr<Compiler> makeOccCompiler(ChipConfig chip,
                                          bool referenceSearch = false,
                                          s64 searchThreads = 1);

/** CIM-MLC-style compiler over @p chip (the paper's main baseline). */
std::unique_ptr<Compiler> makeCimMlcCompiler(ChipConfig chip,
                                             bool referenceSearch = false,
                                             s64 searchThreads = 1);

/** The full CMSwitch compiler over @p chip. */
std::unique_ptr<Compiler> makeCmSwitchCompiler(ChipConfig chip,
                                               bool referenceSearch = false,
                                               s64 searchThreads = 1);

/** All four, in the paper's plotting order (Fig. 14). */
std::vector<std::unique_ptr<Compiler>> makeAllCompilers(const ChipConfig &chip);

/**
 * Compiler by registry id ("cmswitch", "cim-mlc", "occ", "puma");
 * fatals on unknown ids. The single name->factory mapping shared by
 * cmswitchc and the compile service.
 */
std::unique_ptr<Compiler> makeCompilerByName(const std::string &name,
                                             const ChipConfig &chip,
                                             bool referenceSearch = false,
                                             s64 searchThreads = 1);

} // namespace cmswitch

#endif // CMSWITCH_BASELINES_BASELINE_HPP
