#include "baselines/baseline.hpp"

#include "support/logging.hpp"

namespace cmswitch {

std::unique_ptr<Compiler>
makeCmSwitchCompiler(ChipConfig chip)
{
    return std::make_unique<CmSwitchCompiler>(std::move(chip),
                                              CmSwitchOptions{}, "cmswitch");
}

std::vector<std::unique_ptr<Compiler>>
makeAllCompilers(const ChipConfig &chip)
{
    std::vector<std::unique_ptr<Compiler>> out;
    out.push_back(makePumaCompiler(chip));
    out.push_back(makeOccCompiler(chip));
    out.push_back(makeCimMlcCompiler(chip));
    out.push_back(makeCmSwitchCompiler(chip));
    return out;
}

std::unique_ptr<Compiler>
makeCompilerByName(const std::string &name, const ChipConfig &chip)
{
    if (name == "cmswitch")
        return makeCmSwitchCompiler(chip);
    if (name == "cim-mlc")
        return makeCimMlcCompiler(chip);
    if (name == "occ")
        return makeOccCompiler(chip);
    if (name == "puma")
        return makePumaCompiler(chip);
    cmswitch_fatal("unknown compiler '", name, "'");
}

} // namespace cmswitch
