#include "baselines/baseline.hpp"

#include "support/logging.hpp"

namespace cmswitch {

std::unique_ptr<Compiler>
makeCmSwitchCompiler(ChipConfig chip, bool referenceSearch,
                     s64 searchThreads)
{
    CmSwitchOptions options;
    options.segmenter.referenceSearch = referenceSearch;
    options.segmenter.searchThreads = searchThreads;
    return std::make_unique<CmSwitchCompiler>(std::move(chip), options,
                                              "cmswitch");
}

std::vector<std::unique_ptr<Compiler>>
makeAllCompilers(const ChipConfig &chip)
{
    std::vector<std::unique_ptr<Compiler>> out;
    out.push_back(makePumaCompiler(chip));
    out.push_back(makeOccCompiler(chip));
    out.push_back(makeCimMlcCompiler(chip));
    out.push_back(makeCmSwitchCompiler(chip));
    return out;
}

std::unique_ptr<Compiler>
makeCompilerByName(const std::string &name, const ChipConfig &chip,
                   bool referenceSearch, s64 searchThreads)
{
    if (name == "cmswitch")
        return makeCmSwitchCompiler(chip, referenceSearch, searchThreads);
    if (name == "cim-mlc")
        return makeCimMlcCompiler(chip, referenceSearch, searchThreads);
    if (name == "occ")
        return makeOccCompiler(chip, referenceSearch, searchThreads);
    if (name == "puma")
        return makePumaCompiler(chip, referenceSearch, searchThreads);
    cmswitch_fatal("unknown compiler '", name, "'");
}

} // namespace cmswitch
