#include "baselines/baseline.hpp"

#include "support/logging.hpp"

namespace cmswitch {

std::unique_ptr<Compiler>
makeCmSwitchCompiler(ChipConfig chip, bool referenceSearch)
{
    CmSwitchOptions options;
    options.segmenter.referenceSearch = referenceSearch;
    return std::make_unique<CmSwitchCompiler>(std::move(chip), options,
                                              "cmswitch");
}

std::vector<std::unique_ptr<Compiler>>
makeAllCompilers(const ChipConfig &chip)
{
    std::vector<std::unique_ptr<Compiler>> out;
    out.push_back(makePumaCompiler(chip));
    out.push_back(makeOccCompiler(chip));
    out.push_back(makeCimMlcCompiler(chip));
    out.push_back(makeCmSwitchCompiler(chip));
    return out;
}

std::unique_ptr<Compiler>
makeCompilerByName(const std::string &name, const ChipConfig &chip,
                   bool referenceSearch)
{
    if (name == "cmswitch")
        return makeCmSwitchCompiler(chip, referenceSearch);
    if (name == "cim-mlc")
        return makeCimMlcCompiler(chip, referenceSearch);
    if (name == "occ")
        return makeOccCompiler(chip, referenceSearch);
    if (name == "puma")
        return makePumaCompiler(chip, referenceSearch);
    cmswitch_fatal("unknown compiler '", name, "'");
}

} // namespace cmswitch
