#include "baselines/baseline.hpp"

namespace cmswitch {

std::unique_ptr<Compiler>
makeCmSwitchCompiler(ChipConfig chip)
{
    return std::make_unique<CmSwitchCompiler>(std::move(chip),
                                              CmSwitchOptions{}, "cmswitch");
}

std::vector<std::unique_ptr<Compiler>>
makeAllCompilers(const ChipConfig &chip)
{
    std::vector<std::unique_ptr<Compiler>> out;
    out.push_back(makePumaCompiler(chip));
    out.push_back(makeOccCompiler(chip));
    out.push_back(makeCimMlcCompiler(chip));
    out.push_back(makeCmSwitchCompiler(chip));
    return out;
}

} // namespace cmswitch
