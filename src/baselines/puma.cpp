#include "baselines/baseline.hpp"

namespace cmswitch {

std::unique_ptr<Compiler>
makePumaCompiler(ChipConfig chip, bool referenceSearch, s64 searchThreads)
{
    CmSwitchOptions options;
    options.segmenter.referenceSearch = referenceSearch;
    options.segmenter.searchThreads = searchThreads;
    options.segmenter.useDp = false; // greedy max-fill segmentation
    options.segmenter.livenessAwareWriteback = false;
    options.segmenter.alloc.allowMemoryMode = false;
    options.segmenter.alloc.allowDuplication = true;
    options.segmenter.alloc.pipelined = false; // serial operator issue
    return std::make_unique<CmSwitchCompiler>(std::move(chip), options,
                                              "puma");
}

} // namespace cmswitch
