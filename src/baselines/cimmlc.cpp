#include "baselines/baseline.hpp"

namespace cmswitch {

std::unique_ptr<Compiler>
makeCimMlcCompiler(ChipConfig chip, bool referenceSearch,
                   s64 searchThreads)
{
    CmSwitchOptions options;
    options.segmenter.referenceSearch = referenceSearch;
    options.segmenter.searchThreads = searchThreads;
    options.segmenter.useDp = false; // greedy max-fill segmentation
    options.segmenter.livenessAwareWriteback = true;
    options.segmenter.alloc.allowMemoryMode = false; // fixed compute mode
    options.segmenter.alloc.allowDuplication = true;
    options.segmenter.alloc.pipelined = true; // multi-grained pipelining
    return std::make_unique<CmSwitchCompiler>(std::move(chip), options,
                                              "cim-mlc");
}

} // namespace cmswitch
