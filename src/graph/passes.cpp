#include "graph/passes.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/logging.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

void
PassStats::writeBinary(BinaryWriter &w) const
{
    w.writeS64(removedOps);
    w.writeS64(removedTensors);
}

PassStats
PassStats::readBinary(BinaryReader &r)
{
    PassStats stats;
    stats.removedOps = r.readS64();
    stats.removedTensors = r.readS64();
    return stats;
}

namespace {

/** Rebuild @p graph keeping only ops whose id satisfies @p keep_op;
 *  unreferenced tensors are dropped. Returns removal stats. */
PassStats
rebuildGraph(Graph *graph, const std::vector<bool> &keep_op)
{
    const Graph &old = *graph;
    std::vector<bool> tensor_used(static_cast<std::size_t>(old.numTensors()),
                                  false);
    for (const Operator &op : old.ops()) {
        if (!keep_op[static_cast<std::size_t>(op.id)])
            continue;
        for (TensorId t : op.inputs)
            tensor_used[static_cast<std::size_t>(t)] = true;
        for (TensorId t : op.outputs)
            tensor_used[static_cast<std::size_t>(t)] = true;
    }
    // Network outputs survive even when produced by removed ops; graph
    // inputs survive if referenced.
    for (TensorId t = 0; t < old.numTensors(); ++t) {
        if (old.tensor(t).kind == TensorKind::kOutput)
            tensor_used[static_cast<std::size_t>(t)] = true;
    }

    Graph rebuilt(old.name());
    std::vector<TensorId> remap(static_cast<std::size_t>(old.numTensors()),
                                kInvalidTensor);
    s64 removed_tensors = 0;
    for (TensorId t = 0; t < old.numTensors(); ++t) {
        if (!tensor_used[static_cast<std::size_t>(t)]) {
            ++removed_tensors;
            continue;
        }
        const TensorDesc &d = old.tensor(t);
        remap[static_cast<std::size_t>(t)] =
            rebuilt.addTensor(d.name, d.shape, d.dtype, d.kind);
    }
    s64 removed_ops = 0;
    for (const Operator &op : old.ops()) {
        if (!keep_op[static_cast<std::size_t>(op.id)]) {
            ++removed_ops;
            continue;
        }
        Operator copy = op;
        copy.id = kInvalidOp;
        for (TensorId &t : copy.inputs)
            t = remap[static_cast<std::size_t>(t)];
        for (TensorId &t : copy.outputs)
            t = remap[static_cast<std::size_t>(t)];
        rebuilt.addOp(std::move(copy));
    }
    *graph = std::move(rebuilt);
    return PassStats{removed_ops, removed_tensors};
}

} // namespace

PassStats
eliminateDeadOps(Graph *graph)
{
    const Graph &g = *graph;
    // Mark live ops backwards from network outputs.
    std::vector<bool> live(static_cast<std::size_t>(g.numOps()), false);
    std::vector<OpId> stack;
    for (TensorId t = 0; t < g.numTensors(); ++t) {
        if (g.tensor(t).kind != TensorKind::kOutput)
            continue;
        if (auto producer = g.producerOf(t))
            stack.push_back(*producer);
    }
    while (!stack.empty()) {
        OpId id = stack.back();
        stack.pop_back();
        if (live[static_cast<std::size_t>(id)])
            continue;
        live[static_cast<std::size_t>(id)] = true;
        for (TensorId t : g.op(id).inputs) {
            if (auto producer = g.producerOf(t))
                stack.push_back(*producer);
        }
    }
    // Graphs without any kOutput tensor keep everything (common for
    // ad-hoc test graphs); treat them as all-live.
    if (std::none_of(live.begin(), live.end(), [](bool b) { return b; }))
        return PassStats{};
    return rebuildGraph(graph, live);
}

PassStats
foldReshapeChains(Graph *graph)
{
    const Graph &g = *graph;

    // source[t]: the tensor a reshape chain rooted at t ultimately
    // reads from (t itself when no upstream reshape exists).
    std::vector<TensorId> source(static_cast<std::size_t>(g.numTensors()));
    for (TensorId t = 0; t < g.numTensors(); ++t)
        source[static_cast<std::size_t>(t)] = t;

    // Collect per-reshape input rewires in topological order, so a
    // chain r1 -> r2 -> r3 collapses onto r1's source transitively.
    std::vector<TensorId> rewired_input(
        static_cast<std::size_t>(g.numOps()), kInvalidTensor);
    bool changed = false;
    for (OpId id : g.topoOrder()) {
        const Operator &op = g.op(id);
        if (op.kind != OpKind::kReshape)
            continue;
        TensorId in = op.inputs[0];
        auto producer = g.producerOf(in);
        if (producer && g.op(*producer).kind == OpKind::kReshape) {
            TensorId src =
                source[static_cast<std::size_t>(g.op(*producer).inputs[0])];
            rewired_input[static_cast<std::size_t>(id)] = src;
            source[static_cast<std::size_t>(op.outputs[0])] = src;
            changed = true;
        } else {
            source[static_cast<std::size_t>(op.outputs[0])] =
                source[static_cast<std::size_t>(in)];
        }
    }
    if (!changed)
        return PassStats{};

    // Rebuild with the rewires applied; bypassed reshapes become dead.
    Graph rebuilt(g.name());
    for (TensorId t = 0; t < g.numTensors(); ++t) {
        const TensorDesc &d = g.tensor(t);
        rebuilt.addTensor(d.name, d.shape, d.dtype, d.kind);
    }
    for (const Operator &op : g.ops()) {
        Operator copy = op;
        copy.id = kInvalidOp;
        TensorId rw = rewired_input[static_cast<std::size_t>(op.id)];
        if (rw != kInvalidTensor)
            copy.inputs[0] = rw;
        rebuilt.addOp(std::move(copy));
    }
    *graph = std::move(rebuilt);
    return eliminateDeadOps(graph);
}

PassStats
runFrontendPasses(Graph *graph)
{
    obs::ScopedPhase phase(obs::Hist::kPhasePasses, "frontend_passes",
                           "graph");
    PassStats total;
    {
        obs::Span span("pass.fold_reshape_chains", "graph");
        total = foldReshapeChains(graph);
    }
    PassStats dead;
    {
        obs::Span span("pass.eliminate_dead_ops", "graph");
        dead = eliminateDeadOps(graph);
    }
    total.removedOps += dead.removedOps;
    total.removedTensors += dead.removedTensors;
    graph->validate();
    phase.arg("removed_ops", total.removedOps);
    phase.arg("removed_tensors", total.removedTensors);
    return total;
}

} // namespace cmswitch
