/**
 * @file
 * Operator definitions for the computation-graph IR.
 *
 * CIM-supportable operators (Conv2D / DepthwiseConv2D / MatMul /
 * DynMatMul) can be lowered to matrix-vector products on CIM arrays;
 * everything else runs on the chip's vector function unit and rides
 * along with the preceding CIM operator during scheduling.
 */

#ifndef CMSWITCH_GRAPH_OP_HPP
#define CMSWITCH_GRAPH_OP_HPP

#include <string>
#include <vector>

#include "graph/tensor.hpp"
#include "support/common.hpp"

namespace cmswitch {

using OpId = s32;
constexpr OpId kInvalidOp = -1;

/** Operator kinds recognised by the compiler and simulators. */
enum class OpKind {
    // CIM-supportable (mapped to arrays).
    kConv2d,          ///< standard convolution (im2col-unrolled to MMM)
    kDepthwiseConv2d, ///< per-channel convolution
    kMatMul,          ///< activation x static weight (FC / projections)
    kDynMatMul,       ///< activation x activation (QK^T, S*V); the
                      ///< stationary operand is written at runtime
    // Function-unit operators.
    kSoftmax,
    kLayerNorm,
    kActivation,      ///< ReLU / GeLU / SiLU... (attr activationName)
    kElementwiseAdd,
    kElementwiseMul,
    kPool,            ///< max/avg pooling (attr kernel/stride)
    kEmbedding,       ///< token embedding lookup
    kReshape,         ///< metadata-only data movement
    kConcat,
};

const char *opKindName(OpKind kind);

/** True if @p kind executes on CIM arrays (is "CIM-supportable"). */
bool isCimKind(OpKind kind);

/**
 * Workload-role tags used by the arithmetic-intensity breakdowns of
 * Fig. 6(b) and the allocation demonstrations of Fig. 15.
 */
enum class OpClass {
    kOther,
    kMhaQkvProj,  ///< Q/K/V generation projections
    kMhaOutProj,  ///< attention output projection ("MHA (FC)")
    kAttnScore,   ///< Q x K^T
    kAttnContext, ///< softmax(S) x V
    kFfn,         ///< feed-forward fully-connected layers
    kConv,        ///< convolution layers
    kClassifier,  ///< final FC classifier
};

const char *opClassName(OpClass cls);

/** Convolution / pooling attributes (unused fields stay at defaults). */
struct ConvAttrs
{
    s64 kernelH = 1;
    s64 kernelW = 1;
    s64 strideH = 1;
    s64 strideW = 1;
    s64 padH = 0;
    s64 padW = 0;
    s64 groups = 1;
};

/**
 * One node of the computation graph. Inputs/outputs are tensor ids into
 * the owning Graph. For kMatMul, inputs = {activation, weight}; for
 * kDynMatMul, inputs = {moving operand, stationary operand}.
 */
struct Operator
{
    OpId id = kInvalidOp;
    std::string name;
    OpKind kind = OpKind::kMatMul;
    OpClass cls = OpClass::kOther;
    std::vector<TensorId> inputs;
    std::vector<TensorId> outputs;
    ConvAttrs conv;
    std::string activationName; ///< for kActivation

    bool isCim() const { return isCimKind(kind); }
};

} // namespace cmswitch

#endif // CMSWITCH_GRAPH_OP_HPP
