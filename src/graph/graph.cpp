#include "graph/graph.hpp"

#include <algorithm>
#include <queue>

#include "support/logging.hpp"

namespace cmswitch {

Graph::Graph(std::string name)
    : name_(std::move(name))
{
}

TensorId
Graph::addTensor(const std::string &name, Shape shape, DType dtype,
                 TensorKind kind)
{
    TensorId id = static_cast<TensorId>(tensors_.size());
    tensors_.push_back(TensorDesc{name, std::move(shape), dtype, kind});
    producer_.push_back(kInvalidOp);
    consumers_.emplace_back();
    return id;
}

OpId
Graph::addOp(Operator op)
{
    OpId id = static_cast<OpId>(ops_.size());
    op.id = id;
    for (TensorId t : op.inputs) {
        cmswitch_assert(t >= 0 && t < numTensors(),
                        "op ", op.name, " references missing input tensor");
        consumers_[static_cast<std::size_t>(t)].push_back(id);
    }
    for (TensorId t : op.outputs) {
        cmswitch_assert(t >= 0 && t < numTensors(),
                        "op ", op.name, " references missing output tensor");
        cmswitch_assert(producer_[static_cast<std::size_t>(t)] == kInvalidOp,
                        "tensor ", tensors_[static_cast<std::size_t>(t)].name,
                        " has two producers");
        producer_[static_cast<std::size_t>(t)] = id;
    }
    ops_.push_back(std::move(op));
    return id;
}

const TensorDesc &
Graph::tensor(TensorId id) const
{
    return tensors_.at(static_cast<std::size_t>(id));
}

TensorDesc &
Graph::tensor(TensorId id)
{
    return tensors_.at(static_cast<std::size_t>(id));
}

const Operator &
Graph::op(OpId id) const
{
    return ops_.at(static_cast<std::size_t>(id));
}

Operator &
Graph::op(OpId id)
{
    return ops_.at(static_cast<std::size_t>(id));
}

std::optional<OpId>
Graph::producerOf(TensorId id) const
{
    OpId p = producer_.at(static_cast<std::size_t>(id));
    if (p == kInvalidOp)
        return std::nullopt;
    return p;
}

std::vector<OpId>
Graph::consumersOf(TensorId id) const
{
    return consumers_.at(static_cast<std::size_t>(id));
}

bool
Graph::directlyFeeds(OpId a, OpId b) const
{
    const Operator &src = op(a);
    const Operator &dst = op(b);
    for (TensorId out : src.outputs)
        for (TensorId in : dst.inputs)
            if (out == in)
                return true;
    return false;
}

std::vector<OpId>
Graph::topoOrder() const
{
    std::vector<s64> indegree(ops_.size(), 0);
    for (const Operator &o : ops_) {
        for (TensorId t : o.inputs) {
            if (producer_[static_cast<std::size_t>(t)] != kInvalidOp)
                ++indegree[static_cast<std::size_t>(o.id)];
        }
    }

    // Min-heap on op id keeps the order stable/deterministic.
    std::priority_queue<OpId, std::vector<OpId>, std::greater<OpId>> ready;
    for (const Operator &o : ops_) {
        if (indegree[static_cast<std::size_t>(o.id)] == 0)
            ready.push(o.id);
    }

    std::vector<OpId> order;
    order.reserve(ops_.size());
    while (!ready.empty()) {
        OpId id = ready.top();
        ready.pop();
        order.push_back(id);
        for (TensorId out : op(id).outputs) {
            for (OpId consumer : consumers_[static_cast<std::size_t>(out)]) {
                if (--indegree[static_cast<std::size_t>(consumer)] == 0)
                    ready.push(consumer);
            }
        }
    }
    cmswitch_assert(order.size() == ops_.size(),
                    "graph ", name_, " contains a cycle");
    return order;
}

std::vector<OpId>
Graph::cimOps() const
{
    std::vector<OpId> out;
    for (OpId id : topoOrder())
        if (op(id).isCim())
            out.push_back(id);
    return out;
}

void
Graph::validate() const
{
    for (const Operator &o : ops_) {
        cmswitch_assert(!o.outputs.empty(), "op ", o.name, " has no outputs");
        for (TensorId t : o.inputs)
            cmswitch_assert(t >= 0 && t < numTensors(), "bad input id");
        for (TensorId t : o.outputs)
            cmswitch_assert(t >= 0 && t < numTensors(), "bad output id");
    }
    topoOrder(); // panics on cycles
}

s64
Graph::totalWeightBytes() const
{
    s64 total = 0;
    for (const TensorDesc &t : tensors_)
        if (t.kind == TensorKind::kWeight)
            total += t.bytes();
    return total;
}

} // namespace cmswitch
