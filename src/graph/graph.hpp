/**
 * @file
 * Computation-graph container: tensors + operators + dependency queries.
 * Stands in for the ONNX graph the paper lowers networks into.
 */

#ifndef CMSWITCH_GRAPH_GRAPH_HPP
#define CMSWITCH_GRAPH_GRAPH_HPP

#include <optional>
#include <string>
#include <vector>

#include "graph/op.hpp"
#include "graph/tensor.hpp"

namespace cmswitch {

/**
 * A DAG of operators over tensors. Tensors have exactly one producer
 * (or none, for graph inputs/weights) and any number of consumers.
 */
class Graph
{
  public:
    explicit Graph(std::string name = "graph");

    const std::string &name() const { return name_; }

    /** @{ Construction API (used by the model zoo and tests). */
    TensorId addTensor(const std::string &name, Shape shape,
                       DType dtype = DType::kInt8,
                       TensorKind kind = TensorKind::kActivation);
    OpId addOp(Operator op);
    /** @} */

    /** @{ Element access. */
    const TensorDesc &tensor(TensorId id) const;
    TensorDesc &tensor(TensorId id);
    const Operator &op(OpId id) const;
    Operator &op(OpId id);
    s64 numTensors() const { return static_cast<s64>(tensors_.size()); }
    s64 numOps() const { return static_cast<s64>(ops_.size()); }
    const std::vector<Operator> &ops() const { return ops_; }
    /** @} */

    /** Producer of @p id, if any op outputs it. */
    std::optional<OpId> producerOf(TensorId id) const;

    /** All ops consuming @p id as input. */
    std::vector<OpId> consumersOf(TensorId id) const;

    /** True if some output of @p a feeds an input of @p b. */
    bool directlyFeeds(OpId a, OpId b) const;

    /**
     * Operators in a topological order (stable: ties broken by insertion
     * order, which matches network layer order for the model zoo).
     * panics if the graph has a cycle.
     */
    std::vector<OpId> topoOrder() const;

    /** Topologically ordered CIM-supportable operators only. */
    std::vector<OpId> cimOps() const;

    /**
     * Checks structural invariants: tensor ids in range, every op output
     * produced exactly once, acyclicity. panics on violation.
     */
    void validate() const;

    /** Sum of all kWeight tensor bytes. */
    s64 totalWeightBytes() const;

  private:
    std::string name_;
    std::vector<TensorDesc> tensors_;
    std::vector<Operator> ops_;
    std::vector<OpId> producer_;               // per tensor
    std::vector<std::vector<OpId>> consumers_; // per tensor
};

} // namespace cmswitch

#endif // CMSWITCH_GRAPH_GRAPH_HPP
