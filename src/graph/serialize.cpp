#include "graph/serialize.hpp"

#include <sstream>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

std::string
shapeToText(const Shape &shape)
{
    std::string out;
    for (s64 i = 0; i < shape.rank(); ++i) {
        if (i > 0)
            out += 'x';
        out += std::to_string(shape.dim(i));
    }
    return out.empty() ? "scalar" : out;
}

Shape
shapeFromText(const std::string &text)
{
    if (text == "scalar")
        return Shape{};
    std::vector<s64> dims;
    for (const std::string &part : split(text, 'x'))
        dims.push_back(std::stoll(part));
    return Shape(std::move(dims));
}

DType
dtypeFromText(const std::string &text)
{
    if (text == "int8")
        return DType::kInt8;
    if (text == "int32")
        return DType::kInt32;
    if (text == "float32")
        return DType::kFloat32;
    cmswitch_fatal("unknown dtype '", text, "'");
}

TensorKind
kindFromText(const std::string &text)
{
    if (text == "input")
        return TensorKind::kInput;
    if (text == "weight")
        return TensorKind::kWeight;
    if (text == "activation")
        return TensorKind::kActivation;
    if (text == "output")
        return TensorKind::kOutput;
    if (text == "kvcache")
        return TensorKind::kKvCache;
    cmswitch_fatal("unknown tensor kind '", text, "'");
}

OpKind
opKindFromText(const std::string &text)
{
    static const std::pair<const char *, OpKind> table[] = {
        {"conv2d", OpKind::kConv2d},
        {"dwconv2d", OpKind::kDepthwiseConv2d},
        {"matmul", OpKind::kMatMul},
        {"dynmatmul", OpKind::kDynMatMul},
        {"softmax", OpKind::kSoftmax},
        {"layernorm", OpKind::kLayerNorm},
        {"activation", OpKind::kActivation},
        {"add", OpKind::kElementwiseAdd},
        {"mul", OpKind::kElementwiseMul},
        {"pool", OpKind::kPool},
        {"embedding", OpKind::kEmbedding},
        {"reshape", OpKind::kReshape},
        {"concat", OpKind::kConcat},
    };
    for (const auto &[name, kind] : table)
        if (text == name)
            return kind;
    cmswitch_fatal("unknown op kind '", text, "'");
}

OpClass
opClassFromText(const std::string &text)
{
    static const std::pair<const char *, OpClass> table[] = {
        {"Other", OpClass::kOther},
        {"MHA(QKV)", OpClass::kMhaQkvProj},
        {"MHA(FC)", OpClass::kMhaOutProj},
        {"AttnScore", OpClass::kAttnScore},
        {"AttnContext", OpClass::kAttnContext},
        {"FFN(FC)", OpClass::kFfn},
        {"Conv", OpClass::kConv},
        {"Classifier", OpClass::kClassifier},
    };
    for (const auto &[name, cls] : table)
        if (text == name)
            return cls;
    cmswitch_fatal("unknown op class '", text, "'");
}

std::string
idList(const std::vector<TensorId> &ids)
{
    std::vector<std::string> parts;
    parts.reserve(ids.size());
    for (TensorId id : ids)
        parts.push_back(std::to_string(id));
    return parts.empty() ? "-" : join(parts, ",");
}

std::vector<TensorId>
idListFromText(const std::string &text)
{
    std::vector<TensorId> out;
    if (text == "-")
        return out;
    for (const std::string &part : split(text, ','))
        out.push_back(static_cast<TensorId>(std::stol(part)));
    return out;
}

} // namespace

std::string
serializeGraph(const Graph &graph)
{
    std::ostringstream oss;
    oss << "graph " << graph.name() << '\n';
    for (TensorId t = 0; t < graph.numTensors(); ++t) {
        const TensorDesc &desc = graph.tensor(t);
        oss << "tensor " << t << ' ' << desc.name << ' '
            << tensorKindName(desc.kind) << ' ' << dtypeName(desc.dtype)
            << ' ' << shapeToText(desc.shape) << '\n';
    }
    for (const Operator &op : graph.ops()) {
        oss << "op " << op.id << ' ' << op.name << ' ' << opKindName(op.kind)
            << ' ' << opClassName(op.cls) << " in=" << idList(op.inputs)
            << " out=" << idList(op.outputs)
            << " conv=" << op.conv.kernelH << ',' << op.conv.kernelW << ','
            << op.conv.strideH << ',' << op.conv.strideW << ','
            << op.conv.padH << ',' << op.conv.padW << ',' << op.conv.groups
            << " act=" << (op.activationName.empty() ? "-" : op.activationName)
            << '\n';
    }
    return oss.str();
}

Graph
parseGraph(const std::string &text)
{
    std::istringstream iss(text);
    std::string line;
    Graph graph("parsed");
    bool have_header = false;

    while (std::getline(iss, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string tag;
        ls >> tag;
        if (tag == "graph") {
            std::string name;
            ls >> name;
            graph = Graph(name);
            have_header = true;
        } else if (tag == "tensor") {
            s64 id;
            std::string name, kind, dtype, shape;
            ls >> id >> name >> kind >> dtype >> shape;
            TensorId got = graph.addTensor(name, shapeFromText(shape),
                                           dtypeFromText(dtype),
                                           kindFromText(kind));
            cmswitch_fatal_if(got != id, "tensor ids must be dense");
        } else if (tag == "op") {
            s64 id;
            std::string name, kind, cls, in, out, conv, act;
            ls >> id >> name >> kind >> cls >> in >> out >> conv >> act;
            Operator op;
            op.name = name;
            op.kind = opKindFromText(kind);
            op.cls = opClassFromText(cls);
            cmswitch_fatal_if(!startsWith(in, "in="), "expected in= field");
            cmswitch_fatal_if(!startsWith(out, "out="), "expected out= field");
            cmswitch_fatal_if(!startsWith(conv, "conv="), "expected conv=");
            cmswitch_fatal_if(!startsWith(act, "act="), "expected act=");
            op.inputs = idListFromText(in.substr(3));
            op.outputs = idListFromText(out.substr(4));
            auto conv_fields = split(conv.substr(5), ',');
            cmswitch_fatal_if(conv_fields.size() != 7, "conv= needs 7 fields");
            op.conv.kernelH = std::stoll(conv_fields[0]);
            op.conv.kernelW = std::stoll(conv_fields[1]);
            op.conv.strideH = std::stoll(conv_fields[2]);
            op.conv.strideW = std::stoll(conv_fields[3]);
            op.conv.padH = std::stoll(conv_fields[4]);
            op.conv.padW = std::stoll(conv_fields[5]);
            op.conv.groups = std::stoll(conv_fields[6]);
            std::string act_name = act.substr(4);
            if (act_name != "-")
                op.activationName = act_name;
            OpId got = graph.addOp(std::move(op));
            cmswitch_fatal_if(got != id, "op ids must be dense");
        } else {
            cmswitch_fatal("unknown line tag '", tag, "'");
        }
    }
    cmswitch_fatal_if(!have_header, "missing 'graph' header line");
    return graph;
}

} // namespace cmswitch
