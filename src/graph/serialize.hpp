/**
 * @file
 * Line-oriented textual (de)serialisation of graphs. This is the repo's
 * stand-in for the ONNX interchange step of the paper's frontend: models
 * can be dumped, inspected, diffed, and re-imported losslessly.
 */

#ifndef CMSWITCH_GRAPH_SERIALIZE_HPP
#define CMSWITCH_GRAPH_SERIALIZE_HPP

#include <string>

#include "graph/graph.hpp"

namespace cmswitch {

/** Serialise @p graph to the textual exchange format. */
std::string serializeGraph(const Graph &graph);

/** Parse a graph back from text produced by serializeGraph(). fatals on
 *  malformed input (user error, not an internal bug). */
Graph parseGraph(const std::string &text);

} // namespace cmswitch

#endif // CMSWITCH_GRAPH_SERIALIZE_HPP
