/**
 * @file
 * Tensor descriptors for the computation-graph IR. Only metadata lives
 * here (name/shape/dtype/kind); actual values are owned by the
 * functional simulator.
 */

#ifndef CMSWITCH_GRAPH_TENSOR_HPP
#define CMSWITCH_GRAPH_TENSOR_HPP

#include <string>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

/** Element types supported by the IR; the chip computes in int8/int32. */
enum class DType { kInt8, kInt32, kFloat32 };

/** Bytes per element of @p dtype. */
s64 dtypeSize(DType dtype);

/** Printable name ("int8", ...). */
const char *dtypeName(DType dtype);

/** Role a tensor plays in the graph; drives traffic accounting. */
enum class TensorKind {
    kInput,      ///< network input (streamed from main memory)
    kWeight,     ///< static parameter (pre-determined, mappable to arrays)
    kActivation, ///< intermediate produced/consumed on-chip when possible
    kOutput,     ///< network output (must be written back)
    kKvCache,    ///< persistent decode-time key/value cache entry
};

const char *tensorKindName(TensorKind kind);

/** Dense row-major shape. An empty shape denotes a scalar. */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<s64> dims) : dims_(dims) {}
    explicit Shape(std::vector<s64> dims) : dims_(std::move(dims)) {}

    s64 rank() const { return static_cast<s64>(dims_.size()); }
    s64 dim(s64 i) const { return dims_.at(static_cast<std::size_t>(i)); }
    const std::vector<s64> &dims() const { return dims_; }

    /** Product of all dims (1 for scalars). */
    s64 numElements() const;

    /** Product of all dims except the last (the "row count" of a matmul). */
    s64 leadingElements() const;

    /** Last dimension, or 1 for scalars. */
    s64 lastDim() const;

    std::string toString() const;

    bool operator==(const Shape &other) const { return dims_ == other.dims_; }

  private:
    std::vector<s64> dims_;
};

using TensorId = s32;
constexpr TensorId kInvalidTensor = -1;

/** Metadata record for one tensor in a Graph. */
struct TensorDesc
{
    std::string name;
    Shape shape;
    DType dtype = DType::kInt8;
    TensorKind kind = TensorKind::kActivation;

    /** Total size in bytes. */
    s64 bytes() const { return shape.numElements() * dtypeSize(dtype); }
};

} // namespace cmswitch

#endif // CMSWITCH_GRAPH_TENSOR_HPP
