#include "graph/op.hpp"

#include "support/logging.hpp"

namespace cmswitch {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::kConv2d: return "conv2d";
      case OpKind::kDepthwiseConv2d: return "dwconv2d";
      case OpKind::kMatMul: return "matmul";
      case OpKind::kDynMatMul: return "dynmatmul";
      case OpKind::kSoftmax: return "softmax";
      case OpKind::kLayerNorm: return "layernorm";
      case OpKind::kActivation: return "activation";
      case OpKind::kElementwiseAdd: return "add";
      case OpKind::kElementwiseMul: return "mul";
      case OpKind::kPool: return "pool";
      case OpKind::kEmbedding: return "embedding";
      case OpKind::kReshape: return "reshape";
      case OpKind::kConcat: return "concat";
    }
    cmswitch_panic("unknown op kind");
}

bool
isCimKind(OpKind kind)
{
    switch (kind) {
      case OpKind::kConv2d:
      case OpKind::kDepthwiseConv2d:
      case OpKind::kMatMul:
      case OpKind::kDynMatMul:
        return true;
      default:
        return false;
    }
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::kOther: return "Other";
      case OpClass::kMhaQkvProj: return "MHA(QKV)";
      case OpClass::kMhaOutProj: return "MHA(FC)";
      case OpClass::kAttnScore: return "AttnScore";
      case OpClass::kAttnContext: return "AttnContext";
      case OpClass::kFfn: return "FFN(FC)";
      case OpClass::kConv: return "Conv";
      case OpClass::kClassifier: return "Classifier";
    }
    cmswitch_panic("unknown op class");
}

} // namespace cmswitch
