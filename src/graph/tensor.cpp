#include "graph/tensor.hpp"

#include <sstream>

#include "support/logging.hpp"

namespace cmswitch {

s64
dtypeSize(DType dtype)
{
    switch (dtype) {
      case DType::kInt8: return 1;
      case DType::kInt32: return 4;
      case DType::kFloat32: return 4;
    }
    cmswitch_panic("unknown dtype");
}

const char *
dtypeName(DType dtype)
{
    switch (dtype) {
      case DType::kInt8: return "int8";
      case DType::kInt32: return "int32";
      case DType::kFloat32: return "float32";
    }
    cmswitch_panic("unknown dtype");
}

const char *
tensorKindName(TensorKind kind)
{
    switch (kind) {
      case TensorKind::kInput: return "input";
      case TensorKind::kWeight: return "weight";
      case TensorKind::kActivation: return "activation";
      case TensorKind::kOutput: return "output";
      case TensorKind::kKvCache: return "kvcache";
    }
    cmswitch_panic("unknown tensor kind");
}

s64
Shape::numElements() const
{
    s64 n = 1;
    for (s64 d : dims_)
        n *= d;
    return n;
}

s64
Shape::leadingElements() const
{
    if (dims_.empty())
        return 1;
    s64 n = 1;
    for (std::size_t i = 0; i + 1 < dims_.size(); ++i)
        n *= dims_[i];
    return n;
}

s64
Shape::lastDim() const
{
    return dims_.empty() ? 1 : dims_.back();
}

std::string
Shape::toString() const
{
    std::ostringstream oss;
    oss << '[';
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0)
            oss << 'x';
        oss << dims_[i];
    }
    oss << ']';
    return oss.str();
}

} // namespace cmswitch
