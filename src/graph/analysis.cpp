#include "graph/analysis.hpp"

#include <map>

#include "support/logging.hpp"

namespace cmswitch {

namespace {

/** Sum of input tensor bytes excluding the stationary operand index. */
s64
movingInputBytes(const Graph &graph, const Operator &op, s64 stationary_idx)
{
    s64 total = 0;
    for (std::size_t i = 0; i < op.inputs.size(); ++i) {
        if (static_cast<s64>(i) == stationary_idx)
            continue;
        total += graph.tensor(op.inputs[i]).bytes();
    }
    return total;
}

s64
outputBytes(const Graph &graph, const Operator &op)
{
    s64 total = 0;
    for (TensorId t : op.outputs)
        total += graph.tensor(t).bytes();
    return total;
}

} // namespace

double
OpProfile::aiMacsPerByte() const
{
    s64 traffic = trafficBytes();
    if (traffic <= 0)
        return 0.0;
    return static_cast<double>(macs) / static_cast<double>(traffic);
}

OpProfile
profileOp(const Graph &graph, OpId id)
{
    const Operator &op = graph.op(id);
    OpProfile p;

    switch (op.kind) {
      case OpKind::kConv2d: {
        cmswitch_assert(op.inputs.size() >= 2, "conv needs input+weight");
        const TensorDesc &in = graph.tensor(op.inputs[0]);
        const TensorDesc &w = graph.tensor(op.inputs[1]);
        const TensorDesc &out = graph.tensor(op.outputs[0]);
        cmswitch_assert(in.shape.rank() == 4 && out.shape.rank() == 4,
                        "conv expects NCHW tensors: ", op.name);
        s64 in_c = in.shape.dim(1);
        s64 macs_per_out = (in_c / op.conv.groups)
                         * op.conv.kernelH * op.conv.kernelW;
        p.macs = out.shape.numElements() * macs_per_out;
        p.weightBytes = w.bytes();
        p.inputBytes = movingInputBytes(graph, op, 1);
        p.outputBytes = outputBytes(graph, op);
        p.weightRows = macs_per_out;
        p.weightCols = out.shape.dim(1); // out channels
        p.weightCopies = 1;
        break;
      }
      case OpKind::kDepthwiseConv2d: {
        cmswitch_assert(op.inputs.size() >= 2, "dwconv needs input+weight");
        const TensorDesc &w = graph.tensor(op.inputs[1]);
        const TensorDesc &out = graph.tensor(op.outputs[0]);
        s64 macs_per_out = op.conv.kernelH * op.conv.kernelW;
        p.macs = out.shape.numElements() * macs_per_out;
        p.weightBytes = w.bytes();
        p.inputBytes = movingInputBytes(graph, op, 1);
        p.outputBytes = outputBytes(graph, op);
        // Each channel has an independent kh*kw column.
        p.weightRows = macs_per_out;
        p.weightCols = out.shape.dim(1);
        p.weightCopies = 1;
        break;
      }
      case OpKind::kMatMul:
      case OpKind::kDynMatMul: {
        cmswitch_assert(op.inputs.size() == 2,
                        "matmul expects exactly two inputs: ", op.name);
        const TensorDesc &a = graph.tensor(op.inputs[0]);
        const TensorDesc &b = graph.tensor(op.inputs[1]);
        const TensorDesc &out = graph.tensor(op.outputs[0]);
        cmswitch_assert(b.shape.rank() >= 2, "stationary operand rank >= 2");
        s64 shared = b.shape.dim(b.shape.rank() - 2);
        s64 cols = b.shape.lastDim();
        cmswitch_assert(a.shape.lastDim() == shared,
                        "matmul dim mismatch in ", op.name, ": ",
                        a.shape.toString(), " x ", b.shape.toString());
        p.macs = out.shape.numElements() * shared;
        p.weightBytes = b.bytes();
        p.inputBytes = movingInputBytes(graph, op, 1);
        p.outputBytes = outputBytes(graph, op);
        p.weightRows = shared;
        p.weightCols = cols;
        s64 copies = 1;
        for (s64 d = 0; d + 2 < b.shape.rank(); ++d)
            copies *= b.shape.dim(d);
        p.weightCopies = copies;
        break;
      }
      case OpKind::kEmbedding: {
        // A gather: traffic is the rows fetched, not the whole table.
        p.outputBytes = outputBytes(graph, op);
        p.inputBytes = p.outputBytes;
        p.vectorElems = graph.tensor(op.outputs[0]).shape.numElements();
        break;
      }
      default: {
        // Function-unit operator: elementwise work over the output.
        p.inputBytes = movingInputBytes(graph, op, -1);
        p.outputBytes = outputBytes(graph, op);
        p.vectorElems = graph.tensor(op.outputs[0]).shape.numElements();
        break;
      }
    }
    return p;
}

GraphProfile
profileGraph(const Graph &graph)
{
    GraphProfile g;
    for (const Operator &op : graph.ops()) {
        OpProfile p = profileOp(graph, op.id);
        g.totalMacs += p.macs;
        g.totalTraffic += p.trafficBytes();
        g.totalWeightBytes += p.weightBytes;
        if (op.isCim())
            ++g.cimOpCount;
    }
    return g;
}

double
GraphProfile::aiFlopsPerByte() const
{
    if (totalTraffic <= 0)
        return 0.0;
    return 2.0 * static_cast<double>(totalMacs)
               / static_cast<double>(totalTraffic);
}

double
ClassProfile::aiFlopsPerByte() const
{
    if (traffic <= 0)
        return 0.0;
    return 2.0 * static_cast<double>(macs) / static_cast<double>(traffic);
}

std::vector<ClassProfile>
profileByClass(const Graph &graph)
{
    std::map<OpClass, ClassProfile> acc;
    for (const Operator &op : graph.ops()) {
        OpProfile p = profileOp(graph, op.id);
        ClassProfile &c = acc[op.cls];
        c.cls = op.cls;
        c.macs += p.macs;
        c.traffic += p.trafficBytes();
    }
    std::vector<ClassProfile> out;
    for (auto &[cls, prof] : acc)
        out.push_back(prof);
    return out;
}

} // namespace cmswitch
