/**
 * @file
 * Workload analysis over the graph IR: MAC counts, memory traffic and
 * arithmetic intensity per operator and per network. These quantities
 * feed the latency model (Eq. 10) and reproduce Figs. 5(c) and 6.
 *
 * Arithmetic intensity follows the paper's FLOPs-per-memory-operation
 * definition: total traffic counts the operator's streamed inputs,
 * outputs, and (runtime- or load-time-) streamed weight bytes.
 */

#ifndef CMSWITCH_GRAPH_ANALYSIS_HPP
#define CMSWITCH_GRAPH_ANALYSIS_HPP

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace cmswitch {

/** Static workload profile of one operator. */
struct OpProfile
{
    s64 macs = 0;        ///< multiply-accumulate count (0 for FU ops)
    s64 weightBytes = 0; ///< stationary operand bytes (static or runtime)
    s64 inputBytes = 0;  ///< moving input activation bytes
    s64 outputBytes = 0; ///< produced bytes
    s64 vectorElems = 0; ///< function-unit elementwise work

    /** Logical weight matrix used by the mapper/tiler (CIM ops only). */
    s64 weightRows = 0;   ///< reduction dimension
    s64 weightCols = 0;   ///< output dimension
    s64 weightCopies = 1; ///< independent matrices (e.g. one per head)

    /** Total streamed bytes per execution of the operator. */
    s64 trafficBytes() const { return weightBytes + inputBytes + outputBytes; }

    /** MACs per streamed byte (used by Eq. 10). */
    double aiMacsPerByte() const;

    /** FLOPs (2x MACs) per streamed byte, the paper's plotted metric. */
    double aiFlopsPerByte() const { return 2.0 * aiMacsPerByte(); }
};

/** Compute the profile of @p id in @p graph. panics on malformed shapes. */
OpProfile profileOp(const Graph &graph, OpId id);

/** Whole-network aggregate used for Fig. 5(c). */
struct GraphProfile
{
    s64 totalMacs = 0;
    s64 totalTraffic = 0;
    s64 totalWeightBytes = 0;
    s64 cimOpCount = 0;

    double aiFlopsPerByte() const;
};

GraphProfile profileGraph(const Graph &graph);

/** Per-class MAC/traffic breakdown (Fig. 6(b) series). */
struct ClassProfile
{
    OpClass cls = OpClass::kOther;
    s64 macs = 0;
    s64 traffic = 0;

    double aiFlopsPerByte() const;
};

std::vector<ClassProfile> profileByClass(const Graph &graph);

} // namespace cmswitch

#endif // CMSWITCH_GRAPH_ANALYSIS_HPP
