/**
 * @file
 * Graph optimization passes run by the compiler frontend before
 * flattening (the "Preprocess" stage of paper Fig. 7): dead-operator
 * elimination and reshape-chain folding. Passes rebuild the graph
 * rather than mutate it, so ids stay dense.
 */

#ifndef CMSWITCH_GRAPH_PASSES_HPP
#define CMSWITCH_GRAPH_PASSES_HPP

#include "graph/graph.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;

/** Statistics returned by a pass run. */
struct PassStats
{
    s64 removedOps = 0;
    s64 removedTensors = 0;

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static PassStats readBinary(BinaryReader &r);
    /** @} */
};

/**
 * Remove operators whose outputs reach no network output (dead code
 * from model surgery). Tensors of kind kOutput are the roots.
 */
PassStats eliminateDeadOps(Graph *graph);

/**
 * Collapse chains of consecutive kReshape operators into a single
 * reshape (a -> r1 -> r2 -> b becomes a -> r -> b).
 */
PassStats foldReshapeChains(Graph *graph);

/** Run the standard pre-flattening pipeline; returns combined stats. */
PassStats runFrontendPasses(Graph *graph);

} // namespace cmswitch

#endif // CMSWITCH_GRAPH_PASSES_HPP
