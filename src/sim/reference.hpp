/**
 * @file
 * Reference functional executor: runs a graph directly (no tiling, no
 * hardware model) with deterministic int8/int32 quantised arithmetic.
 * Plays the role PyTorch plays in the paper's functional verification:
 * the CIM functional simulator must reproduce these values exactly.
 */

#ifndef CMSWITCH_SIM_REFERENCE_HPP
#define CMSWITCH_SIM_REFERENCE_HPP

#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "support/common.hpp"

namespace cmswitch {

/** Values for every tensor of a graph, int8 stored widened to s32. */
using TensorValues = std::map<TensorId, std::vector<s32>>;

/**
 * Deterministically materialise all graph inputs / weights / kv-cache
 * tensors from @p seed (same seed => same values everywhere).
 */
TensorValues seedTensors(const Graph &graph, u64 seed);

/** Shared quantisation: int32 accumulator -> int8 activation. */
s32 requantize(s64 accumulator);

/**
 * Execute every operator of @p graph in topological order, reading
 * missing inputs from @p values and inserting every produced tensor.
 */
void referenceExecute(const Graph &graph, TensorValues &values);

/** @{ Shared kernels (used by both the reference path and the tiled
 *  CIM functional simulator, so results agree bit-exactly). */
/** Execute one function-unit operator. */
void executeFuOp(const Graph &graph, const Operator &op, TensorValues &values);

/** Execute one CIM operator on the direct (untiled) path. */
void executeCimOpDirect(const Graph &graph, const Operator &op,
                        TensorValues &values);
/** @} */

} // namespace cmswitch

#endif // CMSWITCH_SIM_REFERENCE_HPP
