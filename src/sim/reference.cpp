#include "sim/reference.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "support/logging.hpp"
#include "support/random.hpp"

namespace cmswitch {

namespace {

/** Deterministic embedding entry so no giant table is materialised. */
s32
embeddingValue(s32 token, s64 dim)
{
    return ((static_cast<s64>(token) * 31 + dim * 7) % 17) - 8;
}

std::vector<s32> &
valuesOf(TensorValues &values, TensorId id)
{
    auto it = values.find(id);
    cmswitch_assert(it != values.end(), "tensor ", id, " has no value yet");
    return it->second;
}

std::vector<s32> &
makeOutput(const Graph &graph, TensorValues &values, TensorId id)
{
    auto [it, inserted] = values.emplace(
        id, std::vector<s32>(
                static_cast<std::size_t>(
                    graph.tensor(id).shape.numElements()),
                0));
    cmswitch_assert(inserted, "tensor computed twice: ",
                    graph.tensor(id).name);
    return it->second;
}

s32
clampInt8(double v)
{
    return static_cast<s32>(
        std::clamp(std::llround(v), -128ll, 127ll));
}

} // namespace

s32
requantize(s64 accumulator)
{
    s64 shifted = accumulator >> 6;
    return static_cast<s32>(std::clamp<s64>(shifted, -128, 127));
}

TensorValues
seedTensors(const Graph &graph, u64 seed)
{
    TensorValues values;
    for (TensorId t = 0; t < graph.numTensors(); ++t) {
        const TensorDesc &desc = graph.tensor(t);
        if (graph.producerOf(t).has_value())
            continue; // produced during execution
        u64 name_hash = std::hash<std::string>{}(desc.name);
        Rng rng(seed ^ name_hash);
        std::vector<s32> data(
            static_cast<std::size_t>(desc.shape.numElements()));
        bool is_ids = desc.dtype == DType::kInt32;
        for (s32 &v : data)
            v = static_cast<s32>(is_ids ? rng.nextInt(0, 255)
                                        : rng.nextInt(-8, 7));
        values.emplace(t, std::move(data));
    }
    return values;
}

void
executeCimOpDirect(const Graph &graph, const Operator &op,
                   TensorValues &values)
{
    switch (op.kind) {
      case OpKind::kMatMul:
      case OpKind::kDynMatMul: {
        const std::vector<s32> &a = valuesOf(values, op.inputs[0]);
        const std::vector<s32> &b = valuesOf(values, op.inputs[1]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        const Shape &bs = graph.tensor(op.inputs[1]).shape;
        s64 n = bs.dim(bs.rank() - 2);
        s64 k = bs.lastDim();
        s64 copies = bs.numElements() / (n * k);
        s64 m_total = static_cast<s64>(a.size()) / n;
        s64 m_per_copy = m_total / copies;
        cmswitch_assert(m_per_copy * copies == m_total,
                        "copy mismatch in ", op.name);
        for (s64 c = 0; c < copies; ++c) {
            const s32 *ac = a.data() + c * m_per_copy * n;
            const s32 *bc = b.data() + c * n * k;
            s32 *oc = out.data() + c * m_per_copy * k;
            for (s64 m = 0; m < m_per_copy; ++m) {
                for (s64 col = 0; col < k; ++col) {
                    s64 acc = 0;
                    for (s64 r = 0; r < n; ++r)
                        acc += static_cast<s64>(ac[m * n + r])
                             * static_cast<s64>(bc[r * k + col]);
                    oc[m * k + col] = requantize(acc);
                }
            }
        }
        break;
      }
      case OpKind::kConv2d:
      case OpKind::kDepthwiseConv2d: {
        const std::vector<s32> &x = valuesOf(values, op.inputs[0]);
        const std::vector<s32> &w = valuesOf(values, op.inputs[1]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        const Shape &xs = graph.tensor(op.inputs[0]).shape;
        const Shape &os = graph.tensor(op.outputs[0]).shape;
        s64 batch = xs.dim(0), in_c = xs.dim(1), in_h = xs.dim(2),
            in_w = xs.dim(3);
        s64 out_c = os.dim(1), out_h = os.dim(2), out_w = os.dim(3);
        bool depthwise = op.kind == OpKind::kDepthwiseConv2d;
        s64 cpg = depthwise ? 1 : in_c / op.conv.groups; // channels/group
        s64 opg = depthwise ? 1 : out_c / op.conv.groups;
        for (s64 nb = 0; nb < batch; ++nb) {
            for (s64 oc = 0; oc < out_c; ++oc) {
                s64 group = depthwise ? oc : oc / opg;
                for (s64 oy = 0; oy < out_h; ++oy) {
                    for (s64 ox = 0; ox < out_w; ++ox) {
                        s64 acc = 0;
                        for (s64 ic = 0; ic < cpg; ++ic) {
                            s64 in_channel = group * cpg + ic;
                            if (depthwise)
                                in_channel = oc;
                            for (s64 ky = 0; ky < op.conv.kernelH; ++ky) {
                                for (s64 kx = 0; kx < op.conv.kernelW; ++kx) {
                                    s64 iy = oy * op.conv.strideH + ky
                                           - op.conv.padH;
                                    s64 ix = ox * op.conv.strideW + kx
                                           - op.conv.padW;
                                    if (iy < 0 || iy >= in_h || ix < 0
                                        || ix >= in_w) {
                                        continue;
                                    }
                                    s64 xi = ((nb * in_c + in_channel) * in_h
                                              + iy) * in_w + ix;
                                    s64 wi = ((oc * cpg + ic)
                                              * op.conv.kernelH + ky)
                                             * op.conv.kernelW + kx;
                                    acc += static_cast<s64>(
                                               x[static_cast<std::size_t>(xi)])
                                         * static_cast<s64>(
                                               w[static_cast<std::size_t>(wi)]);
                                }
                            }
                        }
                        s64 oi = ((nb * out_c + oc) * out_h + oy) * out_w + ox;
                        out[static_cast<std::size_t>(oi)] = requantize(acc);
                    }
                }
            }
        }
        break;
      }
      default:
        cmswitch_panic("not a CIM op: ", op.name);
    }
}

void
executeFuOp(const Graph &graph, const Operator &op, TensorValues &values)
{
    switch (op.kind) {
      case OpKind::kActivation: {
        const std::vector<s32> &x = valuesOf(values, op.inputs[0]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        for (std::size_t i = 0; i < x.size(); ++i) {
            double v = static_cast<double>(x[i]);
            double y;
            if (op.activationName == "relu") {
                y = std::max(0.0, v);
            } else if (op.activationName == "gelu") {
                y = 0.5 * v
                  * (1.0 + std::tanh(0.7978845608
                                     * (v + 0.044715 * v * v * v)));
            } else if (op.activationName == "silu") {
                y = v / (1.0 + std::exp(-v / 16.0));
            } else {
                y = v;
            }
            out[i] = clampInt8(y);
        }
        break;
      }
      case OpKind::kSoftmax: {
        const std::vector<s32> &x = valuesOf(values, op.inputs[0]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        s64 row = graph.tensor(op.inputs[0]).shape.lastDim();
        s64 rows = static_cast<s64>(x.size()) / row;
        for (s64 r = 0; r < rows; ++r) {
            const s32 *xr = x.data() + r * row;
            s32 *orow = out.data() + r * row;
            s32 mx = *std::max_element(xr, xr + row);
            double denom = 0.0;
            for (s64 i = 0; i < row; ++i)
                denom += std::exp(static_cast<double>(xr[i] - mx) / 8.0);
            for (s64 i = 0; i < row; ++i) {
                double p = std::exp(static_cast<double>(xr[i] - mx) / 8.0)
                         / denom;
                orow[i] = clampInt8(p * 127.0);
            }
        }
        break;
      }
      case OpKind::kLayerNorm: {
        const std::vector<s32> &x = valuesOf(values, op.inputs[0]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        s64 row = graph.tensor(op.inputs[0]).shape.lastDim();
        s64 rows = static_cast<s64>(x.size()) / row;
        for (s64 r = 0; r < rows; ++r) {
            const s32 *xr = x.data() + r * row;
            s32 *orow = out.data() + r * row;
            double mean = 0.0;
            for (s64 i = 0; i < row; ++i)
                mean += xr[i];
            mean /= static_cast<double>(row);
            double var = 0.0;
            for (s64 i = 0; i < row; ++i)
                var += (xr[i] - mean) * (xr[i] - mean);
            var /= static_cast<double>(row);
            double scale = 16.0 / std::sqrt(var + 1.0);
            for (s64 i = 0; i < row; ++i)
                orow[i] = clampInt8((xr[i] - mean) * scale);
        }
        break;
      }
      case OpKind::kElementwiseAdd: {
        const std::vector<s32> &a = valuesOf(values, op.inputs[0]);
        const std::vector<s32> &b = valuesOf(values, op.inputs[1]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = clampInt8(static_cast<double>(a[i]) + b[i]);
        break;
      }
      case OpKind::kElementwiseMul: {
        const std::vector<s32> &a = valuesOf(values, op.inputs[0]);
        const std::vector<s32> &b = valuesOf(values, op.inputs[1]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = requantize(static_cast<s64>(a[i]) * b[i]);
        break;
      }
      case OpKind::kPool: {
        const std::vector<s32> &x = valuesOf(values, op.inputs[0]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        const Shape &xs = graph.tensor(op.inputs[0]).shape;
        const Shape &os = graph.tensor(op.outputs[0]).shape;
        s64 batch = xs.dim(0), ch = xs.dim(1), in_h = xs.dim(2),
            in_w = xs.dim(3);
        s64 out_h = os.dim(2), out_w = os.dim(3);
        bool global = op.conv.kernelH == in_h && op.conv.kernelW == in_w;
        for (s64 nb = 0; nb < batch; ++nb) {
            for (s64 c = 0; c < ch; ++c) {
                for (s64 oy = 0; oy < out_h; ++oy) {
                    for (s64 ox = 0; ox < out_w; ++ox) {
                        s64 acc = global ? 0
                                         : std::numeric_limits<s32>::min();
                        s64 count = 0;
                        for (s64 ky = 0; ky < op.conv.kernelH; ++ky) {
                            for (s64 kx = 0; kx < op.conv.kernelW; ++kx) {
                                s64 iy = oy * op.conv.strideH + ky;
                                s64 ix = ox * op.conv.strideW + kx;
                                if (iy >= in_h || ix >= in_w)
                                    continue;
                                s64 xi = ((nb * ch + c) * in_h + iy) * in_w
                                       + ix;
                                s32 v = x[static_cast<std::size_t>(xi)];
                                if (global)
                                    acc += v;
                                else
                                    acc = std::max<s64>(acc, v);
                                ++count;
                            }
                        }
                        s64 oi = ((nb * ch + c) * out_h + oy) * out_w + ox;
                        out[static_cast<std::size_t>(oi)] =
                            static_cast<s32>(global ? acc / count : acc);
                    }
                }
            }
        }
        break;
      }
      case OpKind::kEmbedding: {
        const std::vector<s32> &ids = valuesOf(values, op.inputs[0]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        s64 dim = graph.tensor(op.outputs[0]).shape.lastDim();
        for (std::size_t t = 0; t < ids.size(); ++t)
            for (s64 d = 0; d < dim; ++d)
                out[t * static_cast<std::size_t>(dim)
                    + static_cast<std::size_t>(d)] =
                    embeddingValue(ids[t], d);
        break;
      }
      case OpKind::kReshape: {
        const std::vector<s32> &x = valuesOf(values, op.inputs[0]);
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        cmswitch_assert(out.size() <= x.size(),
                        "reshape cannot grow data: ", op.name);
        std::copy(x.begin(), x.begin() + static_cast<s64>(out.size()),
                  out.begin());
        break;
      }
      case OpKind::kConcat: {
        std::vector<s32> &out = makeOutput(graph, values, op.outputs[0]);
        std::size_t cursor = 0;
        for (TensorId in : op.inputs) {
            const std::vector<s32> &x = valuesOf(values, in);
            cmswitch_assert(cursor + x.size() <= out.size(),
                            "concat overflow: ", op.name);
            std::copy(x.begin(), x.end(), out.begin()
                                          + static_cast<s64>(cursor));
            cursor += x.size();
        }
        break;
      }
      default:
        cmswitch_panic("unhandled FU op kind: ", opKindName(op.kind));
    }
}

void
referenceExecute(const Graph &graph, TensorValues &values)
{
    for (OpId id : graph.topoOrder()) {
        const Operator &op = graph.op(id);
        if (op.isCim())
            executeCimOpDirect(graph, op, values);
        else
            executeFuOp(graph, op, values);
    }
}

} // namespace cmswitch
