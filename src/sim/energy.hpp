/**
 * @file
 * Energy model for compiled meta-operator programs. The paper argues
 * dual-mode switching "can significantly boost overall system
 * performance and energy efficiency" (Sec. 3.2) without quantifying
 * the latter; this extension prices a program's energy from the same
 * DEHA parameters so the claim can be measured.
 *
 * All per-event energies are in picojoules and deliberately
 * order-of-magnitude (int8 CIM MAC ~0.05 pJ, off-chip DRAM ~8 pJ/B),
 * calibrated to the usual ~100x gap between on-chip and off-chip
 * accesses. Absolute joules are not meaningful for comparison with the
 * paper (which reports none); *ratios* across compilers are.
 */

#ifndef CMSWITCH_SIM_ENERGY_HPP
#define CMSWITCH_SIM_ENERGY_HPP

#include "arch/deha.hpp"
#include "metaop/program.hpp"
#include "support/common.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;
class JsonWriter;

/** Per-event energy costs (picojoules). */
struct EnergyParams
{
    double macPj = 0.05;            ///< one int8 MAC inside an array
    double arrayReadPjPerByte = 0.5;  ///< memory-mode array read
    double arrayWritePjPerByte = 1.0; ///< array programming (weights)
    double mainMemoryPjPerByte = 8.0; ///< off-chip DRAM transfer
    double switchPjPerArray = 10.0;   ///< driver reconfiguration (Eq. 1)
    double fuPjPerElem = 0.1;         ///< vector function-unit op
    double staticPjPerCycle = 2.0;    ///< whole-chip leakage

    /** eDRAM chip: balanced read/write. */
    static EnergyParams dynaplasia();

    /** ReRAM chip: cheap reads, 20x write energy. */
    static EnergyParams prime();

    /**
     * Technology-matched parameters for @p chip, keyed on
     * ChipConfig::technology (ReRAM => prime(), eDRAM => dynaplasia()).
     * The one place that mapping lives — tools and tests must not
     * re-derive it.
     */
    static EnergyParams forChip(const ChipConfig &chip);
};

/** Energy breakdown of one program execution (picojoules). */
struct EnergyReport
{
    double computePj = 0.0; ///< MAC energy
    double memoryPj = 0.0;  ///< memory-mode array traffic
    double rewritePj = 0.0; ///< weight programming
    double dmaPj = 0.0;     ///< off-chip transfers
    double switchPj = 0.0;  ///< mode switching
    double fuPj = 0.0;      ///< function-unit work
    double staticPj = 0.0;  ///< leakage over the runtime

    double totalPj() const
    {
        return computePj + memoryPj + rewritePj + dmaPj + switchPj + fuPj
             + staticPj;
    }
    double totalUj() const { return totalPj() * 1e-6; }

    /** Emit the full picojoule breakdown as an object into @p w. */
    void writeJson(JsonWriter &w) const;

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static EnergyReport readBinary(BinaryReader &r);
    /** @} */
};

/**
 * Prices meta-operator programs. Streamed operand bytes split between
 * memory-mode arrays and the off-chip link in proportion to the
 * bandwidth each side contributes under Eq. 10 — the same split the
 * latency model assumes.
 */
class EnergyModel
{
  public:
    EnergyModel(const Deha &deha, EnergyParams params);

    /** Price one execution of @p program taking @p total_cycles. */
    EnergyReport price(const MetaProgram &program,
                       Cycles total_cycles) const;

    const EnergyParams &params() const { return params_; }

  private:
    const Deha *deha_;
    EnergyParams params_;
};

} // namespace cmswitch

#endif // CMSWITCH_SIM_ENERGY_HPP
