/**
 * @file
 * Timing simulator: cycle-accounts a meta-operator program on the DEHA
 * chip model, independently of the compiler (only the program payload
 * and the chip configuration are consulted). The paper builds this
 * layer on modified NeuroSim/MNSIM models; here the same per-array
 * latency/bandwidth parameters drive an analytic cycle account.
 */

#ifndef CMSWITCH_SIM_TIMING_HPP
#define CMSWITCH_SIM_TIMING_HPP

#include <vector>

#include "arch/deha.hpp"
#include "compiler/compiler_api.hpp"
#include "metaop/program.hpp"

namespace cmswitch {

/** Per-segment and aggregate timing of one program execution. */
struct TimingReport
{
    LatencyBreakdown breakdown;
    std::vector<Cycles> segmentCycles; ///< end-to-end per segment
    s64 switchedArrays = 0;

    Cycles total() const { return breakdown.total(); }

    /** Share of total time spent switching modes (Sec. 5.5 metric). */
    double switchShare() const;
};

/** Executes programs against a chip description. */
class TimingSimulator
{
  public:
    explicit TimingSimulator(const Deha &deha);

    /** Price one full pass of @p program. */
    TimingReport run(const MetaProgram &program) const;

  private:
    const Deha *deha_;
};

} // namespace cmswitch

#endif // CMSWITCH_SIM_TIMING_HPP
