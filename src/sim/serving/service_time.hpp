/**
 * @file
 * The one mapping from a compiled plan's LatencyBreakdown to the
 * service time a chip spends on a request — shared by the serving
 * simulator, its tests, and anything else that prices plans under
 * load.
 *
 * The breakdown splits into two halves with different occupancy
 * semantics:
 *
 *  - reconfiguration (modeSwitch + rewrite): paid once when a plan is
 *    *installed* on a chip — arrays flip between CIM and memory mode
 *    and weights are (re)programmed. A chip whose arrays already hold
 *    this plan skips it entirely.
 *  - resident execution (intra + writeback): paid by every request,
 *    resident or not — the pipelined segment pass plus inter-segment
 *    stores.
 *
 * Keeping this split in one place is deliberate: the parity test pins
 * these helpers against sim::timing and the compiler's own breakdown,
 * so a drift here (a field double-counted or dropped in some ad-hoc
 * re-summation) would be caught instead of silently skewing every
 * fleet result.
 */

#ifndef CMSWITCH_SIM_SERVING_SERVICE_TIME_HPP
#define CMSWITCH_SIM_SERVING_SERVICE_TIME_HPP

#include "compiler/compiler_api.hpp"

namespace cmswitch {

/** Full cost of a request whose plan must first be installed:
 *  reconfiguration + resident execution (== breakdown.total()). */
Cycles planColdCycles(const LatencyBreakdown &breakdown);

/** Cost when the chip's arrays already hold this plan. */
Cycles planResidentCycles(const LatencyBreakdown &breakdown);

/** The installation prologue alone (cold − resident). */
Cycles planReconfigureCycles(const LatencyBreakdown &breakdown);

/** Seconds @p cycles take on a chip clocked at @p clockGhz (> 0). */
double cyclesToSeconds(Cycles cycles, double clockGhz);

} // namespace cmswitch

#endif // CMSWITCH_SIM_SERVING_SERVICE_TIME_HPP
