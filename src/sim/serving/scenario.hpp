/**
 * @file
 * Serving-simulator scenario config: what traffic hits what fleet.
 *
 * A scenario is one JSON document (schema "cmswitch-sim-scenario-v1")
 * written by an operator or a test, describing:
 *
 *  - the fleet: chip preset + instance count + clock (GHz) per entry —
 *    heterogeneity comes from mixing entries;
 *  - the workload mix: zoo models with the serve protocol's compile
 *    fields, a sampling weight, serve-queue priority/deadline knobs,
 *    and (for decode) the KV-bucket plan family a request's KV length
 *    is rounded up into;
 *  - the arrival process: Poisson, bursty on/off (Poisson modulated by
 *    exponential on/off phases), or an explicit trace replay;
 *  - the RNG seed — the *only* randomness source of a run. There is no
 *    wall-clock seeding anywhere in src/sim/: equal scenario, equal
 *    report, byte for byte.
 *
 * Parsing mirrors serve_protocol.cpp: strict (unknown keys rejected),
 * non-fatal (every failure is a message naming the field), resolved
 * against the zoo/preset name tables only. docs/simulation.md holds
 * the operator-facing field tables.
 */

#ifndef CMSWITCH_SIM_SERVING_SCENARIO_HPP
#define CMSWITCH_SIM_SERVING_SCENARIO_HPP

#include <string>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

inline constexpr const char *kSimScenarioSchema =
    "cmswitch-sim-scenario-v1";

/** One fleet entry: @p count identical instances of a chip preset. */
struct SimChipSpec
{
    std::string preset = "dynaplasia"; ///< "dynaplasia" or "prime"
    s64 count = 1;
    double clockGhz = 1.0; ///< cycles -> seconds conversion for these
};

/** One entry of the request mix. */
struct SimWorkloadSpec
{
    std::string name;  ///< report label; defaults to the model name
    std::string model; ///< zoo model or "tiny-mlp" (no file paths)
    std::string compiler = "cmswitch";
    s64 batch = 1;
    s64 seq = 64;
    s64 layers = 0; ///< transformer layer override; 0 keeps the zoo's
    bool optimize = false;

    /** Relative sampling weight within the mix (> 0). */
    double weight = 1.0;

    /** @{ serve-queue knobs, same semantics as the daemon's. */
    s64 priority = 0;
    bool hasDeadline = false;
    s64 deadlineMs = 0;
    /** @} */

    /**
     * Decode plan family: per-request KV length is drawn uniformly in
     * [kvMin, kvMax] and served by the plan of the smallest bucket
     * >= it. Empty = a single prefill/CNN plan. Buckets must be
     * strictly increasing; kvMax defaults to the largest bucket.
     */
    std::vector<s64> kvBuckets;
    s64 kvMin = 1;
    s64 kvMax = 0;
};

/** Open-loop arrival process of the scenario. */
struct SimArrivalSpec
{
    enum class Process { kPoisson, kOnOff, kTrace };

    Process process = Process::kPoisson;

    /** Poisson rate; for on/off, the rate during *off* phases (>= 0). */
    double ratePerSecond = 0.0;

    /** @{ on/off (bursty) parameters: Poisson at burstRatePerSecond
     *  during exponentially-distributed bursts of mean
     *  meanBurstSeconds, separated by exponential idle gaps of mean
     *  meanIdleSeconds. */
    double burstRatePerSecond = 0.0;
    double meanBurstSeconds = 0.0;
    double meanIdleSeconds = 0.0;
    /** @} */

    /** Trace replay: explicit arrival instants, sorted ascending. */
    std::vector<double> timesSeconds;
};

struct SimScenario
{
    std::string name = "scenario";
    u64 seed = 1;

    /** Arrivals are generated while t < durationSeconds (ignored by
     *  trace replay, which derives it from the last instant). */
    double durationSeconds = 0.0;

    /** Waiting-room bound, same admission policy as `cmswitchc serve`
     *  (--max-queue). */
    s64 maxQueue = 16;

    /** "priority" (default) honours workload priorities/deadlines via
     *  ServeQueue's dispatch order; "fifo" zeroes every priority so
     *  dispatch degenerates to arrival order. */
    bool fifo = false;

    SimArrivalSpec arrival;
    std::vector<SimChipSpec> chips;        ///< >= 1 entry
    std::vector<SimWorkloadSpec> workloads;///< >= 1 entry, unique names
};

/**
 * Parse and validate one scenario document. Strict and non-fatal:
 * unknown keys, wrong types, out-of-range values, unknown
 * model/chip/compiler names, unsorted buckets or trace instants all
 * fail with a message. @p out is unspecified on failure.
 */
bool parseSimScenario(const std::string &text, SimScenario *out,
                      std::string *error);

} // namespace cmswitch

#endif // CMSWITCH_SIM_SERVING_SCENARIO_HPP
