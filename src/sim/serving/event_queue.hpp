/**
 * @file
 * The discrete-event calendar: a min-heap of timestamped events with a
 * deterministic total order.
 *
 * Heap order is (time, insertion tick) — two events at the same
 * instant pop in the order they were scheduled, never in an
 * implementation-defined heap order. That tick is what makes the whole
 * simulator's output byte-reproducible: simultaneous arrival and
 * completion events (common with deterministic service times) would
 * otherwise resolve differently across standard libraries.
 */

#ifndef CMSWITCH_SIM_SERVING_EVENT_QUEUE_HPP
#define CMSWITCH_SIM_SERVING_EVENT_QUEUE_HPP

#include <algorithm>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

/** One calendar entry. */
struct SimEvent
{
    enum class Kind { kArrival, kCompletion };

    double time = 0.0;
    Kind kind = Kind::kArrival;
    std::size_t chip = 0; ///< completing chip (kCompletion only)
    u64 tick = 0;         ///< insertion order; assigned by the calendar
};

class EventCalendar
{
  public:
    void
    push(SimEvent event)
    {
        event.tick = nextTick_++;
        heap_.push_back(event);
        std::push_heap(heap_.begin(), heap_.end(), after);
    }

    /** Pop the earliest event; false when the calendar is empty. */
    bool
    pop(SimEvent *out)
    {
        if (heap_.empty())
            return false;
        std::pop_heap(heap_.begin(), heap_.end(), after);
        *out = heap_.back();
        heap_.pop_back();
        return true;
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

  private:
    /** Max-heap comparator inverted: true when @p a runs after @p b. */
    static bool
    after(const SimEvent &a, const SimEvent &b)
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.tick > b.tick;
    }

    std::vector<SimEvent> heap_;
    u64 nextTick_ = 0;
};

} // namespace cmswitch

#endif // CMSWITCH_SIM_SERVING_EVENT_QUEUE_HPP
