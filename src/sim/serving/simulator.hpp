/**
 * @file
 * Discrete-event serving simulator: compiled plans under traffic.
 *
 * The compiler answers "how many cycles does this plan take"; this
 * layer answers the fleet question — which plan/chip/fleet config
 * survives a given traffic mix. A scenario (scenario.hpp) describes
 * chips, workloads and an open-loop arrival process; the simulator
 *
 *  1. compiles the *plan table* — one CompileResult per (workload
 *     variant x chip preset), decode workloads fanned out across their
 *     KV buckets — through the real CompileService (so `--threads`
 *     parallelises plan compilation, never the event loop), and prices
 *     each plan with sim::timing's TimingSimulator;
 *  2. replays arrivals through a ServeQueue — the daemon's own
 *     admission/eviction/deadline logic, driven by simulated time —
 *     onto chip instances with dual-mode occupancy: a chip's arrays
 *     hold one installed plan; serving a different plan first pays the
 *     reconfiguration prologue (mode switches + weight rewrites,
 *     service_time.hpp) before the resident cycles;
 *  3. aggregates obs::LogHistogram latency quantiles, per-chip
 *     utilisation and mode-switch counts, per-workload and per-plan
 *     tallies into a byte-deterministic "cmswitch-sim-v1" report.
 *
 * Determinism contract (pinned by sim_serving_test and sim_smoke):
 * all randomness flows from the scenario's seed through one
 * mt19937_64, draws are hand-mapped from raw engine words (std::
 * distributions are implementation-defined), simultaneous events
 * resolve by insertion tick, and compiled plans are byte-identical
 * across thread counts — so two runs of one scenario, at any
 * `--threads`, emit identical bytes.
 */

#ifndef CMSWITCH_SIM_SERVING_SIMULATOR_HPP
#define CMSWITCH_SIM_SERVING_SIMULATOR_HPP

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/serving/scenario.hpp"

namespace cmswitch {

inline constexpr const char *kSimReportSchema = "cmswitch-sim-v1";

struct ServingSimOptions
{
    s64 compileThreads = 1; ///< plan-table compile pool (>= 1)
    s64 searchThreads = 1;  ///< plan-search threads per compile (>= 1)
};

/** One compiled plan-table entry: (workload variant, chip preset). */
struct SimPlan
{
    std::string workload;  ///< owning workload's name
    s64 kvBucket = 0;      ///< 0 = the single prefill/CNN plan
    std::string chip;      ///< preset name
    std::string key;       ///< requestKey() of the compile
    s64 segments = 0;
    Cycles coldCycles = 0;       ///< install + execute
    Cycles residentCycles = 0;   ///< execute only
    Cycles reconfigureCycles = 0;///< install only
    s64 switchedArrays = 0;      ///< arrays flipped per install
    s64 served = 0;              ///< requests this plan served
};

/** Per-chip-instance tallies. */
struct SimChipUse
{
    std::string chip; ///< preset name
    double clockGhz = 1.0;
    s64 served = 0;
    s64 installs = 0;        ///< plan (re)configurations paid
    s64 switchedArrays = 0;  ///< total arrays flipped across installs
    double busySeconds = 0.0;
    double reconfigureSeconds = 0.0; ///< part of busy spent installing
    double utilization = 0.0;        ///< busy / makespan
};

/** Per-workload tallies. */
struct SimWorkloadUse
{
    std::string name;
    s64 arrived = 0;
    s64 completed = 0;
    s64 shedAdmission = 0;
    s64 shedDeadline = 0;
    obs::LogHistogram totalSeconds; ///< end-to-end, completed only
};

struct SimResult
{
    s64 arrived = 0;
    s64 completed = 0;
    s64 shedAdmission = 0;
    s64 shedDeadline = 0;

    /** Last arrival horizon / last completion instant. */
    double durationSeconds = 0.0;
    double makespanSeconds = 0.0;

    /** @{ Latency estimators over completed requests (seconds). */
    obs::LogHistogram queueWaitSeconds;
    obs::LogHistogram serviceSeconds;
    obs::LogHistogram totalSeconds;
    /** @} */

    std::vector<SimPlan> plans;
    std::vector<SimChipUse> chips;       ///< one per chip *instance*
    std::vector<SimWorkloadUse> workloads;

    double
    throughputPerSecond() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(completed) / makespanSeconds
                   : 0.0;
    }
};

/**
 * Compile the plan table and run the scenario to completion (arrivals
 * stop at the horizon; queued work drains). Fails — never fatals — on
 * unresolvable workloads or a failed compile. Deterministic: equal
 * (scenario, searchThreads) give equal results for any compileThreads.
 */
bool runServingSimulation(const SimScenario &scenario,
                          const ServingSimOptions &options, SimResult *out,
                          std::string *error);

/** The cmswitch-sim-v1 report (docs/schemas.md), byte-deterministic. */
std::string renderSimReport(const SimScenario &scenario,
                            const SimResult &result, int indent = 2);

} // namespace cmswitch

#endif // CMSWITCH_SIM_SERVING_SIMULATOR_HPP
