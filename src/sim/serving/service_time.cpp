#include "sim/serving/service_time.hpp"

#include "support/logging.hpp"

namespace cmswitch {

Cycles
planColdCycles(const LatencyBreakdown &breakdown)
{
    return breakdown.total();
}

Cycles
planResidentCycles(const LatencyBreakdown &breakdown)
{
    return breakdown.intra + breakdown.writeback;
}

Cycles
planReconfigureCycles(const LatencyBreakdown &breakdown)
{
    return breakdown.modeSwitch + breakdown.rewrite;
}

double
cyclesToSeconds(Cycles cycles, double clockGhz)
{
    cmswitch_fatal_if(!(clockGhz > 0.0),
                      "cyclesToSeconds needs a positive clock, got ",
                      clockGhz);
    return static_cast<double>(cycles) / (clockGhz * 1e9);
}

} // namespace cmswitch
