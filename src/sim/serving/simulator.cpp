#include "sim/serving/simulator.hpp"

#include <cmath>
#include <future>
#include <map>
#include <random>
#include <utility>

#include "arch/deha.hpp"
#include "service/compile_service.hpp"
#include "service/serve/serve_protocol.hpp"
#include "service/serve/serve_queue.hpp"
#include "sim/serving/event_queue.hpp"
#include "sim/serving/service_time.hpp"
#include "sim/timing.hpp"
#include "support/json.hpp"

namespace cmswitch {

namespace {

/**
 * Deterministic draws from raw mt19937_64 words. The std uniform and
 * exponential distributions are implementation-defined — the same seed
 * gives different streams across standard libraries — so the
 * byte-identical-report contract maps engine words by hand.
 */
double
uniformDouble(std::mt19937_64 &engine)
{
    // Top 53 bits -> [0, 1) with full double granularity.
    return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/** Exponential with @p rate events/second (rate > 0). */
double
exponentialDraw(std::mt19937_64 &engine, double rate)
{
    // -log(1 - U) via log1p: exact near U = 0, and U < 1 strictly so
    // the draw is always finite.
    return -std::log1p(-uniformDouble(engine)) / rate;
}

/** Uniform integer in [lo, hi] inclusive. */
s64
uniformInt(std::mt19937_64 &engine, s64 lo, s64 hi)
{
    double span = static_cast<double>(hi - lo + 1);
    s64 offset = static_cast<s64>(uniformDouble(engine) * span);
    if (offset > hi - lo) // guard the U -> 1.0 rounding edge
        offset = hi - lo;
    return lo + offset;
}

/**
 * Open-loop arrival stream. Poisson and on/off generate until the
 * scenario horizon; trace replay walks its explicit instants. On/off
 * starts in a burst phase at t = 0 (a deterministic convention — the
 * seed decides everything after that) and uses the memorylessness of
 * the exponential: a draw that crosses the phase boundary is simply
 * re-drawn at the boundary under the next phase's rate.
 */
class ArrivalStream
{
  public:
    ArrivalStream(const SimArrivalSpec &spec, double horizon,
                  std::mt19937_64 &engine)
        : spec_(spec), horizon_(horizon), engine_(engine)
    {
        if (spec_.process == SimArrivalSpec::Process::kOnOff) {
            on_ = true;
            phaseEnd_ = exponentialDraw(engine_,
                                        1.0 / spec_.meanBurstSeconds);
        }
    }

    /** Next arrival instant; false when the stream is exhausted. */
    bool
    next(double *out)
    {
        switch (spec_.process) {
        case SimArrivalSpec::Process::kPoisson:
            time_ += exponentialDraw(engine_, spec_.ratePerSecond);
            if (time_ >= horizon_)
                return false;
            *out = time_;
            return true;
        case SimArrivalSpec::Process::kOnOff:
            for (;;) {
                double rate = on_ ? spec_.burstRatePerSecond
                                  : spec_.ratePerSecond;
                if (rate > 0.0) {
                    double dt = exponentialDraw(engine_, rate);
                    if (time_ + dt <= phaseEnd_) {
                        time_ += dt;
                        if (time_ >= horizon_)
                            return false;
                        *out = time_;
                        return true;
                    }
                }
                time_ = phaseEnd_;
                if (time_ >= horizon_)
                    return false;
                on_ = !on_;
                double mean = on_ ? spec_.meanBurstSeconds
                                  : spec_.meanIdleSeconds;
                phaseEnd_ = time_ + exponentialDraw(engine_, 1.0 / mean);
            }
        case SimArrivalSpec::Process::kTrace:
            if (traceIndex_ >= spec_.timesSeconds.size())
                return false;
            *out = spec_.timesSeconds[traceIndex_++];
            return true;
        }
        return false;
    }

  private:
    const SimArrivalSpec &spec_;
    double horizon_;
    std::mt19937_64 &engine_;
    double time_ = 0.0;
    bool on_ = false;
    double phaseEnd_ = 0.0;
    std::size_t traceIndex_ = 0;
};

bool
simFail(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
    return false;
}

/** A request drawn from the mix, waiting or being served. */
struct PendingRequest
{
    std::size_t workload = 0; ///< index into scenario.workloads
    std::size_t bucket = 0;   ///< index into that workload's buckets
    double arrivalSeconds = 0.0;
};

/** One chip instance's live state. */
struct ChipState
{
    std::size_t preset = 0; ///< index into the unique-preset list
    std::size_t use = 0;    ///< index into SimResult::chips
    bool busy = false;
    s64 residentPlan = -1; ///< flat plan index installed on the arrays

    /** @{ the request being served (busy only). */
    std::size_t workload = 0;
    std::size_t plan = 0;
    double waitSeconds = 0.0;
    double serviceSeconds = 0.0;
    double arrivalSeconds = 0.0;
    /** @} */
};

} // namespace

bool
runServingSimulation(const SimScenario &scenario,
                     const ServingSimOptions &options, SimResult *out,
                     std::string *error)
{
    if (options.compileThreads < 1 || options.searchThreads < 1)
        return simFail(error, "sim needs compileThreads/searchThreads "
                              ">= 1");

    *out = SimResult();

    // ---- Unique chip presets and per-workload bucket lists.
    std::vector<std::string> presets;
    for (const SimChipSpec &chip : scenario.chips) {
        bool known = false;
        for (const std::string &preset : presets)
            known = known || preset == chip.preset;
        if (!known)
            presets.push_back(chip.preset);
    }
    std::vector<std::vector<s64>> buckets; // per workload; {0} = single
    for (const SimWorkloadSpec &workload : scenario.workloads) {
        buckets.push_back(workload.kvBuckets.empty()
                              ? std::vector<s64>{0}
                              : workload.kvBuckets);
    }

    // ---- Compile the plan table through the real service. Order is
    // (workload, bucket, preset) — fixed regardless of which compile
    // finishes first, so the report's plan list is deterministic.
    CompileServiceOptions serviceOptions;
    serviceOptions.threads = options.compileThreads;
    serviceOptions.searchThreads = options.searchThreads;
    CompileService service(serviceOptions);

    struct PlanSlot
    {
        std::size_t workload, bucket, preset;
        std::future<ArtifactPtr> artifact;
    };
    std::vector<PlanSlot> slots;
    // planIndex[workload][bucket][preset] -> flat index into out->plans
    std::vector<std::vector<std::vector<s64>>> planIndex;
    for (std::size_t w = 0; w < scenario.workloads.size(); ++w) {
        const SimWorkloadSpec &spec = scenario.workloads[w];
        planIndex.emplace_back();
        for (std::size_t b = 0; b < buckets[w].size(); ++b) {
            planIndex[w].emplace_back(presets.size(), -1);
            for (std::size_t p = 0; p < presets.size(); ++p) {
                ServeRequest wire;
                wire.model = spec.model;
                wire.chip = presets[p];
                wire.compiler = spec.compiler;
                wire.batch = spec.batch;
                wire.seq = spec.seq;
                wire.decodeKv = buckets[w][b];
                wire.layers = spec.layers;
                wire.optimize = spec.optimize;
                CompileRequest request;
                if (!resolveServeRequest(wire, &request, error))
                    return simFail(error, "workload '" + spec.name
                                              + "': "
                                              + (error ? *error : ""));
                planIndex[w][b][p] = static_cast<s64>(slots.size());
                PlanSlot slot;
                slot.workload = w;
                slot.bucket = b;
                slot.preset = p;
                slot.artifact = service.submit(std::move(request));
                slots.push_back(std::move(slot));
            }
        }
    }

    for (PlanSlot &slot : slots) {
        ArtifactPtr artifact;
        try {
            artifact = slot.artifact.get();
        } catch (const std::exception &e) {
            return simFail(error,
                           "compile failed for workload '"
                               + scenario.workloads[slot.workload].name
                               + "': " + e.what());
        }
        // Price the plan with the timing simulator — the independent
        // hardware model, which timing_test pins equal to the
        // compiler's own estimate for cmswitch plans.
        TimingReport timing =
            TimingSimulator(Deha(artifact->chip)).run(
                artifact->result.program);
        SimPlan plan;
        plan.workload = scenario.workloads[slot.workload].name;
        plan.kvBucket = buckets[slot.workload][slot.bucket];
        plan.chip = presets[slot.preset];
        plan.key = artifact->key;
        plan.segments = artifact->result.numSegments();
        plan.coldCycles = planColdCycles(timing.breakdown);
        plan.residentCycles = planResidentCycles(timing.breakdown);
        plan.reconfigureCycles = planReconfigureCycles(timing.breakdown);
        plan.switchedArrays = timing.switchedArrays;
        out->plans.push_back(std::move(plan));
    }

    // ---- Fleet instances, in chips[] order.
    std::vector<ChipState> fleet;
    for (const SimChipSpec &chip : scenario.chips) {
        std::size_t preset = 0;
        while (presets[preset] != chip.preset)
            ++preset;
        for (s64 i = 0; i < chip.count; ++i) {
            ChipState state;
            state.preset = preset;
            state.use = fleet.size();
            fleet.push_back(state);
            SimChipUse use;
            use.chip = chip.preset;
            use.clockGhz = chip.clockGhz;
            out->chips.push_back(std::move(use));
        }
    }
    std::vector<double> clocks;
    for (const SimChipUse &use : out->chips)
        clocks.push_back(use.clockGhz);

    for (const SimWorkloadSpec &spec : scenario.workloads) {
        SimWorkloadUse use;
        use.name = spec.name;
        out->workloads.push_back(std::move(use));
    }

    // ---- Cumulative mix weights for the workload draw.
    std::vector<double> cumulativeWeight;
    double totalWeight = 0.0;
    for (const SimWorkloadSpec &spec : scenario.workloads) {
        totalWeight += spec.weight;
        cumulativeWeight.push_back(totalWeight);
    }

    // ---- The event loop. One engine, seeded from the scenario alone.
    std::mt19937_64 engine(scenario.seed);
    double horizon =
        scenario.arrival.process == SimArrivalSpec::Process::kTrace
            ? scenario.arrival.timesSeconds.back() + 1.0
            : scenario.durationSeconds;
    ArrivalStream arrivals(scenario.arrival, horizon, engine);
    EventCalendar calendar;
    ServeQueue queue(scenario.maxQueue);
    std::map<u64, PendingRequest> waiting; // seq -> queued request
    u64 nextSeq = 1;
    double lastArrival = 0.0;

    auto shedWaiting = [&](u64 seq, bool deadline) {
        auto it = waiting.find(seq);
        PendingRequest request = it->second;
        waiting.erase(it);
        if (deadline) {
            ++out->shedDeadline;
            ++out->workloads[request.workload].shedDeadline;
        } else {
            ++out->shedAdmission;
            ++out->workloads[request.workload].shedAdmission;
        }
    };

    auto dispatch = [&](double now) {
        for (;;) {
            s64 free = -1;
            for (std::size_t i = 0; i < fleet.size(); ++i) {
                if (!fleet[i].busy) {
                    free = static_cast<s64>(i);
                    break;
                }
            }
            if (free < 0)
                return;
            u64 seq = 0;
            std::vector<u64> expired;
            bool got = queue.pop(now, &seq, &expired);
            for (u64 expiredSeq : expired)
                shedWaiting(expiredSeq, /*deadline=*/true);
            if (!got)
                return;
            PendingRequest request = waiting.at(seq);
            waiting.erase(seq);
            // Placement: a free chip whose arrays already hold this
            // request's plan serves it without reconfiguring; lowest
            // instance index wins ties. Otherwise the first free chip
            // pays the install.
            std::size_t chosen = static_cast<std::size_t>(free);
            for (std::size_t i = 0; i < fleet.size(); ++i) {
                if (fleet[i].busy)
                    continue;
                s64 plan = planIndex[request.workload][request.bucket]
                                    [fleet[i].preset];
                if (fleet[i].residentPlan == plan) {
                    chosen = i;
                    break;
                }
            }
            ChipState &chip = fleet[chosen];
            s64 planId = planIndex[request.workload][request.bucket]
                                  [chip.preset];
            const SimPlan &plan =
                out->plans[static_cast<std::size_t>(planId)];
            SimChipUse &use = out->chips[chip.use];
            Cycles cycles = plan.residentCycles;
            if (chip.residentPlan != planId) {
                cycles = plan.coldCycles;
                chip.residentPlan = planId;
                ++use.installs;
                use.switchedArrays += plan.switchedArrays;
                use.reconfigureSeconds +=
                    cyclesToSeconds(plan.reconfigureCycles, use.clockGhz);
            }
            chip.busy = true;
            chip.workload = request.workload;
            chip.plan = static_cast<std::size_t>(planId);
            chip.arrivalSeconds = request.arrivalSeconds;
            chip.waitSeconds = now - request.arrivalSeconds;
            chip.serviceSeconds = cyclesToSeconds(cycles, use.clockGhz);
            SimEvent completion;
            completion.time = now + chip.serviceSeconds;
            completion.kind = SimEvent::Kind::kCompletion;
            completion.chip = chosen;
            calendar.push(completion);
        }
    };

    double firstArrival = 0.0;
    if (arrivals.next(&firstArrival)) {
        SimEvent event;
        event.time = firstArrival;
        event.kind = SimEvent::Kind::kArrival;
        calendar.push(event);
    }

    SimEvent event;
    while (calendar.pop(&event)) {
        if (event.kind == SimEvent::Kind::kArrival) {
            lastArrival = event.time;
            // Draw the request: workload by weight, then its KV bucket
            // (smallest bucket >= a uniform KV length).
            double pick = uniformDouble(engine) * totalWeight;
            std::size_t w = 0;
            while (w + 1 < cumulativeWeight.size()
                   && pick >= cumulativeWeight[w])
                ++w;
            const SimWorkloadSpec &spec = scenario.workloads[w];
            std::size_t bucket = 0;
            if (!spec.kvBuckets.empty()) {
                s64 kv = uniformInt(engine, spec.kvMin, spec.kvMax);
                while (spec.kvBuckets[bucket] < kv)
                    ++bucket;
            }
            ++out->arrived;
            ++out->workloads[w].arrived;
            u64 seq = nextSeq++;
            PendingRequest request;
            request.workload = w;
            request.bucket = bucket;
            request.arrivalSeconds = event.time;
            waiting.emplace(seq, request);
            s64 priority = scenario.fifo ? 0 : spec.priority;
            double deadline =
                spec.hasDeadline
                    ? event.time
                          + static_cast<double>(spec.deadlineMs) / 1e3
                    : 0.0;
            ServeQueue::Admission admission =
                queue.admit(seq, priority, spec.hasDeadline, deadline);
            if (admission.kind == ServeQueue::Admission::Kind::kShedSelf)
                shedWaiting(seq, /*deadline=*/false);
            else if (admission.kind
                     == ServeQueue::Admission::Kind::kShedVictim)
                shedWaiting(admission.victim, /*deadline=*/false);
            double nextTime = 0.0;
            if (arrivals.next(&nextTime)) {
                SimEvent next;
                next.time = nextTime;
                next.kind = SimEvent::Kind::kArrival;
                calendar.push(next);
            }
            dispatch(event.time);
        } else {
            ChipState &chip = fleet[event.chip];
            SimChipUse &use = out->chips[chip.use];
            chip.busy = false;
            ++use.served;
            use.busySeconds += chip.serviceSeconds;
            ++out->plans[chip.plan].served;
            ++out->completed;
            ++out->workloads[chip.workload].completed;
            double total = chip.waitSeconds + chip.serviceSeconds;
            out->queueWaitSeconds.record(chip.waitSeconds);
            out->serviceSeconds.record(chip.serviceSeconds);
            out->totalSeconds.record(total);
            out->workloads[chip.workload].totalSeconds.record(total);
            out->makespanSeconds = event.time;
            dispatch(event.time);
        }
    }

    out->durationSeconds =
        scenario.arrival.process == SimArrivalSpec::Process::kTrace
            ? lastArrival
            : scenario.durationSeconds;
    for (SimChipUse &use : out->chips) {
        use.utilization = out->makespanSeconds > 0.0
                              ? use.busySeconds / out->makespanSeconds
                              : 0.0;
    }
    return true;
}

namespace {

const char *
arrivalProcessName(SimArrivalSpec::Process process)
{
    switch (process) {
    case SimArrivalSpec::Process::kPoisson: return "poisson";
    case SimArrivalSpec::Process::kOnOff: return "onoff";
    case SimArrivalSpec::Process::kTrace: return "trace";
    }
    return "poisson";
}

} // namespace

std::string
renderSimReport(const SimScenario &scenario, const SimResult &result,
                int indent)
{
    JsonWriter w(indent);
    w.beginObject();
    w.field("schema", kSimReportSchema);
    w.key("scenario")
        .beginObject()
        .field("name", scenario.name)
        .field("seed", static_cast<s64>(scenario.seed))
        .field("arrival", arrivalProcessName(scenario.arrival.process))
        .field("discipline", scenario.fifo ? "fifo" : "priority")
        .field("duration_seconds", result.durationSeconds)
        .field("max_queue", scenario.maxQueue)
        .endObject();
    w.key("requests")
        .beginObject()
        .field("arrived", result.arrived)
        .field("completed", result.completed)
        .field("shed_admission", result.shedAdmission)
        .field("shed_deadline", result.shedDeadline)
        .endObject();
    w.field("throughput_rps", result.throughputPerSecond());
    w.field("makespan_seconds", result.makespanSeconds);
    w.key("latency").beginObject();
    w.key("queue_wait_seconds");
    result.queueWaitSeconds.writeJson(w);
    w.key("service_seconds");
    result.serviceSeconds.writeJson(w);
    w.key("total_seconds");
    result.totalSeconds.writeJson(w);
    w.endObject();
    w.key("chips").beginArray();
    for (const SimChipUse &use : result.chips) {
        w.beginObject()
            .field("chip", use.chip)
            .field("clock_ghz", use.clockGhz)
            .field("served", use.served)
            .field("utilization", use.utilization)
            .field("busy_seconds", use.busySeconds)
            .field("installs", use.installs)
            .field("switched_arrays", use.switchedArrays)
            .field("reconfigure_seconds", use.reconfigureSeconds)
            .endObject();
    }
    w.endArray();
    w.key("workloads").beginArray();
    for (const SimWorkloadUse &use : result.workloads) {
        w.beginObject()
            .field("name", use.name)
            .field("arrived", use.arrived)
            .field("completed", use.completed)
            .field("shed_admission", use.shedAdmission)
            .field("shed_deadline", use.shedDeadline);
        w.key("total_seconds");
        use.totalSeconds.writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.key("plans").beginArray();
    for (const SimPlan &plan : result.plans) {
        w.beginObject()
            .field("workload", plan.workload)
            .field("kv_bucket", plan.kvBucket)
            .field("chip", plan.chip)
            .field("key", plan.key)
            .field("segments", plan.segments)
            .field("cold_cycles", plan.coldCycles)
            .field("resident_cycles", plan.residentCycles)
            .field("reconfigure_cycles", plan.reconfigureCycles)
            .field("switched_arrays", plan.switchedArrays)
            .field("served", plan.served)
            .endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace cmswitch
