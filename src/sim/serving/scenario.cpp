#include "sim/serving/scenario.hpp"

#include <limits>

#include "service/serve/serve_protocol.hpp"
#include "support/json_fields.hpp"
#include "support/json_parse.hpp"

namespace cmswitch {

namespace {

/** Reject keys outside @p allowed (strictness: a typo'd key must not
 *  silently simulate something other than what was asked for). */
bool
checkKeys(const JsonValue &object, const char *const *allowed,
          std::size_t allowedCount, const char *where, std::string *error)
{
    for (const auto &[key, value] : object.members) {
        bool known = false;
        for (std::size_t i = 0; i < allowedCount; ++i)
            known = known || key == allowed[i];
        if (!known)
            return jsonFail(error, std::string("unknown key '") + key
                                       + "' in " + where);
    }
    return true;
}

bool
parseChipSpec(const JsonValue &doc, std::size_t index, SimChipSpec *out,
              std::string *error)
{
    const char *where = "chips entry";
    if (!doc.isObject())
        return jsonFail(error, "chips entries must be objects");
    static constexpr const char *kKeys[] = {"chip", "count", "clock_ghz"};
    if (!checkKeys(doc, kKeys, std::size(kKeys), where, error))
        return false;
    if (!jsonTakeString(doc, "chip", &out->preset, error)
        || !jsonTakeInt(doc, "count", 1, &out->count, nullptr, error)
        || !jsonTakeDouble(doc, "clock_ghz", 0.0, &out->clockGhz, nullptr,
                           error)) {
        return false;
    }
    if (!serveChipKnown(out->preset))
        return jsonFail(error, "chips[" + std::to_string(index)
                                   + "]: unknown chip '" + out->preset
                                   + "' (presets: dynaplasia, prime)");
    if (!(out->clockGhz > 0.0))
        return jsonFail(error, "chips[" + std::to_string(index)
                                   + "]: 'clock_ghz' must be > 0");
    return true;
}

bool
parseWorkloadSpec(const JsonValue &doc, std::size_t index,
                  SimWorkloadSpec *out, std::string *error)
{
    std::string where = "workloads[" + std::to_string(index) + "]";
    if (!doc.isObject())
        return jsonFail(error, "workloads entries must be objects");
    static constexpr const char *kKeys[] = {
        "name",     "model",  "compiler",    "batch",
        "seq",      "layers", "optimize",    "weight",
        "priority", "deadline_ms", "kv_buckets", "kv_min",
        "kv_max",
    };
    if (!checkKeys(doc, kKeys, std::size(kKeys), "workloads entry",
                   error))
        return false;
    bool kvMaxPresent = false;
    if (!jsonTakeString(doc, "name", &out->name, error)
        || !jsonTakeString(doc, "model", &out->model, error)
        || !jsonTakeString(doc, "compiler", &out->compiler, error)
        || !jsonTakeInt(doc, "batch", 1, &out->batch, nullptr, error)
        || !jsonTakeInt(doc, "seq", 1, &out->seq, nullptr, error)
        || !jsonTakeInt(doc, "layers", 0, &out->layers, nullptr, error)
        || !jsonTakeBool(doc, "optimize", &out->optimize, error)
        || !jsonTakeDouble(doc, "weight", 0.0, &out->weight, nullptr,
                           error)
        || !jsonTakeInt(doc, "priority",
                        std::numeric_limits<s64>::min(), &out->priority,
                        nullptr, error)
        || !jsonTakeInt(doc, "deadline_ms", 0, &out->deadlineMs,
                        &out->hasDeadline, error)
        || !jsonTakeIntArray(doc, "kv_buckets", 1, &out->kvBuckets,
                             error)
        || !jsonTakeInt(doc, "kv_min", 1, &out->kvMin, nullptr, error)
        || !jsonTakeInt(doc, "kv_max", 1, &out->kvMax, &kvMaxPresent,
                        error)) {
        return false;
    }
    if (out->model.empty())
        return jsonFail(error, where + ": 'model' is required");
    if (!serveModelKnown(out->model))
        return jsonFail(error, where + ": unknown model '" + out->model
                                   + "' (zoo model names and tiny-mlp "
                                     "only, not file paths)");
    if (!serveCompilerKnown(out->compiler))
        return jsonFail(error, where + ": unknown compiler '"
                                   + out->compiler + "'");
    if (!(out->weight > 0.0))
        return jsonFail(error, where + ": 'weight' must be > 0");
    if (out->name.empty())
        out->name = out->model;
    if (out->kvBuckets.empty()) {
        if (doc.find("kv_min") || kvMaxPresent)
            return jsonFail(error, where + ": 'kv_min'/'kv_max' need "
                                       "'kv_buckets'");
        return true;
    }
    if (!serveModelIsTransformer(out->model))
        return jsonFail(error, where + ": 'kv_buckets' needs a "
                                   "transformer model, got '"
                                   + out->model + "'");
    for (std::size_t i = 1; i < out->kvBuckets.size(); ++i) {
        if (out->kvBuckets[i] <= out->kvBuckets[i - 1])
            return jsonFail(error, where + ": 'kv_buckets' must be "
                                       "strictly increasing");
    }
    if (!kvMaxPresent)
        out->kvMax = out->kvBuckets.back();
    if (out->kvMax > out->kvBuckets.back())
        return jsonFail(error, where + ": 'kv_max' exceeds the largest "
                                   "bucket");
    if (out->kvMin > out->kvMax)
        return jsonFail(error, where + ": 'kv_min' must be <= 'kv_max'");
    return true;
}

bool
parseArrivalSpec(const JsonValue &doc, SimArrivalSpec *out,
                 std::string *error)
{
    if (!doc.isObject())
        return jsonFail(error, "'arrival' must be an object");
    static constexpr const char *kKeys[] = {
        "process",
        "rate_per_second",
        "burst_rate_per_second",
        "mean_burst_seconds",
        "mean_idle_seconds",
        "times_seconds",
    };
    if (!checkKeys(doc, kKeys, std::size(kKeys), "'arrival'", error))
        return false;
    std::string process;
    if (!jsonTakeString(doc, "process", &process, error))
        return false;
    if (process == "poisson")
        out->process = SimArrivalSpec::Process::kPoisson;
    else if (process == "onoff")
        out->process = SimArrivalSpec::Process::kOnOff;
    else if (process == "trace")
        out->process = SimArrivalSpec::Process::kTrace;
    else if (process.empty())
        return jsonFail(error, "'arrival' needs a 'process'");
    else
        return jsonFail(error, "unknown arrival process '" + process
                                   + "' (poisson, onoff, trace)");
    if (!jsonTakeDouble(doc, "rate_per_second", 0.0, &out->ratePerSecond,
                        nullptr, error)
        || !jsonTakeDouble(doc, "burst_rate_per_second", 0.0,
                           &out->burstRatePerSecond, nullptr, error)
        || !jsonTakeDouble(doc, "mean_burst_seconds", 0.0,
                           &out->meanBurstSeconds, nullptr, error)
        || !jsonTakeDouble(doc, "mean_idle_seconds", 0.0,
                           &out->meanIdleSeconds, nullptr, error)
        || !jsonTakeDoubleArray(doc, "times_seconds", 0.0,
                                &out->timesSeconds, error)) {
        return false;
    }

    switch (out->process) {
    case SimArrivalSpec::Process::kPoisson:
        if (!(out->ratePerSecond > 0.0))
            return jsonFail(error, "poisson arrivals need "
                                   "'rate_per_second' > 0");
        break;
    case SimArrivalSpec::Process::kOnOff:
        if (!(out->burstRatePerSecond > 0.0)
            || !(out->meanBurstSeconds > 0.0)
            || !(out->meanIdleSeconds > 0.0)) {
            return jsonFail(error,
                            "onoff arrivals need 'burst_rate_per_"
                            "second', 'mean_burst_seconds' and "
                            "'mean_idle_seconds' all > 0");
        }
        break;
    case SimArrivalSpec::Process::kTrace:
        if (out->timesSeconds.empty())
            return jsonFail(error, "trace arrivals need a non-empty "
                                   "'times_seconds'");
        for (std::size_t i = 1; i < out->timesSeconds.size(); ++i) {
            if (out->timesSeconds[i] < out->timesSeconds[i - 1])
                return jsonFail(error, "'times_seconds' must be sorted "
                                       "ascending");
        }
        break;
    }
    return true;
}

} // namespace

bool
parseSimScenario(const std::string &text, SimScenario *out,
                 std::string *error)
{
    JsonValue doc;
    if (!parseJson(text, &doc, error))
        return false;
    if (!doc.isObject())
        return jsonFail(error, "scenario must be a JSON object");

    *out = SimScenario();
    static constexpr const char *kKeys[] = {
        "schema",    "name",  "seed",       "duration_seconds",
        "max_queue", "discipline", "arrival", "chips",
        "workloads",
    };
    if (!checkKeys(doc, kKeys, std::size(kKeys), "scenario", error))
        return false;

    std::string schema;
    if (!jsonTakeString(doc, "schema", &schema, error))
        return false;
    if (schema != kSimScenarioSchema)
        return jsonFail(error, std::string("scenario 'schema' must be "
                                           "\"")
                                   + kSimScenarioSchema + "\"");

    s64 seed = 1;
    std::string discipline = "priority";
    if (!jsonTakeString(doc, "name", &out->name, error)
        || !jsonTakeInt(doc, "seed", 0, &seed, nullptr, error)
        || !jsonTakeDouble(doc, "duration_seconds", 0.0,
                           &out->durationSeconds, nullptr, error)
        || !jsonTakeInt(doc, "max_queue", 1, &out->maxQueue, nullptr,
                        error)
        || !jsonTakeString(doc, "discipline", &discipline, error)) {
        return false;
    }
    out->seed = static_cast<u64>(seed);
    if (discipline == "fifo")
        out->fifo = true;
    else if (discipline != "priority")
        return jsonFail(error, "unknown discipline '" + discipline
                                   + "' (fifo, priority)");

    const JsonValue *arrival = doc.find("arrival");
    if (!arrival)
        return jsonFail(error, "scenario needs an 'arrival' object");
    if (!parseArrivalSpec(*arrival, &out->arrival, error))
        return false;
    if (out->arrival.process != SimArrivalSpec::Process::kTrace
        && !(out->durationSeconds > 0.0)) {
        return jsonFail(error, "scenario needs 'duration_seconds' > 0 "
                               "(trace replay derives it instead)");
    }

    const JsonValue *chips = doc.find("chips");
    if (!chips || !chips->isArray() || chips->items.empty())
        return jsonFail(error, "scenario needs a non-empty 'chips' "
                               "array");
    out->chips.clear();
    for (std::size_t i = 0; i < chips->items.size(); ++i) {
        SimChipSpec spec;
        if (!parseChipSpec(chips->items[i], i, &spec, error))
            return false;
        out->chips.push_back(std::move(spec));
    }

    const JsonValue *workloads = doc.find("workloads");
    if (!workloads || !workloads->isArray() || workloads->items.empty())
        return jsonFail(error, "scenario needs a non-empty 'workloads' "
                               "array");
    out->workloads.clear();
    for (std::size_t i = 0; i < workloads->items.size(); ++i) {
        SimWorkloadSpec spec;
        if (!parseWorkloadSpec(workloads->items[i], i, &spec, error))
            return false;
        for (const SimWorkloadSpec &earlier : out->workloads) {
            if (earlier.name == spec.name)
                return jsonFail(error, "duplicate workload name '"
                                           + spec.name + "'");
        }
        out->workloads.push_back(std::move(spec));
    }
    return true;
}

} // namespace cmswitch
