#include "sim/timing.hpp"

#include <algorithm>
#include <map>

#include "cost/cost_model.hpp"
#include "support/logging.hpp"

namespace cmswitch {

double
TimingReport::switchShare() const
{
    Cycles t = total();
    if (t <= 0)
        return 0.0;
    return static_cast<double>(breakdown.modeSwitch)
         / static_cast<double>(t);
}

TimingSimulator::TimingSimulator(const Deha &deha)
    : deha_(&deha)
{
}

TimingReport
TimingSimulator::run(const MetaProgram &program) const
{
    const ChipConfig &chip = deha_->config();
    CostModel cost(*deha_);
    TimingReport report;

    for (const SegmentRecord &seg : program.segments()) {
        Cycles seg_switch = 0;
        Cycles seg_rewrite = 0;
        Cycles seg_dma = 0;
        std::map<OpId, s64> rewrite_groups; // arrays per source operator
        for (const MetaOp &op : seg.prologue) {
            switch (op.kind) {
              case MetaOpKind::kSwitch:
                seg_switch += op.arrayCount
                            * (op.switchTo == ArrayMode::kCompute
                                   ? chip.switchM2cLatency
                                   : chip.switchC2mLatency);
                report.switchedArrays += op.arrayCount;
                break;
              case MetaOpKind::kLoadWeight:
                // Eq. 2: one operator's arrays program serially (slices
                // of an operator share its write port); distinct
                // operators fill in parallel.
                rewrite_groups[op.graphOp] += op.arrayCount;
                break;
              case MetaOpKind::kLoad:
                seg_dma += cost.mainMemoryTransfer(op.bytes);
                break;
              default:
                cmswitch_panic("unexpected op in prologue");
            }
        }
        for (const auto &[op, arrays] : rewrite_groups)
            seg_rewrite = std::max(seg_rewrite,
                                   arrays * chip.writeArrayLatency());

        // The parallel block: pipelined operators bound by the slowest,
        // with D_main apportioned by traffic (as the compiler assumed).
        std::vector<OpWorkload> body_work;
        for (const MetaOp &op : seg.body)
            if (op.kind == MetaOpKind::kCompute)
                body_work.push_back(op.work);
        std::vector<double> shares =
            seg.pipelinedBody ? CostModel::dmainShares(body_work)
                              : std::vector<double>(body_work.size(), 1.0);
        Cycles body = 0;
        std::size_t compute_idx = 0;
        for (const MetaOp &op : seg.body) {
            switch (op.kind) {
              case MetaOpKind::kCompute: {
                Cycles l = cost.opLatency(op.work, op.alloc,
                                          shares[compute_idx]);
                body = seg.pipelinedBody ? std::max(body, l) : body + l;
                ++compute_idx;
                break;
              }
              case MetaOpKind::kFuCompute:
                body = std::max(body, cost.fixedOverhead(op.work));
                break;
              default:
                cmswitch_panic("unexpected op in parallel block");
            }
        }

        Cycles seg_store = 0;
        for (const MetaOp &op : seg.epilogue) {
            cmswitch_assert(op.kind == MetaOpKind::kStore,
                            "unexpected op in epilogue");
            seg_store += cost.mainMemoryTransfer(op.bytes);
        }

        report.breakdown.modeSwitch += seg_switch;
        report.breakdown.rewrite += seg_rewrite;
        report.breakdown.writeback += seg_dma + seg_store;
        report.breakdown.intra += body;
        report.segmentCycles.push_back(seg_switch + seg_rewrite + seg_dma
                                       + body + seg_store);
    }
    return report;
}

} // namespace cmswitch
