#include "sim/functional.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <queue>

#include "support/logging.hpp"

namespace cmswitch {

namespace {

/**
 * Tiled int8 matmul: the stationary operand is cut into
 * arrayRows x arrayCols tiles and partial sums accumulate in wide
 * integers, as the CIM arrays + peripheral accumulators would.
 */
void
tiledMatMulInto(const s32 *a, const s32 *b, s32 *out, s64 m, s64 n, s64 k,
                const ChipConfig &chip)
{
    std::vector<s64> acc(static_cast<std::size_t>(m * k), 0);
    for (s64 r0 = 0; r0 < n; r0 += chip.arrayRows) {
        s64 r1 = std::min(n, r0 + chip.arrayRows);
        for (s64 c0 = 0; c0 < k; c0 += chip.arrayCols) {
            s64 c1 = std::min(k, c0 + chip.arrayCols);
            // One array tile holds b[r0..r1, c0..c1]; stream the rows.
            for (s64 row = 0; row < m; ++row) {
                for (s64 col = c0; col < c1; ++col) {
                    s64 partial = 0;
                    for (s64 r = r0; r < r1; ++r) {
                        partial += static_cast<s64>(a[row * n + r])
                                 * static_cast<s64>(b[r * k + col]);
                    }
                    acc[static_cast<std::size_t>(row * k + col)] += partial;
                }
            }
        }
    }
    for (s64 i = 0; i < m * k; ++i)
        out[static_cast<std::size_t>(i)] =
            requantize(acc[static_cast<std::size_t>(i)]);
}

void
executeCimOpTiled(const Graph &graph, const Operator &op, const Deha &deha,
                  TensorValues &values)
{
    const ChipConfig &chip = deha.config();
    switch (op.kind) {
      case OpKind::kMatMul:
      case OpKind::kDynMatMul: {
        const std::vector<s32> &a = values.at(op.inputs[0]);
        const std::vector<s32> &b = values.at(op.inputs[1]);
        auto [it, inserted] = values.emplace(
            op.outputs[0],
            std::vector<s32>(static_cast<std::size_t>(
                graph.tensor(op.outputs[0]).shape.numElements())));
        cmswitch_assert(inserted, "tensor computed twice: ", op.name);
        const Shape &bs = graph.tensor(op.inputs[1]).shape;
        s64 n = bs.dim(bs.rank() - 2);
        s64 k = bs.lastDim();
        s64 copies = bs.numElements() / (n * k);
        s64 m_total = static_cast<s64>(a.size()) / n;
        s64 m_per_copy = m_total / copies;
        for (s64 c = 0; c < copies; ++c) {
            tiledMatMulInto(a.data() + c * m_per_copy * n,
                            b.data() + c * n * k,
                            it->second.data() + c * m_per_copy * k,
                            m_per_copy, n, k, chip);
        }
        break;
      }
      case OpKind::kConv2d:
      case OpKind::kDepthwiseConv2d: {
        const std::vector<s32> &x = values.at(op.inputs[0]);
        const std::vector<s32> &w = values.at(op.inputs[1]);
        auto [it, inserted] = values.emplace(
            op.outputs[0],
            std::vector<s32>(static_cast<std::size_t>(
                graph.tensor(op.outputs[0]).shape.numElements())));
        cmswitch_assert(inserted, "tensor computed twice: ", op.name);
        const Shape &xs = graph.tensor(op.inputs[0]).shape;
        const Shape &os = graph.tensor(op.outputs[0]).shape;
        s64 batch = xs.dim(0), in_c = xs.dim(1), in_h = xs.dim(2),
            in_w = xs.dim(3);
        s64 out_c = os.dim(1), out_h = os.dim(2), out_w = os.dim(3);
        bool depthwise = op.kind == OpKind::kDepthwiseConv2d;
        s64 groups = depthwise ? in_c : op.conv.groups;
        s64 cpg = depthwise ? 1 : in_c / groups;
        s64 opg = out_c / groups;
        s64 patch = cpg * op.conv.kernelH * op.conv.kernelW;
        s64 m = batch * out_h * out_w;

        // im2col per group, then the tiled matmul path.
        std::vector<s32> cols(static_cast<std::size_t>(m * patch));
        std::vector<s32> wmat(static_cast<std::size_t>(patch * opg));
        std::vector<s32> omat(static_cast<std::size_t>(m * opg));
        for (s64 g = 0; g < groups; ++g) {
            for (s64 nb = 0; nb < batch; ++nb) {
                for (s64 oy = 0; oy < out_h; ++oy) {
                    for (s64 ox = 0; ox < out_w; ++ox) {
                        s64 row = (nb * out_h + oy) * out_w + ox;
                        s64 col = 0;
                        for (s64 ic = 0; ic < cpg; ++ic) {
                            for (s64 ky = 0; ky < op.conv.kernelH; ++ky) {
                                for (s64 kx = 0; kx < op.conv.kernelW; ++kx) {
                                    s64 iy = oy * op.conv.strideH + ky
                                           - op.conv.padH;
                                    s64 ix = ox * op.conv.strideW + kx
                                           - op.conv.padW;
                                    s32 v = 0;
                                    if (iy >= 0 && iy < in_h && ix >= 0
                                        && ix < in_w) {
                                        s64 channel = g * cpg + ic;
                                        s64 xi = ((nb * in_c + channel) * in_h
                                                  + iy) * in_w + ix;
                                        v = x[static_cast<std::size_t>(xi)];
                                    }
                                    cols[static_cast<std::size_t>(
                                        row * patch + col)] = v;
                                    ++col;
                                }
                            }
                        }
                    }
                }
            }
            for (s64 oc = 0; oc < opg; ++oc) {
                s64 oc_abs = g * opg + oc;
                for (s64 p = 0; p < patch; ++p) {
                    wmat[static_cast<std::size_t>(p * opg + oc)] =
                        w[static_cast<std::size_t>(oc_abs * patch + p)];
                }
            }
            tiledMatMulInto(cols.data(), wmat.data(), omat.data(), m, patch,
                            opg, chip);
            for (s64 nb = 0; nb < batch; ++nb) {
                for (s64 oc = 0; oc < opg; ++oc) {
                    s64 oc_abs = g * opg + oc;
                    for (s64 oy = 0; oy < out_h; ++oy) {
                        for (s64 ox = 0; ox < out_w; ++ox) {
                            s64 row = (nb * out_h + oy) * out_w + ox;
                            s64 oi = ((nb * out_c + oc_abs) * out_h + oy)
                                   * out_w + ox;
                            it->second[static_cast<std::size_t>(oi)] =
                                omat[static_cast<std::size_t>(row * opg + oc)];
                        }
                    }
                }
            }
        }
        break;
      }
      default:
        cmswitch_panic("not a CIM op: ", op.name);
    }
}

} // namespace

void
functionalExecute(const Graph &graph, const MetaProgram &program,
                  const Deha &deha, TensorValues &values)
{
    // Per-op count of inputs still missing a value.
    std::vector<s64> missing(static_cast<std::size_t>(graph.numOps()), 0);
    for (const Operator &op : graph.ops()) {
        for (TensorId t : op.inputs)
            if (!values.count(t))
                ++missing[static_cast<std::size_t>(op.id)];
    }

    // Fire every function-unit op whose inputs are ready; CIM ops wait
    // for the program to schedule them.
    std::function<void(TensorId)> produced = [&](TensorId t) {
        for (OpId c : graph.consumersOf(t)) {
            if (--missing[static_cast<std::size_t>(c)] == 0
                && !graph.op(c).isCim()) {
                executeFuOp(graph, graph.op(c), values);
                for (TensorId out : graph.op(c).outputs)
                    produced(out);
            }
        }
    };
    for (const Operator &op : graph.ops()) {
        if (!op.isCim() && missing[static_cast<std::size_t>(op.id)] == 0
            && !values.count(op.outputs[0])) {
            executeFuOp(graph, op, values);
            for (TensorId out : op.outputs)
                produced(out);
        }
    }

    // Expected sub-op occurrences per graph operator.
    std::map<OpId, s64> expected, seen;
    for (const SegmentRecord &seg : program.segments()) {
        for (const MetaOp &mop : seg.body) {
            if (mop.kind == MetaOpKind::kCompute)
                ++expected[mop.graphOp];
        }
    }
    for (OpId id : graph.cimOps()) {
        cmswitch_assert(expected.count(id),
                        "program misses CIM op ", graph.op(id).name);
    }

    for (const SegmentRecord &seg : program.segments()) {
        for (const MetaOp &mop : seg.body) {
            if (mop.kind != MetaOpKind::kCompute)
                continue;
            OpId id = mop.graphOp;
            if (++seen[id] < expected[id])
                continue; // execute once all slices are resident
            const Operator &op = graph.op(id);
            cmswitch_assert(missing[static_cast<std::size_t>(id)] == 0,
                            "program schedules ", op.name,
                            " before its inputs");
            executeCimOpTiled(graph, op, deha, values);
            for (TensorId out : op.outputs)
                produced(out);
        }
    }

    for (TensorId t = 0; t < graph.numTensors(); ++t) {
        cmswitch_assert(values.count(t), "tensor ", graph.tensor(t).name,
                        " never produced");
    }
}

s64
verifyProgram(const Graph &graph, const MetaProgram &program,
              const Deha &deha, u64 seed)
{
    TensorValues seeded = seedTensors(graph, seed);
    TensorValues ref = seeded;
    referenceExecute(graph, ref);
    TensorValues fun = seeded;
    functionalExecute(graph, program, deha, fun);

    s64 mismatches = 0;
    for (TensorId t = 0; t < graph.numTensors(); ++t) {
        if (ref.at(t) != fun.at(t))
            ++mismatches;
    }
    return mismatches;
}

} // namespace cmswitch
