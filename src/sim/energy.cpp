#include "sim/energy.hpp"

#include "support/json.hpp"
#include "support/logging.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

EnergyParams
EnergyParams::dynaplasia()
{
    return EnergyParams{};
}

EnergyParams
EnergyParams::prime()
{
    EnergyParams p;
    p.arrayReadPjPerByte = 0.3;   // ReRAM reads are cheap
    p.arrayWritePjPerByte = 20.0; // programming pulses are not
    p.switchPjPerArray = 15.0;
    return p;
}

EnergyParams
EnergyParams::forChip(const ChipConfig &chip)
{
    switch (chip.technology) {
      case CellTechnology::kReram: return prime();
      case CellTechnology::kEdram: return dynaplasia();
    }
    cmswitch_panic("unknown cell technology");
}

void
EnergyReport::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .field("total_pj", totalPj())
        .field("compute_pj", computePj)
        .field("memory_pj", memoryPj)
        .field("rewrite_pj", rewritePj)
        .field("dma_pj", dmaPj)
        .field("switch_pj", switchPj)
        .field("fu_pj", fuPj)
        .field("static_pj", staticPj)
        .endObject();
}

void
EnergyReport::writeBinary(BinaryWriter &w) const
{
    w.writeF64(computePj);
    w.writeF64(memoryPj);
    w.writeF64(rewritePj);
    w.writeF64(dmaPj);
    w.writeF64(switchPj);
    w.writeF64(fuPj);
    w.writeF64(staticPj);
}

EnergyReport
EnergyReport::readBinary(BinaryReader &r)
{
    EnergyReport report;
    report.computePj = r.readF64();
    report.memoryPj = r.readF64();
    report.rewritePj = r.readF64();
    report.dmaPj = r.readF64();
    report.switchPj = r.readF64();
    report.fuPj = r.readF64();
    report.staticPj = r.readF64();
    return report;
}

EnergyModel::EnergyModel(const Deha &deha, EnergyParams params)
    : deha_(&deha), params_(params)
{
}

EnergyReport
EnergyModel::price(const MetaProgram &program, Cycles total_cycles) const
{
    const ChipConfig &chip = deha_->config();
    EnergyReport report;

    for (const SegmentRecord &seg : program.segments()) {
        for (const MetaOp &op : seg.prologue) {
            switch (op.kind) {
              case MetaOpKind::kSwitch:
                report.switchPj += params_.switchPjPerArray
                                 * static_cast<double>(op.arrayCount);
                break;
              case MetaOpKind::kLoadWeight:
                // Weights arrive from DRAM and are programmed in place.
                report.dmaPj += params_.mainMemoryPjPerByte
                              * static_cast<double>(op.bytes);
                report.rewritePj += params_.arrayWritePjPerByte
                                  * static_cast<double>(op.bytes);
                break;
              case MetaOpKind::kLoad:
                report.dmaPj += params_.mainMemoryPjPerByte
                              * static_cast<double>(op.bytes);
                break;
              default:
                cmswitch_panic("unexpected prologue op");
            }
        }
        for (const MetaOp &op : seg.body) {
            if (op.kind == MetaOpKind::kFuCompute) {
                report.fuPj += params_.fuPjPerElem
                             * static_cast<double>(op.work.vectorElems);
                continue;
            }
            cmswitch_assert(op.kind == MetaOpKind::kCompute,
                            "unexpected body op");
            report.computePj += params_.macPj
                              * static_cast<double>(op.work.macs);
            report.fuPj += params_.fuPjPerElem
                         * static_cast<double>(op.work.vectorElems);

            // Streamed operand bytes split between memory-mode arrays
            // and the off-chip link by contributed bandwidth (Eq. 10).
            double stream = static_cast<double>(op.work.inputBytes
                                                + op.work.outputBytes);
            if (op.work.dynamicWeights) {
                stream += static_cast<double>(op.work.weightBytes);
                report.rewritePj += params_.arrayWritePjPerByte
                                  * static_cast<double>(op.work.weightBytes);
            }
            double mem_bw = static_cast<double>(op.alloc.memoryArrays())
                          * chip.internalBwPerArray;
            double total_bw = mem_bw + chip.dMain();
            double on_chip = total_bw > 0.0 ? stream * mem_bw / total_bw
                                            : 0.0;
            report.memoryPj += params_.arrayReadPjPerByte * on_chip;
            report.dmaPj += params_.mainMemoryPjPerByte * (stream - on_chip);
        }
        for (const MetaOp &op : seg.epilogue) {
            cmswitch_assert(op.kind == MetaOpKind::kStore,
                            "unexpected epilogue op");
            report.dmaPj += params_.mainMemoryPjPerByte
                          * static_cast<double>(op.bytes);
        }
    }
    report.staticPj = params_.staticPjPerCycle
                    * static_cast<double>(total_cycles);
    return report;
}

} // namespace cmswitch
