/**
 * @file
 * CIM functional simulator: executes a compiled meta-operator program
 * with real int8 tensors, lowering each CIM.compute onto array-sized
 * weight tiles with int32 partial-sum accumulation — the datapath a
 * dual-mode chip would exercise. Function-unit operators are triggered
 * as their producers retire. Results must match the reference executor
 * bit-exactly (the paper's PyTorch cross-check, Sec. 5.1).
 */

#ifndef CMSWITCH_SIM_FUNCTIONAL_HPP
#define CMSWITCH_SIM_FUNCTIONAL_HPP

#include "arch/deha.hpp"
#include "graph/graph.hpp"
#include "metaop/program.hpp"
#include "sim/reference.hpp"

namespace cmswitch {

/**
 * Execute @p program over @p graph starting from @p values (inputs +
 * weights seeded). On return every tensor of the graph has a value.
 * panics if the program does not cover every CIM operator of the graph
 * exactly once (per sub-operator slice).
 */
void functionalExecute(const Graph &graph, const MetaProgram &program,
                       const Deha &deha, TensorValues &values);

/**
 * Convenience: seed, run reference + functional, and compare every
 * tensor. Returns the number of mismatching tensors (0 == pass).
 */
s64 verifyProgram(const Graph &graph, const MetaProgram &program,
                  const Deha &deha, u64 seed = 42);

} // namespace cmswitch

#endif // CMSWITCH_SIM_FUNCTIONAL_HPP
