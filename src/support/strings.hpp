/**
 * @file
 * Small string helpers used by serializers, parsers and table output.
 */

#ifndef CMSWITCH_SUPPORT_STRINGS_HPP
#define CMSWITCH_SUPPORT_STRINGS_HPP

#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cmswitch {

namespace detail {

inline void
appendPart(std::string &out, std::string_view part)
{
    out.append(part);
}

template <typename Number,
          typename = std::enable_if_t<std::is_arithmetic_v<Number>>>
inline void
appendPart(std::string &out, Number part)
{
    out.append(std::to_string(part));
}

} // namespace detail

/**
 * Concatenate strings, string views, literals and numbers into one
 * std::string via append() only. Use this instead of chained
 * `operator+` where a `const char * + std::string&&` chain would form:
 * GCC 12's optimizer emits false-positive -Wrestrict warnings for that
 * pattern at -O3 (PR105651), and the repo builds with -Werror.
 */
template <typename... Parts>
inline std::string
concat(Parts &&...parts)
{
    std::string out;
    (detail::appendPart(out, parts), ...);
    return out;
}

/** Split @p text on @p sep; empty fields are kept. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** True when @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Join the range of strings with @p sep between elements. */
std::string join(const std::vector<std::string> &parts, std::string_view sep);

/** Format a double with @p digits fractional digits. */
std::string formatDouble(double value, int digits = 2);

/** Render a byte count as a human-friendly string (e.g. "9.4 MiB"). */
std::string formatBytes(double bytes);

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_STRINGS_HPP
