/**
 * @file
 * Common integer typedefs and small utilities shared by every module.
 */

#ifndef CMSWITCH_SUPPORT_COMMON_HPP
#define CMSWITCH_SUPPORT_COMMON_HPP

#include <cstdint>
#include <limits>

namespace cmswitch {

using s8 = std::int8_t;
using u8 = std::uint8_t;
using s32 = std::int32_t;
using u32 = std::uint32_t;
using s64 = std::int64_t;
using u64 = std::uint64_t;

/** Cycle count used by every latency model and the timing simulator. */
using Cycles = s64;

/** Ceiling division for non-negative integers. */
constexpr s64
ceilDiv(s64 numerator, s64 denominator)
{
    return (numerator + denominator - 1) / denominator;
}

/** Sentinel for "no latency computed yet / infeasible". */
constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max() / 4;

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_COMMON_HPP
