/**
 * @file
 * Atomic file publication, shared by everything that drops files into a
 * concurrently-read directory (plan-cache artifact stores, the stats
 * sidecar). One copy of the protocol: bytes go to a process-unique
 * temp name next to the target, then an atomic rename publishes them,
 * so a reader sees the old file, the new file, or no file — never a
 * torn one.
 */

#ifndef CMSWITCH_SUPPORT_ATOMIC_FILE_HPP
#define CMSWITCH_SUPPORT_ATOMIC_FILE_HPP

#include <filesystem>
#include <string_view>

namespace cmswitch {

/**
 * Publish @p bytes at @p final_path via `<final>.tmp.<pid>.<seq>` +
 * rename. Best effort: on I/O failure the temp file is removed, a
 * warning is logged, and false is returned — callers treat publication
 * as an accelerator, not a durability contract.
 */
bool publishFileAtomically(const std::filesystem::path &final_path,
                           std::string_view bytes);

/**
 * Read @p path fully into @p out (binary). Returns false — leaving
 * @p out empty — when the file cannot be opened. The read half of the
 * publication protocol above: published files are replaced atomically,
 * so a successful open reads a complete document.
 */
bool readFileBytes(const std::filesystem::path &path, std::string *out);

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_ATOMIC_FILE_HPP
