#include "support/strings.hpp"

#include <cctype>
#include <cmath>
#include <sstream>

namespace cmswitch {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
formatDouble(double value, int digits)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << value;
    return oss.str();
}

std::string
formatBytes(double bytes)
{
    static const char *units[] = { "B", "KiB", "MiB", "GiB", "TiB" };
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    if (unit == 0)
        return formatDouble(bytes, 0) + " B";
    return formatDouble(bytes, bytes < 10 ? 2 : 1) + " " + units[unit];
}

} // namespace cmswitch
