/**
 * @file
 * Typed field extractors over a parsed JsonValue object — the shared
 * vocabulary of every strict JSON-lines/config parser in the tree
 * (serve_protocol.cpp, sim/serving/scenario.cpp).
 *
 * Convention: an absent key is fine (the caller's default stands); a
 * present key with the wrong type, or a value outside the stated
 * bounds, fails with a message naming the key. Nothing here throws or
 * fatals — these feed parsers whose inputs are attacker-adjacent
 * (wire requests) or operator-written (scenario files), where a bad
 * field must cost one error message, never the process.
 */

#ifndef CMSWITCH_SUPPORT_JSON_FIELDS_HPP
#define CMSWITCH_SUPPORT_JSON_FIELDS_HPP

#include <string>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

class JsonValue;

/** Set @p *error to @p message (when non-null) and return false. */
bool jsonFail(std::string *error, std::string message);

/** @{ Scalar extractors: absent is fine, wrong type is an error.
 *  @p present (where accepted, may be null) reports whether the key
 *  was there — for fields whose presence itself means something. */
bool jsonTakeString(const JsonValue &object, const char *key,
                    std::string *out, std::string *error);
bool jsonTakeInt(const JsonValue &object, const char *key, s64 minValue,
                 s64 *out, bool *present, std::string *error);
bool jsonTakeBool(const JsonValue &object, const char *key, bool *out,
                  std::string *error);
bool jsonTakeDouble(const JsonValue &object, const char *key,
                    double minValue, double *out, bool *present,
                    std::string *error);
/** @} */

/** @{ Homogeneous array extractors; every element obeys @p minValue. */
bool jsonTakeIntArray(const JsonValue &object, const char *key,
                      s64 minValue, std::vector<s64> *out,
                      std::string *error);
bool jsonTakeDoubleArray(const JsonValue &object, const char *key,
                         double minValue, std::vector<double> *out,
                         std::string *error);
/** @} */

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_JSON_FIELDS_HPP
