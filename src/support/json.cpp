#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/logging.hpp"

namespace cmswitch {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    cmswitch_assert(std::isfinite(value),
                    "JSON cannot represent non-finite number");
    // Shortest decimal that round-trips: locale-independent and
    // byte-stable across runs, which the determinism tests rely on.
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
    cmswitch_assert(ec == std::errc(), "double formatting failed");
    std::string out(buf, end);
    // Integral doubles print as "42" — valid JSON, keep as-is.
    return out;
}

JsonWriter::JsonWriter(int indent) : indent_(indent) {}

void
JsonWriter::newlineIndent()
{
    if (indent_ <= 0)
        return;
    out_ += '\n';
    out_.append(scopes_.size() * static_cast<std::size_t>(indent_), ' ');
}

void
JsonWriter::beforeValue()
{
    if (scopes_.empty()) {
        cmswitch_assert(!rootWritten_, "JSON document already complete");
        rootWritten_ = true;
        return;
    }
    if (scopes_.back() == Scope::kObject) {
        cmswitch_assert(keyPending_, "object member needs a key() first");
        keyPending_ = false;
        return;
    }
    // Array element: separator + layout handled here.
    if (hasEntries_.back())
        out_ += ',';
    newlineIndent();
    hasEntries_.back() = true;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    cmswitch_assert(!scopes_.empty() && scopes_.back() == Scope::kObject,
                    "key() outside an object");
    cmswitch_assert(!keyPending_, "two key() calls without a value");
    if (hasEntries_.back())
        out_ += ',';
    newlineIndent();
    hasEntries_.back() = true;
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += indent_ > 0 ? "\": " : "\":";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    scopes_.push_back(Scope::kObject);
    hasEntries_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    cmswitch_assert(!scopes_.empty() && scopes_.back() == Scope::kObject,
                    "endObject() without matching beginObject()");
    cmswitch_assert(!keyPending_, "dangling key() at endObject()");
    bool had = hasEntries_.back();
    scopes_.pop_back();
    hasEntries_.pop_back();
    if (had)
        newlineIndent();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    scopes_.push_back(Scope::kArray);
    hasEntries_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    cmswitch_assert(!scopes_.empty() && scopes_.back() == Scope::kArray,
                    "endArray() without matching beginArray()");
    bool had = hasEntries_.back();
    scopes_.pop_back();
    hasEntries_.pop_back();
    if (had)
        newlineIndent();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(s64 number)
{
    beforeValue();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    beforeValue();
    out_ += jsonNumber(number);
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beforeValue();
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view name, std::string_view text)
{
    return key(name).value(text);
}

JsonWriter &
JsonWriter::field(std::string_view name, const char *text)
{
    return key(name).value(std::string_view(text));
}

JsonWriter &
JsonWriter::field(std::string_view name, s64 number)
{
    return key(name).value(number);
}

JsonWriter &
JsonWriter::field(std::string_view name, double number)
{
    return key(name).value(number);
}

JsonWriter &
JsonWriter::field(std::string_view name, bool flag)
{
    return key(name).value(flag);
}

std::string
JsonWriter::str() const
{
    cmswitch_assert(scopes_.empty(), "str() with open containers");
    cmswitch_assert(rootWritten_, "str() on an empty document");
    return out_ + "\n";
}

} // namespace cmswitch
