#include "support/serialize.hpp"

#include <bit>
#include <cstring>

#include "support/hash.hpp"

namespace cmswitch {

namespace {

/** Serialise @p value as @p Bytes little-endian bytes. */
template <std::size_t Bytes, typename T>
void
appendLe(std::string *out, T value)
{
    static_assert(sizeof(T) == Bytes);
    for (std::size_t i = 0; i < Bytes; ++i)
        out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

template <std::size_t Bytes, typename T>
T
loadLe(const void *bytes)
{
    static_assert(sizeof(T) == Bytes);
    const auto *p = static_cast<const unsigned char *>(bytes);
    T value = 0;
    for (std::size_t i = 0; i < Bytes; ++i)
        value |= static_cast<T>(p[i]) << (8 * i);
    return value;
}

} // namespace

std::string
wrapEnvelope(std::string_view tag, std::string_view payload)
{
    BinaryWriter file;
    file.writeRaw(tag);
    file.writeU64(static_cast<u64>(payload.size()));
    file.writeU64(fnv1a64(payload));
    file.writeRaw(payload);
    return file.take();
}

bool
unwrapEnvelope(std::string_view tag, std::string_view data,
               std::string_view *payload, std::string *error)
{
    auto fail = [error](const char *reason) {
        if (error)
            *error = reason;
        return false;
    };
    try {
        BinaryReader r(data);
        if (r.readRaw(tag.size()) != tag)
            return fail("format tag mismatch (not this format, or a "
                        "different format version)");
        u64 length = r.readU64();
        u64 digest = r.readU64();
        if (length != r.remaining())
            return fail("payload length mismatch (truncated or trailing "
                        "bytes)");
        std::string_view body = data.substr(data.size() - r.remaining());
        if (fnv1a64(body) != digest)
            return fail("payload digest mismatch (corrupt)");
        *payload = body;
        return true;
    } catch (const std::exception &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

BinaryWriter &
BinaryWriter::writeU8(u8 value)
{
    out_.push_back(static_cast<char>(value));
    return *this;
}

BinaryWriter &
BinaryWriter::writeU32(u32 value)
{
    appendLe<4>(&out_, value);
    return *this;
}

BinaryWriter &
BinaryWriter::writeU64(u64 value)
{
    appendLe<8>(&out_, value);
    return *this;
}

BinaryWriter &
BinaryWriter::writeS64(s64 value)
{
    return writeU64(static_cast<u64>(value));
}

BinaryWriter &
BinaryWriter::writeF64(double value)
{
    return writeU64(std::bit_cast<u64>(value));
}

BinaryWriter &
BinaryWriter::writeBool(bool value)
{
    return writeU8(value ? 1 : 0);
}

BinaryWriter &
BinaryWriter::writeString(std::string_view text)
{
    writeU64(static_cast<u64>(text.size()));
    out_.append(text);
    return *this;
}

BinaryWriter &
BinaryWriter::writeRaw(std::string_view bytes)
{
    out_.append(bytes);
    return *this;
}

const void *
BinaryReader::need(std::size_t count, const char *what)
{
    if (count > data_.size() - pos_)
        throw SerializeError(std::string("truncated input reading ") + what);
    const void *at = data_.data() + pos_;
    pos_ += count;
    return at;
}

u8
BinaryReader::readU8()
{
    return *static_cast<const unsigned char *>(need(1, "u8"));
}

u32
BinaryReader::readU32()
{
    return loadLe<4, u32>(need(4, "u32"));
}

u64
BinaryReader::readU64()
{
    return loadLe<8, u64>(need(8, "u64"));
}

s64
BinaryReader::readS64()
{
    return static_cast<s64>(readU64());
}

double
BinaryReader::readF64()
{
    return std::bit_cast<double>(readU64());
}

bool
BinaryReader::readBool()
{
    u8 value = readU8();
    if (value > 1)
        throw SerializeError("bool byte out of range");
    return value == 1;
}

std::string
BinaryReader::readString()
{
    u64 length = readU64();
    if (length > data_.size() - pos_)
        throw SerializeError("string length exceeds remaining input");
    return std::string(
        static_cast<const char *>(need(static_cast<std::size_t>(length),
                                       "string bytes")),
        static_cast<std::size_t>(length));
}

std::string
BinaryReader::readRaw(std::size_t count)
{
    return std::string(static_cast<const char *>(need(count, "raw bytes")),
                       count);
}

s64
BinaryReader::readBounded(s64 max_value, const char *what)
{
    s64 value = readS64();
    if (value < 0 || value > max_value)
        throw SerializeError(std::string(what) + " out of range");
    return value;
}

void
BinaryReader::expectEnd() const
{
    if (!atEnd())
        throw SerializeError("trailing bytes after payload");
}

} // namespace cmswitch
