/**
 * @file
 * Open-addressing hash map from non-negative s64 keys to values, built
 * for the segmenter's per-run range caches: the dynamic programming
 * probes the same packed (lo, hi) range keys millions of times per
 * compile, and a `std::map` pays a pointer chase per tree level on
 * every probe. This map keeps keys in one flat power-of-two slot array
 * (linear probing) and values in a deque, so lookups touch one cache
 * line in the common case and references handed out stay valid across
 * later insertions.
 *
 * Deliberately minimal: no erase (the caches are cleared wholesale per
 * run), keys must be >= 0 (negative keys are reserved as empty-slot
 * sentinels), and insertion of a duplicate key is a programming error
 * checked in debug builds.
 */

#ifndef CMSWITCH_SUPPORT_FLAT_MAP_HPP
#define CMSWITCH_SUPPORT_FLAT_MAP_HPP

#include <cassert>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

/** Finalizer of splitmix64: a fast, well-mixing s64 -> u64 hash. */
constexpr u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

template <typename Value>
class FlatRangeMap
{
  public:
    FlatRangeMap() = default;

    /** Pointer to the value stored under @p key, or nullptr. Stable
     *  across later insert() calls. */
    Value *
    find(s64 key)
    {
        if (slots_.empty())
            return nullptr;
        std::size_t mask = slots_.size() - 1;
        std::size_t pos = static_cast<std::size_t>(
                              mix64(static_cast<u64>(key)))
                        & mask;
        while (slots_[pos].key != kEmpty) {
            if (slots_[pos].key == key)
                return &values_[slots_[pos].index];
            pos = (pos + 1) & mask;
        }
        return nullptr;
    }

    const Value *
    find(s64 key) const
    {
        return const_cast<FlatRangeMap *>(this)->find(key);
    }

    /**
     * Store @p value under @p key (which must be >= 0 and absent) and
     * return a reference that stays valid until clear().
     */
    Value &
    insert(s64 key, Value value)
    {
        assert(key >= 0 && "FlatRangeMap keys must be non-negative");
        if ((values_.size() + 1) * 4 > slots_.size() * 3)
            grow();
        values_.push_back(std::move(value));
        place(key, values_.size() - 1);
        return values_.back();
    }

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }

    void
    clear()
    {
        slots_.clear();
        values_.clear();
    }

  private:
    static constexpr s64 kEmpty = -1;

    struct Slot
    {
        s64 key = kEmpty;
        std::size_t index = 0;
    };

    void
    place(s64 key, std::size_t index)
    {
        std::size_t mask = slots_.size() - 1;
        std::size_t pos = static_cast<std::size_t>(
                              mix64(static_cast<u64>(key)))
                        & mask;
        while (slots_[pos].key != kEmpty) {
            assert(slots_[pos].key != key
                   && "duplicate FlatRangeMap insert");
            pos = (pos + 1) & mask;
        }
        slots_[pos].key = key;
        slots_[pos].index = index;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
        for (const Slot &slot : old) {
            if (slot.key != kEmpty)
                place(slot.key, slot.index);
        }
    }

    std::vector<Slot> slots_;
    /** Deque: push_back never moves existing values, so find()/insert()
     *  results survive arbitrary later insertions. */
    std::deque<Value> values_;
};

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_FLAT_MAP_HPP
