#include "support/atomic_file.hpp"

#include <atomic>
#include <fstream>
#include <sstream>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "support/common.hpp"
#include "support/logging.hpp"

namespace cmswitch {

namespace fs = std::filesystem;

namespace {

/** Process + sequence suffix that makes temp file names collision-free
 *  across concurrent writers of one target. */
std::string
tempSuffix()
{
    static std::atomic<u64> sequence{0};
#ifdef _WIN32
    u64 pid = static_cast<u64>(_getpid());
#else
    u64 pid = static_cast<u64>(::getpid());
#endif
    return std::to_string(pid) + "." + std::to_string(++sequence);
}

} // namespace

bool
publishFileAtomically(const fs::path &final_path, std::string_view bytes)
{
    fs::path tmp_path = final_path;
    tmp_path += ".tmp." + tempSuffix();
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out || !(out << bytes) || !out.flush()) {
            warn("cannot write temp file ", tmp_path.string(),
                 "; dropping publication of ", final_path.string());
            std::error_code ec;
            fs::remove(tmp_path, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        warn("cannot publish ", final_path.string(), ": ", ec.message());
        fs::remove(tmp_path, ec);
        return false;
    }
    return true;
}

bool
readFileBytes(const fs::path &path, std::string *out)
{
    out->clear();
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream oss;
    oss << in.rdbuf();
    *out = oss.str();
    return true;
}

} // namespace cmswitch
