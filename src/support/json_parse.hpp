/**
 * @file
 * Minimal strict JSON parser for machine-generated input — the read
 * half of support/json.hpp's writer.
 *
 * Built for the serve daemon's JSON-lines protocol: every request is
 * one small, attacker-adjacent line that must parse completely or be
 * rejected with a message — a malformed request costs one error
 * response, never the process. Hence the posture:
 *
 *  - strict RFC 8259 subset: objects, arrays, strings (with escapes),
 *    numbers, true/false/null; no comments, no trailing commas, no
 *    unquoted keys;
 *  - parseJson() never throws and never fatals — it returns false and
 *    fills a human-readable error with a byte offset;
 *  - bounded recursion (kMaxDepth) so hostile nesting cannot blow the
 *    stack;
 *  - numbers are held as double plus an exact s64 when the text is an
 *    integer in range — protocol fields are ints, and 2^53 artifacts
 *    of double round-tripping would be a silent correctness bug.
 *
 * This is not a general-purpose DOM: documents are expected to be
 * small (one request line, one status report). For *writing* JSON use
 * JsonWriter — the pair round-trips (json_test pins it).
 */

#ifndef CMSWITCH_SUPPORT_JSON_PARSE_HPP
#define CMSWITCH_SUPPORT_JSON_PARSE_HPP

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

class JsonValue
{
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolValue = false;
    double numberValue = 0.0;
    bool isIntegral = false; ///< numberValue is exactly intValue
    s64 intValue = 0;
    std::string stringValue;
    std::vector<JsonValue> items; ///< kArray elements
    /** kObject members in document order (duplicate keys rejected). */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** @{ Kind tests. */
    bool isNull() const { return kind == Kind::kNull; }
    bool isBool() const { return kind == Kind::kBool; }
    bool isNumber() const { return kind == Kind::kNumber; }
    bool isString() const { return kind == Kind::kString; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isObject() const { return kind == Kind::kObject; }
    /** @} */

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue *find(std::string_view key) const;
};

/**
 * Parse @p text as exactly one JSON document (leading/trailing
 * whitespace allowed, anything else after the value is an error).
 * Returns true and fills @p out on success; returns false and puts a
 * "message at byte N" description into @p error otherwise. @p out is
 * left in an unspecified state on failure.
 */
bool parseJson(std::string_view text, JsonValue *out, std::string *error);

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_JSON_PARSE_HPP
