#include "support/task_pool.hpp"

namespace cmswitch {

namespace {
/**
 * Set while the current thread executes a task of *any* pool; forces
 * nested parallelFor calls inline so one shared pool cannot deadlock
 * on itself or oversubscribe the machine.
 */
thread_local bool t_inside_task = false;
} // namespace

bool
TaskPool::insideTask()
{
    return t_inside_task;
}

TaskPool::TaskPool(s64 threads) : threads_(threads < 1 ? 1 : threads)
{
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (s64 t = 1; t < threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
TaskPool::workerLoop()
{
    u64 seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
        if (stopping_)
            return;
        seen = generation_;
        // A worker that wakes after the batch fully drained (job_
        // already cleared) just goes back to sleep; active_ guarantees
        // the batch owner cannot return while we are inside the loop
        // below, so job_/jobSize_ stay valid for the whole drain.
        if (job_ == nullptr)
            continue;
        const std::function<void(s64)> *job = job_;
        s64 size = jobSize_;
        ++active_;
        lock.unlock();
        t_inside_task = true;
        for (;;) {
            s64 i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= size)
                break;
            (*job)(i);
        }
        t_inside_task = false;
        lock.lock();
        if (--active_ == 0)
            done_.notify_all();
    }
}

void
TaskPool::parallelFor(s64 n, const std::function<void(s64)> &fn)
{
    if (n <= 0)
        return;
    if (workers_.empty() || n == 1 || t_inside_task) {
        for (s64 i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &fn;
    jobSize_ = n;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
    lock.unlock();
    wake_.notify_all();

    // The caller claims indices like any worker.
    t_inside_task = true;
    for (;;) {
        s64 i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        fn(i);
    }
    t_inside_task = false;

    // All indices are claimed once next_ >= n, but a worker may still
    // be executing its last claim; wait for every participant to
    // retire before invalidating the batch.
    lock.lock();
    done_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
    jobSize_ = 0;
}

} // namespace cmswitch
