/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic()  - an internal invariant was violated (a cmswitch bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something suspicious but recoverable happened.
 * inform() - plain status output, gated by verbosity.
 */

#ifndef CMSWITCH_SUPPORT_LOGGING_HPP
#define CMSWITCH_SUPPORT_LOGGING_HPP

#include <sstream>
#include <string>

namespace cmswitch {

/** Verbosity levels for inform(); kQuiet suppresses all status chatter. */
enum class LogLevel { kQuiet = 0, kNormal = 1, kVerbose = 2 };

/** Process-wide verbosity; defaults to kNormal. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(LogLevel level, const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

#define cmswitch_panic(...) \
    ::cmswitch::detail::panicImpl(__FILE__, __LINE__, \
                                  ::cmswitch::detail::concat(__VA_ARGS__))

#define cmswitch_fatal(...) \
    ::cmswitch::detail::fatalImpl(__FILE__, __LINE__, \
                                  ::cmswitch::detail::concat(__VA_ARGS__))

#define cmswitch_fatal_if(cond, ...) \
    do { \
        if (cond) { \
            ::cmswitch::detail::fatalImpl(__FILE__, __LINE__, \
                ::cmswitch::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

#define cmswitch_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::cmswitch::detail::panicImpl(__FILE__, __LINE__, \
                ::cmswitch::detail::concat("assertion '", #cond, "' failed. ", \
                                           ##__VA_ARGS__)); \
        } \
    } while (0)

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(LogLevel::kNormal, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
informVerbose(Args &&...args)
{
    detail::informImpl(LogLevel::kVerbose, detail::concat(std::forward<Args>(args)...));
}

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_LOGGING_HPP
