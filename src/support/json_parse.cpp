#include "support/json_parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace cmswitch {

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

namespace {

/** Hostile nesting bound: a protocol line is never this deep. */
constexpr int kMaxDepth = 32;

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool parse(JsonValue *out, std::string *error)
    {
        skipWhitespace();
        if (!parseValue(out, 0))
            return fail(error);
        skipWhitespace();
        if (pos_ != text_.size()) {
            error_ = "trailing characters after the document";
            return fail(error);
        }
        return true;
    }

  private:
    bool fail(std::string *error)
    {
        if (!error_.empty() && error != nullptr)
            *error = error_ + " at byte " + std::to_string(pos_);
        return error_.empty();
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipWhitespace()
    {
        while (!atEnd()) {
            char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    bool expect(char c, const char *what)
    {
        if (atEnd() || peek() != c) {
            error_ = std::string("expected ") + what;
            return false;
        }
        ++pos_;
        return true;
    }

    bool parseLiteral(std::string_view word, const char *what)
    {
        if (text_.substr(pos_, word.size()) != word) {
            error_ = std::string("expected ") + what;
            return false;
        }
        pos_ += word.size();
        return true;
    }

    bool parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth) {
            error_ = "nesting deeper than " + std::to_string(kMaxDepth);
            return false;
        }
        skipWhitespace();
        if (atEnd()) {
            error_ = "unexpected end of input";
            return false;
        }
        switch (peek()) {
        case '{': return parseObject(out, depth);
        case '[': return parseArray(out, depth);
        case '"':
            out->kind = JsonValue::Kind::kString;
            return parseString(&out->stringValue);
        case 't':
            out->kind = JsonValue::Kind::kBool;
            out->boolValue = true;
            return parseLiteral("true", "'true'");
        case 'f':
            out->kind = JsonValue::Kind::kBool;
            out->boolValue = false;
            return parseLiteral("false", "'false'");
        case 'n':
            out->kind = JsonValue::Kind::kNull;
            return parseLiteral("null", "'null'");
        default: return parseNumber(out);
        }
    }

    bool parseObject(JsonValue *out, int depth)
    {
        out->kind = JsonValue::Kind::kObject;
        ++pos_; // '{'
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWhitespace();
            std::string key;
            if (atEnd() || peek() != '"') {
                error_ = "expected a quoted object key";
                return false;
            }
            if (!parseString(&key))
                return false;
            if (out->find(key) != nullptr) {
                error_ = "duplicate object key '" + key + "'";
                return false;
            }
            skipWhitespace();
            if (!expect(':', "':' after object key"))
                return false;
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->members.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (!atEnd() && peek() == ',') {
                ++pos_;
                continue;
            }
            return expect('}', "',' or '}' in object");
        }
    }

    bool parseArray(JsonValue *out, int depth)
    {
        out->kind = JsonValue::Kind::kArray;
        ++pos_; // '['
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->items.push_back(std::move(value));
            skipWhitespace();
            if (!atEnd() && peek() == ',') {
                ++pos_;
                continue;
            }
            return expect(']', "',' or ']' in array");
        }
    }

    bool parseHex4(u32 *out)
    {
        u32 value = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd()) {
                error_ = "truncated \\u escape";
                return false;
            }
            char c = peek();
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<u32>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<u32>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<u32>(c - 'A' + 10);
            else {
                error_ = "bad hex digit in \\u escape";
                return false;
            }
            ++pos_;
        }
        *out = value;
        return true;
    }

    static void appendUtf8(std::string *out, u32 cp)
    {
        if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool parseString(std::string *out)
    {
        ++pos_; // opening quote
        out->clear();
        for (;;) {
            if (atEnd()) {
                error_ = "unterminated string";
                return false;
            }
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                error_ = "raw control character in string";
                return false;
            }
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (atEnd()) {
                error_ = "truncated escape";
                return false;
            }
            char e = text_[pos_++];
            switch (e) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
                u32 cp = 0;
                if (!parseHex4(&cp))
                    return false;
                // Surrogate pair: a high surrogate must be followed by
                // \uDC00..\uDFFF; anything else is malformed.
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (text_.substr(pos_, 2) != "\\u") {
                        error_ = "unpaired high surrogate";
                        return false;
                    }
                    pos_ += 2;
                    u32 low = 0;
                    if (!parseHex4(&low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF) {
                        error_ = "bad low surrogate";
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    error_ = "unpaired low surrogate";
                    return false;
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                error_ = "unknown escape";
                return false;
            }
        }
    }

    bool parseNumber(JsonValue *out)
    {
        std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        std::size_t firstDigit = pos_;
        bool sawDigit = false;
        while (!atEnd() && peek() >= '0' && peek() <= '9') {
            ++pos_;
            sawDigit = true;
        }
        if (pos_ - firstDigit > 1 && text_[firstDigit] == '0') {
            error_ = "leading zero in number";
            pos_ = start;
            return false;
        }
        bool integral = true;
        if (!atEnd() && peek() == '.') {
            integral = false;
            ++pos_;
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            integral = false;
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!sawDigit) {
            error_ = "expected a value";
            pos_ = start;
            return false;
        }
        std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || errno == ERANGE
            || !std::isfinite(value)) {
            error_ = "malformed number '" + token + "'";
            pos_ = start;
            return false;
        }
        out->kind = JsonValue::Kind::kNumber;
        out->numberValue = value;
        if (integral) {
            errno = 0;
            long long exact = std::strtoll(token.c_str(), &end, 10);
            if (end == token.c_str() + token.size() && errno != ERANGE) {
                out->isIntegral = true;
                out->intValue = static_cast<s64>(exact);
            }
        }
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue *out, std::string *error)
{
    return Parser(text).parse(out, error);
}

} // namespace cmswitch
