/**
 * @file
 * Deterministic seeded RNG used for synthetic tensors and property tests.
 * A thin wrapper so every module draws from the same engine type and the
 * whole repo stays reproducible run-to-run.
 */

#ifndef CMSWITCH_SUPPORT_RANDOM_HPP
#define CMSWITCH_SUPPORT_RANDOM_HPP

#include <cstdint>
#include <random>

#include "support/common.hpp"

namespace cmswitch {

/** A reproducible pseudo-random source (mt19937_64 under the hood). */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x5eed'c1a5'5eed'c1a5ull) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    s64
    nextInt(s64 lo, s64 hi)
    {
        std::uniform_int_distribution<s64> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform int8 value, full range. */
    s8 nextInt8() { return static_cast<s8>(nextInt(-128, 127)); }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_RANDOM_HPP
