/**
 * @file
 * Bounded fork-join task pool for the parallel plan search.
 *
 * The pool runs index-parallel loops (`parallelFor`) over [0, n) with
 * the *caller participating*: a pool built for T search threads spawns
 * T-1 workers and the calling thread claims indices alongside them, so
 * T=1 never touches a thread and T=2 costs one worker. Indices are
 * claimed from a shared atomic counter — the order indices *execute*
 * in is nondeterministic, which is why every caller in the search
 * stack writes results into per-index slots and reduces them serially
 * in index order afterwards. The pool itself never reorders or drops
 * work: parallelFor returns only after fn(i) ran exactly once for
 * every i.
 *
 * Nested parallelFor calls (from inside a task, on any pool) run
 * inline on the calling thread: a thread-local depth flag keeps the
 * search levers (DP sharding -> bisection speculation -> B&B subtree
 * solves) from deadlocking on or oversubscribing the one pool they
 * share.
 */

#ifndef CMSWITCH_SUPPORT_TASK_POOL_HPP
#define CMSWITCH_SUPPORT_TASK_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

class TaskPool
{
  public:
    /** Builds a pool for `threads` participants (clamped to >= 1). */
    explicit TaskPool(s64 threads);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Participant count (workers + calling thread). */
    s64 threads() const { return threads_; }

    /**
     * Runs fn(i) for every i in [0, n), blocking until all complete.
     * Runs inline (plain loop, ascending i) when the pool has no
     * workers, n <= 1, or the caller is already inside a task.
     */
    void parallelFor(s64 n, const std::function<void(s64)> &fn);

    /** True while the calling thread executes inside a parallelFor. */
    static bool insideTask();

  private:
    void workerLoop();

    s64 threads_ = 1;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(s64)> *job_ = nullptr; // null between batches
    s64 jobSize_ = 0;
    std::atomic<s64> next_{0}; // next unclaimed index of the batch
    s64 active_ = 0;           // workers currently draining the batch
    u64 generation_ = 0;       // bumped once per batch to wake workers
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_TASK_POOL_HPP
