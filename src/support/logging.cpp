#include "support/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace cmswitch {

namespace {
LogLevel g_level = LogLevel::kNormal;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level != LogLevel::kQuiet)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(g_level) >= static_cast<int>(level))
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace cmswitch
