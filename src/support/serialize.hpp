/**
 * @file
 * Binary (de)serialisation primitives for versioned on-disk artifacts.
 *
 * The persistent plan cache stores compiled artifacts as files; those
 * files must round-trip *exactly* (a report rendered from a restored
 * artifact is byte-identical to one rendered from the fresh compile)
 * and must be portable across processes and machines. Text formats
 * cannot give that guarantee for doubles, so scalars are encoded in
 * fixed-width little-endian binary: integers as their two's-complement
 * bytes, doubles as their IEEE-754 bit pattern, strings as a length
 * prefix plus raw bytes.
 *
 * Readers are defensive: artifact files come from disk and may be
 * truncated, corrupted, or produced by a different format version.
 * Every read is bounds-checked and throws SerializeError instead of
 * walking off the buffer; callers (the disk cache) catch it and fall
 * back to recompiling. SerializeError is *not* derived from the
 * panic/fatal machinery — a bad cache file is an expected environmental
 * condition, not a cmswitch bug or a user error.
 */

#ifndef CMSWITCH_SUPPORT_SERIALIZE_HPP
#define CMSWITCH_SUPPORT_SERIALIZE_HPP

#include <stdexcept>
#include <string>
#include <string_view>

#include "support/common.hpp"

namespace cmswitch {

/**
 * Wrap @p payload in the standard on-disk envelope: the raw @p tag
 * (format name + version, e.g. "cmswitch-plan-v1\n"), a u64 payload
 * byte length, a u64 FNV-1a digest of the payload, then the payload
 * bytes. Truncation and bit corruption are detectable *before* any
 * payload parsing; a future format version is a different tag, so old
 * readers reject it instead of misparsing it. Used by the plan cache's
 * artifact files and its stats sidecar.
 */
std::string wrapEnvelope(std::string_view tag, std::string_view payload);

/**
 * Validate and strip the envelope written by wrapEnvelope(). On success
 * @p payload points into @p data (the caller keeps @p data alive) and
 * the return is true; on any mismatch — wrong tag, bad length, digest
 * failure — returns false with a one-line reason in @p error (when
 * non-null). Never throws: envelope files come from disk and a damaged
 * one is an expected environmental condition.
 */
bool unwrapEnvelope(std::string_view tag, std::string_view data,
                    std::string_view *payload, std::string *error = nullptr);

/** A malformed, truncated, or version-mismatched binary payload. */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Appends fixed-width little-endian values to a byte buffer. */
class BinaryWriter
{
  public:
    BinaryWriter &writeU8(u8 value);
    BinaryWriter &writeU32(u32 value);
    BinaryWriter &writeU64(u64 value);
    BinaryWriter &writeS64(s64 value);
    /** IEEE-754 bit pattern; round-trips every finite and non-finite
     *  double exactly. */
    BinaryWriter &writeF64(double value);
    BinaryWriter &writeBool(bool value);
    /** u64 byte length followed by the raw bytes. */
    BinaryWriter &writeString(std::string_view text);
    /** Raw bytes with no length prefix (file magic etc.). */
    BinaryWriter &writeRaw(std::string_view bytes);

    const std::string &bytes() const { return out_; }
    std::string take() { return std::move(out_); }
    s64 size() const { return static_cast<s64>(out_.size()); }

  private:
    std::string out_;
};

/**
 * Bounds-checked reader over a byte buffer written by BinaryWriter.
 * Does not own the bytes; the caller keeps them alive. All methods
 * throw SerializeError on truncation or out-of-range values.
 */
class BinaryReader
{
  public:
    explicit BinaryReader(std::string_view data) : data_(data) {}

    u8 readU8();
    u32 readU32();
    u64 readU64();
    s64 readS64();
    double readF64();
    bool readBool();
    /** Rejects length prefixes larger than the remaining buffer. */
    std::string readString();
    /** Next @p count raw bytes (file magic etc.). */
    std::string readRaw(std::size_t count);

    /**
     * readS64() checked against [0, @p max_value]; @p what names the
     * field in the error. For enum tags and container counts.
     */
    s64 readBounded(s64 max_value, const char *what);

    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }
    /** Throws unless the whole buffer was consumed (trailing garbage). */
    void expectEnd() const;

  private:
    const void *need(std::size_t count, const char *what);

    std::string_view data_;
    std::size_t pos_ = 0;
};

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_SERIALIZE_HPP
