#include "support/json_fields.hpp"

#include <cmath>

#include "support/json.hpp"
#include "support/json_parse.hpp"

namespace cmswitch {

bool
jsonFail(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
    return false;
}

bool
jsonTakeString(const JsonValue &object, const char *key, std::string *out,
               std::string *error)
{
    const JsonValue *value = object.find(key);
    if (!value)
        return true;
    if (!value->isString())
        return jsonFail(error, std::string("'") + key
                                   + "' must be a string");
    *out = value->stringValue;
    return true;
}

bool
jsonTakeInt(const JsonValue &object, const char *key, s64 minValue,
            s64 *out, bool *present, std::string *error)
{
    const JsonValue *value = object.find(key);
    if (!value)
        return true;
    if (!value->isNumber() || !value->isIntegral)
        return jsonFail(error, std::string("'") + key
                                   + "' must be an integer");
    if (value->intValue < minValue)
        return jsonFail(error, std::string("'") + key + "' must be >= "
                                   + std::to_string(minValue));
    *out = value->intValue;
    if (present)
        *present = true;
    return true;
}

bool
jsonTakeBool(const JsonValue &object, const char *key, bool *out,
             std::string *error)
{
    const JsonValue *value = object.find(key);
    if (!value)
        return true;
    if (!value->isBool())
        return jsonFail(error, std::string("'") + key
                                   + "' must be a boolean");
    *out = value->boolValue;
    return true;
}

bool
jsonTakeDouble(const JsonValue &object, const char *key, double minValue,
               double *out, bool *present, std::string *error)
{
    const JsonValue *value = object.find(key);
    if (!value)
        return true;
    if (!value->isNumber() || !std::isfinite(value->numberValue))
        return jsonFail(error, std::string("'") + key
                                   + "' must be a finite number");
    if (value->numberValue < minValue)
        return jsonFail(error, std::string("'") + key + "' must be >= "
                                   + jsonNumber(minValue));
    *out = value->numberValue;
    if (present)
        *present = true;
    return true;
}

bool
jsonTakeIntArray(const JsonValue &object, const char *key, s64 minValue,
                 std::vector<s64> *out, std::string *error)
{
    const JsonValue *value = object.find(key);
    if (!value)
        return true;
    if (!value->isArray())
        return jsonFail(error, std::string("'") + key
                                   + "' must be an array of integers");
    out->clear();
    out->reserve(value->items.size());
    for (const JsonValue &item : value->items) {
        if (!item.isNumber() || !item.isIntegral)
            return jsonFail(error, std::string("'") + key
                                       + "' must hold only integers");
        if (item.intValue < minValue)
            return jsonFail(error, std::string("'") + key
                                       + "' entries must be >= "
                                       + std::to_string(minValue));
        out->push_back(item.intValue);
    }
    return true;
}

bool
jsonTakeDoubleArray(const JsonValue &object, const char *key,
                    double minValue, std::vector<double> *out,
                    std::string *error)
{
    const JsonValue *value = object.find(key);
    if (!value)
        return true;
    if (!value->isArray())
        return jsonFail(error, std::string("'") + key
                                   + "' must be an array of numbers");
    out->clear();
    out->reserve(value->items.size());
    for (const JsonValue &item : value->items) {
        if (!item.isNumber() || !std::isfinite(item.numberValue))
            return jsonFail(error, std::string("'") + key
                                       + "' must hold only finite "
                                         "numbers");
        if (item.numberValue < minValue)
            return jsonFail(error, std::string("'") + key
                                       + "' entries must be >= "
                                       + jsonNumber(minValue));
        out->push_back(item.numberValue);
    }
    return true;
}

} // namespace cmswitch
