/**
 * @file
 * FNV-1a 64-bit content hashing for cache keys. Not cryptographic; used
 * where a stable, platform-independent fingerprint of a canonical text
 * serialisation is needed (the compile-service plan cache).
 */

#ifndef CMSWITCH_SUPPORT_HASH_HPP
#define CMSWITCH_SUPPORT_HASH_HPP

#include <string>
#include <string_view>

#include "support/common.hpp"

namespace cmswitch {

/** FNV-1a over @p data, continuing from @p seed (chainable). */
constexpr u64
fnv1a64(std::string_view data, u64 seed = 0xcbf29ce484222325ull)
{
    u64 h = seed;
    for (char c : data) {
        h ^= static_cast<u64>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

/** @p value as 16 lowercase hex digits (stable key/file-name form). */
inline std::string
hexDigest(u64 value)
{
    static const char kHex[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kHex[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_HASH_HPP
