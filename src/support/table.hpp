/**
 * @file
 * ASCII table printer used by the benchmark harnesses to emit the paper's
 * tables and figure series in a readable, diff-friendly layout.
 */

#ifndef CMSWITCH_SUPPORT_TABLE_HPP
#define CMSWITCH_SUPPORT_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace cmswitch {

/**
 * A right-ragged ASCII table. Columns are sized to their widest cell;
 * the first row added is rendered as the header with a separator rule.
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Append a header/body row; rows may have differing arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: append a row of (label, numeric...) cells. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int digits = 3);

    /** Render to the stream (and return the same text). */
    std::string render() const;
    void print(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cmswitch

#endif // CMSWITCH_SUPPORT_TABLE_HPP
