#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/strings.hpp"

namespace cmswitch {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int digits)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatDouble(v, digits));
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    for (const auto &row : rows_) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    if (!title_.empty())
        oss << "== " << title_ << " ==\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const auto &row = rows_[r];
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            if (c + 1 < row.size())
                oss << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        oss << '\n';
        if (r == 0 && rows_.size() > 1) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            oss << std::string(total, '-') << '\n';
        }
    }
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    os << render();
}

} // namespace cmswitch
