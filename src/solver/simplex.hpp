/**
 * @file
 * Two-phase dense tableau simplex for the LP relaxations used by the
 * branch-and-bound MILP solver. Problem sizes in this repo are tiny
 * (tens of variables), so a dense tableau with Bland's anti-cycling
 * rule is both simple and fast enough.
 */

#ifndef CMSWITCH_SOLVER_SIMPLEX_HPP
#define CMSWITCH_SOLVER_SIMPLEX_HPP

#include <vector>

#include "solver/model.hpp"

namespace cmswitch {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kLimit };

const char *solveStatusName(SolveStatus status);

/** Result of an LP solve; values are in the original variable space. */
struct LpSolution
{
    SolveStatus status = SolveStatus::kInfeasible;
    double objective = 0.0;
    std::vector<double> values;
};

/**
 * Reusable pivoting state across near-identical LP solves.
 *
 * The branch-and-bound MIP and the allocator's latency bisection solve
 * long runs of LPs that differ only in variable bounds; the optimal
 * basis of one solve is usually feasible (often near-optimal) for the
 * next. solveLp() records its final basis here and, on the next call
 * with matching dimensions, tries to load it directly: when the loaded
 * basis is primal feasible, the whole phase-1 artificial elimination is
 * skipped. Loading is best-effort — any incompatibility (dimension
 * change, singular pivot, infeasible point) silently falls back to the
 * cold two-phase path, so a warm start can change which optimal vertex
 * ties are resolved to, but never correctness. Deterministic: the same
 * call sequence always produces the same solutions.
 */
struct LpWarmStart
{
    std::vector<int> basis; ///< basic column per row of the last solve
    int rows = 0;
    int cols = 0;

    bool
    compatible(int num_rows, int num_cols) const
    {
        return rows == num_rows && cols == num_cols
            && static_cast<int>(basis.size()) == num_rows;
    }
};

/**
 * Solve the continuous relaxation of @p model (integrality ignored).
 * Honors variable bounds and all constraint senses. @p warm, when
 * non-null, seeds the solve with the previous optimal basis and is
 * updated with this solve's basis on optimality.
 */
LpSolution solveLp(const LinearModel &model, LpWarmStart *warm = nullptr);

} // namespace cmswitch

#endif // CMSWITCH_SOLVER_SIMPLEX_HPP
