/**
 * @file
 * Two-phase dense tableau simplex for the LP relaxations used by the
 * branch-and-bound MILP solver. Problem sizes in this repo are tiny
 * (tens of variables), so a dense tableau with Bland's anti-cycling
 * rule is both simple and fast enough.
 */

#ifndef CMSWITCH_SOLVER_SIMPLEX_HPP
#define CMSWITCH_SOLVER_SIMPLEX_HPP

#include <vector>

#include "solver/model.hpp"

namespace cmswitch {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kLimit };

const char *solveStatusName(SolveStatus status);

/** Result of an LP solve; values are in the original variable space. */
struct LpSolution
{
    SolveStatus status = SolveStatus::kInfeasible;
    double objective = 0.0;
    std::vector<double> values;
};

/**
 * Solve the continuous relaxation of @p model (integrality ignored).
 * Honors variable bounds and all constraint senses.
 */
LpSolution solveLp(const LinearModel &model);

} // namespace cmswitch

#endif // CMSWITCH_SOLVER_SIMPLEX_HPP
