/**
 * @file
 * Branch-and-bound mixed-integer programming on top of the simplex LP
 * relaxation. This is the repo's stand-in for Gurobi (paper Sec. 4.3.2);
 * it is exact on the allocation problems CMSwitch generates, which the
 * tests certify against exhaustive enumeration.
 */

#ifndef CMSWITCH_SOLVER_MIP_HPP
#define CMSWITCH_SOLVER_MIP_HPP

#include "solver/model.hpp"
#include "solver/simplex.hpp"

namespace cmswitch {

class TaskPool;

/** Knobs for the branch-and-bound search. */
struct MipOptions
{
    s64 maxNodes = 200000;   ///< node budget before giving up (kLimit)
    double intTol = 1e-6;    ///< integrality tolerance
    double gapAbs = 1e-9;    ///< prune when bound >= incumbent - gapAbs

    /**
     * Optional cross-call pivoting state. Node relaxations within one
     * solveMip() always warm-start off each other; a caller solving a
     * run of structurally identical models (the allocator's latency
     * bisection) can pass the same LpWarmStart to every call so the
     * first relaxation of each solve starts from the previous solve's
     * optimal basis too. Owned by the caller; must outlive the call.
     */
    LpWarmStart *warmStart = nullptr;

    /**
     * When pool != nullptr and searchThreads > 1, branch-and-bound
     * expands a frontier serially (deterministic best-bound order) and
     * then solves the frontier subtrees concurrently against a shared
     * atomic incumbent bound. The optimal *objective* and the solve
     * status are identical to the serial search for any thread count;
     * `values` are merged in fixed frontier order and `nodesExplored`
     * (plus the per-subtree node budget) may differ from serial, so
     * callers that consume solution values bit-for-bit must keep the
     * solve serial. Nested inside a pool task the solve stays serial.
     */
    TaskPool *pool = nullptr;
    s64 searchThreads = 1;
};

/** Outcome of a MIP solve. */
struct MipResult
{
    SolveStatus status = SolveStatus::kInfeasible;
    double objective = 0.0;
    std::vector<double> values;
    s64 nodesExplored = 0;
};

/**
 * Solve @p model to optimality (best-first branch-and-bound, branching
 * on the most fractional integer variable). Continuous variables are
 * allowed and keep their LP values.
 */
MipResult solveMip(const LinearModel &model, const MipOptions &options = {});

} // namespace cmswitch

#endif // CMSWITCH_SOLVER_MIP_HPP
