#include "solver/mip.hpp"

#include <cmath>
#include <queue>

#include "support/logging.hpp"

namespace cmswitch {

namespace {

/** A node of the branch-and-bound tree: bound overrides per variable. */
struct Node
{
    double bound;                          // LP relaxation objective
    std::vector<std::pair<VarId, std::pair<double, double>>> tightened;
};

struct NodeOrder
{
    bool operator()(const Node &a, const Node &b) const
    {
        return a.bound > b.bound; // best (lowest) bound first
    }
};

/** Index of the most fractional integer variable, or -1 if integral. */
VarId
pickBranchVar(const LinearModel &model, const std::vector<double> &values,
              double tol)
{
    VarId best = -1;
    double best_frac = tol;
    for (VarId v = 0; v < model.numVars(); ++v) {
        if (model.var(v).type != VarType::kInteger)
            continue;
        double x = values[static_cast<std::size_t>(v)];
        double frac = std::abs(x - std::round(x));
        if (frac > best_frac) {
            best_frac = frac;
            best = v;
        }
    }
    return best;
}

} // namespace

MipResult
solveMip(const LinearModel &model, const MipOptions &options)
{
    const double dir = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

    MipResult result;
    result.status = SolveStatus::kInfeasible;

    // Every node relaxation differs from its neighbours only in
    // variable bounds, so when the caller opts in (provides a slot),
    // one warm-start basis is threaded through the whole tree and
    // across calls. Without a slot every LP pivots cold — callers that
    // need the historical pivot path bit-for-bit (the allocator's
    // allocation-filling solves) rely on that.
    LpWarmStart *warm = options.warmStart;

    // Root relaxation.
    LpSolution root = solveLp(model, warm);
    ++result.nodesExplored;
    if (root.status == SolveStatus::kInfeasible
        || root.status == SolveStatus::kLimit) {
        result.status = root.status;
        return result;
    }
    cmswitch_assert(root.status != SolveStatus::kUnbounded
                        || model.objective().terms().empty(),
                    "unbounded MIPs are not supported");

    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    open.push(Node{dir * root.objective, {}});

    bool have_incumbent = false;
    double incumbent_obj = 0.0; // in minimisation direction

    // One scratch model reused across nodes: a node's bound overrides
    // are applied before its relaxation and rolled back afterwards,
    // instead of deep-copying the model (variable names, constraint
    // term lists) once per node.
    LinearModel scratch = model;
    std::vector<std::pair<VarId, std::pair<double, double>>> saved_bounds;

    while (!open.empty() && result.nodesExplored < options.maxNodes) {
        Node node = open.top();
        open.pop();
        if (have_incumbent && node.bound >= incumbent_obj - options.gapAbs)
            continue; // bound-pruned

        saved_bounds.clear();
        for (const auto &[var, bounds] : node.tightened) {
            VarDef &def = scratch.var(var);
            saved_bounds.push_back({var, {def.lower, def.upper}});
            def.lower = std::max(def.lower, bounds.first);
            def.upper = std::min(def.upper, bounds.second);
        }
        LpSolution lp = solveLp(scratch, warm);
        // Roll back in reverse so repeated overrides of one variable
        // restore its original bounds exactly.
        for (std::size_t b = saved_bounds.size(); b-- > 0;) {
            VarDef &def = scratch.var(saved_bounds[b].first);
            def.lower = saved_bounds[b].second.first;
            def.upper = saved_bounds[b].second.second;
        }
        ++result.nodesExplored;
        if (lp.status != SolveStatus::kOptimal)
            continue; // infeasible subtree

        double lp_obj = dir * lp.objective;
        if (have_incumbent && lp_obj >= incumbent_obj - options.gapAbs)
            continue;

        VarId branch = pickBranchVar(scratch, lp.values, options.intTol);
        if (branch < 0) {
            // Integral: new incumbent.
            have_incumbent = true;
            incumbent_obj = lp_obj;
            result.status = SolveStatus::kOptimal;
            result.objective = lp.objective;
            result.values = lp.values;
            // Snap near-integers exactly.
            for (VarId v = 0; v < model.numVars(); ++v) {
                if (model.var(v).type == VarType::kInteger) {
                    result.values[static_cast<std::size_t>(v)] =
                        std::round(result.values[static_cast<std::size_t>(v)]);
                }
            }
            continue;
        }

        double x = lp.values[static_cast<std::size_t>(branch)];
        Node down = node;
        down.bound = lp_obj;
        down.tightened.push_back(
            {branch, {-kInfinity, std::floor(x)}});
        Node up = node;
        up.bound = lp_obj;
        up.tightened.push_back(
            {branch, {std::ceil(x), kInfinity}});
        open.push(std::move(down));
        open.push(std::move(up));
    }

    if (!open.empty() && !have_incumbent)
        result.status = SolveStatus::kLimit;
    return result;
}

} // namespace cmswitch
