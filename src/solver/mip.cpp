#include "solver/mip.hpp"

#include <atomic>
#include <cmath>
#include <queue>

#include "obs/obs.hpp"
#include "support/logging.hpp"
#include "support/task_pool.hpp"

namespace cmswitch {

namespace {

/** A node of the branch-and-bound tree: bound overrides per variable. */
struct Node
{
    double bound;                          // LP relaxation objective
    std::vector<std::pair<VarId, std::pair<double, double>>> tightened;
};

struct NodeOrder
{
    bool operator()(const Node &a, const Node &b) const
    {
        return a.bound > b.bound; // best (lowest) bound first
    }
};

using OpenQueue = std::priority_queue<Node, std::vector<Node>, NodeOrder>;

/** Index of the most fractional integer variable, or -1 if integral. */
VarId
pickBranchVar(const LinearModel &model, const std::vector<double> &values,
              double tol)
{
    VarId best = -1;
    double best_frac = tol;
    for (VarId v = 0; v < model.numVars(); ++v) {
        if (model.var(v).type != VarType::kInteger)
            continue;
        double x = values[static_cast<std::size_t>(v)];
        double frac = std::abs(x - std::round(x));
        if (frac > best_frac) {
            best_frac = frac;
            best = v;
        }
    }
    return best;
}

/** One best-first search over a frontier, serial within itself. */
struct SearchState
{
    OpenQueue open;
    bool have_incumbent = false;
    double incumbent_obj = 0.0; // minimisation direction
    MipResult result;
};

/** Lower @p shared to @p value if it improves it (CAS min). */
void
lowerSharedBound(std::atomic<double> &shared, double value)
{
    double cur = shared.load(std::memory_order_relaxed);
    while (value < cur
           && !shared.compare_exchange_weak(cur, value,
                                            std::memory_order_relaxed)) {
    }
}

/**
 * Pop-and-branch until the frontier drains, the node budget runs out,
 * or (stop_width > 0) the frontier grows to stop_width nodes. With
 * @p shared_best set, incumbents from concurrent sibling searches
 * tighten the prune bound exactly like a local incumbent would; the
 * bound only ever holds true solution objectives, so no subtree that
 * could still improve on the global optimum by more than gapAbs is
 * ever pruned — the optimal objective matches the serial search.
 */
void
drainBnb(const LinearModel &model, const MipOptions &options, double dir,
         LpWarmStart *warm, LinearModel &scratch, SearchState &state,
         s64 stop_width, std::atomic<double> *shared_best)
{
    OpenQueue &open = state.open;
    MipResult &result = state.result;
    std::vector<std::pair<VarId, std::pair<double, double>>> saved_bounds;

    while (!open.empty() && result.nodesExplored < options.maxNodes) {
        if (stop_width > 0 && static_cast<s64>(open.size()) >= stop_width)
            return;
        double best_known = state.have_incumbent ? state.incumbent_obj
                                                 : kInfinity;
        if (shared_best != nullptr) {
            best_known = std::min(
                best_known, shared_best->load(std::memory_order_relaxed));
        }

        Node node = open.top();
        open.pop();
        if (node.bound >= best_known - options.gapAbs)
            continue; // bound-pruned

        saved_bounds.clear();
        for (const auto &[var, bounds] : node.tightened) {
            VarDef &def = scratch.var(var);
            saved_bounds.push_back({var, {def.lower, def.upper}});
            def.lower = std::max(def.lower, bounds.first);
            def.upper = std::min(def.upper, bounds.second);
        }
        LpSolution lp = solveLp(scratch, warm);
        // Roll back in reverse so repeated overrides of one variable
        // restore its original bounds exactly.
        for (std::size_t b = saved_bounds.size(); b-- > 0;) {
            VarDef &def = scratch.var(saved_bounds[b].first);
            def.lower = saved_bounds[b].second.first;
            def.upper = saved_bounds[b].second.second;
        }
        ++result.nodesExplored;
        if (lp.status != SolveStatus::kOptimal)
            continue; // infeasible subtree

        double lp_obj = dir * lp.objective;
        if (lp_obj >= best_known - options.gapAbs)
            continue;

        VarId branch = pickBranchVar(scratch, lp.values, options.intTol);
        if (branch < 0) {
            // Integral: new incumbent.
            state.have_incumbent = true;
            state.incumbent_obj = lp_obj;
            result.status = SolveStatus::kOptimal;
            result.objective = lp.objective;
            result.values = lp.values;
            // Snap near-integers exactly.
            for (VarId v = 0; v < model.numVars(); ++v) {
                if (model.var(v).type == VarType::kInteger) {
                    result.values[static_cast<std::size_t>(v)] =
                        std::round(result.values[static_cast<std::size_t>(v)]);
                }
            }
            if (shared_best != nullptr)
                lowerSharedBound(*shared_best, lp_obj);
            continue;
        }

        double x = lp.values[static_cast<std::size_t>(branch)];
        Node down = node;
        down.bound = lp_obj;
        down.tightened.push_back(
            {branch, {-kInfinity, std::floor(x)}});
        Node up = node;
        up.bound = lp_obj;
        up.tightened.push_back(
            {branch, {std::ceil(x), kInfinity}});
        open.push(std::move(down));
        open.push(std::move(up));
    }
}

} // namespace

static MipResult solveMipImpl(const LinearModel &model,
                              const MipOptions &options);

MipResult
solveMip(const LinearModel &model, const MipOptions &options)
{
    obs::Span span("mip.solve", "solver");
    MipResult result = solveMipImpl(model, options);
    span.arg("nodes", result.nodesExplored);
    obs::count(obs::Met::kMipSolves);
    obs::count(obs::Met::kMipNodes, result.nodesExplored);
    return result;
}

static MipResult
solveMipImpl(const LinearModel &model, const MipOptions &options)
{
    const double dir = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

    // Every node relaxation differs from its neighbours only in
    // variable bounds, so when the caller opts in (provides a slot),
    // one warm-start basis is threaded through the whole tree and
    // across calls. Without a slot every LP pivots cold — callers that
    // need the historical pivot path bit-for-bit (the allocator's
    // allocation-filling solves) rely on that.
    LpWarmStart *warm = options.warmStart;

    SearchState state;
    state.result.status = SolveStatus::kInfeasible;

    // Root relaxation.
    LpSolution root = solveLp(model, warm);
    ++state.result.nodesExplored;
    if (root.status == SolveStatus::kInfeasible
        || root.status == SolveStatus::kLimit) {
        state.result.status = root.status;
        return state.result;
    }
    cmswitch_assert(root.status != SolveStatus::kUnbounded
                        || model.objective().terms().empty(),
                    "unbounded MIPs are not supported");

    state.open.push(Node{dir * root.objective, {}});

    // One scratch model reused across nodes: a node's bound overrides
    // are applied before its relaxation and rolled back afterwards,
    // instead of deep-copying the model (variable names, constraint
    // term lists) once per node.
    LinearModel scratch = model;

    const bool parallel = options.pool != nullptr && options.searchThreads > 1
                          && !TaskPool::insideTask();
    if (!parallel) {
        drainBnb(model, options, dir, warm, scratch, state,
                 /*stop_width=*/0, /*shared_best=*/nullptr);
        if (!state.open.empty() && !state.have_incumbent)
            state.result.status = SolveStatus::kLimit;
        return state.result;
    }

    // Parallel mode: grow a frontier serially (identical pop order to
    // the serial search), then hand each frontier node to its own
    // self-contained best-first search. Subtrees only communicate
    // through the shared incumbent bound.
    drainBnb(model, options, dir, warm, scratch, state,
             /*stop_width=*/2 * options.searchThreads,
             /*shared_best=*/nullptr);
    if (state.open.empty() || state.result.nodesExplored >= options.maxNodes) {
        if (!state.open.empty() && !state.have_incumbent)
            state.result.status = SolveStatus::kLimit;
        return state.result;
    }

    std::vector<Node> frontier;
    frontier.reserve(state.open.size());
    while (!state.open.empty()) {
        frontier.push_back(state.open.top()); // best-bound order
        state.open.pop();
    }

    std::atomic<double> shared_best{
        state.have_incumbent ? state.incumbent_obj : kInfinity};
    std::vector<SearchState> subs(frontier.size());
    options.pool->parallelFor(
        static_cast<s64>(frontier.size()), [&](s64 f) {
            SearchState &sub = subs[static_cast<std::size_t>(f)];
            sub.result.status = SolveStatus::kInfeasible;
            sub.open.push(frontier[static_cast<std::size_t>(f)]);
            LinearModel sub_scratch = model;
            LpWarmStart sub_warm; // cold per subtree; never shared
            drainBnb(model, options, dir, &sub_warm, sub_scratch, sub,
                     /*stop_width=*/0, &shared_best);
        });

    // Deterministic merge: the expansion incumbent is considered
    // first, then each subtree in frontier (best-bound) order; a
    // subtree replaces the winner only by improving it beyond gapAbs,
    // mirroring the serial incumbent-acceptance rule.
    MipResult merged = state.result;
    bool have = state.have_incumbent;
    double best_obj = state.incumbent_obj;
    bool open_left = false;
    for (const SearchState &sub : subs) {
        merged.nodesExplored += sub.result.nodesExplored;
        open_left = open_left || !sub.open.empty();
        if (!sub.have_incumbent)
            continue;
        if (!have || sub.incumbent_obj < best_obj - options.gapAbs) {
            have = true;
            best_obj = sub.incumbent_obj;
            merged.status = sub.result.status;
            merged.objective = sub.result.objective;
            merged.values = sub.result.values;
        }
    }
    if (have)
        merged.status = SolveStatus::kOptimal;
    else
        merged.status = open_left ? SolveStatus::kLimit
                                  : SolveStatus::kInfeasible;
    return merged;
}

} // namespace cmswitch
