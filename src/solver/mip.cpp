#include "solver/mip.hpp"

#include <cmath>
#include <queue>

#include "support/logging.hpp"

namespace cmswitch {

namespace {

/** A node of the branch-and-bound tree: bound overrides per variable. */
struct Node
{
    double bound;                          // LP relaxation objective
    std::vector<std::pair<VarId, std::pair<double, double>>> tightened;
};

struct NodeOrder
{
    bool operator()(const Node &a, const Node &b) const
    {
        return a.bound > b.bound; // best (lowest) bound first
    }
};

/** Apply a node's tightened bounds to a scratch copy of the model. */
void
applyBounds(LinearModel &model, const Node &node)
{
    for (const auto &[var, bounds] : node.tightened) {
        model.var(var).lower = std::max(model.var(var).lower, bounds.first);
        model.var(var).upper = std::min(model.var(var).upper, bounds.second);
    }
}

/** Index of the most fractional integer variable, or -1 if integral. */
VarId
pickBranchVar(const LinearModel &model, const std::vector<double> &values,
              double tol)
{
    VarId best = -1;
    double best_frac = tol;
    for (VarId v = 0; v < model.numVars(); ++v) {
        if (model.var(v).type != VarType::kInteger)
            continue;
        double x = values[static_cast<std::size_t>(v)];
        double frac = std::abs(x - std::round(x));
        if (frac > best_frac) {
            best_frac = frac;
            best = v;
        }
    }
    return best;
}

} // namespace

MipResult
solveMip(const LinearModel &model, const MipOptions &options)
{
    const double dir = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

    MipResult result;
    result.status = SolveStatus::kInfeasible;

    // Root relaxation.
    LpSolution root = solveLp(model);
    ++result.nodesExplored;
    if (root.status == SolveStatus::kInfeasible
        || root.status == SolveStatus::kLimit) {
        result.status = root.status;
        return result;
    }
    cmswitch_assert(root.status != SolveStatus::kUnbounded
                        || model.objective().terms().empty(),
                    "unbounded MIPs are not supported");

    std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
    open.push(Node{dir * root.objective, {}});

    bool have_incumbent = false;
    double incumbent_obj = 0.0; // in minimisation direction

    while (!open.empty() && result.nodesExplored < options.maxNodes) {
        Node node = open.top();
        open.pop();
        if (have_incumbent && node.bound >= incumbent_obj - options.gapAbs)
            continue; // bound-pruned

        LinearModel scratch = model;
        applyBounds(scratch, node);
        LpSolution lp = solveLp(scratch);
        ++result.nodesExplored;
        if (lp.status != SolveStatus::kOptimal)
            continue; // infeasible subtree

        double lp_obj = dir * lp.objective;
        if (have_incumbent && lp_obj >= incumbent_obj - options.gapAbs)
            continue;

        VarId branch = pickBranchVar(scratch, lp.values, options.intTol);
        if (branch < 0) {
            // Integral: new incumbent.
            have_incumbent = true;
            incumbent_obj = lp_obj;
            result.status = SolveStatus::kOptimal;
            result.objective = lp.objective;
            result.values = lp.values;
            // Snap near-integers exactly.
            for (VarId v = 0; v < model.numVars(); ++v) {
                if (model.var(v).type == VarType::kInteger) {
                    result.values[static_cast<std::size_t>(v)] =
                        std::round(result.values[static_cast<std::size_t>(v)]);
                }
            }
            continue;
        }

        double x = lp.values[static_cast<std::size_t>(branch)];
        Node down = node;
        down.bound = lp_obj;
        down.tightened.push_back(
            {branch, {-kInfinity, std::floor(x)}});
        Node up = node;
        up.bound = lp_obj;
        up.tightened.push_back(
            {branch, {std::ceil(x), kInfinity}});
        open.push(std::move(down));
        open.push(std::move(up));
    }

    if (!open.empty() && !have_incumbent)
        result.status = SolveStatus::kLimit;
    return result;
}

} // namespace cmswitch
