#include "solver/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "support/logging.hpp"

namespace cmswitch {

namespace {

constexpr double kEps = 1e-9;

/**
 * Dense tableau with explicit basis bookkeeping. Columns: structural
 * (shifted, upper-bound rows added as constraints) then slack then
 * artificial; the rightmost column is the RHS.
 */
class Tableau
{
  public:
    // rows x cols payload, plus objective row handled separately.
    std::vector<std::vector<double>> a; // constraint rows, includes rhs
    std::vector<double> obj;            // phase objective row (reduced costs)
    double objValue = 0.0;
    std::vector<int> basis;             // basic variable per row
    int numCols = 0;                    // structural+slack+artificial

    int rows() const { return static_cast<int>(a.size()); }
    int cols() const { return numCols; }
    double rhs(int r) const { return a[static_cast<std::size_t>(r)].back(); }

    /** One pivot on (row, col) with full elimination. */
    void
    pivot(int prow, int pcol)
    {
        auto &prow_vec = a[static_cast<std::size_t>(prow)];
        double pv = prow_vec[static_cast<std::size_t>(pcol)];
        for (double &v : prow_vec)
            v /= pv;
        for (int r = 0; r < rows(); ++r) {
            if (r == prow)
                continue;
            auto &row = a[static_cast<std::size_t>(r)];
            double factor = row[static_cast<std::size_t>(pcol)];
            if (std::abs(factor) < kEps)
                continue;
            for (std::size_t c = 0; c < row.size(); ++c)
                row[c] -= factor * prow_vec[c];
        }
        double ofactor = obj[static_cast<std::size_t>(pcol)];
        if (std::abs(ofactor) > 0.0) {
            for (std::size_t c = 0; c < obj.size(); ++c)
                obj[c] -= ofactor * prow_vec[c];
            objValue -= ofactor * prow_vec.back();
        }
        basis[static_cast<std::size_t>(prow)] = pcol;
    }

    /**
     * Primal simplex iterations (minimization; enter on negative reduced
     * cost, Bland's rule). Returns kOptimal or kUnbounded.
     */
    SolveStatus
    iterate()
    {
        const int max_iters = 20000 + 50 * (rows() + cols());
        for (int iter = 0; iter < max_iters; ++iter) {
            // Bland: smallest-index column with negative reduced cost.
            int pcol = -1;
            for (int c = 0; c < cols(); ++c) {
                if (obj[static_cast<std::size_t>(c)] < -kEps) {
                    pcol = c;
                    break;
                }
            }
            if (pcol < 0)
                return SolveStatus::kOptimal;

            // Ratio test; Bland ties by smallest basis index.
            int prow = -1;
            double best_ratio = 0.0;
            for (int r = 0; r < rows(); ++r) {
                double coef = a[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(pcol)];
                if (coef > kEps) {
                    double ratio = rhs(r) / coef;
                    if (prow < 0 || ratio < best_ratio - kEps
                        || (std::abs(ratio - best_ratio) <= kEps
                            && basis[static_cast<std::size_t>(r)]
                               < basis[static_cast<std::size_t>(prow)])) {
                        prow = r;
                        best_ratio = ratio;
                    }
                }
            }
            if (prow < 0)
                return SolveStatus::kUnbounded;
            pivot(prow, pcol);
        }
        return SolveStatus::kLimit;
    }
};

} // namespace

const char *
solveStatusName(SolveStatus status)
{
    switch (status) {
      case SolveStatus::kOptimal: return "optimal";
      case SolveStatus::kInfeasible: return "infeasible";
      case SolveStatus::kUnbounded: return "unbounded";
      case SolveStatus::kLimit: return "limit";
    }
    cmswitch_panic("unknown solve status");
}

LpSolution
solveLp(const LinearModel &model, LpWarmStart *warm)
{
    obs::count(obs::Met::kLpSolves);
    const s64 n = model.numVars();

    // Shift every variable to lower bound 0; upper bounds become rows.
    std::vector<double> shift(static_cast<std::size_t>(n), 0.0);
    for (VarId v = 0; v < n; ++v) {
        const VarDef &def = model.var(v);
        cmswitch_assert(def.lower > -kInfinity,
                        "free variables are not supported: ", def.name);
        shift[static_cast<std::size_t>(v)] = def.lower;
    }

    struct Row
    {
        std::vector<double> coef;
        Rel rel;
        double rhs;
    };
    std::vector<Row> raw_rows;

    auto add_row = [&](const LinearExpr &expr, Rel rel, double rhs) {
        Row row;
        row.coef.assign(static_cast<std::size_t>(n), 0.0);
        double shift_amount = 0.0;
        for (const LinearTerm &t : expr.terms()) {
            row.coef[static_cast<std::size_t>(t.var)] += t.coef;
            shift_amount += t.coef * shift[static_cast<std::size_t>(t.var)];
        }
        row.rel = rel;
        row.rhs = rhs - expr.constant() - shift_amount;
        raw_rows.push_back(std::move(row));
    };

    for (const Constraint &c : model.constraints())
        add_row(c.expr, c.rel, c.rhs);
    for (VarId v = 0; v < n; ++v) {
        const VarDef &def = model.var(v);
        if (def.upper < kInfinity) {
            LinearExpr e;
            e.add(v, 1.0);
            add_row(e, Rel::kLe, def.upper);
        }
    }

    // Normalise to rhs >= 0 and decide slack/artificial structure.
    int m = static_cast<int>(raw_rows.size());
    int num_slack = 0;
    for (Row &row : raw_rows) {
        if (row.rhs < 0.0) {
            for (double &c : row.coef)
                c = -c;
            row.rhs = -row.rhs;
            if (row.rel == Rel::kLe)
                row.rel = Rel::kGe;
            else if (row.rel == Rel::kGe)
                row.rel = Rel::kLe;
        }
        if (row.rel != Rel::kEq)
            ++num_slack;
    }

    int total_cols = static_cast<int>(n) + num_slack + m; // + artificials
    Tableau t;
    std::vector<int> artificials;

    // (Re)fill the tableau from the normalised rows: slack basis for
    // <= rows, artificial basis for >= and == rows. Callable twice —
    // a failed warm-basis load rebuilds the cold tableau this way
    // instead of keeping a defensive copy around on every solve.
    auto build_tableau = [&]() {
        t.numCols = total_cols;
        t.a.assign(static_cast<std::size_t>(m),
                   std::vector<double>(
                       static_cast<std::size_t>(total_cols) + 1, 0.0));
        t.basis.assign(static_cast<std::size_t>(m), -1);
        artificials.clear();
        int slack_cursor = static_cast<int>(n);
        int art_cursor = static_cast<int>(n) + num_slack;
        for (int r = 0; r < m; ++r) {
            Row &row = raw_rows[static_cast<std::size_t>(r)];
            auto &trow = t.a[static_cast<std::size_t>(r)];
            for (s64 c = 0; c < n; ++c)
                trow[static_cast<std::size_t>(c)] =
                    row.coef[static_cast<std::size_t>(c)];
            trow.back() = row.rhs;
            if (row.rel == Rel::kLe) {
                trow[static_cast<std::size_t>(slack_cursor)] = 1.0;
                t.basis[static_cast<std::size_t>(r)] = slack_cursor;
                ++slack_cursor;
            } else if (row.rel == Rel::kGe) {
                trow[static_cast<std::size_t>(slack_cursor)] = -1.0;
                ++slack_cursor;
                trow[static_cast<std::size_t>(art_cursor)] = 1.0;
                t.basis[static_cast<std::size_t>(r)] = art_cursor;
                artificials.push_back(art_cursor);
                ++art_cursor;
            } else {
                trow[static_cast<std::size_t>(art_cursor)] = 1.0;
                t.basis[static_cast<std::size_t>(r)] = art_cursor;
                artificials.push_back(art_cursor);
                ++art_cursor;
            }
        }
    };
    build_tableau();

    // Warm start: try to jump straight onto the caller's previous
    // optimal basis. The loaded basis must reproduce exactly (every row
    // pivoted onto its recorded column) and be primal feasible; any
    // shortfall restores the cold tableau. A successful load proves
    // feasibility constructively, so phase 1 is skipped entirely.
    bool warm_loaded = false;
    if (warm != nullptr && warm->compatible(m, total_cols)) {
        bool candidate = true;
        for (int b : warm->basis) {
            if (b < 0 || b >= static_cast<int>(n) + num_slack) {
                candidate = false; // artificial or malformed entry
                break;
            }
        }
        if (candidate) {
            t.obj.assign(static_cast<std::size_t>(total_cols) + 1, 0.0);
            t.objValue = 0.0;
            constexpr double kPivotTol = 1e-7;
            for (int r = 0; r < m; ++r) {
                int target = warm->basis[static_cast<std::size_t>(r)];
                if (t.basis[static_cast<std::size_t>(r)] == target)
                    continue;
                double coef = t.a[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(target)];
                if (std::abs(coef) > kPivotTol)
                    t.pivot(r, target);
            }
            warm_loaded = true;
            for (int r = 0; r < m; ++r) {
                if (t.basis[static_cast<std::size_t>(r)]
                        != warm->basis[static_cast<std::size_t>(r)]
                    || t.rhs(r) < -kEps) {
                    warm_loaded = false;
                    break;
                }
            }
            if (warm_loaded) {
                // Clamp eps-negative right-hand sides so the ratio
                // test's rhs >= 0 invariant holds exactly.
                for (int r = 0; r < m; ++r) {
                    auto &row = t.a[static_cast<std::size_t>(r)];
                    if (row.back() < 0.0)
                        row.back() = 0.0;
                }
            } else {
                build_tableau();
            }
        }
    }
    if (warm != nullptr && warm->compatible(m, total_cols))
        obs::count(warm_loaded ? obs::Met::kLpWarmHits
                               : obs::Met::kLpWarmMisses);

    // Phase 1: minimise the sum of artificials.
    t.obj.assign(static_cast<std::size_t>(total_cols) + 1, 0.0);
    t.objValue = 0.0;
    if (!artificials.empty() && !warm_loaded) {
        for (int c : artificials)
            t.obj[static_cast<std::size_t>(c)] = 1.0;
        // Price out the basic artificials.
        for (int r = 0; r < m; ++r) {
            int b = t.basis[static_cast<std::size_t>(r)];
            if (std::find(artificials.begin(), artificials.end(), b)
                != artificials.end()) {
                const auto &row = t.a[static_cast<std::size_t>(r)];
                for (std::size_t c = 0; c < t.obj.size(); ++c)
                    t.obj[c] -= row[c];
                t.objValue -= row.back();
            }
        }
        SolveStatus st = t.iterate();
        if (st == SolveStatus::kLimit)
            return LpSolution{SolveStatus::kLimit, 0.0, {}};
        // Objective value of phase 1 is -objValue (we priced out).
        if (-t.objValue > 1e-7)
            return LpSolution{SolveStatus::kInfeasible, 0.0, {}};
        // Drive any artificial still basic (at value 0) out of the basis.
        for (int r = 0; r < m; ++r) {
            int b = t.basis[static_cast<std::size_t>(r)];
            if (std::find(artificials.begin(), artificials.end(), b)
                == artificials.end()) {
                continue;
            }
            int pcol = -1;
            for (int c = 0; c < static_cast<int>(n) + num_slack; ++c) {
                if (std::abs(t.a[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(c)]) > kEps) {
                    pcol = c;
                    break;
                }
            }
            if (pcol >= 0)
                t.pivot(r, pcol);
            // Otherwise the row is redundant; the artificial stays at 0.
        }
    }

    // Phase 2: original objective (converted to minimisation) over the
    // structural + slack columns; artificial columns are forbidden.
    const double dir = model.sense() == Sense::kMinimize ? 1.0 : -1.0;
    std::fill(t.obj.begin(), t.obj.end(), 0.0);
    t.objValue = 0.0;
    for (const LinearTerm &term : model.objective().terms())
        t.obj[static_cast<std::size_t>(term.var)] += dir * term.coef;
    for (int c : artificials)
        t.obj[static_cast<std::size_t>(c)] = 1e30; // never re-enter
    // Price out basic columns.
    for (int r = 0; r < m; ++r) {
        int b = t.basis[static_cast<std::size_t>(r)];
        double coef = t.obj[static_cast<std::size_t>(b)];
        if (std::abs(coef) > 0.0) {
            const auto &row = t.a[static_cast<std::size_t>(r)];
            for (std::size_t c = 0; c < t.obj.size(); ++c)
                t.obj[c] -= coef * row[c];
            t.objValue -= coef * row.back();
        }
    }

    SolveStatus st = t.iterate();
    if (st == SolveStatus::kUnbounded)
        return LpSolution{SolveStatus::kUnbounded, 0.0, {}};
    if (st == SolveStatus::kLimit)
        return LpSolution{SolveStatus::kLimit, 0.0, {}};

    if (warm != nullptr) {
        warm->basis = t.basis;
        warm->rows = m;
        warm->cols = total_cols;
    }

    // Extract: basic variables take their rhs, others sit at 0 (then
    // unshift to the original space).
    std::vector<double> values(static_cast<std::size_t>(n), 0.0);
    for (int r = 0; r < m; ++r) {
        int b = t.basis[static_cast<std::size_t>(r)];
        if (b < static_cast<int>(n))
            values[static_cast<std::size_t>(b)] = t.rhs(r);
    }
    for (VarId v = 0; v < n; ++v)
        values[static_cast<std::size_t>(v)] += shift[static_cast<std::size_t>(v)];

    double obj = LinearModel::evaluate(model.objective(), values);
    return LpSolution{SolveStatus::kOptimal, obj, std::move(values)};
}

} // namespace cmswitch
