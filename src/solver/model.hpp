/**
 * @file
 * Declarative linear-model builder: variables, linear expressions,
 * constraints and an objective. This is the Gurobi-shaped surface the
 * allocator programs against; solveLp()/solveMip() consume it.
 */

#ifndef CMSWITCH_SOLVER_MODEL_HPP
#define CMSWITCH_SOLVER_MODEL_HPP

#include <limits>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

using VarId = s32;

enum class VarType { kContinuous, kInteger };
enum class Sense { kMinimize, kMaximize };
enum class Rel { kLe, kGe, kEq };

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/** One coefficient of a linear expression. */
struct LinearTerm
{
    VarId var;
    double coef;
};

/** A linear combination of variables plus a constant. */
class LinearExpr
{
  public:
    LinearExpr() = default;
    /*implicit*/ LinearExpr(double constant) : constant_(constant) {}

    LinearExpr &add(VarId var, double coef);
    LinearExpr &addConstant(double value);

    const std::vector<LinearTerm> &terms() const { return terms_; }
    double constant() const { return constant_; }

  private:
    std::vector<LinearTerm> terms_;
    double constant_ = 0.0;
};

/** var * coef convenience. */
LinearExpr term(VarId var, double coef = 1.0);

/** One linear constraint: expr REL rhs. */
struct Constraint
{
    LinearExpr expr;
    Rel rel = Rel::kLe;
    double rhs = 0.0;
    std::string name;
};

/** Variable record. */
struct VarDef
{
    std::string name;
    double lower = 0.0;
    double upper = kInfinity;
    VarType type = VarType::kContinuous;
};

/**
 * A (mixed-integer) linear program under construction. The model owns
 * no solver state; it is a plain description that can be solved many
 * times (e.g. with tightened bounds during branch-and-bound).
 */
class LinearModel
{
  public:
    VarId addVar(const std::string &name, double lower, double upper,
                 VarType type = VarType::kContinuous);

    void addConstraint(LinearExpr expr, Rel rel, double rhs,
                       std::string name = "");

    void setObjective(LinearExpr expr, Sense sense);

    /** @{ Introspection for the solvers. */
    s64 numVars() const { return static_cast<s64>(vars_.size()); }
    s64 numConstraints() const { return static_cast<s64>(constraints_.size()); }
    const VarDef &var(VarId id) const;
    VarDef &var(VarId id);
    const std::vector<VarDef> &vars() const { return vars_; }
    const std::vector<Constraint> &constraints() const { return constraints_; }
    const LinearExpr &objective() const { return objective_; }
    Sense sense() const { return sense_; }
    /** @} */

    /** Evaluate @p expr at a candidate assignment. */
    static double evaluate(const LinearExpr &expr,
                           const std::vector<double> &values);

    /** True if @p values satisfies all bounds + constraints within tol. */
    bool isFeasible(const std::vector<double> &values,
                    double tol = 1e-6) const;

  private:
    std::vector<VarDef> vars_;
    std::vector<Constraint> constraints_;
    LinearExpr objective_;
    Sense sense_ = Sense::kMinimize;
};

} // namespace cmswitch

#endif // CMSWITCH_SOLVER_MODEL_HPP
