#include "solver/model.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace cmswitch {

LinearExpr &
LinearExpr::add(VarId var, double coef)
{
    if (coef != 0.0)
        terms_.push_back(LinearTerm{var, coef});
    return *this;
}

LinearExpr &
LinearExpr::addConstant(double value)
{
    constant_ += value;
    return *this;
}

LinearExpr
term(VarId var, double coef)
{
    LinearExpr e;
    e.add(var, coef);
    return e;
}

VarId
LinearModel::addVar(const std::string &name, double lower, double upper,
                    VarType type)
{
    cmswitch_assert(lower <= upper, "variable ", name, " has empty domain");
    VarId id = static_cast<VarId>(vars_.size());
    vars_.push_back(VarDef{name, lower, upper, type});
    return id;
}

void
LinearModel::addConstraint(LinearExpr expr, Rel rel, double rhs,
                           std::string name)
{
    constraints_.push_back(
        Constraint{std::move(expr), rel, rhs, std::move(name)});
}

void
LinearModel::setObjective(LinearExpr expr, Sense sense)
{
    objective_ = std::move(expr);
    sense_ = sense;
}

const VarDef &
LinearModel::var(VarId id) const
{
    return vars_.at(static_cast<std::size_t>(id));
}

VarDef &
LinearModel::var(VarId id)
{
    return vars_.at(static_cast<std::size_t>(id));
}

double
LinearModel::evaluate(const LinearExpr &expr, const std::vector<double> &values)
{
    double total = expr.constant();
    for (const LinearTerm &t : expr.terms())
        total += t.coef * values.at(static_cast<std::size_t>(t.var));
    return total;
}

bool
LinearModel::isFeasible(const std::vector<double> &values, double tol) const
{
    if (values.size() != vars_.size())
        return false;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        const VarDef &v = vars_[i];
        if (values[i] < v.lower - tol || values[i] > v.upper + tol)
            return false;
        if (v.type == VarType::kInteger
            && std::abs(values[i] - std::round(values[i])) > tol) {
            return false;
        }
    }
    for (const Constraint &c : constraints_) {
        double lhs = evaluate(c.expr, values);
        switch (c.rel) {
          case Rel::kLe:
            if (lhs > c.rhs + tol)
                return false;
            break;
          case Rel::kGe:
            if (lhs < c.rhs - tol)
                return false;
            break;
          case Rel::kEq:
            if (std::abs(lhs - c.rhs) > tol)
                return false;
            break;
        }
    }
    return true;
}

} // namespace cmswitch
