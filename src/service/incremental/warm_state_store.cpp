#include "service/incremental/warm_state_store.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "support/atomic_file.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

namespace fs = std::filesystem;

namespace {

/** Same-family disk candidates examined per miss: the newest few files
 *  cover a decode sweep's live buckets without turning every cold
 *  compile into a directory-sized read. */
constexpr s64 kDiskScanCap = 8;

} // namespace

WarmStateStore::WarmStateStore(std::string directory)
    : directory_(std::move(directory))
{
    // An empty directory string selects the memory-only mode; a
    // non-empty one is the plan-cache directory, which DiskPlanCache
    // has already created and validated.
}

std::string
WarmStateStore::warmPath(const StructuralDigest &digest) const
{
    if (directory_.empty())
        return {};
    return (fs::path(directory_)
            / ("w-" + hexDigest(digest.family) + "-"
               + hexDigest(digest.exact) + ".warm"))
        .string();
}

int
WarmStateStore::matchScore(const StructuralDigest &digest,
                           const StructuralDigest &candidate)
{
    if (candidate.exact == digest.exact)
        return 3;
    int score = 0;
    if (candidate.prefix == digest.prefix)
        ++score;
    if (candidate.suffix == digest.suffix)
        ++score;
    return score;
}

void
WarmStateStore::insertLocked(const StructuralDigest &digest,
                             std::shared_ptr<const CompilerWarmState> state)
{
    std::vector<Entry> &bucket = families_[digest.family];
    // Replace an existing exact entry in place (a recompile of the same
    // structure retains fresher state); otherwise push MRU-first and
    // drop the oldest past capacity.
    for (Entry &entry : bucket) {
        if (entry.digest.exact == digest.exact) {
            entry.digest = digest;
            entry.state = std::move(state);
            return;
        }
    }
    bucket.insert(bucket.begin(), Entry{digest, std::move(state)});
    if (static_cast<s64>(bucket.size()) > kWarmFamilyCapacity)
        bucket.pop_back();
}

std::shared_ptr<const CompilerWarmState>
WarmStateStore::loadFile(const std::string &path,
                         StructuralDigest *digest_out)
{
    std::string data;
    if (!readFileBytes(path, &data))
        return nullptr;
    std::string_view payload;
    std::string error;
    if (!unwrapEnvelope(kWarmStateTag, data, &payload, &error)) {
        informVerbose("ignoring warm-state file ", path, ": ", error);
        return nullptr;
    }
    try {
        BinaryReader r(payload);
        StructuralDigest digest;
        digest.family = r.readU64();
        digest.exact = r.readU64();
        digest.prefix = r.readU64();
        digest.suffix = r.readU64();
        auto state =
            std::make_shared<CompilerWarmState>(CompilerWarmState::readBinary(r));
        r.expectEnd();
        if (digest_out)
            *digest_out = digest;
        return state;
    } catch (const std::exception &e) {
        informVerbose("ignoring warm-state file ", path, ": ", e.what());
        return nullptr;
    }
}

WarmStateStore::Neighbor
WarmStateStore::findNeighbor(const StructuralDigest &digest)
{
    Neighbor best;
    int best_score = -1;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = families_.find(digest.family);
        if (it != families_.end()) {
            for (const Entry &entry : it->second) {
                int score = matchScore(digest, entry.digest);
                if (score > best_score) { // MRU order breaks score ties
                    best_score = score;
                    best.state = entry.state;
                }
                if (best_score == 3)
                    break;
            }
        }
    }
    if (best_score == 3) {
        best.exact = true;
        return best;
    }
    if (directory_.empty())
        return best;

    // Disk: the exact file first (same structure compiled by an earlier
    // process — e.g. its plan artifact was gc'ed but the sidecar
    // survived), then the newest same-family files.
    StructuralDigest loaded_digest;
    if (auto state = loadFile(warmPath(digest), &loaded_digest)) {
        if (loaded_digest.family == digest.family
            && loaded_digest.exact == digest.exact) {
            std::lock_guard<std::mutex> lock(mutex_);
            insertLocked(loaded_digest, state);
            return Neighbor{std::move(state), /*exact=*/true};
        }
    }
    const std::string family_prefix = "w-" + hexDigest(digest.family) + "-";
    struct Candidate
    {
        fs::path path;
        fs::file_time_type mtime;
    };
    std::vector<Candidate> candidates;
    std::error_code walk_ec;
    fs::directory_iterator it(directory_, walk_ec);
    for (; !walk_ec && it != fs::directory_iterator();
         it.increment(walk_ec)) {
        std::error_code ec;
        if (!it->is_regular_file(ec) || ec)
            continue;
        std::string name = it->path().filename().string();
        if (!std::string_view(name).starts_with(family_prefix)
            || !std::string_view(name).ends_with(".warm"))
            continue;
        fs::file_time_type mtime = it->last_write_time(ec);
        if (ec)
            continue;
        candidates.push_back(Candidate{it->path(), mtime});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.mtime != b.mtime ? a.mtime > b.mtime
                                            : a.path < b.path;
              });
    if (static_cast<s64>(candidates.size()) > kDiskScanCap)
        candidates.resize(static_cast<std::size_t>(kDiskScanCap));
    for (const Candidate &candidate : candidates) {
        StructuralDigest candidate_digest;
        auto state = loadFile(candidate.path.string(), &candidate_digest);
        if (!state || candidate_digest.family != digest.family)
            continue;
        int score = matchScore(digest, candidate_digest);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            insertLocked(candidate_digest, state);
        }
        if (score > best_score) {
            best_score = score;
            best.state = std::move(state);
            best.exact = score == 3;
            if (best.exact)
                break;
        }
    }
    return best;
}

void
WarmStateStore::put(const StructuralDigest &digest,
                    std::shared_ptr<const CompilerWarmState> state)
{
    if (!state || state->empty())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        insertLocked(digest, state);
    }
    if (directory_.empty())
        return;
    BinaryWriter payload;
    payload.writeU64(digest.family)
        .writeU64(digest.exact)
        .writeU64(digest.prefix)
        .writeU64(digest.suffix);
    state->writeBinary(payload);
    // Same tmp-file + atomic-rename publication as plan artifacts; a
    // failed publish drops the sidecar, the store stays memory-warm.
    publishFileAtomically(warmPath(digest),
                          wrapEnvelope(kWarmStateTag, payload.bytes()));
}

} // namespace cmswitch
