#include "service/incremental/incremental_compile.hpp"

#include "obs/obs.hpp"
#include "service/disk_plan_cache.hpp"

namespace cmswitch {

ArtifactPtr
compileArtifactIncremental(const CompileRequest &request, std::string key,
                           WarmStateStore &store, DiskPlanCache *disk,
                           NeighborOutcome *outcomeOut)
{
    StructuralDigest digest = requestStructuralDigest(request);
    WarmStateStore::Neighbor neighbor;
    {
        obs::Span span("incremental.neighbor_lookup", "service");
        neighbor = store.findNeighbor(digest);
    }

    WarmCompileContext warm;
    warm.neighbor = neighbor.state;
    ArtifactPtr artifact = compileArtifact(request, std::move(key), &warm);

    // Classify after the compile: a found neighbor only counts as a hit
    // when its state did real work for this request.
    NeighborOutcome outcome;
    if (!neighbor.state)
        outcome = NeighborOutcome::kMiss;
    else if (warm.stats.reuseScore() > 0)
        outcome = NeighborOutcome::kHit;
    else
        outcome = NeighborOutcome::kPartial;
    switch (outcome) {
    case NeighborOutcome::kHit:
        obs::count(obs::Met::kIncrementalNeighborHits);
        break;
    case NeighborOutcome::kPartial:
        obs::count(obs::Met::kIncrementalNeighborPartials);
        break;
    case NeighborOutcome::kMiss:
        obs::count(obs::Met::kIncrementalNeighborMisses);
        break;
    }
    if (warm.stats.dpRowsReused > 0)
        obs::count(obs::Met::kIncrementalDpRowsReused,
                   warm.stats.dpRowsReused);
    if (warm.stats.sigImports > 0)
        obs::count(obs::Met::kIncrementalSigImports, warm.stats.sigImports);
    if (disk)
        disk->recordNeighbor(outcome);
    if (outcomeOut)
        *outcomeOut = outcome;

    // Retain this compile's own state (null for compilers that do not
    // implement warm compilation, e.g. reference-search builds).
    if (warm.retained && !warm.retained->empty())
        store.put(digest, std::move(warm.retained));
    return artifact;
}

} // namespace cmswitch
