/**
 * @file
 * Structural digests for incremental (delta) compilation.
 *
 * The warm-state store (warm_state_store.hpp) has to answer "which
 * retained search state is the best neighbor for this request?" without
 * aligning op lists — alignment is the compiler's job and costs real
 * time. The answer comes from three FNV-1a digests of the request:
 *
 *  - `family`: the *shape-free* structural identity — chip config,
 *    compiler id, option flags, build fingerprint, and every operator's
 *    kind/class/attributes/topology and tensor kinds/dtypes, but NOT
 *    tensor dims. All KV buckets of one decode model share a family
 *    (only attention shapes move); requests in different families never
 *    share warm state (an allocation priced for another chip or
 *    compiler is useless, and a different build may disagree about
 *    everything).
 *  - `exact`: the family digest continued over every tensor shape — the
 *    full structural identity. Two requests with equal `exact` digests
 *    compile identical plans (it folds the same facts as requestKey()),
 *    so an exact-match neighbor supports *full* search-state reuse.
 *  - `prefix` / `suffix`: shape-inclusive digests of the first/last
 *    kDigestWindow operators, used to rank same-family candidates:
 *    neighbors sharing the request's entry and exit structure align
 *    with the least search loss.
 *
 * Digests are derived data, deliberately *not* part of requestKey():
 * adding them must never re-key the plan cache.
 */

#ifndef CMSWITCH_SERVICE_INCREMENTAL_STRUCTURAL_DIGEST_HPP
#define CMSWITCH_SERVICE_INCREMENTAL_STRUCTURAL_DIGEST_HPP

#include "service/compile_service.hpp"

namespace cmswitch {

/** Ops folded into the prefix/suffix window digests. */
inline constexpr s64 kDigestWindow = 16;

/** The three-level structural identity of one compile request. */
struct StructuralDigest
{
    u64 family = 0; ///< shape-free: chip + compiler + op structure
    u64 exact = 0;  ///< family + every tensor shape (full identity)
    u64 prefix = 0; ///< shape-inclusive, first kDigestWindow ops
    u64 suffix = 0; ///< shape-inclusive, last kDigestWindow ops

    bool operator==(const StructuralDigest &other) const
    {
        return family == other.family && exact == other.exact
            && prefix == other.prefix && suffix == other.suffix;
    }
};

/**
 * Digest @p request. Deterministic and order-stable: the digest folds
 * ops and tensors in graph index order, so two identically-constructed
 * requests always agree (tests/property_test.cpp pins this across the
 * scenario matrix).
 */
StructuralDigest requestStructuralDigest(const CompileRequest &request);

/** Digest of @p graph alone under a fixed (chip, compiler, options)
 *  context seed — the graph-only factor of requestStructuralDigest. */
StructuralDigest graphStructuralDigest(const Graph &graph, u64 seed);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_INCREMENTAL_STRUCTURAL_DIGEST_HPP
