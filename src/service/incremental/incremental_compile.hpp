/**
 * @file
 * The incremental compile path: compileArtifact() routed through the
 * warm-state store.
 *
 * This is the third step of the service lookup chain
 * (memory -> disk -> *neighbor* -> cold): when both caches miss, the
 * request's structural digest selects the best retained neighbor state
 * and the compiler warm-starts from it — importing segmenter DP rows,
 * positional allocations, bisection brackets and LP bases, and
 * re-searching only the changed window. The compile's own search state
 * is retained back into the store for the next neighbor.
 *
 * Invariant (pinned by tests/incremental_diff_test.cpp and the
 * IncrementalDiffFuzz battery): the returned artifact's CompileResult
 * is byte-identical to a cold compileArtifact() of the same request —
 * warm state accelerates the search, it never changes the plan.
 *
 * Every call classifies its neighbor lookup for observability:
 *   hit     — a neighbor was found and its state did real work
 *             (WarmReuseStats::reuseScore() > 0);
 *   partial — a neighbor was found but nothing could be reused
 *             (structures diverged beyond the differ's alignment);
 *   miss    — the family has no retained state.
 * Counters flow to obs:: metrics and, when @p disk is given, into the
 * DiskPlanCache stats (and from there the cross-process sidecar).
 */

#ifndef CMSWITCH_SERVICE_INCREMENTAL_INCREMENTAL_COMPILE_HPP
#define CMSWITCH_SERVICE_INCREMENTAL_INCREMENTAL_COMPILE_HPP

#include "service/compile_service.hpp"
#include "service/incremental/warm_state_store.hpp"

namespace cmswitch {

class DiskPlanCache;

/**
 * Compile @p request warm-started from the best neighbor in @p store,
 * retaining this compile's state for future neighbors. @p disk (may be
 * null) receives the neighbor hit/partial/miss classification;
 * @p outcome (may be null) receives the same classification so callers
 * (the serve daemon's per-request cache-outcome field) can report it
 * without diffing stats snapshots.
 */
ArtifactPtr compileArtifactIncremental(const CompileRequest &request,
                                       std::string key,
                                       WarmStateStore &store,
                                       DiskPlanCache *disk,
                                       NeighborOutcome *outcomeOut = nullptr);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_INCREMENTAL_INCREMENTAL_COMPILE_HPP
