#include "service/incremental/structural_digest.hpp"

#include <algorithm>

#include "arch/chip_parser.hpp"
#include "service/plan_fingerprint.hpp"
#include "support/hash.hpp"

namespace cmswitch {

namespace {

/** Fold @p value into @p h as 8 little-endian bytes (shape dims and
 *  ids are numbers, not text; hashing bytes keeps the digest cheap). */
u64
foldS64(u64 h, s64 value)
{
    u64 v = static_cast<u64>(value);
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<char>(v & 0xff);
        v >>= 8;
    }
    return fnv1a64(std::string_view(bytes, 8), h);
}

/**
 * Fold one operator's shape-free structure: what it is, what it
 * touches, and how it connects — everything rangeSignature folds except
 * the byte counts that tensor dims determine.
 */
u64
foldOpStructure(u64 h, const Graph &graph, const Operator &op)
{
    h = fnv1a64(opKindName(op.kind), h);
    h = fnv1a64(opClassName(op.cls), h);
    h = fnv1a64(op.activationName, h);
    h = foldS64(h, op.conv.kernelH);
    h = foldS64(h, op.conv.kernelW);
    h = foldS64(h, op.conv.strideH);
    h = foldS64(h, op.conv.strideW);
    h = foldS64(h, op.conv.padH);
    h = foldS64(h, op.conv.padW);
    h = foldS64(h, op.conv.groups);
    h = foldS64(h, static_cast<s64>(op.inputs.size()));
    for (TensorId t : op.inputs) {
        const TensorDesc &desc = graph.tensor(t);
        h = foldS64(h, t); // topology: *which* tensor, not just its kind
        h = fnv1a64(tensorKindName(desc.kind), h);
        h = fnv1a64(dtypeName(desc.dtype), h);
    }
    h = foldS64(h, static_cast<s64>(op.outputs.size()));
    for (TensorId t : op.outputs) {
        const TensorDesc &desc = graph.tensor(t);
        h = foldS64(h, t);
        h = fnv1a64(tensorKindName(desc.kind), h);
        h = fnv1a64(dtypeName(desc.dtype), h);
    }
    return h;
}

/** Fold the shapes of every tensor @p op touches (the delta between
 *  the family and exact digests). */
u64
foldOpShapes(u64 h, const Graph &graph, const Operator &op)
{
    auto fold_tensor = [&](TensorId t) {
        const Shape &shape = graph.tensor(t).shape;
        h = foldS64(h, shape.rank());
        for (s64 d : shape.dims())
            h = foldS64(h, d);
    };
    for (TensorId t : op.inputs)
        fold_tensor(t);
    for (TensorId t : op.outputs)
        fold_tensor(t);
    return h;
}

} // namespace

StructuralDigest
graphStructuralDigest(const Graph &graph, u64 seed)
{
    StructuralDigest d;
    const std::vector<Operator> &ops = graph.ops();
    const s64 n = static_cast<s64>(ops.size());

    u64 family = foldS64(seed, n);
    u64 exact = foldS64(seed, n);
    for (const Operator &op : ops) {
        family = foldOpStructure(family, graph, op);
        exact = foldOpStructure(exact, graph, op);
        exact = foldOpShapes(exact, graph, op);
    }
    d.family = family;
    d.exact = exact;

    // Window digests are shape-inclusive and positional: the suffix
    // folds positions relative to the graph *end*, so two graphs whose
    // tails match after an insertion still agree on the suffix digest.
    const s64 window = std::min(kDigestWindow, n);
    u64 prefix = foldS64(seed, window);
    for (s64 i = 0; i < window; ++i) {
        const Operator &op = ops[static_cast<std::size_t>(i)];
        prefix = foldS64(prefix, i);
        prefix = foldOpStructure(prefix, graph, op);
        prefix = foldOpShapes(prefix, graph, op);
    }
    u64 suffix = foldS64(seed, window);
    for (s64 i = n - window; i < n; ++i) {
        const Operator &op = ops[static_cast<std::size_t>(i)];
        suffix = foldS64(suffix, n - i);
        suffix = foldOpStructure(suffix, graph, op);
        suffix = foldOpShapes(suffix, graph, op);
    }
    d.prefix = prefix;
    d.suffix = suffix;
    return d;
}

StructuralDigest
requestStructuralDigest(const CompileRequest &request)
{
    // Context seed: everything warm state is only valid within. The
    // build fingerprint makes stale .warm files from an older build
    // unreachable (never found, eventually overwritten), exactly like
    // requestKey() does for plan artifacts. searchThreads is excluded
    // for the same reason it is excluded there: plans — and therefore
    // retained search state — are byte-identical at any search width.
    u64 seed = buildFingerprint();
    seed = fnv1a64(serializeChipConfig(request.chip), seed);
    seed = fnv1a64(request.compilerId, seed);
    seed = fnv1a64(request.optimize ? "|optimize" : "|raw", seed);
    return graphStructuralDigest(request.workload, seed);
}

} // namespace cmswitch
