/**
 * @file
 * Warm-state store: retained plan-search state keyed by structural
 * digest, in memory and (optionally) on disk next to the plan cache.
 *
 * The plan cache answers "have we compiled exactly this request?"; the
 * warm-state store answers the weaker, more valuable serving question
 * "have we compiled a *neighbor* of this request?". A neighbor is any
 * earlier compile in the same structural family (structural_digest.hpp)
 * — typically the adjacent KV bucket of a generative decode sweep, or
 * the same request after its plan artifact was evicted. findNeighbor()
 * prefers an exact structural match (full search-state reuse: the
 * compiler imports every DP row and skips the boundary search) and
 * falls back to the best same-family candidate (delta compile: the
 * differ re-searches only the changed window).
 *
 * Disk layout: one `w-<familyhex>-<exacthex>.warm` file per retained
 * state in the cache directory, a wrapEnvelope() document (tag +
 * length + FNV-1a digest) over the digest header and
 * CompilerWarmState::writeBinary. Warm files are sidecars of the plan
 * cache: `cmswitchc cache gc/verify/stats` ignore them (they walk
 * `*.plan` only), damaged files read as absent (the compile goes cold —
 * a corrupt sidecar can cost time, never correctness), and publication
 * uses the same tmp-file + atomic-rename protocol as plan artifacts.
 *
 * Thread safety: all members are safe for concurrent use; the mutex
 * guards the in-memory index only, file I/O runs unlocked.
 */

#ifndef CMSWITCH_SERVICE_INCREMENTAL_WARM_STATE_STORE_HPP
#define CMSWITCH_SERVICE_INCREMENTAL_WARM_STATE_STORE_HPP

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "compiler/warm_state.hpp"
#include "service/incremental/structural_digest.hpp"

namespace cmswitch {

/** Envelope tag of `.warm` sidecar files (versioned: readers reject
 *  other tags and the compile falls back to cold). */
inline constexpr std::string_view kWarmStateTag = "cmswitch-warm-state-v1\n";

/** Retained states kept per family in memory (and loaded from disk per
 *  lookup): a decode sweep needs its few most recent KV buckets, not
 *  an unbounded history. */
inline constexpr s64 kWarmFamilyCapacity = 4;

class WarmStateStore
{
  public:
    /** @p directory may be empty: the store then lives in memory only
     *  (no cross-process reuse, still reuse within one service). */
    explicit WarmStateStore(std::string directory);

    /** findNeighbor() result: the state plus how it matched. */
    struct Neighbor
    {
        std::shared_ptr<const CompilerWarmState> state;
        bool exact = false; ///< structurally identical (full reuse)
    };

    /**
     * Best retained neighbor for @p digest, or a null state when the
     * family is unseen. Exact structural matches win; same-family
     * candidates are ranked by shared prefix/suffix window digests,
     * then by recency.
     */
    Neighbor findNeighbor(const StructuralDigest &digest);

    /** Retain @p state for future neighbors: insert into the family's
     *  in-memory MRU slots and publish the `.warm` sidecar (best
     *  effort — an I/O failure drops the file, not the process). */
    void put(const StructuralDigest &digest,
             std::shared_ptr<const CompilerWarmState> state);

    /** `<directory>/w-<familyhex>-<exacthex>.warm`, or "" for a
     *  memory-only store. */
    std::string warmPath(const StructuralDigest &digest) const;

    const std::string &directory() const { return directory_; }

  private:
    struct Entry
    {
        StructuralDigest digest;
        std::shared_ptr<const CompilerWarmState> state;
    };

    /** Candidate quality under @p digest: 3 exact, 2 prefix+suffix,
     *  1 one window, 0 family only. */
    static int matchScore(const StructuralDigest &digest,
                          const StructuralDigest &candidate);

    /** Insert into the family bucket, MRU-first, capacity-capped.
     *  Caller holds mutex_. */
    void insertLocked(const StructuralDigest &digest,
                      std::shared_ptr<const CompilerWarmState> state);

    /** Parse + validate one `.warm` file; null on any damage. */
    std::shared_ptr<const CompilerWarmState>
    loadFile(const std::string &path, StructuralDigest *digest_out);

    std::string directory_;

    std::mutex mutex_; ///< guards families_ only
    std::unordered_map<u64, std::vector<Entry>> families_;
};

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_INCREMENTAL_WARM_STATE_STORE_HPP
