#include "service/json_report.hpp"

#include "obs/metrics.hpp"
#include "support/json.hpp"

namespace cmswitch {

void
writeCompileReport(JsonWriter &w, const CompileArtifact &artifact,
                   const obs::MetricsRegistry *observability,
                   const ServiceRequestLatency *latency)
{
    w.beginObject()
        .field("schema", kCompileReportSchema)
        .field("key", artifact.key)
        .field("model", artifact.result.program.modelName())
        .field("chip", artifact.chip.name)
        .field("technology", cellTechnologyName(artifact.chip.technology))
        .field("compiler", artifact.compilerId)
        .field("valid", artifact.validation.ok());
    w.key("validation_problems").beginArray();
    for (const std::string &problem : artifact.validation.problems)
        w.value(problem);
    w.endArray();
    w.key("result");
    artifact.result.writeJson(w);
    w.key("energy");
    artifact.energy.writeJson(w);
    if (observability != nullptr || latency != nullptr) {
        w.key("observability").beginObject();
        if (latency != nullptr) {
            w.key("request")
                .beginObject()
                .field("queue_wait_seconds", latency->queueWaitSeconds)
                .field("execute_seconds", latency->executeSeconds)
                .endObject();
        }
        if (observability != nullptr) {
            w.key("metrics");
            observability->writeJson(w);
        }
        w.endObject();
    }
    w.endObject();
}

std::string
renderCompileReport(const CompileArtifact &artifact,
                    const obs::MetricsRegistry *observability,
                    const ServiceRequestLatency *latency)
{
    JsonWriter w;
    writeCompileReport(w, artifact, observability, latency);
    return w.str();
}

} // namespace cmswitch
