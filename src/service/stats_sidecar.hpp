/**
 * @file
 * Cross-process stats sidecar for the persistent plan cache.
 *
 * DiskPlanCache's hit/miss/store/reject counters are per-process; a
 * fleet of cmswitchc runs sharing one --cache-dir needs *lifetime*
 * totals to judge cache efficacy. Each DiskPlanCache merges its
 * unflushed counter deltas into `<dir>/cache-stats.sidecar` when it is
 * destroyed (or on an explicit flush), using the same tmp-file +
 * atomic-rename publication protocol as plan artifacts: a reader never
 * sees a torn sidecar. The file is a wrapEnvelope() document
 * (`cmswitch-cache-stats-v3` tag + length + FNV-1a digest) over eight
 * little-endian s64 totals (hits, misses, stores, rejected,
 * touchFailed, neighborHits, neighborPartials, neighborMisses).
 * Writers always publish v3; readers also accept the five-total v2 and
 * four-total v1 layouts written by older builds (absent totals read as
 * zero) so a shared cache directory upgrades in place.
 *
 * Accuracy contract: the read-modify-write merge is not transactional
 * across processes — two processes flushing at the same instant can
 * lose one delta. Totals are observability, not accounting; losing an
 * increment under a rare race is acceptable, serving a torn file is
 * not. A missing or damaged sidecar reads as all-zero and is simply
 * rewritten by the next merge. `cmswitchc cache gc` never deletes the
 * sidecar (it only reaps *.plan artifacts).
 */

#ifndef CMSWITCH_SERVICE_STATS_SIDECAR_HPP
#define CMSWITCH_SERVICE_STATS_SIDECAR_HPP

#include <string>
#include <string_view>

#include "service/disk_plan_cache.hpp"

namespace cmswitch {

/** File name of the stats sidecar inside a cache directory. */
inline constexpr std::string_view kStatsSidecarName = "cache-stats.sidecar";

/** Format tag written by this build (wrapEnvelope document). */
inline constexpr std::string_view kStatsSidecarTag =
    "cmswitch-cache-stats-v3\n";

/** Legacy five-total layout (no neighbor counters); still readable,
 *  never written. */
inline constexpr std::string_view kStatsSidecarTagV2 =
    "cmswitch-cache-stats-v2\n";

/** Legacy four-total layout; still readable, never written. */
inline constexpr std::string_view kStatsSidecarTagV1 =
    "cmswitch-cache-stats-v1\n";

/** `<directory>/cache-stats.sidecar`. */
std::string statsSidecarPath(const std::string &directory);

/**
 * Read the sidecar totals. A missing, truncated, or corrupt sidecar
 * yields all-zero totals with @p present (when non-null) set false —
 * stats degrade, they never fail.
 */
DiskPlanCacheStats readStatsSidecar(const std::string &directory,
                                    bool *present = nullptr);

/**
 * Fold @p delta into the sidecar (read current totals, add, publish via
 * tmp + rename) and return the merged totals. Best effort: an I/O
 * failure warns, drops the publication, and still returns the sum.
 */
DiskPlanCacheStats mergeStatsSidecar(const std::string &directory,
                                     const DiskPlanCacheStats &delta);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_STATS_SIDECAR_HPP
