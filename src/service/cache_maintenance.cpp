#include "service/cache_maintenance.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string_view>
#include <system_error>

#include "service/artifact_io.hpp"
#include "service/plan_fingerprint.hpp"
#include "service/stats_sidecar.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace cmswitch {

namespace fs = std::filesystem;

namespace {

constexpr const char kPlanSuffix[] = ".plan";

/** Temp files older than this are orphans of crashed writers: a live
 *  writer holds its temp for milliseconds between write and rename. */
constexpr s64 kStaleTempSeconds = 600;

struct PlanEntry
{
    std::string file; ///< name within the cache directory
    s64 bytes = 0;
    fs::file_time_type mtime;
};

void
requireCacheDirectory(const std::string &directory)
{
    cmswitch_fatal_if(directory.empty(), "cache directory must not be empty");
    cmswitch_fatal_if(!fs::is_directory(directory), "cache path ", directory,
                      " is not a directory");
}

s64
ageSeconds(fs::file_time_type mtime, fs::file_time_type now)
{
    return std::chrono::duration_cast<std::chrono::seconds>(now - mtime)
        .count();
}

/**
 * One directory walk shared by gc/verify/stats: collects `*.plan`
 * artifacts sorted oldest-mtime-first (file name as tie-break, so the
 * order is deterministic when mtimes collide) and, when @p reap_temps,
 * deletes orphaned `*.tmp.*` files, counting them in @p stale_temps.
 * A walk error midway ends the scan and is reported in @p walk_error —
 * callers surface it so a partial scan is never mistaken for a clean
 * full one.
 */
std::vector<PlanEntry>
scanPlanFiles(const std::string &directory, bool reap_temps,
              s64 *stale_temps, std::string *walk_error)
{
    std::vector<PlanEntry> entries;
    fs::file_time_type now = fs::file_time_type::clock::now();
    // The non-throwing iteration overloads throughout: an unreadable
    // directory is a clean fatal (user error), and a walk error midway
    // (the directory deleted under us) ends the scan instead of
    // escaping as an uncaught filesystem_error.
    std::error_code walk_ec;
    fs::directory_iterator it(directory, walk_ec);
    cmswitch_fatal_if(walk_ec, "cannot read cache directory ", directory,
                      ": ", walk_ec.message());
    for (; !walk_ec && it != fs::directory_iterator();
         it.increment(walk_ec)) {
        const fs::directory_entry &entry = *it;
        std::error_code ec;
        if (!entry.is_regular_file(ec) || ec)
            continue;
        std::string name = entry.path().filename().string();
        if (std::string_view(name).ends_with(kPlanSuffix)) {
            PlanEntry plan;
            plan.file = name;
            plan.bytes = static_cast<s64>(entry.file_size(ec));
            if (ec)
                continue; // deleted under us: a concurrent gc's race win
            plan.mtime = entry.last_write_time(ec);
            if (ec)
                continue;
            entries.push_back(std::move(plan));
        } else if (reap_temps && name.find(".tmp.") != std::string::npos) {
            fs::file_time_type mtime = entry.last_write_time(ec);
            if (ec || ageSeconds(mtime, now) <= kStaleTempSeconds)
                continue; // fresh temp: a live writer owns it
            fs::remove(entry.path(), ec);
            if (!ec && stale_temps)
                ++*stale_temps;
        }
        // Everything else (the stats sidecar, stray files) is not ours
        // to manage: gc only reaps plan artifacts and orphaned temps.
    }
    if (walk_ec) {
        warn("cache directory walk of ", directory, " ended early: ",
             walk_ec.message());
        *walk_error = walk_ec.message();
    }
    std::sort(entries.begin(), entries.end(),
              [](const PlanEntry &a, const PlanEntry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.file < b.file;
              });
    return entries;
}

} // namespace

void
CacheGcReport::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .field("schema", "cmswitch-cache-gc-v1")
        .field("dir", directory)
        .field("scanned_files", scannedFiles)
        .field("scanned_bytes", scannedBytes)
        .field("deleted_files", deletedFiles)
        .field("deleted_bytes", deletedBytes)
        .field("kept_files", keptFiles)
        .field("kept_bytes", keptBytes)
        .field("stale_temp_files", staleTempFiles)
        .field("walk_error", walkError);
    w.key("deleted").beginArray();
    for (const CacheGcDeletion &d : deleted) {
        w.beginObject()
            .field("file", d.file)
            .field("bytes", d.bytes)
            .field("reason", d.reason)
            .endObject();
    }
    w.endArray().endObject();
}

CacheGcReport
gcPlanCache(const CacheGcOptions &options)
{
    requireCacheDirectory(options.directory);
    CacheGcReport report;
    report.directory = options.directory;

    std::vector<PlanEntry> plans =
        scanPlanFiles(options.directory, /*reap_temps=*/true,
                      &report.staleTempFiles, &report.walkError);
    for (const PlanEntry &plan : plans) {
        ++report.scannedFiles;
        report.scannedBytes += plan.bytes;
    }

    fs::file_time_type now = fs::file_time_type::clock::now();
    // Why each file is doomed (nullptr = kept); the deletion loop
    // reports exactly the reason that marked it.
    std::vector<const char *> doom(plans.size(), nullptr);

    // Pass 1: age expiry. Runs first so expired plans never occupy the
    // byte budget.
    if (options.maxAgeSeconds >= 0) {
        for (std::size_t i = 0; i < plans.size(); ++i) {
            if (ageSeconds(plans[i].mtime, now) > options.maxAgeSeconds)
                doom[i] = "expired";
        }
    }

    // Pass 2: LRU byte budget over the survivors. plans is sorted
    // oldest-first, so deleting from the front IS least-recently-used
    // order (DiskPlanCache touches a plan's mtime on every hit).
    if (options.maxBytes >= 0) {
        s64 live_bytes = 0;
        for (std::size_t i = 0; i < plans.size(); ++i)
            if (!doom[i])
                live_bytes += plans[i].bytes;
        for (std::size_t i = 0; i < plans.size() && live_bytes > options.maxBytes;
             ++i) {
            if (doom[i])
                continue;
            doom[i] = "evicted";
            live_bytes -= plans[i].bytes;
        }
    }

    for (std::size_t i = 0; i < plans.size(); ++i) {
        const PlanEntry &plan = plans[i];
        if (!doom[i]) {
            ++report.keptFiles;
            report.keptBytes += plan.bytes;
            continue;
        }
        std::error_code ec;
        fs::remove(fs::path(options.directory) / plan.file, ec);
        if (ec) {
            warn("cache gc: cannot delete ", plan.file, ": ", ec.message());
            ++report.keptFiles;
            report.keptBytes += plan.bytes;
            continue;
        }
        ++report.deletedFiles;
        report.deletedBytes += plan.bytes;
        report.deleted.push_back({plan.file, plan.bytes, doom[i]});
    }
    return report;
}

void
CacheVerifyReport::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .field("schema", "cmswitch-cache-verify-v1")
        .field("dir", directory)
        .field("scanned_files", scannedFiles)
        .field("valid_files", validFiles)
        .field("damaged_files", damagedFiles)
        .field("removed_files", removedFiles)
        .field("walk_error", walkError)
        .field("clean", clean());
    w.key("damaged").beginArray();
    for (const CacheVerifyDamage &d : damaged) {
        w.beginObject()
            .field("file", d.file)
            .field("reason", d.reason)
            .field("removed", d.removed)
            .endObject();
    }
    w.endArray().endObject();
}

CacheVerifyReport
verifyPlanCache(const CacheVerifyOptions &options)
{
    requireCacheDirectory(options.directory);
    CacheVerifyReport report;
    report.directory = options.directory;

    for (const PlanEntry &plan :
         scanPlanFiles(options.directory, /*reap_temps=*/false, nullptr,
                       &report.walkError)) {
        ++report.scannedFiles;
        fs::path path = fs::path(options.directory) / plan.file;

        // The same protocol a DiskPlanCache::load runs (artifact_io's
        // readPlanFile): a file verify accepts is a file a load serves.
        std::string stem = plan.file.substr(
            0, plan.file.size() - (sizeof(kPlanSuffix) - 1));
        std::string reason;
        bool missing = false;
        ArtifactPtr artifact =
            readPlanFile(path.string(), stem, &reason, &missing);
        if (missing) {
            // Deleted between the scan and the read (a concurrent gc):
            // not ours to judge — a load would see a plain miss.
            --report.scannedFiles;
            continue;
        }
        if (artifact) {
            ++report.validFiles;
            continue;
        }
        ++report.damagedFiles;
        CacheVerifyDamage damage{plan.file, reason, false};
        if (options.removeDamaged) {
            std::error_code ec;
            fs::remove(path, ec);
            if (ec) {
                warn("cache verify: cannot delete ", plan.file, ": ",
                     ec.message());
            } else {
                damage.removed = true;
                ++report.removedFiles;
            }
        }
        report.damaged.push_back(std::move(damage));
    }
    return report;
}

void
CacheStatsReport::writeJson(JsonWriter &w) const
{
    // Distinct from the *sidecar's* envelope tag (cmswitch-cache-stats-v3,
    // a binary format): this is the JSON report, versioned independently.
    // v2 adds the incremental-compilation neighbor totals.
    w.beginObject()
        .field("schema", "cmswitch-cache-stats-report-v2")
        .field("dir", directory)
        .field("sidecar_present", sidecarPresent)
        .field("hits", totals.hits)
        .field("misses", totals.misses)
        .field("stores", totals.stores)
        .field("rejected", totals.rejected)
        .field("touch_failed", totals.touchFailed)
        .field("neighbor_hits", totals.neighborHits)
        .field("neighbor_partials", totals.neighborPartials)
        .field("neighbor_misses", totals.neighborMisses)
        .field("plan_files", planFiles)
        .field("plan_bytes", planBytes)
        .field("walk_error", walkError)
        .field("fingerprint", fingerprint)
        .endObject();
}

CacheStatsReport
statsPlanCache(const std::string &directory)
{
    requireCacheDirectory(directory);
    CacheStatsReport report;
    report.directory = directory;
    report.totals = readStatsSidecar(directory, &report.sidecarPresent);
    for (const PlanEntry &plan :
         scanPlanFiles(directory, /*reap_temps=*/false, nullptr,
                       &report.walkError)) {
        ++report.planFiles;
        report.planBytes += plan.bytes;
    }
    report.fingerprint = buildFingerprintHex();
    return report;
}

} // namespace cmswitch
