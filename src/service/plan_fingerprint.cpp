#include "service/plan_fingerprint.hpp"

#include <map>
#include <mutex>
#include <optional>

#include "service/artifact_io.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

#ifndef CMSWITCH_VERSION
#define CMSWITCH_VERSION "dev"
#endif

namespace cmswitch {

namespace {

std::mutex bump_mutex; // guards testBumps() and cachedFingerprint()

std::map<std::string, s64> &
testBumps()
{
    static std::map<std::string, s64> bumps;
    return bumps;
}

/** Memoized digest: outside tests the fingerprint is a process
 *  constant, and requestKey() calls this on every submission. Bumps
 *  reset it. */
std::optional<u64> &
cachedFingerprint()
{
    static std::optional<u64> cached;
    return cached;
}

} // namespace

const std::vector<AlgorithmRevision> &
algorithmRevisions()
{
    // One row per pass whose output lands in a CompileArtifact. All
    // start at revision 1 (the revision history begins with this
    // table); bump a row when its pass's output changes.
    static const std::vector<AlgorithmRevision> kTable = {
        {"frontend-passes", 1}, // graph/passes.cpp
        {"partitioner", 1},     // compiler/partitioner.cpp
        {"segmenter", 1},       // compiler/segmenter.cpp
        {"allocator", 1},       // compiler/allocator.cpp
        {"codegen", 1},         // compiler/codegen.cpp
        {"cost-model", 1},      // cost/cost_model.cpp
        {"mip-solver", 1},      // solver/
        {"baselines", 1},       // baselines/ (cim-mlc, occ, puma)
        {"energy-model", 1},    // sim/energy.cpp
        {"validator", 1},       // metaop/validator.cpp
    };
    return kTable;
}

u64
buildFingerprint()
{
    std::lock_guard<std::mutex> lock(bump_mutex);
    if (cachedFingerprint())
        return *cachedFingerprint();
    u64 h = fnv1a64(kPlanFormatTag);
    h = fnv1a64(CMSWITCH_VERSION, h);
    for (const AlgorithmRevision &entry : algorithmRevisions()) {
        s64 revision = entry.revision;
        auto it = testBumps().find(entry.pass);
        if (it != testBumps().end())
            revision += it->second;
        h = fnv1a64(entry.pass, h);
        h = fnv1a64(concat(":", revision, ";"), h);
    }
    cachedFingerprint() = h;
    return h;
}

std::string
buildFingerprintHex()
{
    return hexDigest(buildFingerprint());
}

void
bumpAlgorithmRevisionForTesting(const std::string &pass, s64 delta)
{
    std::lock_guard<std::mutex> lock(bump_mutex);
    s64 &bump = testBumps()[pass];
    bump += delta;
    if (bump == 0)
        testBumps().erase(pass);
    cachedFingerprint().reset();
}

} // namespace cmswitch
