/**
 * @file
 * JSON report rendering for compile artifacts — the machine-readable
 * output of `cmswitchc --emit-json`, every per-job file of
 * `cmswitchc batch`, and every serve-daemon response report. The
 * schema is documented field-by-field in docs/schemas.md; bump
 * kCompileReportSchema when it changes shape.
 *
 * Reports are *content-deterministic*: two artifacts for the same
 * request key render to byte-identical text, independent of thread
 * count, machine load, or which run produced them. Wall-clock values
 * (compile seconds) therefore live only in the batch summary, never in
 * a report.
 *
 * The one opt-in exception: the "observability" object. When the
 * caller passes a MetricsRegistry (single-mode `--trace`/`--metrics`
 * sessions, batch `--job-latency`) the report gains
 * "observability.metrics" (full snapshot: counters, gauges, phase
 * quantiles); when it passes a ServiceRequestLatency the report gains
 * "observability.request" (this request's queue-wait/execute split —
 * the same two fields serve responses and the batch summary report,
 * so the three modes stay field-compatible). Both carry timing and
 * are intentionally absent from default batch per-job reports, which
 * stay byte-comparable across runs. v2 moved the metrics snapshot
 * from "observability" itself down to "observability.metrics" to make
 * room for the per-request section.
 */

#ifndef CMSWITCH_SERVICE_JSON_REPORT_HPP
#define CMSWITCH_SERVICE_JSON_REPORT_HPP

#include <string>

#include "service/compile_service.hpp"

namespace cmswitch {

/** Schema tag stamped into every per-compile report. */
inline constexpr const char *kCompileReportSchema =
    "cmswitch-compile-report-v2";

namespace obs {
class MetricsRegistry;
}

/**
 * Render @p artifact as an indented JSON document. When
 * @p observability is non-null the report gains
 * "observability.metrics" (full snapshot: counters, gauges, phase
 * quantiles); when @p latency is non-null it gains
 * "observability.request" (queue-wait/execute seconds).
 */
std::string renderCompileReport(const CompileArtifact &artifact,
                                const obs::MetricsRegistry *observability =
                                    nullptr,
                                const ServiceRequestLatency *latency =
                                    nullptr);

/** writeJson-style hook for embedding a report into a larger document. */
void writeCompileReport(JsonWriter &w, const CompileArtifact &artifact,
                        const obs::MetricsRegistry *observability = nullptr,
                        const ServiceRequestLatency *latency = nullptr);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_JSON_REPORT_HPP
