/**
 * @file
 * JSON report rendering for compile artifacts — the machine-readable
 * output of `cmswitchc --emit-json` and every per-job file of
 * `cmswitchc batch`. The schema is documented field-by-field in
 * README.md ("JSON report schema"); bump kCompileReportSchema when it
 * changes shape.
 *
 * Reports are *content-deterministic*: two artifacts for the same
 * request key render to byte-identical text, independent of thread
 * count, machine load, or which run produced them. Wall-clock values
 * (compile seconds) therefore live only in the batch summary, never in
 * a report.
 *
 * The one opt-in exception: when the caller passes a MetricsRegistry
 * (single-mode `--trace`/`--metrics` sessions), the report gains an
 * "observability" object with the per-phase latency breakdown. That
 * section carries timing and is intentionally absent from batch
 * per-job reports, which stay byte-comparable across runs.
 */

#ifndef CMSWITCH_SERVICE_JSON_REPORT_HPP
#define CMSWITCH_SERVICE_JSON_REPORT_HPP

#include <string>

#include "service/compile_service.hpp"

namespace cmswitch {

/** Schema tag stamped into every per-compile report. */
inline constexpr const char *kCompileReportSchema =
    "cmswitch-compile-report-v1";

namespace obs {
class MetricsRegistry;
}

/**
 * Render @p artifact as an indented JSON document. When
 * @p observability is non-null the report gains an "observability"
 * object (full metrics snapshot: counters, gauges, phase quantiles).
 */
std::string renderCompileReport(const CompileArtifact &artifact,
                                const obs::MetricsRegistry *observability =
                                    nullptr);

/** writeJson-style hook for embedding a report into a larger document. */
void writeCompileReport(JsonWriter &w, const CompileArtifact &artifact,
                        const obs::MetricsRegistry *observability = nullptr);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_JSON_REPORT_HPP
