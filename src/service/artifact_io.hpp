/**
 * @file
 * Versioned on-disk artifact format for compiled plans
 * (`cmswitch-plan-v1`).
 *
 * Layout of a plan file:
 *
 *   bytes 0..16   format tag "cmswitch-plan-v1\n" (version lives in the
 *                 tag; a future v2 is a different tag, so v1 readers
 *                 reject it instead of misparsing it)
 *   u64           payload byte length
 *   u64           FNV-1a digest of the payload bytes
 *   payload       binary CompileArtifact (support/serialize.hpp
 *                 primitives; every field, including the producing
 *                 requestKey and compileSeconds)
 *
 * The length + digest header means truncation and bit corruption are
 * detected *before* any payload parsing; the payload decoders throw
 * SerializeError for anything structural the digest cannot catch.
 * deserializeCompileArtifact never throws — a bad file is an expected
 * environmental condition, reported as nullptr so callers recompile.
 *
 * The format guarantees exact round-trips: a JSON report rendered from
 * a deserialized artifact is byte-identical to one rendered from the
 * fresh compile (tests/plan_cache_persist_test.cpp pins this for every
 * scenario-matrix cell).
 */

#ifndef CMSWITCH_SERVICE_ARTIFACT_IO_HPP
#define CMSWITCH_SERVICE_ARTIFACT_IO_HPP

#include <string>
#include <string_view>

#include "service/compile_service.hpp"

namespace cmswitch {

/** Format tag opening every plan file; bump the number on any change
 *  to the payload layout (old artifacts then recompile). */
inline constexpr std::string_view kPlanFormatTag = "cmswitch-plan-v1\n";

/** Serialise @p artifact to the cmswitch-plan-v1 file image. */
std::string serializeCompileArtifact(const CompileArtifact &artifact);

/**
 * Parse a plan-file image. Returns nullptr — with a one-line reason in
 * @p error if non-null — when the tag or version does not match, the
 * payload is truncated or corrupt, or decoding fails. Never throws.
 */
ArtifactPtr deserializeCompileArtifact(std::string_view data,
                                       std::string *error = nullptr);

/**
 * The one plan-file validation protocol: read @p path, deserialize,
 * and require the embedded request key to equal @p expected_key.
 * Returns nullptr with a one-line reason in @p error (when non-null)
 * on any failure; an unopenable file additionally sets @p missing
 * (when non-null), so callers can tell a plain cache miss from a
 * damaged file. DiskPlanCache::load and `cmswitchc cache verify` both
 * go through here, so a file verify accepts is exactly a file a load
 * would serve.
 */
ArtifactPtr readPlanFile(const std::string &path,
                         const std::string &expected_key,
                         std::string *error = nullptr,
                         bool *missing = nullptr);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_ARTIFACT_IO_HPP
