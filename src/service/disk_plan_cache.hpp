/**
 * @file
 * Persistent, cross-process plan cache: one `<requestKey>.plan` file
 * per compiled artifact in a user-chosen directory, in the versioned
 * cmswitch-plan-v1 format (service/artifact_io.hpp).
 *
 * Sits *under* the in-memory PlanCache: the compile service looks up
 * memory -> disk -> compile, so separate `cmswitchc` runs, batch jobs
 * and CI stages share plans through the filesystem.
 *
 * Concurrency model: many processes may read and write one cache
 * directory at once. Writes go to a process-unique temporary file and
 * are published with an atomic rename, so a reader never observes a
 * torn artifact — it sees either the old file, the new file, or no
 * file. Losing a store() race is harmless: racing writers of one key
 * publish *equivalent* plans (same request, same schedule, identical
 * JSON report) though not byte-identical files — the serialized
 * artifact embeds the wall-clock compileSeconds of whichever compile
 * produced it. Do not build file-digest dedup or plan-file equality
 * checks on top of this; compare reports, not plan files.
 *
 * Robustness: artifacts whose format tag, length, digest, payload, or
 * embedded request key do not check out are treated as misses (counted
 * as `rejected`) and the request recompiles — a stale or corrupt cache
 * can cost time, never correctness.
 */

#ifndef CMSWITCH_SERVICE_DISK_PLAN_CACHE_HPP
#define CMSWITCH_SERVICE_DISK_PLAN_CACHE_HPP

#include <functional>
#include <mutex>
#include <string>

#include "service/plan_cache.hpp"

namespace cmswitch {

class JsonWriter;

/** How an incremental compile's neighbor lookup resolved (see
 *  service/incremental/incremental_compile.hpp for the semantics). */
enum class NeighborOutcome {
    kHit,     ///< neighbor found and its warm state did real work
    kPartial, ///< neighbor found but nothing was reusable
    kMiss,    ///< no retained state in the request's family
};

/** Monotonic counters; snapshot via DiskPlanCache::stats(). */
struct DiskPlanCacheStats
{
    s64 hits = 0;     ///< artifacts served from disk
    s64 misses = 0;   ///< keys with no plan file
    s64 stores = 0;   ///< artifacts written (and published) to disk
    s64 rejected = 0; ///< corrupt / truncated / wrong-version / wrong-key
                      ///< files ignored (each also counts as a miss)
    s64 touchFailed = 0; ///< hits whose LRU mtime refresh failed (e.g. a
                         ///< read-only cache dir); the hit still serves.
                         ///< Persisted in the v2 sidecar alongside the
                         ///< four totals above (v1 files read as zero)
    /** @{ Incremental-compilation neighbor lookups (recordNeighbor);
     *  persisted in the v3 sidecar, v2/v1 files read as zero. */
    s64 neighborHits = 0;
    s64 neighborPartials = 0;
    s64 neighborMisses = 0;
    /** @} */

    /** Emit {"disk_hits", ...} fields into the currently open object. */
    void writeJsonFields(JsonWriter &w) const;
};

class DiskPlanCache
{
  public:
    /** Creates @p directory (and parents) if missing; fatals when that
     *  fails or the path exists and is not a directory (user error). */
    explicit DiskPlanCache(std::string directory);

    /** Flushes unreported stats into the cross-process sidecar. */
    ~DiskPlanCache();

    /**
     * Load the artifact for @p key, or nullptr when no usable plan file
     * exists. Unreadable/invalid files are rejected silently (the
     * caller recompiles); rejection reasons are logged at verbose level
     * only.
     */
    ArtifactPtr load(const std::string &key);

    /**
     * Serialise @p artifact and publish it under @p key via a
     * temp-file + atomic-rename pair. I/O failures warn and drop the
     * store (the cache is an accelerator, not a durability contract).
     */
    void store(const std::string &key, const ArtifactPtr &artifact);

    /**
     * The disk-layer lookup protocol in one place: serve @p key from
     * disk if a usable plan file exists, otherwise run @p compute and
     * publish its artifact. Callers layering this under an in-memory
     * cache pass their compute path; see CompileService::lookup.
     */
    ArtifactPtr loadOrCompute(const std::string &key,
                              const std::function<ArtifactPtr()> &compute);

    /**
     * Count one incremental-compilation neighbor lookup against this
     * cache directory's stats (and, through the sidecar, its lifetime
     * totals). Called by the neighbor compile path for requests that
     * missed both the memory and disk caches.
     */
    void recordNeighbor(NeighborOutcome outcome);

    /** Absolute or user-relative plan file path for @p key. */
    std::string planPath(const std::string &key) const;

    const std::string &directory() const { return directory_; }

    DiskPlanCacheStats stats() const;

    /**
     * Merge the stats accumulated since the last flush into the
     * cross-process sidecar file (service/stats_sidecar.hpp) and return
     * the merged lifetime totals. Idempotent — a second flush with no
     * new activity adds nothing. Runs automatically on destruction, so
     * short-lived processes still contribute their counters.
     */
    DiskPlanCacheStats flushSidecar();

  private:
    std::string directory_;

    mutable std::mutex mutex_; ///< guards stats_/flushed_; I/O unlocked
    DiskPlanCacheStats stats_;
    DiskPlanCacheStats flushed_; ///< snapshot already merged to sidecar
};

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_DISK_PLAN_CACHE_HPP
