/**
 * @file
 * Content-keyed, in-memory plan cache with single-flight semantics.
 *
 * Keys are canonical content hashes (service/compile_service.hpp
 * computes them from chip + workload + compiler id + options), values
 * are immutable compiled artifacts behind shared_ptr<const>. The cache
 * guarantees that for any key at most ONE compute runs at a time:
 * concurrent requesters of an in-flight key block on the owner's
 * shared_future instead of duplicating minutes of compilation.
 *
 * Eviction is LRU over *completed* entries only, bounded by a capacity
 * in entries; in-flight computations are never evicted. Hit counting
 * treats a join of an in-flight compute as a hit, so as long as
 * nothing is evicted (capacity >= unique keys in play) hit/miss totals
 * are deterministic (misses == unique keys) regardless of thread
 * interleaving — the batch determinism tests rely on this. Once
 * eviction kicks in, a repeated key may recompute and the split
 * becomes load-dependent.
 */

#ifndef CMSWITCH_SERVICE_PLAN_CACHE_HPP
#define CMSWITCH_SERVICE_PLAN_CACHE_HPP

#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "support/common.hpp"

namespace cmswitch {

struct CompileArtifact;
using ArtifactPtr = std::shared_ptr<const CompileArtifact>;

/** Monotonic counters; snapshot via PlanCache::stats(). */
struct PlanCacheStats
{
    s64 hits = 0;      ///< ready-entry hits + in-flight joins
    s64 misses = 0;    ///< computes actually run (== unique keys seen)
    s64 evictions = 0; ///< completed entries dropped by the LRU bound
};

class PlanCache
{
  public:
    /** @p capacity: max *completed* entries kept; must be >= 1. */
    explicit PlanCache(s64 capacity = 256);

    /**
     * Return the artifact for @p key, running @p compute in the calling
     * thread iff no other thread has computed or is computing it.
     * Concurrent callers with the same key block until the owner
     * finishes and then share the same artifact pointer. If @p compute
     * throws, the entry is removed (later calls retry) and every waiter
     * rethrows.
     */
    ArtifactPtr getOrCompute(const std::string &key,
                             const std::function<ArtifactPtr()> &compute);

    /** Completed entries currently resident. */
    s64 size() const;

    PlanCacheStats stats() const;

    s64 capacity() const { return capacity_; }

  private:
    struct Entry
    {
        std::shared_future<ArtifactPtr> future;
        bool ready = false;
        /** Position in lru_ (valid only when ready). */
        std::list<std::string>::iterator lruPos;
    };

    /** Drop least-recently-used completed entries over capacity.
     *  Caller holds mutex_. */
    void evictOverCapacity();

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
    std::list<std::string> lru_; ///< completed keys, least recent first
    s64 capacity_;
    PlanCacheStats stats_;
};

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_PLAN_CACHE_HPP
