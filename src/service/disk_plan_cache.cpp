#include "service/disk_plan_cache.hpp"

#include <filesystem>
#include <system_error>

#include "obs/obs.hpp"
#include "service/artifact_io.hpp"
#include "service/stats_sidecar.hpp"
#include "support/atomic_file.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace cmswitch {

namespace fs = std::filesystem;

void
DiskPlanCacheStats::writeJsonFields(JsonWriter &w) const
{
    w.field("disk_hits", hits)
        .field("disk_misses", misses)
        .field("disk_stores", stores)
        .field("disk_rejected", rejected)
        .field("disk_touch_failed", touchFailed)
        .field("disk_neighbor_hits", neighborHits)
        .field("disk_neighbor_partials", neighborPartials)
        .field("disk_neighbor_misses", neighborMisses);
}

DiskPlanCache::DiskPlanCache(std::string directory)
    : directory_(std::move(directory))
{
    cmswitch_fatal_if(directory_.empty(),
                      "plan cache directory must not be empty");
    std::error_code ec;
    fs::create_directories(directory_, ec);
    cmswitch_fatal_if(ec, "cannot create plan cache directory ",
                      directory_, ": ", ec.message());
    cmswitch_fatal_if(!fs::is_directory(directory_),
                      "plan cache path ", directory_,
                      " exists and is not a directory");
}

DiskPlanCache::~DiskPlanCache()
{
    bool dirty;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dirty = stats_.hits != flushed_.hits
             || stats_.misses != flushed_.misses
             || stats_.stores != flushed_.stores
             || stats_.rejected != flushed_.rejected
             || stats_.touchFailed != flushed_.touchFailed
             || stats_.neighborHits != flushed_.neighborHits
             || stats_.neighborPartials != flushed_.neighborPartials
             || stats_.neighborMisses != flushed_.neighborMisses;
    }
    // Nothing new since the last flush (e.g. batch mode flushed for its
    // summary moments ago): skip the sidecar I/O entirely.
    if (dirty)
        flushSidecar();
}

std::string
DiskPlanCache::planPath(const std::string &key) const
{
    return (fs::path(directory_) / (key + ".plan")).string();
}

ArtifactPtr
DiskPlanCache::load(const std::string &key)
{
    obs::Span span("disk_cache.load", "cache");
    std::string path = planPath(key);
    std::string error;
    bool missing = false;
    ArtifactPtr artifact = readPlanFile(path, key, &error, &missing);
    if (missing) { // absent: a plain miss, not a rejection
        obs::count(obs::Met::kDiskCacheMisses);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return nullptr;
    }
    if (!artifact) {
        informVerbose("ignoring plan file ", path, ": ", error);
        obs::count(obs::Met::kDiskCacheMisses);
        obs::count(obs::Met::kDiskCacheRejected);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        ++stats_.rejected;
        return nullptr;
    }
    // Refresh the plan file's mtime so `cmswitchc cache gc` (LRU by
    // mtime) treats reads as uses, not just writes. Best effort: a
    // read-only cache directory still serves hits; the failure is
    // counted (touchFailed) so operators can see GC's LRU order is
    // running on stale read times.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    if (ec)
        informVerbose("plan cache hit ", path,
                      " but mtime refresh failed: ", ec.message());
    obs::count(obs::Met::kDiskCacheHits);
    if (ec)
        obs::count(obs::Met::kDiskCacheTouchFailed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hits;
        if (ec)
            ++stats_.touchFailed;
    }
    return artifact;
}

void
DiskPlanCache::store(const std::string &key, const ArtifactPtr &artifact)
{
    cmswitch_assert(artifact != nullptr, "cannot store a null artifact");
    cmswitch_assert(artifact->key == key,
                    "artifact key does not match store key");
    obs::Span span("disk_cache.store", "cache");
    std::string image = serializeCompileArtifact(*artifact);

    // Temp-file + atomic-rename publication (support/atomic_file.hpp):
    // concurrent readers see the old plan, the new plan, or nothing —
    // never a torn file. A failed publication is a dropped store, not
    // an error — the cache is an accelerator, not a durability
    // contract.
    if (!publishFileAtomically(planPath(key), image))
        return;
    obs::count(obs::Met::kDiskCacheStores);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
}

void
DiskPlanCache::recordNeighbor(NeighborOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    switch (outcome) {
    case NeighborOutcome::kHit: ++stats_.neighborHits; break;
    case NeighborOutcome::kPartial: ++stats_.neighborPartials; break;
    case NeighborOutcome::kMiss: ++stats_.neighborMisses; break;
    }
}

ArtifactPtr
DiskPlanCache::loadOrCompute(const std::string &key,
                             const std::function<ArtifactPtr()> &compute)
{
    if (ArtifactPtr artifact = load(key))
        return artifact;
    ArtifactPtr artifact = compute();
    store(key, artifact);
    return artifact;
}

DiskPlanCacheStats
DiskPlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

DiskPlanCacheStats
DiskPlanCache::flushSidecar()
{
    DiskPlanCacheStats delta;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        delta.hits = stats_.hits - flushed_.hits;
        delta.misses = stats_.misses - flushed_.misses;
        delta.stores = stats_.stores - flushed_.stores;
        delta.rejected = stats_.rejected - flushed_.rejected;
        delta.touchFailed = stats_.touchFailed - flushed_.touchFailed;
        delta.neighborHits = stats_.neighborHits - flushed_.neighborHits;
        delta.neighborPartials =
            stats_.neighborPartials - flushed_.neighborPartials;
        delta.neighborMisses =
            stats_.neighborMisses - flushed_.neighborMisses;
        flushed_ = stats_;
    }
    if (delta.hits == 0 && delta.misses == 0 && delta.stores == 0
        && delta.rejected == 0 && delta.touchFailed == 0
        && delta.neighborHits == 0 && delta.neighborPartials == 0
        && delta.neighborMisses == 0)
        return readStatsSidecar(directory_);
    return mergeStatsSidecar(directory_, delta);
}

} // namespace cmswitch
