#include "service/disk_plan_cache.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "service/artifact_io.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace cmswitch {

namespace fs = std::filesystem;

namespace {

/** Process + sequence suffix that makes temp file names collision-free
 *  across concurrent writers of the same key. */
std::string
tempSuffix()
{
    static std::atomic<u64> sequence{0};
#ifdef _WIN32
    u64 pid = static_cast<u64>(_getpid());
#else
    u64 pid = static_cast<u64>(::getpid());
#endif
    return std::to_string(pid) + "." + std::to_string(++sequence);
}

} // namespace

void
DiskPlanCacheStats::writeJsonFields(JsonWriter &w) const
{
    w.field("disk_hits", hits)
        .field("disk_misses", misses)
        .field("disk_stores", stores)
        .field("disk_rejected", rejected);
}

DiskPlanCache::DiskPlanCache(std::string directory)
    : directory_(std::move(directory))
{
    cmswitch_fatal_if(directory_.empty(),
                      "plan cache directory must not be empty");
    std::error_code ec;
    fs::create_directories(directory_, ec);
    cmswitch_fatal_if(ec, "cannot create plan cache directory ",
                      directory_, ": ", ec.message());
    cmswitch_fatal_if(!fs::is_directory(directory_),
                      "plan cache path ", directory_,
                      " exists and is not a directory");
}

std::string
DiskPlanCache::planPath(const std::string &key) const
{
    return (fs::path(directory_) / (key + ".plan")).string();
}

ArtifactPtr
DiskPlanCache::load(const std::string &key)
{
    std::string path = planPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return nullptr;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    std::string data = oss.str();

    std::string error;
    ArtifactPtr artifact = deserializeCompileArtifact(data, &error);
    if (artifact && artifact->key != key) {
        error = "embedded request key '" + artifact->key
              + "' does not match file name";
        artifact = nullptr;
    }
    if (!artifact) {
        informVerbose("ignoring plan file ", path, ": ", error);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        ++stats_.rejected;
        return nullptr;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hits;
    }
    return artifact;
}

void
DiskPlanCache::store(const std::string &key, const ArtifactPtr &artifact)
{
    cmswitch_assert(artifact != nullptr, "cannot store a null artifact");
    cmswitch_assert(artifact->key == key,
                    "artifact key does not match store key");
    std::string image = serializeCompileArtifact(*artifact);

    // Write to a process-unique temp name, then publish atomically:
    // concurrent readers see the old plan, the new plan, or nothing —
    // never a torn file.
    fs::path final_path = planPath(key);
    fs::path tmp_path =
        fs::path(directory_) / (key + ".plan.tmp." + tempSuffix());
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out || !(out << image) || !out.flush()) {
            warn("cannot write plan cache temp file ", tmp_path.string(),
                 "; dropping store");
            std::error_code ec;
            fs::remove(tmp_path, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        warn("cannot publish plan cache file ", final_path.string(), ": ",
             ec.message());
        fs::remove(tmp_path, ec);
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
}

ArtifactPtr
DiskPlanCache::loadOrCompute(const std::string &key,
                             const std::function<ArtifactPtr()> &compute)
{
    if (ArtifactPtr artifact = load(key))
        return artifact;
    ArtifactPtr artifact = compute();
    store(key, artifact);
    return artifact;
}

DiskPlanCacheStats
DiskPlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace cmswitch
