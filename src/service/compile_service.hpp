/**
 * @file
 * The compilation service: a fixed-size worker pool in front of the
 * compiler registry and a content-keyed plan cache.
 *
 * The paper's CMSwitch flow is a batch compiler; serving traffic needs
 * (a) concurrency — many independent (chip, workload, compiler)
 * requests compiled in parallel, (b) reuse — identical requests must
 * compile once and share the immutable artifact, and (c) single-flight
 * — concurrent identical requests must block on the one in-flight
 * compile instead of duplicating it. CompileService provides all three
 * on top of PlanCache; Compiler instances are const/thread-safe (see
 * compiler_api.hpp), so workers never share mutable compiler state.
 *
 * Artifacts carry everything a report needs (program, latency,
 * validation, energy), and are immutable once published — safe to hand
 * to any number of threads.
 */

#ifndef CMSWITCH_SERVICE_COMPILE_SERVICE_HPP
#define CMSWITCH_SERVICE_COMPILE_SERVICE_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/chip_config.hpp"
#include "compiler/compiler_api.hpp"
#include "compiler/warm_state.hpp"
#include "graph/passes.hpp"
#include "metaop/validator.hpp"
#include "service/disk_plan_cache.hpp"
#include "service/plan_cache.hpp"
#include "sim/energy.hpp"

namespace cmswitch {

class WarmStateStore;

/** One compilation job: resolved chip + graph + compiler + options. */
struct CompileRequest
{
    ChipConfig chip;
    Graph workload;
    std::string compilerId = "cmswitch";

    /** Run the frontend graph passes before compiling. */
    bool optimize = false;

    /**
     * Plan-search threads inside this one compile (>= 1). Plans are
     * byte-identical for any value, so this is deliberately *not* part
     * of requestKey(): artifacts compiled at different search widths
     * share cache entries, in memory and on disk. Service entry points
     * stamp CompileServiceOptions::searchThreads over this field.
     */
    s64 searchThreads = 1;
};

/**
 * Canonical content key of @p request: an FNV-1a digest seeded with the
 * build/algorithm fingerprint (service/plan_fingerprint.hpp) and chained
 * over the textual serialisations of the chip config and workload graph
 * plus the compiler id and option flags. Two requests with equal keys
 * compile to identical artifacts; a compiler change that bumps a pass
 * revision changes every key, invalidating persistent caches.
 */
std::string requestKey(const CompileRequest &request);

/** Immutable product of one compile; shared across equal requests. */
struct CompileArtifact
{
    std::string key;          ///< requestKey() of the producing request
    ChipConfig chip;
    std::string compilerId;
    CompileResult result;
    ValidationReport validation;
    EnergyReport energy;
    PassStats passStats;      ///< frontend-pass effects (optimize only)
};

/**
 * Incremental-compilation context for compileArtifact(): the neighbor
 * state to warm-start from (may be null), and, on return, this
 * compile's own retained state plus what was actually reused. Passing
 * a context never changes the compiled plan (warm_state.hpp soundness
 * contract); it only changes how fast the search reaches it.
 */
struct WarmCompileContext
{
    std::shared_ptr<const CompilerWarmState> neighbor; ///< in
    std::shared_ptr<CompilerWarmState> retained;       ///< out
    WarmReuseStats stats;                              ///< out
};

/**
 * Compile @p request in the calling thread, bypassing any cache:
 * resolve the compiler, run it, validate the program against the chip
 * and price its energy. This is the one compile path — service workers
 * and `cmswitchc` single-shot mode both funnel through it.
 * The two-argument form takes a precomputed requestKey() so hot paths
 * hash the request once; the three-argument form additionally threads
 * an incremental-compilation context through the compiler
 * (service/incremental/incremental_compile.hpp drives it).
 */
ArtifactPtr compileArtifact(const CompileRequest &request);
ArtifactPtr compileArtifact(const CompileRequest &request, std::string key);
ArtifactPtr compileArtifact(const CompileRequest &request, std::string key,
                            WarmCompileContext *warm);

/**
 * Which step of the service lookup chain produced an artifact:
 *   memory   — in-memory PlanCache hit, or a single-flight join of an
 *              in-flight compile of the same key;
 *   disk     — loaded from the persistent plan cache;
 *   neighbor — compiled, but warm-started from a structural neighbor
 *              whose state did real work (NeighborOutcome::kHit);
 *   cold     — compiled from scratch (includes neighbor partial/miss).
 * The serve daemon stamps this into every response.
 */
enum class CacheOutcome { kMemory, kDisk, kNeighbor, kCold };

/** Stable lowercase name ("memory", "disk", "neighbor", "cold"). */
const char *cacheOutcomeName(CacheOutcome outcome);

/**
 * Per-request latency split measured by the caller and threaded into
 * JSON reports (service/json_report.hpp): how long the request sat in
 * a queue before a worker picked it up, and how long the cache lookup
 * + compile took once it ran. Serve, batch and single reports all use
 * this shape, so their observability sections stay field-compatible.
 */
struct ServiceRequestLatency
{
    double queueWaitSeconds = 0.0;
    double executeSeconds = 0.0;
};

struct CompileServiceOptions
{
    s64 threads = 1;        ///< worker pool size (>= 1)
    s64 cacheCapacity = 256;///< completed plans kept (>= 1)

    /** Plan-search threads *within* each compile (>= 1); stamped onto
     *  every request. Orthogonal to `threads`: one sizes the pool
     *  across requests, the other the search inside a request. All
     *  three knobs are validated (fatal) at construction. */
    s64 searchThreads = 1;

    /** Directory of the persistent cross-process plan cache; empty
     *  keeps the cache in-memory only. Lookups go memory -> disk ->
     *  compile, and fresh compiles are published back to disk. */
    std::string cacheDir;
};

/** Snapshot of service activity. */
struct CompileServiceStats
{
    s64 requests = 0; ///< submit() + compileNow() calls accepted
    PlanCacheStats cache;
    DiskPlanCacheStats disk; ///< all-zero when no cacheDir is set
};

class CompileService
{
  public:
    explicit CompileService(CompileServiceOptions options = {});
    ~CompileService(); ///< drains the queue, joins the workers

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /** Enqueue @p request on the pool; the future may rethrow.
     *  @p latency (may be null) receives the request's queue-wait /
     *  execute split; it must outlive the future and is fully written
     *  before the future becomes ready. */
    std::future<ArtifactPtr> submit(CompileRequest request,
                                    ServiceRequestLatency *latency =
                                        nullptr);

    /**
     * Compile @p request through the cache in the *calling* thread
     * (no queue hop). Safe to mix with submit(): single-flight still
     * holds across both paths. @p outcome (may be null) receives which
     * lookup-chain step produced the artifact.
     */
    ArtifactPtr compileNow(const CompileRequest &request,
                           CacheOutcome *outcome = nullptr);

    CompileServiceStats stats() const;

    const CompileServiceOptions &options() const { return options_; }

    /** The disk layer, or nullptr when options().cacheDir is empty. */
    DiskPlanCache *diskCache() const { return disk_.get(); }

    /** The warm-state store behind incremental compilation, or nullptr
     *  when options().cacheDir is empty (warm state rides along with
     *  the persistent plan cache). */
    WarmStateStore *warmStore() const { return warmStore_.get(); }

  private:
    void workerLoop();

    /** Single-flighted memory -> disk -> neighbor -> cold lookup;
     *  @p outcome (may be null) reports which step served it. */
    ArtifactPtr lookup(const CompileRequest &request,
                       const std::string &key,
                       CacheOutcome *outcome = nullptr);

    CompileServiceOptions options_;
    PlanCache cache_;
    std::unique_ptr<DiskPlanCache> disk_;
    std::unique_ptr<WarmStateStore> warmStore_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::packaged_task<ArtifactPtr()>> queue_;
    bool stopping_ = false;
    s64 requests_ = 0;

    std::vector<std::thread> workers_;
};

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_COMPILE_SERVICE_HPP
