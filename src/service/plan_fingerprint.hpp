/**
 * @file
 * Build/algorithm fingerprint folded into every plan-cache request key.
 *
 * The persistent plan cache is keyed by request *content* (chip,
 * workload, compiler id, options). Content alone cannot tell two
 * compiler builds apart: a code change that alters generated plans
 * would otherwise serve stale artifacts until someone remembered to
 * bump kPlanFormatTag. The fingerprint closes that hole — an FNV-1a
 * digest over the plan format tag, the library version, and a per-pass
 * algorithm-revision table — and requestKey() opens with it, so any
 * registered compiler change re-keys every request and old disk
 * artifacts are simply never looked up again (they become inert data
 * for `cmswitchc cache gc` to reap).
 *
 * Maintenance contract: when you change the *output* of a compiler
 * pass — different segmentation, different allocation, different
 * latency accounting — bump that pass's revision in
 * algorithmRevisions(). Format-layout changes still bump
 * kPlanFormatTag; the fingerprint covers semantic changes the format
 * cannot see.
 */

#ifndef CMSWITCH_SERVICE_PLAN_FINGERPRINT_HPP
#define CMSWITCH_SERVICE_PLAN_FINGERPRINT_HPP

#include <string>
#include <vector>

#include "support/common.hpp"

namespace cmswitch {

/** One compiler pass whose output shape feeds compiled plans. */
struct AlgorithmRevision
{
    const char *pass; ///< stable pass name, part of the digest
    s64 revision;     ///< bump when the pass's output changes
};

/** The compiled-in revision table (without test bumps). */
const std::vector<AlgorithmRevision> &algorithmRevisions();

/**
 * Digest of kPlanFormatTag + library version + the revision table
 * (including any test bumps). Identical across processes of one build;
 * different whenever a revision or the version changes.
 */
u64 buildFingerprint();

/** buildFingerprint() as 16 lowercase hex digits (the reportable form). */
std::string buildFingerprintHex();

/**
 * Test hook: add @p delta to @p pass's effective revision, process-wide
 * (pass a negative delta to undo). Lets tests prove that a revision
 * bump alone re-keys requests and forces recompilation.
 */
void bumpAlgorithmRevisionForTesting(const std::string &pass, s64 delta);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_PLAN_FINGERPRINT_HPP
