#include "service/plan_cache.hpp"

#include "obs/obs.hpp"
#include "support/logging.hpp"

namespace cmswitch {

PlanCache::PlanCache(s64 capacity) : capacity_(capacity)
{
    cmswitch_fatal_if(capacity_ < 1, "plan cache capacity must be >= 1");
}

ArtifactPtr
PlanCache::getOrCompute(const std::string &key,
                        const std::function<ArtifactPtr()> &compute)
{
    std::promise<ArtifactPtr> promise;
    std::shared_future<ArtifactPtr> shared;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            obs::count(obs::Met::kPlanCacheHits);
            if (it->second.ready)
                lru_.splice(lru_.end(), lru_, it->second.lruPos);
            shared = it->second.future;
        } else {
            ++stats_.misses;
            obs::count(obs::Met::kPlanCacheMisses);
            owner = true;
            shared = promise.get_future().share();
            Entry entry;
            entry.future = shared;
            entries_.emplace(key, std::move(entry));
        }
    }

    if (!owner)
        return shared.get(); // blocks on an in-flight owner; may rethrow

    ArtifactPtr made;
    try {
        made = compute();
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.erase(key); // let a later request retry
        }
        promise.set_exception(std::current_exception());
        throw;
    }

    promise.set_value(made);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        cmswitch_assert(it != entries_.end(), "owner entry vanished");
        it->second.ready = true;
        it->second.lruPos = lru_.insert(lru_.end(), key);
        evictOverCapacity();
    }
    return made;
}

void
PlanCache::evictOverCapacity()
{
    while (static_cast<s64>(lru_.size()) > capacity_) {
        entries_.erase(lru_.front());
        lru_.pop_front();
        ++stats_.evictions;
        obs::count(obs::Met::kPlanCacheEvictions);
    }
}

s64
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<s64>(lru_.size());
}

PlanCacheStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace cmswitch
