#include "service/serve/serve_protocol.hpp"

#include <limits>

#include "arch/chip_config.hpp"
#include "eval/evaluation.hpp"
#include "models/model_zoo.hpp"
#include "support/json.hpp"
#include "support/json_fields.hpp"
#include "support/json_parse.hpp"

namespace cmswitch {

namespace {

bool
isCnnName(const std::string &name)
{
    return name == "vgg16" || name == "resnet18" || name == "resnet50"
        || name == "mobilenetv2";
}

} // namespace

bool
serveChipKnown(const std::string &chip)
{
    return chip == "dynaplasia" || chip == "prime";
}

bool
serveCompilerKnown(const std::string &compiler)
{
    return compiler == "cmswitch" || compiler == "cim-mlc"
        || compiler == "occ" || compiler == "puma";
}

bool
serveModelIsTransformer(const std::string &model)
{
    return model == "bert-base" || model == "bert-large" || model == "gpt"
        || model == "llama2-7b" || model == "opt-6.7b"
        || model == "opt-13b";
}

bool
serveModelKnown(const std::string &model)
{
    return serveModelIsTransformer(model) || isCnnName(model)
        || model == "tiny-mlp";
}

bool
parseServeRequest(const std::string &line, ServeRequest *out,
                  std::string *error)
{
    JsonValue doc;
    if (!parseJson(line, &doc, error))
        return false;
    if (!doc.isObject())
        return jsonFail(error, "request must be a JSON object");

    *out = ServeRequest();
    std::string op;
    if (!jsonTakeString(doc, "op", &op, error))
        return false;
    if (op == "compile")
        out->op = ServeRequest::Op::kCompile;
    else if (op == "status")
        out->op = ServeRequest::Op::kStatus;
    else if (op == "hold")
        out->op = ServeRequest::Op::kHold;
    else if (op == "release")
        out->op = ServeRequest::Op::kRelease;
    else if (op == "drain")
        out->op = ServeRequest::Op::kDrain;
    else if (op == "shutdown")
        out->op = ServeRequest::Op::kShutdown;
    else if (op.empty())
        return jsonFail(error, "missing 'op'");
    else
        return jsonFail(error, "unknown op '" + op + "'");

    if (!jsonTakeString(doc, "id", &out->id, error))
        return false;

    // Strictness: a typo'd key must not silently compile something
    // other than what the client asked for.
    static constexpr const char *kCompileKeys[] = {
        "op",     "id",     "model",    "chip",        "compiler",
        "batch",  "seq",    "decode",   "layers",      "optimize",
        "priority", "deadline_ms",
    };
    for (const auto &[key, value] : doc.members) {
        bool known = false;
        for (const char *allowed : kCompileKeys)
            known = known || key == allowed;
        if (!known)
            return jsonFail(error, "unknown key '" + key + "'");
        if (out->op != ServeRequest::Op::kCompile && key != "op"
            && key != "id")
            return jsonFail(error, "'" + key + "' is only valid with "
                                       "op compile");
    }

    if (out->op != ServeRequest::Op::kCompile)
        return true;

    if (out->id.empty())
        return jsonFail(error, "compile requests need a non-empty 'id'");
    if (!jsonTakeString(doc, "model", &out->model, error)
        || !jsonTakeString(doc, "chip", &out->chip, error)
        || !jsonTakeString(doc, "compiler", &out->compiler, error)
        || !jsonTakeInt(doc, "batch", 1, &out->batch, nullptr, error)
        || !jsonTakeInt(doc, "seq", 1, &out->seq, nullptr, error)
        || !jsonTakeInt(doc, "decode", 0, &out->decodeKv, nullptr, error)
        || !jsonTakeInt(doc, "layers", 0, &out->layers, nullptr, error)
        || !jsonTakeBool(doc, "optimize", &out->optimize, error)
        || !jsonTakeInt(doc, "priority", std::numeric_limits<s64>::min(),
                    &out->priority, nullptr, error)
        || !jsonTakeInt(doc, "deadline_ms", 0, &out->deadlineMs,
                    &out->hasDeadline, error)) {
        return false;
    }
    if (out->model.empty())
        return jsonFail(error, "compile requests need a 'model'");
    return true;
}

bool
resolveServeRequest(const ServeRequest &request, CompileRequest *out,
                    std::string *error)
{
    if (request.chip == "dynaplasia")
        out->chip = ChipConfig::dynaplasia();
    else if (request.chip == "prime")
        out->chip = ChipConfig::prime();
    else
        return jsonFail(error, "unknown chip '" + request.chip
                                   + "' (serve accepts the presets "
                                     "dynaplasia and prime)");

    if (!serveCompilerKnown(request.compiler)) {
        return jsonFail(error,
                        "unknown compiler '" + request.compiler + "'");
    }
    out->compilerId = request.compiler;
    out->optimize = request.optimize;

    if (serveModelIsTransformer(request.model)) {
        TransformerConfig cfg = transformerConfigByName(request.model);
        if (request.layers > 0)
            cfg.layers = request.layers;
        out->workload =
            request.decodeKv > 0
                ? buildTransformerDecodeStep(cfg, request.batch,
                                             request.decodeKv)
                : buildTransformerPrefill(cfg, request.batch, request.seq);
        return true;
    }
    if (request.decodeKv > 0 || request.layers > 0) {
        return jsonFail(error, "'decode'/'layers' need a transformer "
                               "model, got '" + request.model + "'");
    }
    if (isCnnName(request.model)) {
        out->workload = buildModelByName(request.model, request.batch);
        return true;
    }
    if (request.model == "tiny-mlp") {
        out->workload = buildTinyMlp(request.batch);
        return true;
    }
    return jsonFail(error, "unknown model '" + request.model
                               + "' (serve accepts zoo model names and "
                                 "tiny-mlp, not file paths)");
}

std::string
renderServeAck(const std::string &id, const char *op)
{
    JsonWriter w(0);
    w.beginObject()
        .field("schema", kServeResponseSchema)
        .field("id", id)
        .field("status", "ok")
        .field("op", op)
        .endObject();
    return w.str();
}

std::string
renderServeError(const std::string &id, const std::string &message)
{
    JsonWriter w(0);
    w.beginObject()
        .field("schema", kServeResponseSchema)
        .field("id", id)
        .field("status", "error")
        .field("error", message)
        .endObject();
    return w.str();
}

std::string
renderServeShed(const std::string &id, const char *reason, s64 queueDepth,
                s64 inflight)
{
    // The backpressure document: who was refused, why, and how loaded
    // the daemon was at that instant — enough for a client to back off
    // or escalate priority.
    JsonWriter w(0);
    w.beginObject()
        .field("schema", kServeResponseSchema)
        .field("id", id)
        .field("status", "shed")
        .field("reason", reason)
        .field("queue_depth", queueDepth)
        .field("inflight", inflight)
        .endObject();
    return w.str();
}

std::string
renderServeResult(const ServeRequest &request,
                  const CompileArtifact &artifact, CacheOutcome outcome,
                  bool coalesced, const ServiceRequestLatency &latency)
{
    JsonWriter w(0);
    w.beginObject()
        .field("schema", kServeResponseSchema)
        .field("id", request.id)
        .field("status", "ok")
        .field("op", "compile")
        .field("model", artifact.result.program.modelName())
        .field("chip", artifact.chip.name)
        .field("compiler", artifact.compilerId)
        .field("key", artifact.key)
        .field("cache", cacheOutcomeName(outcome))
        .field("coalesced", coalesced)
        .field("valid", artifact.validation.ok())
        .field("segments", artifact.result.numSegments())
        .field("cycles", artifact.result.totalCycles())
        .field("memory_array_ratio",
               artifact.result.avgMemoryArrayRatio())
        .field("queue_wait_seconds", latency.queueWaitSeconds)
        .field("execute_seconds", latency.executeSeconds)
        .endObject();
    return w.str();
}

} // namespace cmswitch
