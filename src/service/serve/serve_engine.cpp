#include "service/serve/serve_engine.hpp"

#include "obs/obs.hpp"
#include "support/json.hpp"
#include "support/logging.hpp"

namespace cmswitch {

namespace {

/** Validate the knobs and force service.threads to 1 (the engine's
 *  workers are the concurrency; the service pool would only idle). */
ServeEngineOptions
validatedEngineOptions(ServeEngineOptions options)
{
    cmswitch_fatal_if(options.maxInflight < 1,
                      "serve engine needs maxInflight >= 1, got ",
                      options.maxInflight);
    cmswitch_fatal_if(options.maxQueue < 1,
                      "serve engine needs maxQueue >= 1, got ",
                      options.maxQueue);
    cmswitch_fatal_if(options.statusEvery < 0,
                      "serve engine needs statusEvery >= 0, got ",
                      options.statusEvery);
    options.service.threads = 1;
    return options;
}

obs::Met
cacheOutcomeMet(CacheOutcome outcome)
{
    switch (outcome) {
    case CacheOutcome::kMemory: return obs::Met::kServeCacheMemory;
    case CacheOutcome::kDisk: return obs::Met::kServeCacheDisk;
    case CacheOutcome::kNeighbor: return obs::Met::kServeCacheNeighbor;
    case CacheOutcome::kCold: return obs::Met::kServeCacheCold;
    }
    cmswitch_panic("cacheOutcomeMet: bad outcome ",
                   static_cast<int>(outcome));
}

} // namespace

ServeEngine::ServeEngine(ServeEngineOptions options, LineFn onResponse,
                         LineFn onStatus)
    : options_(validatedEngineOptions(std::move(options))),
      service_(options_.service),
      onResponse_(std::move(onResponse)),
      onStatus_(std::move(onStatus)),
      epoch_(std::chrono::steady_clock::now()),
      queue_(options_.maxQueue)
{
    cmswitch_fatal_if(!onResponse_, "serve engine needs a response sink");
    workers_.reserve(static_cast<std::size_t>(options_.maxInflight));
    for (s64 i = 0; i < options_.maxInflight; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ServeEngine::~ServeEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        held_ = false; // a destructor must not deadlock on a held queue
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

double
ServeEngine::nowSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - epoch_)
        .count();
}

void
ServeEngine::emit(const std::string &line)
{
    std::lock_guard<std::mutex> lock(emitMutex_);
    onResponse_(line);
}

void
ServeEngine::emitStatus()
{
    if (!onStatus_)
        return;
    std::string line = statusLine("", /*interval=*/true);
    std::lock_guard<std::mutex> lock(emitMutex_);
    onStatus_(line);
}

void
ServeEngine::emitShedGroup(const Group &group, const char *reason,
                           s64 depth, s64 inflight)
{
    emit(renderServeShed(group.lead.id, reason, depth, inflight));
    for (const std::string &rider : group.riderIds)
        emit(renderServeShed(rider, reason, depth, inflight));
}

bool
ServeEngine::handleLine(const std::string &line)
{
    ServeRequest request;
    std::string error;
    if (!parseServeRequest(line, &request, &error)) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++errors_;
        }
        obs::count(obs::Met::kServeErrors);
        emit(renderServeError(request.id, error));
        return true;
    }
    switch (request.op) {
    case ServeRequest::Op::kCompile:
        handleCompile(request);
        return true;
    case ServeRequest::Op::kStatus:
        emit(statusLine(request.id, /*interval=*/false));
        return true;
    case ServeRequest::Op::kHold:
        {
            std::lock_guard<std::mutex> lock(mutex_);
            held_ = true;
        }
        emit(renderServeAck(request.id, "hold"));
        return true;
    case ServeRequest::Op::kRelease:
        {
            std::lock_guard<std::mutex> lock(mutex_);
            held_ = false;
        }
        wake_.notify_all();
        emit(renderServeAck(request.id, "release"));
        return true;
    case ServeRequest::Op::kDrain:
        drainIdle();
        emit(renderServeAck(request.id, "drain"));
        return true;
    case ServeRequest::Op::kShutdown:
        // Ack first so a pipelining client sees the acceptance, then
        // drain: everything already admitted completes, the session
        // ends afterwards. New lines should not follow a shutdown.
        emit(renderServeAck(request.id, "shutdown"));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            held_ = false;
        }
        wake_.notify_all();
        drainIdle();
        return false;
    }
    return true;
}

void
ServeEngine::handleCompile(const ServeRequest &request)
{
    obs::count(obs::Met::kServeReceived);
    CompileRequest resolved;
    std::string error;
    bool ok = resolveServeRequest(request, &resolved, &error);
    if (!ok) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++received_;
            ++errors_;
        }
        obs::count(obs::Met::kServeErrors);
        emit(renderServeError(request.id, error));
        return;
    }
    // Stamp the service's search width before hashing so the
    // coalescing key equals the artifact key compileNow() will use.
    resolved.searchThreads = service_.options().searchThreads;
    std::string key = requestKey(resolved);

    bool rider = false;
    bool shedSelf = false;
    bool haveVictim = false;
    Group victim;
    s64 depth = 0;
    s64 inflight = 0;
    s64 victimShed = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++received_;
        auto coalesce = keyToSeq_.find(key);
        if (coalesce != keyToSeq_.end()) {
            // Same plan already queued or compiling: ride it. No queue
            // slot, no admission contest, one shared artifact.
            auto queuedIt = queued_.find(coalesce->second);
            Group &group = queuedIt != queued_.end()
                               ? queuedIt->second
                               : inflight_.at(coalesce->second);
            group.riderIds.push_back(request.id);
            ++coalesced_;
            rider = true;
        } else {
            double now = nowSeconds();
            u64 seq = nextSeq_++;
            double deadline =
                request.hasDeadline
                    ? now + static_cast<double>(request.deadlineMs) / 1e3
                    : 0.0;
            ServeQueue::Admission admission = queue_.admit(
                seq, request.priority, request.hasDeadline, deadline);
            depth = queue_.size();
            inflight = inflightCount_;
            if (admission.kind == ServeQueue::Admission::Kind::kShedSelf) {
                ++shedAdmission_;
                shedSelf = true;
            } else {
                if (admission.kind
                    == ServeQueue::Admission::Kind::kShedVictim) {
                    auto victimIt = queued_.find(admission.victim);
                    victim = std::move(victimIt->second);
                    queued_.erase(victimIt);
                    keyToSeq_.erase(victim.key);
                    victimShed =
                        1 + static_cast<s64>(victim.riderIds.size());
                    shedAdmission_ += victimShed;
                    haveVictim = true;
                }
                ++admitted_;
                Group group;
                group.seq = seq;
                group.key = key;
                group.lead = request;
                group.request = std::move(resolved);
                group.enqueuedSeconds = now;
                keyToSeq_.emplace(key, seq);
                queued_.emplace(seq, std::move(group));
            }
            obs::setGauge(obs::Gau::kServeQueueDepth, queue_.size());
        }
    }
    if (rider) {
        obs::count(obs::Met::kServeCoalesced);
        return;
    }
    if (shedSelf) {
        obs::count(obs::Met::kServeShedAdmission);
        emit(renderServeShed(request.id, "admission", depth, inflight));
        return;
    }
    obs::count(obs::Met::kServeAdmitted);
    if (haveVictim) {
        obs::count(obs::Met::kServeShedAdmission, victimShed);
        emitShedGroup(victim, "admission", depth, inflight);
    }
    wake_.notify_one();
}

void
ServeEngine::workerLoop()
{
    for (;;) {
        std::vector<Group> expiredGroups;
        bool got = false;
        u64 workSeq = 0;
        CompileRequest workRequest;
        double enqueuedSeconds = 0.0;
        double popSeconds = 0.0;
        s64 shedDepth = 0;
        s64 shedInflight = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || (!held_ && !queue_.empty());
            });
            if (queue_.empty()) {
                if (stopping_)
                    return; // drained
                continue;   // another worker took the last ticket
            }
            double now = nowSeconds();
            std::vector<u64> expired;
            u64 seq = 0;
            got = queue_.pop(now, &seq, &expired);
            for (u64 expiredSeq : expired) {
                auto it = queued_.find(expiredSeq);
                Group group = std::move(it->second);
                queued_.erase(it);
                keyToSeq_.erase(group.key);
                shedDeadline_ +=
                    1 + static_cast<s64>(group.riderIds.size());
                expiredGroups.push_back(std::move(group));
            }
            if (got) {
                auto it = queued_.find(seq);
                workSeq = seq;
                workRequest = it->second.request;
                enqueuedSeconds = it->second.enqueuedSeconds;
                popSeconds = now;
                ++inflightCount_;
                // The group stays findable through keyToSeq_ while it
                // compiles so duplicates arriving now still coalesce;
                // riders attached meanwhile are picked up at completion.
                inflight_.emplace(seq, std::move(it->second));
                queued_.erase(it);
            }
            shedDepth = queue_.size();
            shedInflight = inflightCount_;
            if (!expiredGroups.empty())
                ++pendingEmits_; // the deadline-shed responses below
            obs::setGauge(obs::Gau::kServeQueueDepth, queue_.size());
            obs::setGauge(obs::Gau::kServeInflight, inflightCount_);
        }
        if (!expiredGroups.empty()) {
            for (const Group &group : expiredGroups) {
                obs::count(obs::Met::kServeShedDeadline,
                           1 + static_cast<s64>(group.riderIds.size()));
                emitShedGroup(group, "deadline", shedDepth, shedInflight);
            }
            std::lock_guard<std::mutex> lock(mutex_);
            --pendingEmits_;
            notifyIfIdleLocked();
        }
        if (!got)
            continue;

        CacheOutcome outcome = CacheOutcome::kCold;
        ArtifactPtr artifact;
        std::string compileError;
        try {
            artifact = service_.compileNow(workRequest, &outcome);
        } catch (const std::exception &e) {
            compileError = e.what();
        }
        double doneSeconds = nowSeconds();
        ServiceRequestLatency latency;
        latency.queueWaitSeconds = popSeconds - enqueuedSeconds;
        latency.executeSeconds = doneSeconds - popSeconds;

        Group finished;
        bool statusDue = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = inflight_.find(workSeq);
            finished = std::move(it->second);
            inflight_.erase(it);
            keyToSeq_.erase(finished.key);
            --inflightCount_;
            s64 members = 1 + static_cast<s64>(finished.riderIds.size());
            if (artifact) {
                completed_ += members;
                ++completedGroups_;
                cacheOutcomes_[static_cast<std::size_t>(outcome)] += 1;
                statusDue = options_.statusEvery > 0
                            && completedGroups_ % options_.statusEvery == 0;
            } else {
                errors_ += members;
            }
            queueWaitHist_.record(latency.queueWaitSeconds);
            executeHist_.record(latency.executeSeconds);
            totalHist_.record(latency.queueWaitSeconds
                              + latency.executeSeconds);
            ++pendingEmits_; // the result/error responses below
            obs::setGauge(obs::Gau::kServeInflight, inflightCount_);
        }
        obs::recordSeconds(obs::Hist::kServeQueueWait,
                           latency.queueWaitSeconds);
        obs::recordSeconds(obs::Hist::kServeExecute,
                           latency.executeSeconds);
        obs::recordSeconds(obs::Hist::kServeTotal,
                           latency.queueWaitSeconds
                               + latency.executeSeconds);
        if (artifact) {
            obs::count(cacheOutcomeMet(outcome));
            emit(renderServeResult(finished.lead, *artifact, outcome,
                                   /*coalesced=*/false, latency));
            for (const std::string &riderId : finished.riderIds) {
                ServeRequest echo = finished.lead;
                echo.id = riderId;
                emit(renderServeResult(echo, *artifact, outcome,
                                       /*coalesced=*/true, latency));
            }
        } else {
            obs::count(obs::Met::kServeErrors,
                       1 + static_cast<s64>(finished.riderIds.size()));
            emit(renderServeError(finished.lead.id, compileError));
            for (const std::string &riderId : finished.riderIds)
                emit(renderServeError(riderId, compileError));
        }
        // The periodic line goes out before this group's pendingEmits_
        // credit is returned, so drainIdle() (and thus "drain") also
        // guarantees every due periodic status line has been written.
        if (statusDue)
            emitStatus();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --pendingEmits_;
            notifyIfIdleLocked();
        }
    }
}

void
ServeEngine::notifyIfIdleLocked()
{
    if (queue_.empty() && queued_.empty() && inflightCount_ == 0
        && pendingEmits_ == 0)
        idle_.notify_all();
}

void
ServeEngine::drainIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] {
        return queue_.empty() && queued_.empty() && inflightCount_ == 0
               && pendingEmits_ == 0;
    });
}

std::string
ServeEngine::statusLine(const std::string &id, bool interval)
{
    CompileServiceStats serviceStats = service_.stats();
    JsonWriter w(0);
    std::lock_guard<std::mutex> lock(mutex_);
    w.beginObject()
        .field("schema", kServeStatusSchema)
        .field("id", id);
    w.key("requests")
        .beginObject()
        .field("received", received_)
        .field("admitted", admitted_)
        .field("coalesced", coalesced_)
        .field("shed_admission", shedAdmission_)
        .field("shed_deadline", shedDeadline_)
        .field("errors", errors_)
        .field("completed", completed_)
        .endObject();
    w.key("queue")
        .beginObject()
        .field("depth", queue_.size())
        .field("inflight", inflightCount_)
        .field("max_queue", options_.maxQueue)
        .field("max_inflight", options_.maxInflight)
        .field("held", held_)
        .endObject();
    w.key("cache")
        .beginObject()
        .field("memory",
               cacheOutcomes_[static_cast<std::size_t>(
                   CacheOutcome::kMemory)])
        .field("disk",
               cacheOutcomes_[static_cast<std::size_t>(
                   CacheOutcome::kDisk)])
        .field("neighbor",
               cacheOutcomes_[static_cast<std::size_t>(
                   CacheOutcome::kNeighbor)])
        .field("cold",
               cacheOutcomes_[static_cast<std::size_t>(
                   CacheOutcome::kCold)])
        .endObject();
    w.key("plan_cache")
        .beginObject()
        .field("hits", serviceStats.cache.hits)
        .field("misses", serviceStats.cache.misses)
        .field("evictions", serviceStats.cache.evictions)
        .endObject();
    w.key("latency").beginObject();
    w.key("queue_wait_seconds");
    queueWaitHist_.writeJson(w);
    w.key("execute_seconds");
    executeHist_.writeJson(w);
    w.key("total_seconds");
    totalHist_.writeJson(w);
    w.endObject();
    if (interval) {
        // True deltas since the previous periodic line: snapshot the
        // cumulative histograms then subtract the last snapshot —
        // exact for counts and sums, bucket-bound min/max (see
        // LogHistogram::subtractSnapshot).
        obs::LogHistogram queueWaitDelta = queueWaitHist_;
        obs::LogHistogram executeDelta = executeHist_;
        obs::LogHistogram totalDelta = totalHist_;
        queueWaitDelta.subtractSnapshot(queueWaitSnap_);
        executeDelta.subtractSnapshot(executeSnap_);
        totalDelta.subtractSnapshot(totalSnap_);
        w.key("interval").beginObject();
        w.field("completed", completed_ - completedSnap_);
        w.key("queue_wait_seconds");
        queueWaitDelta.writeJson(w);
        w.key("execute_seconds");
        executeDelta.writeJson(w);
        w.key("total_seconds");
        totalDelta.writeJson(w);
        w.endObject();
        queueWaitSnap_ = queueWaitHist_;
        executeSnap_ = executeHist_;
        totalSnap_ = totalHist_;
        completedSnap_ = completed_;
    }
    w.endObject();
    return w.str();
}

std::string
ServeEngine::statusJson()
{
    return statusLine("", /*interval=*/false);
}

} // namespace cmswitch
