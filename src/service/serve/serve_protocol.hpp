/**
 * @file
 * Wire protocol of the serve daemon: JSON-lines request parsing,
 * fatal-free request resolution, and the response renderers.
 *
 * One JSON object per line in each direction. Requests carry an "op":
 *
 *   compile   {"op":"compile","id":"r1","model":"resnet18", ...}
 *   status    {"op":"status","id":"s1"}          status-v1 report
 *   hold      {"op":"hold","id":"h1"}            pause dispatch
 *   release   {"op":"release","id":"h2"}         resume dispatch
 *   drain     {"op":"drain","id":"d1"}           ack once idle
 *   shutdown  {"op":"shutdown","id":"q1"}        ack, then exit
 *
 * Responses are compact one-line JSON stamped with
 * kServeResponseSchema (status reports with kServeStatusSchema) and
 * echo the request's "id". Full field tables live in docs/serving.md
 * and docs/schemas.md.
 *
 * The daemon must survive anything a client sends, but the shared
 * resolver helpers (resolveChip, transformerConfigByName, graph/chip
 * file parsers) fatal() on unknown names — correct for a CLI, fatal
 * (literally) for a server. So this layer parses with the non-throwing
 * support/json_parse.hpp and resolves against explicit name tables:
 * zoo models and preset chips only, every failure a per-request error
 * response. File-path models/chips are deliberately not accepted over
 * the wire; that also keeps a remote client from probing the daemon's
 * filesystem.
 */

#ifndef CMSWITCH_SERVICE_SERVE_SERVE_PROTOCOL_HPP
#define CMSWITCH_SERVICE_SERVE_SERVE_PROTOCOL_HPP

#include <string>

#include "service/compile_service.hpp"

namespace cmswitch {

/** Schema tags of the two response document shapes. */
inline constexpr const char *kServeResponseSchema =
    "cmswitch-serve-response-v1";
inline constexpr const char *kServeStatusSchema =
    "cmswitch-serve-status-v2";

/** One parsed request line. */
struct ServeRequest
{
    enum class Op { kCompile, kStatus, kHold, kRelease, kDrain, kShutdown };

    Op op = Op::kCompile;
    std::string id; ///< echoed in every response; required for compile

    /** @{ compile fields (single-mode CLI semantics). */
    std::string model;
    std::string chip = "dynaplasia";
    std::string compiler = "cmswitch";
    s64 batch = 1;
    s64 seq = 64;
    s64 decodeKv = 0;
    s64 layers = 0;
    bool optimize = false;
    /** @} */

    /** Higher runs (and survives admission) first; default 0. */
    s64 priority = 0;

    /** Relative deadline from receipt; absent = none. A request still
     *  queued when it expires is shed without compiling. */
    bool hasDeadline = false;
    s64 deadlineMs = 0;
};

/**
 * Parse one request line. Strict: unknown ops, unknown keys,
 * wrong-typed or out-of-range values, and a missing/empty "id" on
 * compile all fail with a message. Never throws or fatals.
 */
bool parseServeRequest(const std::string &line, ServeRequest *out,
                       std::string *error);

/**
 * Resolve a parsed compile request into a CompileRequest (builds the
 * workload graph). Fails — never fatals — on names outside the zoo /
 * preset tables or invalid combinations (e.g. --decode on a CNN).
 */
bool resolveServeRequest(const ServeRequest &request, CompileRequest *out,
                         std::string *error);

/** @{ The serve name tables (chip presets, compilers, zoo models +
 *  tiny-mlp), shared with the sim scenario parser so simulated and
 *  real requests resolve against exactly the same vocabulary. */
bool serveChipKnown(const std::string &chip);
bool serveCompilerKnown(const std::string &compiler);
bool serveModelKnown(const std::string &model);
bool serveModelIsTransformer(const std::string &model);
/** @} */

/** @{ Response renderers (compact one-line JSON, no trailing \n). */
std::string renderServeAck(const std::string &id, const char *op);
std::string renderServeError(const std::string &id,
                             const std::string &message);
std::string renderServeShed(const std::string &id, const char *reason,
                            s64 queueDepth, s64 inflight);
std::string renderServeResult(const ServeRequest &request,
                              const CompileArtifact &artifact,
                              CacheOutcome outcome, bool coalesced,
                              const ServiceRequestLatency &latency);
/** @} */

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_SERVE_SERVE_PROTOCOL_HPP
