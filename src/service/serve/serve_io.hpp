/**
 * @file
 * Transport layer of the serve daemon: POSIX fd plumbing between a
 * ServeEngine and its clients.
 *
 * Two transports, same session semantics (one JSON line in, one or
 * more JSON lines out):
 *
 *   stdin/stdout   — `cmswitchc serve` with no --socket. One session;
 *                    EOF on stdin ends it. This is the scriptable /
 *                    CI-friendly form: pipe a request script in, read
 *                    responses out.
 *   Unix socket    — `cmswitchc serve --socket PATH`. The daemon
 *                    accepts one connection at a time and serves
 *                    sessions until a shutdown request or a signal;
 *                    clients come and go, engine state (caches,
 *                    counters, histograms) persists across sessions.
 *                    Remote (TCP) transport is an explicit non-goal
 *                    here — see ROADMAP.
 *
 * Shutdown discipline: SIGTERM/SIGINT set a flag that the poll-based
 * read loops observe within their timeout; the daemon then stops
 * accepting, drains admitted work (engine destructor) and exits 0.
 * A blocking getline() could sit on a quiet fd forever and turn
 * SIGTERM into SIGKILL territory; every read here goes through
 * poll() with a bounded timeout instead. SIGPIPE is ignored so a
 * vanished client costs one failed write, not the process.
 *
 * The client half (`serve --connect`) exists so tests and operators
 * can drive a socket session without netcat: it writes a script of
 * request lines, half-closes, and echoes every response line to
 * stdout until the daemon closes.
 */

#ifndef CMSWITCH_SERVICE_SERVE_SERVE_IO_HPP
#define CMSWITCH_SERVICE_SERVE_SERVE_IO_HPP

#include <mutex>
#include <string>

#include "support/common.hpp"

namespace cmswitch {

class ServeEngine;

/** Install the SIGTERM/SIGINT flag handler and ignore SIGPIPE. */
void installServeSignalHandlers();

/** True once SIGTERM or SIGINT arrived (after installation). */
bool serveStopRequested();

/**
 * Buffered line reader over a poll()ed fd. next() returns kLine with
 * one complete line (newline stripped), kTimeout when @p timeoutMs
 * elapsed without one (callers re-check stop flags and retry), kEof
 * at end of stream (a final unterminated line is delivered as kLine
 * first), kError on a read error.
 */
class FdLineReader
{
  public:
    explicit FdLineReader(int fd) : fd_(fd) {}

    enum class Result { kLine, kTimeout, kEof, kError };

    Result next(std::string *line, int timeoutMs);

  private:
    int fd_;
    std::string buffer_;
    bool eof_ = false;
};

/**
 * Thread-safe '\n'-terminated line sink with a switchable destination
 * fd — the daemon retargets it at each accepted connection, and -1
 * drops lines (responses racing a disconnect). Engine worker threads
 * and the session thread both write through it.
 */
class ServeWriter
{
  public:
    explicit ServeWriter(int fd = -1) : fd_(fd) {}

    void setFd(int fd);

    /** Write @p line + '\n' fully; short writes retried, errors drop
     *  the line (the transport is lossy once the peer is gone). */
    void writeLine(const std::string &line);

  private:
    std::mutex mutex_;
    int fd_ = -1;
};

/** Serve one session: read request lines from @p fd into @p engine
 *  until EOF, a shutdown request, or a stop signal. Returns false iff
 *  the session ended via shutdown request or stop signal (the daemon
 *  should exit rather than accept again). */
bool runServeSession(ServeEngine &engine, int fd);

/**
 * Daemon accept loop on a Unix socket at @p socketPath (stale files
 * are replaced; @p writer is retargeted per connection). Writes
 * getpid() to @p pidFile (if non-empty) once listening — creation of
 * that file doubles as the readiness signal for scripts. Returns the
 * process exit code.
 */
int runServeSocketDaemon(ServeEngine &engine, ServeWriter &writer,
                         const std::string &socketPath,
                         const std::string &pidFile);

/** Client: connect to @p socketPath, send every non-blank,
 *  non-'#'-comment line of @p scriptPath, half-close, and echo every
 *  response line to stdout. Returns the process exit code. */
int runServeClient(const std::string &socketPath,
                   const std::string &scriptPath);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_SERVE_SERVE_IO_HPP
