/**
 * @file
 * The serve daemon's core: request lifecycle management between the
 * wire protocol (serve_protocol.hpp) and the compile service.
 *
 * Shape: one session thread calls handleLine() for every request line,
 * and maxInflight worker threads pull admitted requests off a
 * ServeQueue and run them through CompileService::compileNow — so the
 * admission gate bounds concurrent compiles directly, and the service's
 * memory/disk/neighbor cache chain plus single-flight semantics apply
 * unchanged under serving load.
 *
 * What the engine adds on top of the queue's policy:
 *
 *  - Cross-request coalescing: a compile request whose key matches a
 *    request already queued or in flight does not take a queue slot —
 *    it rides as a "rider" on that group and receives the same
 *    artifact in its own response (marked "coalesced":true). This is
 *    the serve-layer face of PlanCache's single-flight dedup; it
 *    differs in refusing even a second *slot*, not just a second
 *    compile.
 *  - Latency accounting: every completed request records queue-wait
 *    (receipt -> worker pickup), execute (pickup -> artifact) and
 *    total seconds into LogHistograms, reported as p50/p90/p95/p99 in
 *    the cmswitch-serve-status-v2 document and mirrored to the global
 *    obs:: registry when one is installed (--trace/--metrics). The
 *    quantiles are *cumulative since daemon start*; periodic
 *    --status-every lines additionally carry an "interval" block —
 *    true deltas since the previous periodic line, computed by
 *    snapshot-and-subtract on the histograms (LogHistogram::
 *    subtractSnapshot). The on-demand "status" op never advances the
 *    snapshot, so scripted status probes cannot perturb the periodic
 *    intervals.
 *  - Scripting ops for determinism: "hold" parks the workers so a test
 *    can fill the queue and force exact admission/coalescing/deadline
 *    decisions, "release" resumes, "drain" acks once the engine is
 *    idle. The serve smoke test and the service_test status-determinism
 *    case are built entirely from these.
 *
 * Thread-safety: all engine state sits behind one mutex; response
 * emission happens outside it (under its own lock) so a slow client
 * write never blocks admission decisions. Response lines for
 * *different* request ids may interleave arbitrarily; per id the
 * protocol emits exactly one terminal response.
 */

#ifndef CMSWITCH_SERVICE_SERVE_SERVE_ENGINE_HPP
#define CMSWITCH_SERVICE_SERVE_SERVE_ENGINE_HPP

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "service/compile_service.hpp"
#include "service/serve/serve_protocol.hpp"
#include "service/serve/serve_queue.hpp"

namespace cmswitch {

struct ServeEngineOptions
{
    s64 maxInflight = 1; ///< concurrent compiles == worker threads
    s64 maxQueue = 16;   ///< admitted requests waiting behind them

    /** Emit a status line (via the status sink) every N completed
     *  compile groups; 0 disables. */
    s64 statusEvery = 0;

    /** The compile service behind the gate. `threads` is forced to 1:
     *  serve workers call compileNow() themselves, so the service's
     *  own pool would only idle. */
    CompileServiceOptions service;
};

class ServeEngine
{
  public:
    /** Sink for one complete response/status line (no newline). Called
     *  serially — never concurrently with itself. */
    using LineFn = std::function<void(const std::string &)>;

    /** @p onStatus (may be null) receives periodic status lines;
     *  responses always go to @p onResponse. */
    ServeEngine(ServeEngineOptions options, LineFn onResponse,
                LineFn onStatus = nullptr);

    /** Releases any hold, drains admitted work, joins the workers. */
    ~ServeEngine();

    ServeEngine(const ServeEngine &) = delete;
    ServeEngine &operator=(const ServeEngine &) = delete;

    /**
     * Process one request line from the session. Every line produces
     * at least one response line (compiles produce theirs later, from
     * a worker). Returns false when the line was a shutdown request —
     * the ack has been sent and admitted work drained; the caller
     * should close the session.
     */
    bool handleLine(const std::string &line);

    /** Block until nothing is queued or in flight AND every response
     *  line for finished work has been written to the sink — a caller
     *  may close the transport right after this returns. A hold blocks
     *  this until released. */
    void drainIdle();

    /** The cmswitch-serve-status-v2 document (compact one-liner,
     *  cumulative counters/quantiles, no interval block). */
    std::string statusJson();

    const CompileServiceOptions &serviceOptions() const
    {
        return service_.options();
    }

  private:
    /** One admitted compile: the leader request plus coalesced riders. */
    struct Group
    {
        u64 seq = 0;
        std::string key;
        ServeRequest lead;
        CompileRequest request;
        std::vector<std::string> riderIds;
        double enqueuedSeconds = 0.0;
    };

    void workerLoop();
    void handleCompile(const ServeRequest &request);
    double nowSeconds() const;

    /** Wake drainIdle() waiters if nothing is queued, running, or
     *  still being written to the sink. Caller must hold mutex_. */
    void notifyIfIdleLocked();

    /** statusJson() with the requesting id echoed ("" for periodic).
     *  @p interval appends the delta block since the last periodic
     *  line and advances the snapshot — periodic emits only, so the
     *  "status" op stays a pure read. */
    std::string statusLine(const std::string &id, bool interval);

    /** Serialize @p line to the response sink. */
    void emit(const std::string &line);
    void emitStatus();

    /** Shed every member of @p group with @p reason. Caller must NOT
     *  hold mutex_. @p depth/@p inflight snapshot the load at decision
     *  time for the backpressure response. */
    void emitShedGroup(const Group &group, const char *reason, s64 depth,
                       s64 inflight);

    ServeEngineOptions options_;
    CompileService service_;
    LineFn onResponse_;
    LineFn onStatus_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;  ///< workers: work available / stop
    std::condition_variable idle_;  ///< drainIdle(): engine went idle
    ServeQueue queue_;
    std::map<u64, Group> queued_;           ///< seq -> admitted group
    std::map<std::string, u64> keyToSeq_;   ///< coalescing: queued+inflight
    std::map<u64, Group> inflight_;         ///< seq -> running group
    u64 nextSeq_ = 1;
    s64 inflightCount_ = 0;

    /** Worker-side response batches not yet written to the sink.
     *  drainIdle() waits on this too: "drained" must mean the client
     *  has (or is guaranteed to get) every response line, or a daemon
     *  closing the connection after a drain would drop late riders. */
    s64 pendingEmits_ = 0;
    bool held_ = false;
    bool stopping_ = false;

    /** @{ status-v1 counters (guarded by mutex_). */
    s64 received_ = 0;       ///< compile requests seen
    s64 admitted_ = 0;       ///< granted a queue slot
    s64 coalesced_ = 0;      ///< riders on an existing group
    s64 shedAdmission_ = 0;  ///< refused (or evicted) at the gate
    s64 shedDeadline_ = 0;   ///< expired while queued
    s64 errors_ = 0;         ///< parse/resolve/compile failures
    s64 completed_ = 0;      ///< ok compile responses (incl. riders)
    s64 completedGroups_ = 0;
    std::array<s64, 4> cacheOutcomes_{}; ///< indexed by CacheOutcome
    /** @} */

    /** Latency estimators, cumulative since start (internally
     *  thread-safe; written under mutex_ anyway). */
    obs::LogHistogram queueWaitHist_;
    obs::LogHistogram executeHist_;
    obs::LogHistogram totalHist_;

    /** @{ State of the *previous* periodic status line: subtracting it
     *  from the cumulative estimators yields the interval block.
     *  Guarded by mutex_. */
    obs::LogHistogram queueWaitSnap_;
    obs::LogHistogram executeSnap_;
    obs::LogHistogram totalSnap_;
    s64 completedSnap_ = 0;
    /** @} */

    std::mutex emitMutex_; ///< serializes the response sink
    std::vector<std::thread> workers_;
};

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_SERVE_SERVE_ENGINE_HPP
