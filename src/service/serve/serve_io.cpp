#include "service/serve/serve_io.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/serve/serve_engine.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

/** Poll granularity: how quickly a quiet session notices SIGTERM. */
constexpr int kIdlePollMs = 200;

std::sig_atomic_t volatile g_stopRequested = 0;

void
handleStopSignal(int)
{
    g_stopRequested = 1;
}

} // namespace

void
installServeSignalHandlers()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = handleStopSignal;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    std::signal(SIGPIPE, SIG_IGN);
}

bool
serveStopRequested()
{
    return g_stopRequested != 0;
}

FdLineReader::Result
FdLineReader::next(std::string *line, int timeoutMs)
{
    for (;;) {
        std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            *line = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            return Result::kLine;
        }
        if (eof_) {
            if (!buffer_.empty()) { // final unterminated line
                *line = std::move(buffer_);
                buffer_.clear();
                return Result::kLine;
            }
            return Result::kEof;
        }
        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        int ready = poll(&pfd, 1, timeoutMs);
        if (ready == 0)
            return Result::kTimeout;
        if (ready < 0) {
            if (errno == EINTR) // signal: let the caller check flags
                return Result::kTimeout;
            return Result::kError;
        }
        char chunk[4096];
        ssize_t got = read(fd_, chunk, sizeof(chunk));
        if (got > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0) {
            eof_ = true;
            continue; // deliver any buffered tail, then kEof
        }
        if (errno == EINTR)
            return Result::kTimeout;
        return Result::kError;
    }
}

void
ServeWriter::setFd(int fd)
{
    std::lock_guard<std::mutex> lock(mutex_);
    fd_ = fd;
}

void
ServeWriter::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return;
    std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
        ssize_t put = write(fd_, out.data() + off, out.size() - off);
        if (put > 0) {
            off += static_cast<std::size_t>(put);
            continue;
        }
        if (put < 0 && errno == EINTR)
            continue;
        return; // peer gone; the line is lost, the daemon is not
    }
}

bool
runServeSession(ServeEngine &engine, int fd)
{
    FdLineReader reader(fd);
    std::string line;
    for (;;) {
        if (serveStopRequested())
            return false;
        FdLineReader::Result result = reader.next(&line, kIdlePollMs);
        switch (result) {
        case FdLineReader::Result::kTimeout:
            continue;
        case FdLineReader::Result::kEof:
            return true;
        case FdLineReader::Result::kError:
            warn("serve: session read error: ", std::strerror(errno));
            return true;
        case FdLineReader::Result::kLine:
            if (trim(line).empty())
                continue;
            if (!engine.handleLine(line))
                return false; // shutdown requested and drained
        }
    }
}

int
runServeSocketDaemon(ServeEngine &engine, ServeWriter &writer,
                     const std::string &socketPath,
                     const std::string &pidFile)
{
    struct sockaddr_un address;
    std::memset(&address, 0, sizeof(address));
    address.sun_family = AF_UNIX;
    cmswitch_fatal_if(socketPath.size() >= sizeof(address.sun_path),
                      "socket path too long: ", socketPath);
    std::strncpy(address.sun_path, socketPath.c_str(),
                 sizeof(address.sun_path) - 1);

    int listenFd = socket(AF_UNIX, SOCK_STREAM, 0);
    cmswitch_fatal_if(listenFd < 0, "serve: socket(): ",
                      std::strerror(errno));
    unlink(socketPath.c_str()); // a stale file from a dead daemon
    cmswitch_fatal_if(
        bind(listenFd, reinterpret_cast<struct sockaddr *>(&address),
             sizeof(address))
            != 0,
        "serve: cannot bind ", socketPath, ": ", std::strerror(errno));
    cmswitch_fatal_if(listen(listenFd, 8) != 0, "serve: listen(): ",
                      std::strerror(errno));
    if (!pidFile.empty()) {
        // Written only after listen() succeeds: the file appearing
        // means a connect() will be accepted — scripts poll for it.
        std::ofstream out(pidFile);
        cmswitch_fatal_if(!out, "serve: cannot write ", pidFile);
        out << getpid() << "\n";
    }
    std::cerr << "cmswitchc: serve: listening on " << socketPath << "\n";

    bool keepServing = true;
    while (keepServing && !serveStopRequested()) {
        struct pollfd pfd;
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        int ready = poll(&pfd, 1, kIdlePollMs);
        if (ready <= 0)
            continue; // timeout / EINTR: re-check the stop flag
        int clientFd = accept(listenFd, nullptr, nullptr);
        if (clientFd < 0)
            continue;
        writer.setFd(clientFd);
        keepServing = runServeSession(engine, clientFd);
        engine.drainIdle(); // responses out before the fd goes away
        writer.setFd(-1);
        close(clientFd);
    }

    std::cerr << "cmswitchc: serve: shutting down ("
              << (serveStopRequested() ? "signal" : "shutdown request")
              << ")\n";
    close(listenFd);
    unlink(socketPath.c_str());
    if (!pidFile.empty())
        unlink(pidFile.c_str());
    return 0;
}

int
runServeClient(const std::string &socketPath,
               const std::string &scriptPath)
{
    std::ifstream script(scriptPath);
    cmswitch_fatal_if(!script, "serve: cannot open script ", scriptPath);
    std::ostringstream buffered;
    buffered << script.rdbuf();

    struct sockaddr_un address;
    std::memset(&address, 0, sizeof(address));
    address.sun_family = AF_UNIX;
    cmswitch_fatal_if(socketPath.size() >= sizeof(address.sun_path),
                      "socket path too long: ", socketPath);
    std::strncpy(address.sun_path, socketPath.c_str(),
                 sizeof(address.sun_path) - 1);
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    cmswitch_fatal_if(fd < 0, "serve: socket(): ", std::strerror(errno));
    cmswitch_fatal_if(
        connect(fd, reinterpret_cast<struct sockaddr *>(&address),
                sizeof(address))
            != 0,
        "serve: cannot connect to ", socketPath, ": ",
        std::strerror(errno));

    ServeWriter writer(fd);
    std::istringstream lines(buffered.str());
    std::string line;
    s64 sent = 0;
    while (std::getline(lines, line)) {
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        writer.writeLine(t);
        ++sent;
    }
    shutdown(fd, SHUT_WR); // half-close: "no more requests"
    std::cerr << "cmswitchc: serve: sent " << sent << " request line(s)\n";

    FdLineReader reader(fd);
    for (;;) {
        FdLineReader::Result result = reader.next(&line, kIdlePollMs);
        if (result == FdLineReader::Result::kTimeout)
            continue;
        if (result != FdLineReader::Result::kLine)
            break;
        std::cout << line << "\n";
    }
    std::cout.flush();
    close(fd);
    return 0;
}

} // namespace cmswitch
