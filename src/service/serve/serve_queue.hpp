/**
 * @file
 * Admission gate + priority/deadline run queue for the serve daemon —
 * pure decision logic, no threads, no clock, no I/O.
 *
 * The daemon's capacity model is two numbers: max_inflight compiles
 * run at once (ServeEngine's worker count) and at most max_queue
 * requests wait behind them. This class owns the *waiting* half and
 * every policy decision about it:
 *
 *  - Admission: a request that arrives at a full queue is shed —
 *    unless it outranks the weakest waiter, in which case the weakest
 *    waiter is evicted (shed) to make room. The victim is the lowest
 *    priority ticket, newest first among equals, so FIFO fairness
 *    within a priority band is preserved and an incoming request can
 *    never displace an equal-priority one. Rejection order "priority
 *    then FIFO" is pinned by service_test.
 *  - Dispatch: pop() returns the highest-priority ticket; ties break
 *    to the earliest deadline (a deadline always outranks none), then
 *    FIFO by admission sequence.
 *  - Deadline expiry: pop() first sweeps out every ticket whose
 *    deadline has passed — an expired request is shed without ever
 *    compiling, no matter how briefly it would have run.
 *
 * Time is a caller-supplied double (seconds on any monotonic scale):
 * the engine passes steady_clock, unit tests pass a fake clock and
 * get fully deterministic shed decisions. Linear scans are deliberate:
 * max_queue is an operator knob in the tens, not thousands, and a
 * transparent scan beats a heap whose tie-breaking needs documenting.
 */

#ifndef CMSWITCH_SERVICE_SERVE_SERVE_QUEUE_HPP
#define CMSWITCH_SERVICE_SERVE_SERVE_QUEUE_HPP

#include <vector>

#include "support/common.hpp"

namespace cmswitch {

class ServeQueue
{
  public:
    /** @p maxQueue: waiting tickets held at once; must be >= 1. */
    explicit ServeQueue(s64 maxQueue);

    /** What admit() decided. */
    struct Admission
    {
        enum class Kind {
            kAdmitted,   ///< ticket queued
            kShedSelf,   ///< queue full, ticket does not outrank anyone
            kShedVictim, ///< ticket queued; @c victim was evicted for it
        };
        Kind kind = Kind::kAdmitted;
        u64 victim = 0; ///< evicted ticket (kShedVictim only)
    };

    /**
     * Offer ticket @p seq (caller-unique, monotonically increasing =
     * arrival order) with @p priority (higher wins). @p hasDeadline /
     * @p deadline give its absolute expiry on the caller's clock.
     */
    Admission admit(u64 seq, s64 priority, bool hasDeadline,
                    double deadline);

    /**
     * Sweep out every ticket whose deadline is at or before @p now
     * (appended to @p expired in arrival order), then pop the best
     * remaining ticket into @p seq. Returns false when the sweep
     * leaves the queue empty.
     */
    bool pop(double now, u64 *seq, std::vector<u64> *expired);

    s64 size() const { return static_cast<s64>(tickets_.size()); }
    bool empty() const { return tickets_.empty(); }
    s64 maxQueue() const { return maxQueue_; }

  private:
    struct Ticket
    {
        u64 seq = 0;
        s64 priority = 0;
        bool hasDeadline = false;
        double deadline = 0.0;
    };

    /** Index of the weakest ticket (lowest priority, newest first). */
    std::size_t victimIndex() const;

    /** True when @p a should run before @p b. */
    static bool runsBefore(const Ticket &a, const Ticket &b);

    std::vector<Ticket> tickets_; ///< arrival order (seq ascending)
    s64 maxQueue_;
};

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_SERVE_SERVE_QUEUE_HPP
