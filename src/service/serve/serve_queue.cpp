#include "service/serve/serve_queue.hpp"

#include "support/logging.hpp"

namespace cmswitch {

ServeQueue::ServeQueue(s64 maxQueue) : maxQueue_(maxQueue)
{
    cmswitch_fatal_if(maxQueue < 1,
                      "serve queue needs maxQueue >= 1, got ", maxQueue);
}

std::size_t
ServeQueue::victimIndex() const
{
    // Lowest priority loses; among equals the *newest* (highest seq)
    // loses, so earlier arrivals keep their place — shedding is
    // "priority then FIFO". tickets_ is seq-ascending, so a strict
    // <= on priority while scanning forward lands on the last (newest)
    // ticket of the weakest band.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < tickets_.size(); ++i) {
        if (tickets_[i].priority <= tickets_[victim].priority)
            victim = i;
    }
    return victim;
}

ServeQueue::Admission
ServeQueue::admit(u64 seq, s64 priority, bool hasDeadline, double deadline)
{
    Admission out;
    if (static_cast<s64>(tickets_.size()) >= maxQueue_) {
        std::size_t victim = victimIndex();
        // Strictly higher priority displaces; equal never does — an
        // arrival must not bump a peer that got there first.
        if (priority <= tickets_[victim].priority) {
            out.kind = Admission::Kind::kShedSelf;
            return out;
        }
        out.kind = Admission::Kind::kShedVictim;
        out.victim = tickets_[victim].seq;
        tickets_.erase(tickets_.begin()
                       + static_cast<std::ptrdiff_t>(victim));
    }
    tickets_.push_back({seq, priority, hasDeadline, deadline});
    return out;
}

bool
ServeQueue::runsBefore(const Ticket &a, const Ticket &b)
{
    if (a.priority != b.priority)
        return a.priority > b.priority;
    // Within a band, urgency: a ticket with a deadline outranks one
    // without, earlier deadlines first.
    if (a.hasDeadline != b.hasDeadline)
        return a.hasDeadline;
    if (a.hasDeadline && a.deadline != b.deadline)
        return a.deadline < b.deadline;
    return a.seq < b.seq; // FIFO
}

bool
ServeQueue::pop(double now, u64 *seq, std::vector<u64> *expired)
{
    // Expiry sweep first: a ticket whose deadline passed while it
    // waited must never reach a worker, even if it would have been
    // popped this very call.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < tickets_.size(); ++i) {
        if (tickets_[i].hasDeadline && tickets_[i].deadline <= now) {
            expired->push_back(tickets_[i].seq);
        } else {
            tickets_[kept++] = tickets_[i];
        }
    }
    tickets_.resize(kept);
    if (tickets_.empty())
        return false;

    std::size_t best = 0;
    for (std::size_t i = 1; i < tickets_.size(); ++i) {
        if (runsBefore(tickets_[i], tickets_[best]))
            best = i;
    }
    *seq = tickets_[best].seq;
    tickets_.erase(tickets_.begin() + static_cast<std::ptrdiff_t>(best));
    return true;
}

} // namespace cmswitch
