#include "service/stats_sidecar.hpp"

#include <filesystem>

#include "support/atomic_file.hpp"
#include "support/logging.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

namespace fs = std::filesystem;

std::string
statsSidecarPath(const std::string &directory)
{
    return (fs::path(directory) / std::string(kStatsSidecarName)).string();
}

DiskPlanCacheStats
readStatsSidecar(const std::string &directory, bool *present)
{
    if (present)
        *present = false;
    DiskPlanCacheStats totals;

    std::string data;
    if (!readFileBytes(statsSidecarPath(directory), &data))
        return totals;

    // Current (v3) envelope first; fall back to the v2 then v1 layouts
    // so a sidecar written by an older build keeps its totals (absent
    // trailing counters start at zero).
    int version = 3;
    std::string_view payload;
    std::string error;
    if (!unwrapEnvelope(kStatsSidecarTag, data, &payload, &error)) {
        version = 2;
        if (!unwrapEnvelope(kStatsSidecarTagV2, data, &payload, &error)) {
            version = 1;
            if (!unwrapEnvelope(kStatsSidecarTagV1, data, &payload,
                                &error)) {
                informVerbose("ignoring damaged stats sidecar in ",
                              directory, ": ", error);
                return totals;
            }
        }
    }
    try {
        BinaryReader r(payload);
        totals.hits = r.readS64();
        totals.misses = r.readS64();
        totals.stores = r.readS64();
        totals.rejected = r.readS64();
        if (version >= 2)
            totals.touchFailed = r.readS64();
        if (version >= 3) {
            totals.neighborHits = r.readS64();
            totals.neighborPartials = r.readS64();
            totals.neighborMisses = r.readS64();
        }
        r.expectEnd();
    } catch (const std::exception &e) {
        informVerbose("ignoring damaged stats sidecar in ", directory, ": ",
                      e.what());
        return DiskPlanCacheStats{};
    }
    if (present)
        *present = true;
    return totals;
}

DiskPlanCacheStats
mergeStatsSidecar(const std::string &directory,
                  const DiskPlanCacheStats &delta)
{
    DiskPlanCacheStats totals = readStatsSidecar(directory);
    totals.hits += delta.hits;
    totals.misses += delta.misses;
    totals.stores += delta.stores;
    totals.rejected += delta.rejected;
    totals.touchFailed += delta.touchFailed;
    totals.neighborHits += delta.neighborHits;
    totals.neighborPartials += delta.neighborPartials;
    totals.neighborMisses += delta.neighborMisses;

    BinaryWriter payload;
    payload.writeS64(totals.hits)
        .writeS64(totals.misses)
        .writeS64(totals.stores)
        .writeS64(totals.rejected)
        .writeS64(totals.touchFailed)
        .writeS64(totals.neighborHits)
        .writeS64(totals.neighborPartials)
        .writeS64(totals.neighborMisses);
    std::string image = wrapEnvelope(kStatsSidecarTag, payload.bytes());

    // Same temp-file + atomic-rename publication as plan artifacts
    // (support/atomic_file.hpp); a failed flush is dropped, not fatal.
    publishFileAtomically(statsSidecarPath(directory), image);
    return totals;
}

} // namespace cmswitch
