#include "service/compile_service.hpp"

#include <chrono>

#include "arch/chip_parser.hpp"
#include "baselines/baseline.hpp"
#include "graph/passes.hpp"
#include "graph/serialize.hpp"
#include "obs/obs.hpp"
#include "service/incremental/incremental_compile.hpp"
#include "service/plan_fingerprint.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"

namespace cmswitch {

std::string
requestKey(const CompileRequest &request)
{
    // The key opens with the build/algorithm fingerprint: a registered
    // compiler change (or a library version bump) re-keys every request,
    // so persistent caches never serve plans from a different compiler
    // build (service/plan_fingerprint.hpp). Then hash canonical text
    // serialisations, not struct bytes: padding and field order stay
    // out of the key, and renaming a preset chip file to identical
    // content still hits.
    u64 h = buildFingerprint();
    h = fnv1a64(serializeChipConfig(request.chip), h);
    h = fnv1a64(serializeGraph(request.workload), h);
    h = fnv1a64(request.compilerId, h);
    h = fnv1a64(request.optimize ? "|optimize" : "|raw", h);
    // searchThreads is deliberately excluded: plans are byte-identical
    // for any search width (segmenter_diff_test pins this), so a warm
    // cache serves every width from one entry.
    return hexDigest(h);
}

ArtifactPtr
compileArtifact(const CompileRequest &request)
{
    return compileArtifact(request, requestKey(request));
}

ArtifactPtr
compileArtifact(const CompileRequest &request, std::string key)
{
    return compileArtifact(request, std::move(key), nullptr);
}

ArtifactPtr
compileArtifact(const CompileRequest &request, std::string key,
                WarmCompileContext *warm)
{
    obs::Span span("compile_artifact", "service");
    obs::count(obs::Met::kCompiles);
    auto artifact = std::make_shared<CompileArtifact>();
    artifact->key = std::move(key);
    artifact->chip = request.chip;
    artifact->compilerId = request.compilerId;

    // Only the optimize path needs a mutable copy of the workload.
    const Graph *graph = &request.workload;
    Graph optimized;
    if (request.optimize) {
        optimized = request.workload;
        artifact->passStats = runFrontendPasses(&optimized);
        graph = &optimized;
    }

    cmswitch_fatal_if(request.searchThreads < 1,
                      "compile request needs searchThreads >= 1, got ",
                      request.searchThreads);
    auto compiler = makeCompilerByName(request.compilerId, request.chip,
                                       /*referenceSearch=*/false,
                                       request.searchThreads);
    {
        obs::ScopedPhase backend(obs::Hist::kPhaseBackend,
                                 "backend.compile", "service");
        if (warm) {
            artifact->result = compiler->compileWarm(
                *graph, warm->neighbor, &warm->retained, &warm->stats);
        } else {
            artifact->result = compiler->compile(*graph);
        }
    }

    Deha deha(request.chip);
    {
        obs::ScopedPhase validate(obs::Hist::kPhaseValidate, "validate",
                                  "service");
        artifact->validation =
            validateProgram(artifact->result.program, deha);
    }
    {
        obs::ScopedPhase price(obs::Hist::kPhaseEnergy, "energy.price",
                               "service");
        EnergyModel energy(deha, EnergyParams::forChip(request.chip));
        artifact->energy = energy.price(artifact->result.program,
                                        artifact->result.totalCycles());
    }
    return artifact;
}

// Runs in the member-init list so a bad option fatals with the
// service's own message before any member (the plan cache, the worker
// pool) ever sees the value.
static CompileServiceOptions validatedServiceOptions(CompileServiceOptions options)
{
    cmswitch_fatal_if(options.threads < 1,
                      "compile service needs at least one worker thread");
    cmswitch_fatal_if(options.searchThreads < 1,
                      "compile service needs searchThreads >= 1, got ",
                      options.searchThreads);
    cmswitch_fatal_if(options.cacheCapacity < 1,
                      "compile service needs cacheCapacity >= 1, got ",
                      options.cacheCapacity);
    return options;
}

CompileService::CompileService(CompileServiceOptions options)
    : options_(validatedServiceOptions(std::move(options))),
      cache_(options_.cacheCapacity)
{
    if (!options_.cacheDir.empty()) {
        disk_ = std::make_unique<DiskPlanCache>(options_.cacheDir);
        warmStore_ = std::make_unique<WarmStateStore>(options_.cacheDir);
    }
    workers_.reserve(static_cast<std::size_t>(options_.threads));
    for (s64 i = 0; i < options_.threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
CompileService::workerLoop()
{
    for (;;) {
        std::packaged_task<ArtifactPtr()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

const char *
cacheOutcomeName(CacheOutcome outcome)
{
    switch (outcome) {
    case CacheOutcome::kMemory: return "memory";
    case CacheOutcome::kDisk: return "disk";
    case CacheOutcome::kNeighbor: return "neighbor";
    case CacheOutcome::kCold: return "cold";
    }
    cmswitch_panic("cacheOutcomeName: bad outcome ",
                   static_cast<int>(outcome));
}

ArtifactPtr
CompileService::lookup(const CompileRequest &request, const std::string &key,
                       CacheOutcome *outcome)
{
    // The classification flags are only written inside the compute
    // lambda, which getOrCompute runs in *this* thread iff this call is
    // the one that computes (single-flight). A join of someone else's
    // in-flight compute leaves entered == false and classifies as a
    // memory hit, matching PlanCache's own hit accounting.
    bool entered = false;
    CacheOutcome produced = CacheOutcome::kCold;
    ArtifactPtr artifact = cache_.getOrCompute(key, [&]() -> ArtifactPtr {
        entered = true;
        auto compile = [&]() -> ArtifactPtr {
            // Neighbor step of the lookup chain: warm-start from the
            // structurally closest retained search state. Byte-identical
            // to the cold path, so memory/disk entries computed either
            // way are interchangeable.
            if (warmStore_) {
                NeighborOutcome neighbor = NeighborOutcome::kMiss;
                ArtifactPtr out = compileArtifactIncremental(
                    request, key, *warmStore_, disk_.get(), &neighbor);
                // Only a neighbor whose state did real work counts; a
                // partial (found but nothing reusable) ran the full
                // search and is a cold compile for reporting purposes.
                produced = neighbor == NeighborOutcome::kHit
                               ? CacheOutcome::kNeighbor
                               : CacheOutcome::kCold;
                return out;
            }
            produced = CacheOutcome::kCold;
            return compileArtifact(request, key);
        };
        if (disk_) {
            bool compiled = false;
            ArtifactPtr out = disk_->loadOrCompute(key, [&] {
                compiled = true;
                return compile();
            });
            if (!compiled)
                produced = CacheOutcome::kDisk;
            return out;
        }
        return compile();
    });
    if (outcome)
        *outcome = entered ? produced : CacheOutcome::kMemory;
    return artifact;
}

std::future<ArtifactPtr>
CompileService::submit(CompileRequest request,
                       ServiceRequestLatency *latency)
{
    request.searchThreads = options_.searchThreads;
    std::string key = requestKey(request); // hash before the move below
    std::packaged_task<ArtifactPtr()> task(
        [this, request = std::move(request), key = std::move(key), latency,
         enqueued = std::chrono::steady_clock::now()]() -> ArtifactPtr {
            auto pickup = std::chrono::steady_clock::now();
            double wait =
                std::chrono::duration<double>(pickup - enqueued).count();
            if (obs::metricsEnabled())
                obs::recordSeconds(obs::Hist::kServiceQueueWait, wait);
            obs::ScopedPhase execute(obs::Hist::kServiceExecute,
                                     "service.execute", "service");
            ArtifactPtr artifact = lookup(request, key);
            if (latency) {
                // Written before the packaged_task fulfills the future,
                // so future.get() sequences these stores for the caller.
                latency->queueWaitSeconds = wait;
                latency->executeSeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - pickup)
                        .count();
            }
            return artifact;
        });
    std::future<ArtifactPtr> future = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cmswitch_fatal_if(stopping_,
                          "submit() on a stopping compile service");
        ++requests_;
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
    return future;
}

ArtifactPtr
CompileService::compileNow(const CompileRequest &request,
                           CacheOutcome *outcome)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++requests_;
    }
    CompileRequest stamped = request;
    stamped.searchThreads = options_.searchThreads;
    std::string key = requestKey(stamped);
    obs::ScopedPhase execute(obs::Hist::kServiceExecute, "service.execute",
                             "service");
    return lookup(stamped, key, outcome);
}

CompileServiceStats
CompileService::stats() const
{
    CompileServiceStats out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.requests = requests_;
    }
    out.cache = cache_.stats();
    if (disk_)
        out.disk = disk_->stats();
    return out;
}

} // namespace cmswitch
