/**
 * @file
 * Lifecycle operations over a persistent plan-cache directory, backing
 * the `cmswitchc cache gc|stats|verify` subcommand family.
 *
 * The disk cache is append-only from the compiler's point of view —
 * DiskPlanCache stores plans and never deletes them — so a fleet-shared
 * --cache-dir grows without bound and accumulates artifacts from dead
 * compiler builds (the fingerprint in requestKey re-keys requests on
 * every registered compiler change, orphaning old files). These
 * operations close the loop:
 *
 *  - gcPlanCache: delete `*.plan` artifacts least-recently *used*
 *    first (by file mtime; DiskPlanCache touches plans on every hit)
 *    until the directory is under a byte budget, optionally expiring
 *    artifacts older than a maximum age first. Orphaned temp files
 *    from crashed writers are reaped too. The stats sidecar is never
 *    a gc candidate.
 *  - verifyPlanCache: validate every artifact's envelope, digest,
 *    payload, and embedded request key; report damage, optionally
 *    deleting damaged files.
 *  - statsPlanCache: the observability snapshot — cross-process
 *    lifetime totals from the sidecar, artifact count/bytes on disk,
 *    and the current build fingerprint.
 *
 * All three are safe to run while other processes use the directory:
 * deleting a plan file under a concurrent reader is the same benign
 * race as a store losing to a rename (the reader misses and
 * recompiles), and reports are computed from one directory walk.
 */

#ifndef CMSWITCH_SERVICE_CACHE_MAINTENANCE_HPP
#define CMSWITCH_SERVICE_CACHE_MAINTENANCE_HPP

#include <string>
#include <vector>

#include "service/disk_plan_cache.hpp"

namespace cmswitch {

class JsonWriter;

struct CacheGcOptions
{
    std::string directory;
    s64 maxBytes = -1;      ///< total *.plan byte budget; -1 = unbounded
    s64 maxAgeSeconds = -1; ///< expire plans older than this; -1 = never
};

/** One deleted artifact, in deletion order (oldest mtime first). */
struct CacheGcDeletion
{
    std::string file;   ///< file name within the cache directory
    s64 bytes = 0;
    std::string reason; ///< "expired" (--max-age) or "evicted" (--max-bytes)
};

struct CacheGcReport
{
    std::string directory;
    s64 scannedFiles = 0; ///< *.plan artifacts found
    s64 scannedBytes = 0;
    s64 deletedFiles = 0;
    s64 deletedBytes = 0;
    s64 keptFiles = 0;
    s64 keptBytes = 0;
    s64 staleTempFiles = 0; ///< orphaned *.tmp.* files reaped
    std::string walkError;  ///< non-empty when the scan ended early
    std::vector<CacheGcDeletion> deleted;

    /** Full cmswitch-cache-gc-v1 JSON document. */
    void writeJson(JsonWriter &w) const;
};

/**
 * Run gc over @p options.directory (fatals when it is not a
 * directory). Deletion order is file mtime ascending with the file
 * name as a deterministic tie-break; --max-age expiry runs before the
 * LRU byte-budget pass, so an expired file never counts against the
 * budget.
 */
CacheGcReport gcPlanCache(const CacheGcOptions &options);

struct CacheVerifyOptions
{
    std::string directory;
    bool removeDamaged = false; ///< delete artifacts that fail validation
};

struct CacheVerifyDamage
{
    std::string file;
    std::string reason; ///< one-line rejection reason
    bool removed = false;
};

struct CacheVerifyReport
{
    std::string directory;
    s64 scannedFiles = 0;
    s64 validFiles = 0;
    s64 damagedFiles = 0;
    s64 removedFiles = 0;
    std::string walkError; ///< non-empty when the scan ended early
    std::vector<CacheVerifyDamage> damaged;

    /** True when the scan completed and no damaged artifact remains on
     *  disk; a partial walk cannot vouch for what it did not see. */
    bool clean() const
    {
        return damagedFiles == removedFiles && walkError.empty();
    }

    /** Full cmswitch-cache-verify-v1 JSON document. */
    void writeJson(JsonWriter &w) const;
};

/**
 * Validate every `*.plan` artifact in @p options.directory exactly the
 * way DiskPlanCache::load would: envelope tag, length, digest, payload
 * decode, and embedded-key-matches-file-name. Damaged files are
 * reported (and deleted when removeDamaged is set); a reader racing a
 * concurrent writer's rename sees old or new bytes, never torn ones,
 * so verify never false-positives on live directories.
 */
CacheVerifyReport verifyPlanCache(const CacheVerifyOptions &options);

struct CacheStatsReport
{
    std::string directory;
    bool sidecarPresent = false;
    DiskPlanCacheStats totals; ///< cross-process lifetime totals
    s64 planFiles = 0;
    s64 planBytes = 0;
    std::string walkError;   ///< non-empty when the scan ended early
    std::string fingerprint; ///< current buildFingerprintHex()

    /** Full cmswitch-cache-stats-report-v2 JSON document. */
    void writeJson(JsonWriter &w) const;
};

/** Snapshot sidecar totals + artifact census for @p directory. */
CacheStatsReport statsPlanCache(const std::string &directory);

} // namespace cmswitch

#endif // CMSWITCH_SERVICE_CACHE_MAINTENANCE_HPP
