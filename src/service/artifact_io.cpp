#include "service/artifact_io.hpp"

#include "support/hash.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

namespace {

void
writeArtifactPayload(BinaryWriter &w, const CompileArtifact &artifact)
{
    w.writeString(artifact.key);
    artifact.chip.writeBinary(w);
    w.writeString(artifact.compilerId);
    artifact.result.writeBinary(w);
    artifact.validation.writeBinary(w);
    artifact.energy.writeBinary(w);
    artifact.passStats.writeBinary(w);
}

std::shared_ptr<CompileArtifact>
readArtifactPayload(BinaryReader &r)
{
    auto artifact = std::make_shared<CompileArtifact>();
    artifact->key = r.readString();
    artifact->chip = ChipConfig::readBinary(r);
    artifact->compilerId = r.readString();
    artifact->result = CompileResult::readBinary(r);
    artifact->validation = ValidationReport::readBinary(r);
    artifact->energy = EnergyReport::readBinary(r);
    artifact->passStats = PassStats::readBinary(r);
    r.expectEnd();
    return artifact;
}

ArtifactPtr
fail(std::string *error, const std::string &reason)
{
    if (error)
        *error = reason;
    return nullptr;
}

} // namespace

std::string
serializeCompileArtifact(const CompileArtifact &artifact)
{
    BinaryWriter payload;
    writeArtifactPayload(payload, artifact);

    BinaryWriter file;
    file.writeRaw(kPlanFormatTag);
    file.writeU64(static_cast<u64>(payload.bytes().size()));
    file.writeU64(fnv1a64(payload.bytes()));
    file.writeRaw(payload.bytes());
    return file.take();
}

ArtifactPtr
deserializeCompileArtifact(std::string_view data, std::string *error)
{
    try {
        BinaryReader r(data);
        std::string tag = r.readRaw(kPlanFormatTag.size());
        if (tag != kPlanFormatTag)
            return fail(error, "format tag mismatch (not a cmswitch plan, "
                               "or a different format version)");
        u64 length = r.readU64();
        u64 digest = r.readU64();
        if (length != r.remaining())
            return fail(error, "payload length mismatch (truncated or "
                               "trailing bytes)");
        std::string_view payload =
            data.substr(data.size() - r.remaining());
        if (fnv1a64(payload) != digest)
            return fail(error, "payload digest mismatch (corrupt)");
        BinaryReader body(payload);
        return readArtifactPayload(body);
    } catch (const std::exception &e) {
        // Mostly SerializeError, but any failure to parse an untrusted
        // file (e.g. an allocation pushed over the top by a hostile
        // count that still passed the digest) must surface as "no
        // artifact", never as an escaping exception.
        return fail(error, e.what());
    }
}

} // namespace cmswitch
