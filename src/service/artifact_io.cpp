#include "service/artifact_io.hpp"

#include "support/atomic_file.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

namespace {

void
writeArtifactPayload(BinaryWriter &w, const CompileArtifact &artifact)
{
    w.writeString(artifact.key);
    artifact.chip.writeBinary(w);
    w.writeString(artifact.compilerId);
    artifact.result.writeBinary(w);
    artifact.validation.writeBinary(w);
    artifact.energy.writeBinary(w);
    artifact.passStats.writeBinary(w);
}

std::shared_ptr<CompileArtifact>
readArtifactPayload(BinaryReader &r)
{
    auto artifact = std::make_shared<CompileArtifact>();
    artifact->key = r.readString();
    artifact->chip = ChipConfig::readBinary(r);
    artifact->compilerId = r.readString();
    artifact->result = CompileResult::readBinary(r);
    artifact->validation = ValidationReport::readBinary(r);
    artifact->energy = EnergyReport::readBinary(r);
    artifact->passStats = PassStats::readBinary(r);
    r.expectEnd();
    return artifact;
}

ArtifactPtr
fail(std::string *error, const std::string &reason)
{
    if (error)
        *error = reason;
    return nullptr;
}

} // namespace

std::string
serializeCompileArtifact(const CompileArtifact &artifact)
{
    BinaryWriter payload;
    writeArtifactPayload(payload, artifact);
    return wrapEnvelope(kPlanFormatTag, payload.bytes());
}

ArtifactPtr
deserializeCompileArtifact(std::string_view data, std::string *error)
{
    std::string_view payload;
    if (!unwrapEnvelope(kPlanFormatTag, data, &payload, error))
        return nullptr;
    try {
        BinaryReader body(payload);
        return readArtifactPayload(body);
    } catch (const std::exception &e) {
        // Mostly SerializeError, but any failure to parse an untrusted
        // file (e.g. an allocation pushed over the top by a hostile
        // count that still passed the digest) must surface as "no
        // artifact", never as an escaping exception.
        return fail(error, e.what());
    }
}

ArtifactPtr
readPlanFile(const std::string &path, const std::string &expected_key,
             std::string *error, bool *missing)
{
    if (missing)
        *missing = false;
    std::string data;
    if (!readFileBytes(path, &data)) {
        if (missing)
            *missing = true;
        return fail(error, "cannot open file");
    }

    ArtifactPtr artifact = deserializeCompileArtifact(data, error);
    if (artifact && artifact->key != expected_key) {
        return fail(error, "embedded request key '" + artifact->key
                               + "' does not match file name");
    }
    return artifact;
}

} // namespace cmswitch
