#include "cost/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/logging.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

void
OpWorkload::writeBinary(BinaryWriter &w) const
{
    w.writeS64(opId);
    w.writeString(name);
    w.writeS64(static_cast<s64>(kind));
    w.writeS64(static_cast<s64>(cls));
    w.writeS64(macs);
    w.writeS64(weightBytes);
    w.writeS64(inputBytes);
    w.writeS64(outputBytes);
    w.writeS64(vectorElems);
    w.writeS64(weightTiles);
    w.writeF64(utilization);
    w.writeS64(movingRows);
    w.writeBool(dynamicWeights);
    w.writeF64(aiMacsPerByte);
}

OpWorkload
OpWorkload::readBinary(BinaryReader &r)
{
    OpWorkload w;
    w.opId = static_cast<OpId>(r.readS64());
    w.name = r.readString();
    w.kind = static_cast<OpKind>(
        r.readBounded(static_cast<s64>(OpKind::kConcat), "op kind"));
    w.cls = static_cast<OpClass>(
        r.readBounded(static_cast<s64>(OpClass::kClassifier), "op class"));
    w.macs = r.readS64();
    w.weightBytes = r.readS64();
    w.inputBytes = r.readS64();
    w.outputBytes = r.readS64();
    w.vectorElems = r.readS64();
    w.weightTiles = r.readS64();
    w.utilization = r.readF64();
    w.movingRows = r.readS64();
    w.dynamicWeights = r.readBool();
    w.aiMacsPerByte = r.readF64();
    return w;
}

void
OpAllocation::writeBinary(BinaryWriter &w) const
{
    w.writeS64(computeArrays);
    w.writeS64(memInArrays);
    w.writeS64(memOutArrays);
}

OpAllocation
OpAllocation::readBinary(BinaryReader &r)
{
    OpAllocation a;
    a.computeArrays = r.readS64();
    a.memInArrays = r.readS64();
    a.memOutArrays = r.readS64();
    return a;
}

OpWorkload
makeWorkload(const Graph &graph, OpId id, const Deha &deha)
{
    const Operator &op = graph.op(id);
    cmswitch_assert(op.isCim(), "workloads are built for CIM ops only: ",
                    op.name);
    OpProfile p = profileOp(graph, id);

    OpWorkload w;
    w.opId = id;
    w.name = op.name;
    w.kind = op.kind;
    w.cls = op.cls;
    w.macs = p.macs;
    w.weightBytes = p.weightBytes;
    w.inputBytes = p.inputBytes;
    w.outputBytes = p.outputBytes;
    w.vectorElems = p.vectorElems;
    w.weightTiles = deha.weightTiles(p.weightRows, p.weightCols,
                                     p.weightCopies);
    w.utilization = deha.tileUtilization(p.weightRows, p.weightCols,
                                         p.weightCopies);
    s64 weight_elems = p.weightRows * p.weightCols * p.weightCopies;
    w.movingRows = weight_elems > 0 ? std::max<s64>(1, p.macs / weight_elems)
                                    : 1;
    w.dynamicWeights = (op.kind == OpKind::kDynMatMul);
    w.aiMacsPerByte = p.aiMacsPerByte();
    return w;
}

CostModel::CostModel(const Deha &deha)
    : deha_(&deha)
{
}

s64
CostModel::minComputeArrays(const OpWorkload &w) const
{
    return w.weightTiles;
}

s64
CostModel::maxUsefulComputeArrays(const OpWorkload &w) const
{
    // Duplication splits the moving rows across weight copies; with only
    // one moving row (e.g. single-token decode) duplication cannot help.
    s64 max_dup = std::max<s64>(1, w.movingRows);
    return w.weightTiles * max_dup;
}

s64
CostModel::maxUsefulMemoryArrays(const OpWorkload &w) const
{
    // Memory-mode arrays stage everything the operator streams —
    // weights being (re)supplied, activations in, results out. Beyond
    // the operator's total traffic they add no bandwidth (Eq. 10's M
    // term saturates at the data the op actually touches).
    return ceilDiv(w.trafficBytes(), chip().arrayMemoryBytes());
}

double
CostModel::computeRate(const OpWorkload &w, s64 compute_arrays) const
{
    if (compute_arrays < w.weightTiles)
        return 0.0;
    s64 dup = std::min(compute_arrays / w.weightTiles,
                       std::max<s64>(1, w.movingRows));
    double active = static_cast<double>(dup * w.weightTiles);
    return active * chip().opPerCycle * w.utilization;
}

double
CostModel::memoryRate(const OpWorkload &w, s64 memory_arrays,
                      double dmain_fraction) const
{
    s64 useful = std::min(memory_arrays, maxUsefulMemoryArrays(w));
    double bandwidth = static_cast<double>(useful)
                     * chip().internalBwPerArray
                     + dmain_fraction * chip().dMain();
    return bandwidth * w.aiMacsPerByte;
}

Cycles
CostModel::fixedOverhead(const OpWorkload &w) const
{
    Cycles fixed = 0;
    // Runtime write of a dynamic stationary operand (QK^T / SV): the
    // producing rows are programmed into the compute tiles in place.
    if (w.dynamicWeights) {
        s64 rows = ceilDiv(w.weightBytes, chip().arrayCols);
        fixed += rows * chip().writeRowLatency;
    }
    // Fused function-unit epilogue (softmax / norm / activation).
    if (w.vectorElems > 0) {
        fixed += static_cast<Cycles>(
            std::ceil(static_cast<double>(w.vectorElems)
                      / chip().fuOpsPerCycle));
    }
    return fixed;
}

Cycles
CostModel::opLatency(const OpWorkload &w, const OpAllocation &a,
                     double dmain_fraction) const
{
    double c_rate = computeRate(w, a.computeArrays);
    if (c_rate <= 0.0)
        return kInfCycles;
    double m_rate = memoryRate(w, a.memoryArrays(), dmain_fraction);
    double rate = std::min(c_rate, m_rate);
    if (rate <= 0.0)
        return kInfCycles;

    auto cycles = static_cast<Cycles>(
        std::ceil(static_cast<double>(w.macs) / rate));
    return cycles + fixedOverhead(w);
}

std::vector<double>
CostModel::dmainShares(const std::vector<OpWorkload> &ws)
{
    std::vector<const OpWorkload *> view;
    view.reserve(ws.size());
    for (const OpWorkload &w : ws)
        view.push_back(&w);
    return dmainShares(view);
}

std::vector<double>
CostModel::dmainShares(const std::vector<const OpWorkload *> &ws)
{
    double total = 0.0;
    for (const OpWorkload *w : ws)
        total += static_cast<double>(w->trafficBytes());
    std::vector<double> shares(ws.size(), 1.0);
    if (total <= 0.0 || ws.size() <= 1)
        return shares;
    for (std::size_t i = 0; i < ws.size(); ++i)
        shares[i] = static_cast<double>(ws[i]->trafficBytes()) / total;
    return shares;
}

Cycles
CostModel::segmentLatency(const std::vector<OpWorkload> &ws,
                          const std::vector<OpAllocation> &as) const
{
    std::vector<const OpWorkload *> view;
    view.reserve(ws.size());
    for (const OpWorkload &w : ws)
        view.push_back(&w);
    return segmentLatency(view, as);
}

Cycles
CostModel::segmentLatency(const std::vector<const OpWorkload *> &ws,
                          const std::vector<OpAllocation> &as) const
{
    cmswitch_assert(ws.size() == as.size(), "workload/allocation mismatch");
    std::vector<double> shares = dmainShares(ws);
    Cycles worst = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
        Cycles l = opLatency(*ws[i], as[i], shares[i]);
        if (l >= kInfCycles)
            return kInfCycles;
        worst = std::max(worst, l);
    }
    return worst;
}

Cycles
CostModel::weightRewriteLatency(const std::vector<OpWorkload> &ws,
                                const std::vector<OpAllocation> &as) const
{
    std::vector<const OpWorkload *> view;
    view.reserve(ws.size());
    for (const OpWorkload &w : ws)
        view.push_back(&w);
    return weightRewriteLatency(view, as);
}

Cycles
CostModel::weightRewriteLatency(const std::vector<const OpWorkload *> &ws,
                                const std::vector<OpAllocation> &as) const
{
    cmswitch_assert(ws.size() == as.size(), "workload/allocation mismatch");
    // Eq. 2: one operator's arrays are programmed serially while
    // different operators' arrays fill in parallel, so the segment pays
    // the maximum Com_Ol * Latency_write. Sub-operator slices of the
    // same original operator share its write port, so their array
    // counts sum inside the max. (The abstraction assumes weight supply
    // from main memory overlaps array programming.)
    std::map<OpId, s64> group_arrays;
    for (std::size_t i = 0; i < ws.size(); ++i) {
        if (ws[i]->dynamicWeights)
            continue; // written during execution, priced in opLatency
        group_arrays[ws[i]->opId] += as[i].computeArrays;
    }
    Cycles eq2 = 0;
    for (const auto &[op, arrays] : group_arrays)
        eq2 = std::max(eq2, arrays * chip().writeArrayLatency());
    return eq2;
}

Cycles
CostModel::mainMemoryTransfer(s64 bytes) const
{
    if (bytes <= 0)
        return 0;
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(bytes) / chip().dMain()));
}

} // namespace cmswitch
