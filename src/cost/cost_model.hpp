/**
 * @file
 * The system performance cost model of paper Sec. 4.3 — per-operator
 * latency (Eq. 10), pipelined segment latency (Eq. 9), and the three
 * inter-segment overheads: write-back, mode switch (Eq. 1) and weight
 * rewrite (Eq. 2). Both the CMSwitch optimizer and all baseline
 * compilers price their schedules through this one model, so compiler
 * comparisons are apples-to-apples.
 */

#ifndef CMSWITCH_COST_COST_MODEL_HPP
#define CMSWITCH_COST_COST_MODEL_HPP

#include <string>
#include <vector>

#include "arch/deha.hpp"
#include "graph/analysis.hpp"
#include "graph/graph.hpp"
#include "support/common.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;

/**
 * A CIM-schedulable unit of work: one (possibly partitioned) CIM
 * operator plus any function-unit epilogue fused onto it. All shape
 * analysis is pre-baked so the optimizer never touches the Graph.
 */
struct OpWorkload
{
    OpId opId = kInvalidOp;    ///< originating graph op (pre-partitioning)
    std::string name;
    OpKind kind = OpKind::kMatMul;
    OpClass cls = OpClass::kOther;

    s64 macs = 0;
    s64 weightBytes = 0;       ///< stationary operand bytes
    s64 inputBytes = 0;        ///< moving input bytes
    s64 outputBytes = 0;
    s64 vectorElems = 0;       ///< fused FU epilogue work

    s64 weightTiles = 1;       ///< arrays per weight copy (>=1)
    double utilization = 1.0;  ///< MAC-cell utilization of those tiles
    s64 movingRows = 1;        ///< independent input rows (duplication cap)
    bool dynamicWeights = false; ///< kDynMatMul: weights written at runtime

    double aiMacsPerByte = 0.0; ///< AI_Oi of Eq. 10 (MACs per byte)

    /** Total streamed bytes (weights + activations). */
    s64 trafficBytes() const { return weightBytes + inputBytes + outputBytes; }

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static OpWorkload readBinary(BinaryReader &r); ///< throws SerializeError
    /** @} */
};

/** Build the workload record for CIM op @p id (no partitioning). */
OpWorkload makeWorkload(const Graph &graph, OpId id, const Deha &deha);

/** Dual-mode CIM arrays granted to one operator (paper Table 1). */
struct OpAllocation
{
    s64 computeArrays = 0; ///< Com_Oi
    s64 memInArrays = 0;   ///< sum of lambda_min
    s64 memOutArrays = 0;  ///< sum of lambda_mout

    s64 memoryArrays() const { return memInArrays + memOutArrays; } ///< Mem_Oi
    s64 total() const { return computeArrays + memoryArrays(); }

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static OpAllocation readBinary(BinaryReader &r);
    /** @} */
};

/**
 * Latency oracle over (workload, allocation) pairs. Stateless apart
 * from the chip description; every method is a pure function.
 */
class CostModel
{
  public:
    explicit CostModel(const Deha &deha);

    const ChipConfig &chip() const { return deha_->config(); }
    const Deha &deha() const { return *deha_; }

    /** Fewest compute arrays that can hold one copy of the weights. */
    s64 minComputeArrays(const OpWorkload &w) const;

    /** Compute arrays beyond which duplication cannot help. */
    s64 maxUsefulComputeArrays(const OpWorkload &w) const;

    /** Memory arrays beyond which the op's streams are fully on-chip. */
    s64 maxUsefulMemoryArrays(const OpWorkload &w) const;

    /**
     * Allocation-independent latency of @p w: runtime writing of a
     * dynamic stationary operand (QK^T / SV) plus the fused FU
     * epilogue.
     */
    Cycles fixedOverhead(const OpWorkload &w) const;

    /**
     * Eq. 10: execution latency of @p w with allocation @p a, including
     * fixedOverhead(). Returns kInfCycles when the allocation cannot
     * hold the weights.
     *
     * @param dmain_fraction share of the main-memory/buffer bandwidth
     *   this operator receives. D_main is a chip-wide resource: when
     *   several operators pipeline in one segment, each sees only its
     *   share (the segment schedulers apportion it by traffic).
     */
    Cycles opLatency(const OpWorkload &w, const OpAllocation &a,
                     double dmain_fraction = 1.0) const;

    /** Traffic-proportional D_main shares for a segment's operators. */
    static std::vector<double>
    dmainShares(const std::vector<OpWorkload> &ws);

    /** Eq. 9: pipelined segment latency = max over member ops, with
     *  D_main shared by traffic. */
    Cycles segmentLatency(const std::vector<OpWorkload> &ws,
                          const std::vector<OpAllocation> &as) const;

    /** Eq. 2 plus the DMA stream: cycles to (re)program all static
     *  weights of a segment into its compute arrays. */
    Cycles weightRewriteLatency(const std::vector<OpWorkload> &ws,
                                const std::vector<OpAllocation> &as) const;

    /**
     * @{ Pointer-view overloads for the optimizer hot paths
     * (SegmentView / ScheduledOp ranges already own the workloads):
     * bit-identical arithmetic to the owning-vector forms, with no
     * OpWorkload copies. The owning forms delegate here.
     */
    static std::vector<double>
    dmainShares(const std::vector<const OpWorkload *> &ws);

    Cycles segmentLatency(const std::vector<const OpWorkload *> &ws,
                          const std::vector<OpAllocation> &as) const;

    Cycles weightRewriteLatency(const std::vector<const OpWorkload *> &ws,
                                const std::vector<OpAllocation> &as) const;
    /** @} */

    /** Cycles to move @p bytes across the main-memory link. */
    Cycles mainMemoryTransfer(s64 bytes) const;

    /** Effective MACs/cycle of the compute side (the C of Eq. 10). */
    double computeRate(const OpWorkload &w, s64 compute_arrays) const;

    /** Effective MACs/cycle of the memory side (the M of Eq. 10). */
    double memoryRate(const OpWorkload &w, s64 memory_arrays,
                      double dmain_fraction = 1.0) const;

  private:
    const Deha *deha_;
};

} // namespace cmswitch

#endif // CMSWITCH_COST_COST_MODEL_HPP
