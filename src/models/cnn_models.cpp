/**
 * @file
 * Convolutional model builders. Layer configurations follow the
 * original papers (VGG: Simonyan & Zisserman; ResNet: He et al.;
 * MobileNetV2: Sandler et al.) with ImageNet 3x224x224 inputs.
 */

#include "models/model_zoo.hpp"

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

/** Builder helper tracking the current feature map through a CNN. */
class CnnBuilder
{
  public:
    CnnBuilder(Graph &graph, s64 batch, s64 channels, s64 height, s64 width)
        : graph_(graph), batch_(batch), c_(channels), h_(height), w_(width)
    {
        cursor_ = graph_.addTensor("input", Shape{batch_, c_, h_, w_},
                                   DType::kInt8, TensorKind::kInput);
    }

    TensorId cursor() const { return cursor_; }
    s64 channels() const { return c_; }
    s64 height() const { return h_; }
    s64 width() const { return w_; }
    void setCursor(TensorId t, s64 c, s64 h, s64 w)
    {
        cursor_ = t;
        c_ = c;
        h_ = h;
        w_ = w;
    }

    /** conv + optional ReLU; returns output tensor. */
    TensorId
    conv(const std::string &name, s64 out_c, s64 kernel, s64 stride,
         s64 pad, bool relu = true, s64 groups = 1)
    {
        bool depthwise = groups == c_ && out_c == c_ && groups > 1;
        TensorId w_id = graph_.addTensor(
            name + ".w",
            Shape{out_c, c_ / (depthwise ? c_ : groups), kernel, kernel},
            DType::kInt8, TensorKind::kWeight);
        s64 oh = (h_ + 2 * pad - kernel) / stride + 1;
        s64 ow = (w_ + 2 * pad - kernel) / stride + 1;
        TensorId out = graph_.addTensor(name + ".out",
                                        Shape{batch_, out_c, oh, ow});
        Operator op;
        op.name = name;
        op.kind = depthwise ? OpKind::kDepthwiseConv2d : OpKind::kConv2d;
        op.cls = OpClass::kConv;
        op.inputs = {cursor_, w_id};
        op.outputs = {out};
        op.conv = ConvAttrs{kernel, kernel, stride, stride, pad, pad, groups};
        graph_.addOp(op);
        setCursor(out, out_c, oh, ow);
        if (relu)
            activation(name + ".relu", "relu");
        return cursor_;
    }

    void
    activation(const std::string &name, const std::string &fn)
    {
        TensorId out = graph_.addTensor(name + ".out",
                                        Shape{batch_, c_, h_, w_});
        Operator op;
        op.name = name;
        op.kind = OpKind::kActivation;
        op.activationName = fn;
        op.inputs = {cursor_};
        op.outputs = {out};
        graph_.addOp(op);
        cursor_ = out;
    }

    void
    pool(const std::string &name, s64 kernel, s64 stride)
    {
        s64 oh = (h_ - kernel) / stride + 1;
        s64 ow = (w_ - kernel) / stride + 1;
        TensorId out = graph_.addTensor(name + ".out",
                                        Shape{batch_, c_, oh, ow});
        Operator op;
        op.name = name;
        op.kind = OpKind::kPool;
        op.inputs = {cursor_};
        op.outputs = {out};
        op.conv = ConvAttrs{kernel, kernel, stride, stride, 0, 0, 1};
        graph_.addOp(op);
        setCursor(out, c_, oh, ow);
    }

    void
    globalPool(const std::string &name)
    {
        TensorId out = graph_.addTensor(name + ".out", Shape{batch_, c_, 1, 1});
        Operator op;
        op.name = name;
        op.kind = OpKind::kPool;
        op.inputs = {cursor_};
        op.outputs = {out};
        op.conv = ConvAttrs{h_, w_, 1, 1, 0, 0, 1};
        graph_.addOp(op);
        setCursor(out, c_, 1, 1);
    }

    /** Residual add of @p other onto the cursor. */
    void
    add(const std::string &name, TensorId other)
    {
        TensorId out = graph_.addTensor(name + ".out",
                                        Shape{batch_, c_, h_, w_});
        Operator op;
        op.name = name;
        op.kind = OpKind::kElementwiseAdd;
        op.inputs = {cursor_, other};
        op.outputs = {out};
        graph_.addOp(op);
        cursor_ = out;
    }

    /** Final fully-connected classifier (flattens the feature map). */
    void
    fc(const std::string &name, s64 out_dim, bool relu,
       OpClass cls = OpClass::kClassifier)
    {
        s64 in_dim = c_ * h_ * w_;
        TensorId flat = graph_.addTensor(name + ".flat",
                                         Shape{batch_, in_dim});
        Operator reshape;
        reshape.name = name + ".reshape";
        reshape.kind = OpKind::kReshape;
        reshape.inputs = {cursor_};
        reshape.outputs = {flat};
        graph_.addOp(reshape);

        TensorId w_id = graph_.addTensor(name + ".w", Shape{in_dim, out_dim},
                                         DType::kInt8, TensorKind::kWeight);
        TensorId out = graph_.addTensor(name + ".out", Shape{batch_, out_dim});
        Operator op;
        op.name = name;
        op.kind = OpKind::kMatMul;
        op.cls = cls;
        op.inputs = {flat, w_id};
        op.outputs = {out};
        graph_.addOp(op);
        setCursor(out, out_dim, 1, 1);
        if (relu)
            activation(name + ".relu", "relu");
    }

  private:
    Graph &graph_;
    s64 batch_;
    s64 c_, h_, w_;
    TensorId cursor_;
};

} // namespace

Graph
buildVgg16(s64 batch)
{
    Graph g("vgg16.b" + std::to_string(batch));
    CnnBuilder b(g, batch, 3, 224, 224);
    const s64 cfg[] = {64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
                       512, 512, 512, -1, 512, 512, 512, -1};
    int conv_idx = 0, pool_idx = 0;
    for (s64 c : cfg) {
        if (c < 0) {
            b.pool("pool" + std::to_string(++pool_idx), 2, 2);
        } else {
            b.conv("conv" + std::to_string(++conv_idx), c, 3, 1, 1);
        }
    }
    b.fc("fc1", 4096, true, OpClass::kClassifier);
    b.fc("fc2", 4096, true, OpClass::kClassifier);
    b.fc("fc3", 1000, false, OpClass::kClassifier);
    g.validate();
    return g;
}

namespace {

/** ResNet basic block (two 3x3 convs) with optional downsampling. */
void
basicBlock(CnnBuilder &b, const std::string &name, s64 out_c,
           s64 stride)
{
    TensorId skip = b.cursor();
    s64 skip_c = b.channels();
    s64 skip_h = b.height(), skip_w = b.width();
    b.conv(name + ".conv1", out_c, 3, stride, 1, true);
    b.conv(name + ".conv2", out_c, 3, 1, 1, false);
    if (stride != 1 || skip_c != out_c) {
        // Projection shortcut on the saved input.
        TensorId cur = b.cursor();
        s64 cur_c = b.channels(), cur_h = b.height(), cur_w = b.width();
        b.setCursor(skip, skip_c, skip_h, skip_w);
        b.conv(name + ".down", out_c, 1, stride, 0, false);
        skip = b.cursor();
        b.setCursor(cur, cur_c, cur_h, cur_w);
    }
    b.add(name + ".add", skip);
    b.activation(name + ".relu", "relu");
}

/** ResNet bottleneck block (1x1 -> 3x3 -> 1x1, 4x expansion). */
void
bottleneckBlock(CnnBuilder &b, const std::string &name, s64 mid_c,
                s64 stride)
{
    s64 out_c = mid_c * 4;
    TensorId skip = b.cursor();
    s64 skip_c = b.channels();
    s64 skip_h = b.height(), skip_w = b.width();
    b.conv(name + ".conv1", mid_c, 1, 1, 0, true);
    b.conv(name + ".conv2", mid_c, 3, stride, 1, true);
    b.conv(name + ".conv3", out_c, 1, 1, 0, false);
    if (stride != 1 || skip_c != out_c) {
        TensorId cur = b.cursor();
        s64 cur_c = b.channels(), cur_h = b.height(), cur_w = b.width();
        b.setCursor(skip, skip_c, skip_h, skip_w);
        b.conv(name + ".down", out_c, 1, stride, 0, false);
        skip = b.cursor();
        b.setCursor(cur, cur_c, cur_h, cur_w);
    }
    b.add(name + ".add", skip);
    b.activation(name + ".relu", "relu");
}

} // namespace

Graph
buildResNet18(s64 batch)
{
    Graph g("resnet18.b" + std::to_string(batch));
    CnnBuilder b(g, batch, 3, 224, 224);
    b.conv("conv1", 64, 7, 2, 3);
    b.pool("pool1", 3, 2);
    const s64 stage_c[] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < 2; ++block) {
            s64 stride = (stage > 0 && block == 0) ? 2 : 1;
            basicBlock(b, concat("s", stage + 1, ".b", block + 1),
                       stage_c[stage], stride);
        }
    }
    b.globalPool("avgpool");
    b.fc("fc", 1000, false);
    g.validate();
    return g;
}

Graph
buildResNet50(s64 batch)
{
    Graph g("resnet50.b" + std::to_string(batch));
    CnnBuilder b(g, batch, 3, 224, 224);
    b.conv("conv1", 64, 7, 2, 3);
    b.pool("pool1", 3, 2);
    const s64 stage_c[] = {64, 128, 256, 512};
    const int stage_n[] = {3, 4, 6, 3};
    for (int stage = 0; stage < 4; ++stage) {
        for (int block = 0; block < stage_n[stage]; ++block) {
            s64 stride = (stage > 0 && block == 0) ? 2 : 1;
            bottleneckBlock(b, concat("s", stage + 1, ".b", block + 1),
                            stage_c[stage], stride);
        }
    }
    b.globalPool("avgpool");
    b.fc("fc", 1000, false);
    g.validate();
    return g;
}

Graph
buildMobileNetV2(s64 batch)
{
    Graph g("mobilenetv2.b" + std::to_string(batch));
    CnnBuilder b(g, batch, 3, 224, 224);
    b.conv("conv1", 32, 3, 2, 1);

    // (expansion, out channels, repeats, first stride)
    const s64 blocks[][4] = {
        {1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
    };
    int idx = 0;
    for (const auto &blk : blocks) {
        s64 t = blk[0], c = blk[1], n = blk[2], s = blk[3];
        for (s64 rep = 0; rep < n; ++rep) {
            std::string name = "ir" + std::to_string(++idx);
            s64 stride = rep == 0 ? s : 1;
            s64 in_c = b.channels();
            s64 expanded = in_c * t;
            TensorId skip = b.cursor();
            s64 skip_h = b.height(), skip_w = b.width();
            if (t != 1)
                b.conv(name + ".expand", expanded, 1, 1, 0, true);
            b.conv(name + ".dw", expanded, 3, stride, 1, true, expanded);
            b.conv(name + ".project", c, 1, 1, 0, false);
            if (stride == 1 && in_c == c) {
                (void)skip_h;
                (void)skip_w;
                b.add(name + ".add", skip);
            }
        }
    }
    b.conv("conv_last", 1280, 1, 1, 0, true);
    b.globalPool("avgpool");
    b.fc("fc", 1000, false);
    g.validate();
    return g;
}

} // namespace cmswitch
