#include "models/model_zoo.hpp"

#include "support/logging.hpp"

namespace cmswitch {

Graph
buildTinyMlp(s64 batch, s64 inDim, s64 hidden, s64 outDim)
{
    Graph g("tinymlp.b" + std::to_string(batch));
    TensorId x = g.addTensor("x", Shape{batch, inDim}, DType::kInt8,
                             TensorKind::kInput);
    TensorId w1 = g.addTensor("w1", Shape{inDim, hidden}, DType::kInt8,
                              TensorKind::kWeight);
    TensorId h = g.addTensor("h", Shape{batch, hidden});

    Operator fc1;
    fc1.name = "fc1";
    fc1.kind = OpKind::kMatMul;
    fc1.cls = OpClass::kFfn;
    fc1.inputs = {x, w1};
    fc1.outputs = {h};
    g.addOp(fc1);

    TensorId ha = g.addTensor("h.relu", Shape{batch, hidden});
    Operator relu;
    relu.name = "relu";
    relu.kind = OpKind::kActivation;
    relu.activationName = "relu";
    relu.inputs = {h};
    relu.outputs = {ha};
    g.addOp(relu);

    TensorId w2 = g.addTensor("w2", Shape{hidden, outDim}, DType::kInt8,
                              TensorKind::kWeight);
    TensorId y = g.addTensor("y", Shape{batch, outDim}, DType::kInt8,
                             TensorKind::kOutput);
    Operator fc2;
    fc2.name = "fc2";
    fc2.kind = OpKind::kMatMul;
    fc2.cls = OpClass::kClassifier;
    fc2.inputs = {ha, w2};
    fc2.outputs = {y};
    g.addOp(fc2);

    g.validate();
    return g;
}

std::vector<ZooEntry>
fig14Benchmarks()
{
    return {
        {"bert-large", false}, {"llama2-7b", true}, {"opt-13b", true},
        {"mobilenetv2", false}, {"resnet18", false}, {"vgg16", false},
    };
}

} // namespace cmswitch
