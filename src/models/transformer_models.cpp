/**
 * @file
 * Transformer model builders: full-sequence prefill graphs and
 * KV-cached single-token decode-step graphs. Attention score/context
 * products are kDynMatMul (runtime-written stationary operands), which
 * is what lets CMSwitch keep K/V on-chip in memory-mode arrays and
 * switch them to compute mode in place (paper Fig. 15(b)).
 */

#include "models/model_zoo.hpp"

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

/** Shared state while emitting one transformer graph. */
struct TfBuilder
{
    Graph &g;
    const TransformerConfig &cfg;
    s64 batch;
    s64 seq; ///< tokens processed this pass (1 for decode)

    s64 rows() const { return batch * seq; }

    TensorId
    activationTensor(const std::string &name, Shape shape)
    {
        return g.addTensor(name, std::move(shape));
    }

    /** x[rows,D_in] x W[D_in,D_out] with a static weight. */
    TensorId
    fc(const std::string &name, TensorId x, s64 d_in, s64 d_out, OpClass cls)
    {
        TensorId w = g.addTensor(name + ".w", Shape{d_in, d_out},
                                 DType::kInt8, TensorKind::kWeight);
        TensorId out = activationTensor(name + ".out", Shape{rows(), d_out});
        Operator op;
        op.name = name;
        op.kind = OpKind::kMatMul;
        op.cls = cls;
        op.inputs = {x, w};
        op.outputs = {out};
        g.addOp(op);
        return out;
    }

    TensorId
    fuUnary(const std::string &name, OpKind kind, TensorId x, Shape shape,
            const std::string &act = "")
    {
        TensorId out = activationTensor(name + ".out", std::move(shape));
        Operator op;
        op.name = name;
        op.kind = kind;
        op.activationName = act;
        op.inputs = {x};
        op.outputs = {out};
        g.addOp(op);
        return out;
    }

    TensorId
    fuBinary(const std::string &name, OpKind kind, TensorId a, TensorId b,
             Shape shape)
    {
        TensorId out = activationTensor(name + ".out", std::move(shape));
        Operator op;
        op.name = name;
        op.kind = kind;
        op.inputs = {a, b};
        op.outputs = {out};
        g.addOp(op);
        return out;
    }

    /** moving x stationary dynamic matmul (QK^T / SV). */
    TensorId
    dynMatMul(const std::string &name, TensorId moving, TensorId stationary,
              Shape out_shape, OpClass cls)
    {
        TensorId out = activationTensor(name + ".out", std::move(out_shape));
        Operator op;
        op.name = name;
        op.kind = OpKind::kDynMatMul;
        op.cls = cls;
        op.inputs = {moving, stationary};
        op.outputs = {out};
        g.addOp(op);
        return out;
    }

    /**
     * One encoder/decoder layer over x [rows, D]; kv_len is the
     * attention span (== seq for prefill, cache length for decode).
     * When @p cached is true the attention stationary operands are
     * kKvCache tensors fed by concat ops (cache append).
     */
    TensorId
    layer(int index, TensorId x, s64 kv_len, bool cached)
    {
        const s64 d = cfg.dModel;
        const s64 h = cfg.heads;
        const s64 dk = cfg.headDim();
        const std::string p = concat("l", index, ".");

        TensorId ln1 = fuUnary(p + "ln1", OpKind::kLayerNorm, x,
                               Shape{rows(), d});
        TensorId q = fc(p + "wq", ln1, d, d, OpClass::kMhaQkvProj);
        TensorId k = fc(p + "wk", ln1, d, d, OpClass::kMhaQkvProj);
        TensorId v = fc(p + "wv", ln1, d, d, OpClass::kMhaQkvProj);

        // Per-head views of the moving operand.
        TensorId q_heads = fuUnary(p + "q.split", OpKind::kReshape, q,
                                   Shape{batch * h, seq, dk});

        // Stationary operands: K^T [B*H, dk, kv] and V [B*H, kv, dk].
        TensorId k_station, v_station;
        if (cached) {
            TensorId k_cache = g.addTensor(p + "kcache",
                                           Shape{batch * h, dk, kv_len - seq},
                                           DType::kInt8, TensorKind::kKvCache);
            TensorId v_cache = g.addTensor(p + "vcache",
                                           Shape{batch * h, kv_len - seq, dk},
                                           DType::kInt8, TensorKind::kKvCache);
            k_station = fuBinary(p + "k.append", OpKind::kConcat, k_cache, k,
                                 Shape{batch * h, dk, kv_len});
            v_station = fuBinary(p + "v.append", OpKind::kConcat, v_cache, v,
                                 Shape{batch * h, kv_len, dk});
        } else {
            k_station = fuUnary(p + "k.t", OpKind::kReshape, k,
                                Shape{batch * h, dk, kv_len});
            v_station = fuUnary(p + "v.split", OpKind::kReshape, v,
                                Shape{batch * h, kv_len, dk});
        }

        TensorId scores = dynMatMul(p + "qkT", q_heads, k_station,
                                    Shape{batch * h, seq, kv_len},
                                    OpClass::kAttnScore);
        TensorId probs = fuUnary(p + "softmax", OpKind::kSoftmax, scores,
                                 Shape{batch * h, seq, kv_len});
        TensorId ctx = dynMatMul(p + "sv", probs, v_station,
                                 Shape{batch * h, seq, dk},
                                 OpClass::kAttnContext);
        TensorId ctx_merged = fuUnary(p + "ctx.merge", OpKind::kReshape, ctx,
                                      Shape{rows(), d});
        TensorId attn_out = fc(p + "wo", ctx_merged, d, d,
                               OpClass::kMhaOutProj);
        TensorId res1 = fuBinary(p + "res1", OpKind::kElementwiseAdd, x,
                                 attn_out, Shape{rows(), d});

        TensorId ln2 = fuUnary(p + "ln2", OpKind::kLayerNorm, res1,
                               Shape{rows(), d});
        TensorId ffn_out;
        if (cfg.gatedFfn) {
            TensorId gate = fc(p + "ffn.gate", ln2, d, cfg.ffnDim,
                               OpClass::kFfn);
            TensorId gate_act = fuUnary(p + "ffn.silu", OpKind::kActivation,
                                        gate, Shape{rows(), cfg.ffnDim},
                                        "silu");
            TensorId up = fc(p + "ffn.up", ln2, d, cfg.ffnDim, OpClass::kFfn);
            TensorId prod = fuBinary(p + "ffn.mul", OpKind::kElementwiseMul,
                                     gate_act, up, Shape{rows(), cfg.ffnDim});
            ffn_out = fc(p + "ffn.down", prod, cfg.ffnDim, d, OpClass::kFfn);
        } else {
            TensorId h1 = fc(p + "ffn.fc1", ln2, d, cfg.ffnDim, OpClass::kFfn);
            TensorId h1a = fuUnary(p + "ffn.gelu", OpKind::kActivation, h1,
                                   Shape{rows(), cfg.ffnDim}, "gelu");
            ffn_out = fc(p + "ffn.fc2", h1a, cfg.ffnDim, d, OpClass::kFfn);
        }
        return fuBinary(p + "res2", OpKind::kElementwiseAdd, res1, ffn_out,
                        Shape{rows(), d});
    }
};

} // namespace

TransformerConfig
TransformerConfig::bertBase()
{
    return TransformerConfig{"bert-base", 12, 768, 12, 3072, 30522,
                             false, false};
}

TransformerConfig
TransformerConfig::bertLarge()
{
    return TransformerConfig{"bert-large", 24, 1024, 16, 4096, 30522,
                             false, false};
}

TransformerConfig
TransformerConfig::gpt()
{
    return TransformerConfig{"gpt", 48, 1600, 25, 6400, 50257, true, false};
}

TransformerConfig
TransformerConfig::llama2_7b()
{
    return TransformerConfig{"llama2-7b", 32, 4096, 32, 11008, 32000,
                             true, true};
}

TransformerConfig
TransformerConfig::opt6_7b()
{
    return TransformerConfig{"opt-6.7b", 32, 4096, 32, 16384, 50272,
                             true, false};
}

TransformerConfig
TransformerConfig::opt13b()
{
    return TransformerConfig{"opt-13b", 40, 5120, 40, 20480, 50272,
                             true, false};
}

Graph
buildTransformerPrefill(const TransformerConfig &config, s64 batch, s64 seqLen)
{
    cmswitch_fatal_if(batch <= 0 || seqLen <= 0,
                      "batch and sequence length must be positive");
    Graph g(config.name + ".prefill.b" + std::to_string(batch) + ".s"
            + std::to_string(seqLen));
    TfBuilder b{g, config, batch, seqLen};

    TensorId ids = g.addTensor("ids", Shape{batch, seqLen}, DType::kInt32,
                               TensorKind::kInput);
    TensorId x = b.fuUnary("embed", OpKind::kEmbedding, ids,
                           Shape{batch * seqLen, config.dModel});
    for (int l = 0; l < config.layers; ++l)
        x = b.layer(l, x, seqLen, /*cached=*/false);
    TensorId final_ln = b.fuUnary("final.ln", OpKind::kLayerNorm, x,
                                  Shape{batch * seqLen, config.dModel});
    if (config.decoderOnly) {
        // Logits for the last position of each lane.
        TensorId last = b.fuUnary("last.token", OpKind::kReshape, final_ln,
                                  Shape{batch, config.dModel});
        TensorId w = g.addTensor("lm_head.w",
                                 Shape{config.dModel, config.vocab},
                                 DType::kInt8, TensorKind::kWeight);
        TensorId logits = g.addTensor("logits", Shape{batch, config.vocab},
                                      DType::kInt8, TensorKind::kOutput);
        Operator head;
        head.name = "lm_head";
        head.kind = OpKind::kMatMul;
        head.cls = OpClass::kClassifier;
        head.inputs = {last, w};
        head.outputs = {logits};
        g.addOp(head);
    } else {
        g.tensor(final_ln).kind = TensorKind::kOutput;
    }
    g.validate();
    return g;
}

Graph
buildTransformerDecodeStep(const TransformerConfig &config, s64 batch,
                           s64 kvLen)
{
    cmswitch_fatal_if(!config.decoderOnly,
                      "decode steps only exist for decoder-only models");
    cmswitch_fatal_if(batch <= 0 || kvLen <= 0,
                      "batch and kv length must be positive");
    Graph g(config.name + ".decode.b" + std::to_string(batch) + ".kv"
            + std::to_string(kvLen));
    TfBuilder b{g, config, batch, /*seq=*/1};

    TensorId ids = g.addTensor("ids", Shape{batch, 1}, DType::kInt32,
                               TensorKind::kInput);
    TensorId x = b.fuUnary("embed", OpKind::kEmbedding, ids,
                           Shape{batch, config.dModel});
    for (int l = 0; l < config.layers; ++l)
        x = b.layer(l, x, kvLen, /*cached=*/true);
    TensorId final_ln = b.fuUnary("final.ln", OpKind::kLayerNorm, x,
                                  Shape{batch, config.dModel});
    TensorId w = g.addTensor("lm_head.w", Shape{config.dModel, config.vocab},
                             DType::kInt8, TensorKind::kWeight);
    TensorId logits = g.addTensor("logits", Shape{batch, config.vocab},
                                  DType::kInt8, TensorKind::kOutput);
    Operator head;
    head.name = "lm_head";
    head.kind = OpKind::kMatMul;
    head.cls = OpClass::kClassifier;
    head.inputs = {final_ln, w};
    head.outputs = {logits};
    g.addOp(head);
    g.validate();
    return g;
}

} // namespace cmswitch
