/**
 * @file
 * Model zoo: constructs the benchmark networks of the paper (Sec. 5.1)
 * as computation graphs, parameterised by batch size and sequence
 * length. All models are int8-quantised (weights + activations), as in
 * the paper's evaluation.
 */

#ifndef CMSWITCH_MODELS_MODEL_ZOO_HPP
#define CMSWITCH_MODELS_MODEL_ZOO_HPP

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace cmswitch {

/** @{ Convolutional networks (ImageNet-shaped inputs, NCHW). */
Graph buildVgg16(s64 batch = 1);
Graph buildResNet18(s64 batch = 1);
Graph buildResNet50(s64 batch = 1);
Graph buildMobileNetV2(s64 batch = 1);
/** @} */

/** Transformer family hyper-parameters. */
struct TransformerConfig
{
    std::string name;
    s64 layers = 12;
    s64 dModel = 768;
    s64 heads = 12;
    s64 ffnDim = 3072;
    s64 vocab = 30522;
    bool decoderOnly = false; ///< GPT/OPT/LLaMA generate autoregressively
    bool gatedFfn = false;    ///< LLaMA-style SwiGLU (3 FFN matmuls)

    s64 headDim() const { return dModel / heads; }

    /** @{ Published configurations. */
    static TransformerConfig bertBase();
    static TransformerConfig bertLarge();
    static TransformerConfig gpt();       ///< GPT-2 XL-scale decoder
    static TransformerConfig llama2_7b();
    static TransformerConfig opt6_7b();
    static TransformerConfig opt13b();
    /** @} */
};

/**
 * Full-sequence (prefill / encoder) pass: every token of the input
 * sequence processed at once. For encoder-only models this is the
 * whole inference.
 */
Graph buildTransformerPrefill(const TransformerConfig &config, s64 batch,
                              s64 seqLen);

/**
 * One autoregressive decode step: a single new token per batch lane,
 * attending over @p kvLen cached key/value entries. The KV cache
 * appears as kKvCache tensors (stationary operands of the attention
 * DynMatMuls).
 */
Graph buildTransformerDecodeStep(const TransformerConfig &config, s64 batch,
                                 s64 kvLen);

/** A tiny MLP used by quickstart/examples and many unit tests. */
Graph buildTinyMlp(s64 batch = 1, s64 inDim = 64, s64 hidden = 128,
                   s64 outDim = 32);

/** Registry of the six end-to-end benchmark models of Fig. 14. */
struct ZooEntry
{
    std::string name;
    bool generative; ///< needs prefill+decode evaluation
};

std::vector<ZooEntry> fig14Benchmarks();

} // namespace cmswitch

#endif // CMSWITCH_MODELS_MODEL_ZOO_HPP
