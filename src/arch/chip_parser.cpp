#include "arch/chip_parser.hpp"

#include <functional>
#include <map>
#include <sstream>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

using Setter = std::function<void(ChipConfig &, const std::string &)>;

s64
toInt(const std::string &v)
{
    return std::stoll(v);
}

double
toDouble(const std::string &v)
{
    return std::stod(v);
}

const std::map<std::string, Setter> &
setters()
{
    static const std::map<std::string, Setter> table = {
        {"name", [](ChipConfig &c, const std::string &v) { c.name = v; }},
        {"technology",
         [](ChipConfig &c, const std::string &v) {
             c.technology = parseCellTechnology(v);
         }},
        {"num_switch_arrays",
         [](ChipConfig &c, const std::string &v) {
             c.numSwitchArrays = toInt(v);
         }},
        {"array_rows",
         [](ChipConfig &c, const std::string &v) { c.arrayRows = toInt(v); }},
        {"array_cols",
         [](ChipConfig &c, const std::string &v) { c.arrayCols = toInt(v); }},
        {"buffer_bytes",
         [](ChipConfig &c, const std::string &v) {
             c.bufferBytes = toInt(v);
         }},
        {"internal_bw",
         [](ChipConfig &c, const std::string &v) {
             c.internalBwPerArray = toDouble(v);
         }},
        {"extern_bw",
         [](ChipConfig &c, const std::string &v) {
             c.externBw = toDouble(v);
         }},
        {"buffer_bw",
         [](ChipConfig &c, const std::string &v) {
             c.bufferBw = toDouble(v);
         }},
        {"op_per_cycle",
         [](ChipConfig &c, const std::string &v) {
             c.opPerCycle = toDouble(v);
         }},
        {"switch_method",
         [](ChipConfig &c, const std::string &v) { c.switchMethod = v; }},
        {"switch_c2m_latency",
         [](ChipConfig &c, const std::string &v) {
             c.switchC2mLatency = toInt(v);
         }},
        {"switch_m2c_latency",
         [](ChipConfig &c, const std::string &v) {
             c.switchM2cLatency = toInt(v);
         }},
        {"write_row_latency",
         [](ChipConfig &c, const std::string &v) {
             c.writeRowLatency = toInt(v);
         }},
        {"read_row_latency",
         [](ChipConfig &c, const std::string &v) {
             c.readRowLatency = toInt(v);
         }},
        {"fu_ops_per_cycle",
         [](ChipConfig &c, const std::string &v) {
             c.fuOpsPerCycle = toDouble(v);
         }},
    };
    return table;
}

} // namespace

ChipConfig
parseChipConfig(const std::string &text)
{
    ChipConfig config;
    std::istringstream iss(text);
    std::string line;
    s64 line_no = 0;
    while (std::getline(iss, line)) {
        ++line_no;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::size_t eq = t.find('=');
        cmswitch_fatal_if(eq == std::string::npos,
                          "chip config line ", line_no, ": expected key = "
                          "value, got '", t, "'");
        std::string key = trim(t.substr(0, eq));
        std::string value = trim(t.substr(eq + 1));
        auto it = setters().find(key);
        cmswitch_fatal_if(it == setters().end(),
                          "chip config line ", line_no, ": unknown key '",
                          key, "'");
        it->second(config, value);
    }
    config.validate();
    return config;
}

std::string
serializeChipConfig(const ChipConfig &c)
{
    std::ostringstream oss;
    oss << "name = " << c.name << "\n"
        << "technology = " << cellTechnologyName(c.technology) << "\n"
        << "num_switch_arrays = " << c.numSwitchArrays << "\n"
        << "array_rows = " << c.arrayRows << "\n"
        << "array_cols = " << c.arrayCols << "\n"
        << "buffer_bytes = " << c.bufferBytes << "\n"
        << "internal_bw = " << formatDouble(c.internalBwPerArray, 4) << "\n"
        << "extern_bw = " << formatDouble(c.externBw, 4) << "\n"
        << "buffer_bw = " << formatDouble(c.bufferBw, 4) << "\n"
        << "op_per_cycle = " << formatDouble(c.opPerCycle, 4) << "\n"
        << "switch_method = " << c.switchMethod << "\n"
        << "switch_c2m_latency = " << c.switchC2mLatency << "\n"
        << "switch_m2c_latency = " << c.switchM2cLatency << "\n"
        << "write_row_latency = " << c.writeRowLatency << "\n"
        << "read_row_latency = " << c.readRowLatency << "\n"
        << "fu_ops_per_cycle = " << formatDouble(c.fuOpsPerCycle, 4) << "\n";
    return oss.str();
}

} // namespace cmswitch
