/**
 * @file
 * Dual-mode Enhanced Hardware Abstraction (DEHA, paper Sec. 4.2).
 *
 * Wraps a ChipConfig with the queries the compiler needs: weight tiling
 * geometry, mode-switch accounting between consecutive segment plans,
 * and a printable description (paper Fig. 8).
 */

#ifndef CMSWITCH_ARCH_DEHA_HPP
#define CMSWITCH_ARCH_DEHA_HPP

#include <string>

#include "arch/chip_config.hpp"
#include "support/common.hpp"

namespace cmswitch {

/** Count-based mode plan of one network segment. */
struct ModePlan
{
    s64 computeArrays = 0;
    s64 memoryArrays = 0;

    s64 total() const { return computeArrays + memoryArrays; }
};

/** Arrays that must change mode between two consecutive segments. */
struct SwitchDelta
{
    s64 memToCompute = 0; ///< Switch_m->c of Eq. 1
    s64 computeToMem = 0; ///< Switch_c->m of Eq. 1
};

/**
 * The hardware abstraction handed to the compiler. Arrays are fungible,
 * so mode bookkeeping is count-based: the physical chip state is the
 * number of arrays currently wired to each mode.
 */
class Deha
{
  public:
    explicit Deha(ChipConfig config);

    const ChipConfig &config() const { return config_; }

    /** Arrays needed to hold one copy of a rows x cols weight matrix,
     *  replicated @p copies times (e.g. once per attention head). */
    s64 weightTiles(s64 rows, s64 cols, s64 copies = 1) const;

    /** Fraction of allocated MAC cells doing useful work (tile padding). */
    double tileUtilization(s64 rows, s64 cols, s64 copies = 1) const;

    /**
     * Minimal mode switches to go from a chip physically holding
     * @p phys_compute compute-mode arrays to a segment requiring
     * @p next. Arrays are fungible, so only count deltas matter.
     */
    SwitchDelta switchesBetween(s64 phys_compute, const ModePlan &next) const;

    /** Chip compute-mode array count after applying @p delta. */
    s64 applySwitches(s64 phys_compute, const SwitchDelta &delta) const;

    /** Eq. 1: latency of performing @p delta. */
    Cycles switchLatency(const SwitchDelta &delta) const;

    /** Human-readable parameter dump in the layout of paper Fig. 8. */
    std::string describe() const;

  private:
    ChipConfig config_;
};

} // namespace cmswitch

#endif // CMSWITCH_ARCH_DEHA_HPP
