/**
 * @file
 * Chip-level parameters of the Dual-mode Enhanced Hardware Abstraction
 * (DEHA, paper Fig. 8 + Table 2). The compiler, cost model, and both
 * simulators read every hardware fact from this one record.
 */

#ifndef CMSWITCH_ARCH_CHIP_CONFIG_HPP
#define CMSWITCH_ARCH_CHIP_CONFIG_HPP

#include <string>

#include "support/common.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;

/** Operating mode of one dual-mode CIM array. */
enum class ArrayMode { kCompute, kMemory };

const char *arrayModeName(ArrayMode mode);

/**
 * Memory cell technology of the chip's arrays. Drives technology-
 * dependent modelling (energy pricing); latency facts stay explicit
 * ChipConfig fields.
 */
enum class CellTechnology { kEdram, kReram };

const char *cellTechnologyName(CellTechnology tech);

/** Parse "edram" / "reram" (case-insensitive); fatals on anything else. */
CellTechnology parseCellTechnology(const std::string &text);

/**
 * User-facing hardware description (paper Fig. 8). Bandwidths are in
 * bytes/cycle; latencies in cycles. Derived quantities of the latency
 * model (OP_cim, D_cim, D_main) are exposed as accessors.
 */
struct ChipConfig
{
    std::string name = "dynaplasia";

    /** Cell technology; selects EnergyParams pricing. User chip files
     *  set it via `technology = edram|reram` and default to eDRAM. */
    CellTechnology technology = CellTechnology::kEdram;

    /** @{ Array geometry (Table 2). */
    s64 numSwitchArrays = 96; ///< #_switch_array: dual-mode arrays on chip
    s64 arrayRows = 320;      ///< array_size: rows (reduction dimension)
    s64 arrayCols = 320;      ///< array_size: columns (output dimension)
    /** @} */

    /** @{ Memory system. */
    s64 bufferBytes = 10 * 1024 * 8; ///< dedicated ctrl buffer (10KB x 8)
    double internalBwPerArray = 4.0; ///< D_cim: B/cycle per memory-mode array
    double externBw = 80.0;          ///< main-memory link, B/cycle
    double bufferBw = 20.0;          ///< dedicated buffer contribution, B/cycle
    /** @} */

    /** @{ Compute mode. */
    double opPerCycle = 80.0; ///< OP_cim: MACs/cycle per compute-mode array
    /** @} */

    /** @{ Dual-mode switch (Fig. 8): method + per-array latency. */
    std::string switchMethod = "global-IA-driver"; ///< Methd_c2m / Methd_m2c
    Cycles switchC2mLatency = 1; ///< L_c->m per array
    Cycles switchM2cLatency = 1; ///< L_m->c per array
    /** @} */

    /** @{ Per-mode operation latencies (L_func). */
    Cycles writeRowLatency = 1;  ///< cycles to program one array row
    Cycles readRowLatency = 1;   ///< cycles to read one array row
    /** @} */

    /** Vector function-unit throughput, elements/cycle (softmax etc.). */
    double fuOpsPerCycle = 128.0;

    /** @{ Derived quantities. */
    /** Weight capacity of one array in bytes (int8 cell per element). */
    s64 arrayWeightBytes() const { return arrayRows * arrayCols; }

    /** On-chip scratchpad capacity of one memory-mode array, bytes. */
    s64 arrayMemoryBytes() const { return arrayRows * arrayCols; }

    /** D_main: background bytes/cycle from main memory + ctrl buffer. */
    double dMain() const { return externBw + bufferBw; }

    /** Cycles to program a full array with weights (Latency_write). */
    Cycles writeArrayLatency() const { return writeRowLatency * arrayRows; }

    /** Total switchable scratchpad capacity, bytes. */
    s64 totalSwitchableBytes() const
    {
        return numSwitchArrays * arrayMemoryBytes();
    }
    /** @} */

    /** fatal()s if any parameter is non-physical (user error). */
    void validate() const;

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static ChipConfig readBinary(BinaryReader &r); ///< throws SerializeError
    /** @} */

    /** @{ Presets. */
    /** Dynaplasia-style eDRAM chip (Table 2); the default target. */
    static ChipConfig dynaplasia();

    /** PRIME-style ReRAM chip: more/larger arrays, costly writes
     *  (Sec. 5.5 scalability study). */
    static ChipConfig prime();

    /**
     * The 100-array theoretical chip used for the motivational studies
     * (Figs. 1(b) and 5(a)(b)).
     */
    static ChipConfig theoretical100();
    /** @} */
};

} // namespace cmswitch

#endif // CMSWITCH_ARCH_CHIP_CONFIG_HPP
