/**
 * @file
 * Text-format chip descriptions: users target custom dual-mode CIM
 * hardware by writing the DEHA parameters as `key = value` lines
 * instead of recompiling. Unknown keys are fatal (typos should not
 * silently fall back to defaults).
 *
 * Example:
 *
 *     # my edge chip
 *     name = edge-cim
 *     num_switch_arrays = 32
 *     array_rows = 128
 *     array_cols = 128
 *     extern_bw = 12.0
 *     op_per_cycle = 32
 */

#ifndef CMSWITCH_ARCH_CHIP_PARSER_HPP
#define CMSWITCH_ARCH_CHIP_PARSER_HPP

#include <string>

#include "arch/chip_config.hpp"

namespace cmswitch {

/** Parse a chip description; starts from ChipConfig defaults, applies
 *  each line, validate()s the result. fatals on malformed input. */
ChipConfig parseChipConfig(const std::string &text);

/** Serialise @p config in the same format (round-trippable). */
std::string serializeChipConfig(const ChipConfig &config);

} // namespace cmswitch

#endif // CMSWITCH_ARCH_CHIP_PARSER_HPP
