#include "arch/chip_config.hpp"

#include <cctype>

#include "support/logging.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

const char *
arrayModeName(ArrayMode mode)
{
    switch (mode) {
      case ArrayMode::kCompute: return "compute";
      case ArrayMode::kMemory: return "memory";
    }
    cmswitch_panic("unknown array mode");
}

const char *
cellTechnologyName(CellTechnology tech)
{
    switch (tech) {
      case CellTechnology::kEdram: return "edram";
      case CellTechnology::kReram: return "reram";
    }
    cmswitch_panic("unknown cell technology");
}

CellTechnology
parseCellTechnology(const std::string &text)
{
    std::string lower;
    for (char c : text)
        lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower == "edram")
        return CellTechnology::kEdram;
    if (lower == "reram")
        return CellTechnology::kReram;
    cmswitch_fatal("unknown cell technology '", text,
                   "' (expected edram or reram)");
}

void
ChipConfig::validate() const
{
    cmswitch_fatal_if(numSwitchArrays <= 0, "chip needs at least one array");
    cmswitch_fatal_if(arrayRows <= 0 || arrayCols <= 0,
                      "array dimensions must be positive");
    cmswitch_fatal_if(internalBwPerArray <= 0.0, "D_cim must be positive");
    cmswitch_fatal_if(externBw <= 0.0, "extern bandwidth must be positive");
    cmswitch_fatal_if(bufferBw < 0.0, "buffer bandwidth must be >= 0");
    cmswitch_fatal_if(opPerCycle <= 0.0, "OP_cim must be positive");
    cmswitch_fatal_if(switchC2mLatency < 0 || switchM2cLatency < 0,
                      "switch latencies must be >= 0");
    cmswitch_fatal_if(writeRowLatency <= 0, "write latency must be positive");
    cmswitch_fatal_if(fuOpsPerCycle <= 0.0, "FU throughput must be positive");
}

void
ChipConfig::writeBinary(BinaryWriter &w) const
{
    w.writeString(name);
    w.writeS64(static_cast<s64>(technology));
    w.writeS64(numSwitchArrays);
    w.writeS64(arrayRows);
    w.writeS64(arrayCols);
    w.writeS64(bufferBytes);
    w.writeF64(internalBwPerArray);
    w.writeF64(externBw);
    w.writeF64(bufferBw);
    w.writeF64(opPerCycle);
    w.writeString(switchMethod);
    w.writeS64(switchC2mLatency);
    w.writeS64(switchM2cLatency);
    w.writeS64(writeRowLatency);
    w.writeS64(readRowLatency);
    w.writeF64(fuOpsPerCycle);
}

ChipConfig
ChipConfig::readBinary(BinaryReader &r)
{
    ChipConfig c;
    c.name = r.readString();
    c.technology = static_cast<CellTechnology>(
        r.readBounded(static_cast<s64>(CellTechnology::kReram),
                      "cell technology"));
    c.numSwitchArrays = r.readS64();
    c.arrayRows = r.readS64();
    c.arrayCols = r.readS64();
    c.bufferBytes = r.readS64();
    c.internalBwPerArray = r.readF64();
    c.externBw = r.readF64();
    c.bufferBw = r.readF64();
    c.opPerCycle = r.readF64();
    c.switchMethod = r.readString();
    c.switchC2mLatency = r.readS64();
    c.switchM2cLatency = r.readS64();
    c.writeRowLatency = r.readS64();
    c.readRowLatency = r.readS64();
    c.fuOpsPerCycle = r.readF64();
    return c;
}

ChipConfig
ChipConfig::dynaplasia()
{
    ChipConfig c;
    c.name = "dynaplasia";
    // Everything at the struct defaults, which encode Table 2 plus the
    // calibrated latency-model constants (DESIGN.md Sec. 7).
    return c;
}

ChipConfig
ChipConfig::prime()
{
    ChipConfig c;
    c.name = "prime";
    c.technology = CellTechnology::kReram;
    c.numSwitchArrays = 128;
    c.arrayRows = 512;
    c.arrayCols = 512;
    c.opPerCycle = 160.0;        // larger crossbar, more MACs/cycle
    c.internalBwPerArray = 4.0;
    c.externBw = 80.0;
    c.bufferBw = 20.0;
    c.switchMethod = "wordline-driver-reconfig";
    c.switchC2mLatency = 2;
    c.switchM2cLatency = 2;
    c.writeRowLatency = 20;      // ReRAM programming is ~20x slower
    return c;
}

ChipConfig
ChipConfig::theoretical100()
{
    ChipConfig c;
    c.name = "theoretical100";
    c.numSwitchArrays = 100;
    return c;
}

} // namespace cmswitch
