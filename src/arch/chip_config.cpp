#include "arch/chip_config.hpp"

#include <cctype>

#include "support/logging.hpp"

namespace cmswitch {

const char *
arrayModeName(ArrayMode mode)
{
    switch (mode) {
      case ArrayMode::kCompute: return "compute";
      case ArrayMode::kMemory: return "memory";
    }
    cmswitch_panic("unknown array mode");
}

const char *
cellTechnologyName(CellTechnology tech)
{
    switch (tech) {
      case CellTechnology::kEdram: return "edram";
      case CellTechnology::kReram: return "reram";
    }
    cmswitch_panic("unknown cell technology");
}

CellTechnology
parseCellTechnology(const std::string &text)
{
    std::string lower;
    for (char c : text)
        lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower == "edram")
        return CellTechnology::kEdram;
    if (lower == "reram")
        return CellTechnology::kReram;
    cmswitch_fatal("unknown cell technology '", text,
                   "' (expected edram or reram)");
}

void
ChipConfig::validate() const
{
    cmswitch_fatal_if(numSwitchArrays <= 0, "chip needs at least one array");
    cmswitch_fatal_if(arrayRows <= 0 || arrayCols <= 0,
                      "array dimensions must be positive");
    cmswitch_fatal_if(internalBwPerArray <= 0.0, "D_cim must be positive");
    cmswitch_fatal_if(externBw <= 0.0, "extern bandwidth must be positive");
    cmswitch_fatal_if(bufferBw < 0.0, "buffer bandwidth must be >= 0");
    cmswitch_fatal_if(opPerCycle <= 0.0, "OP_cim must be positive");
    cmswitch_fatal_if(switchC2mLatency < 0 || switchM2cLatency < 0,
                      "switch latencies must be >= 0");
    cmswitch_fatal_if(writeRowLatency <= 0, "write latency must be positive");
    cmswitch_fatal_if(fuOpsPerCycle <= 0.0, "FU throughput must be positive");
}

ChipConfig
ChipConfig::dynaplasia()
{
    ChipConfig c;
    c.name = "dynaplasia";
    // Everything at the struct defaults, which encode Table 2 plus the
    // calibrated latency-model constants (DESIGN.md Sec. 7).
    return c;
}

ChipConfig
ChipConfig::prime()
{
    ChipConfig c;
    c.name = "prime";
    c.technology = CellTechnology::kReram;
    c.numSwitchArrays = 128;
    c.arrayRows = 512;
    c.arrayCols = 512;
    c.opPerCycle = 160.0;        // larger crossbar, more MACs/cycle
    c.internalBwPerArray = 4.0;
    c.externBw = 80.0;
    c.bufferBw = 20.0;
    c.switchMethod = "wordline-driver-reconfig";
    c.switchC2mLatency = 2;
    c.switchM2cLatency = 2;
    c.writeRowLatency = 20;      // ReRAM programming is ~20x slower
    return c;
}

ChipConfig
ChipConfig::theoretical100()
{
    ChipConfig c;
    c.name = "theoretical100";
    c.numSwitchArrays = 100;
    return c;
}

} // namespace cmswitch
