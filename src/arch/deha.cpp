#include "arch/deha.hpp"

#include <sstream>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

Deha::Deha(ChipConfig config)
    : config_(std::move(config))
{
    config_.validate();
}

s64
Deha::weightTiles(s64 rows, s64 cols, s64 copies) const
{
    cmswitch_assert(rows > 0 && cols > 0 && copies > 0,
                    "weight matrix must be non-empty");
    return copies * ceilDiv(rows, config_.arrayRows)
                  * ceilDiv(cols, config_.arrayCols);
}

double
Deha::tileUtilization(s64 rows, s64 cols, s64 copies) const
{
    s64 tiles = weightTiles(rows, cols, copies);
    double useful = static_cast<double>(rows) * static_cast<double>(cols)
                  * static_cast<double>(copies);
    double alloc = static_cast<double>(tiles)
                 * static_cast<double>(config_.arrayRows)
                 * static_cast<double>(config_.arrayCols);
    return useful / alloc;
}

SwitchDelta
Deha::switchesBetween(s64 phys_compute, const ModePlan &next) const
{
    cmswitch_assert(next.total() <= config_.numSwitchArrays,
                    "plan exceeds chip arrays");
    s64 phys_memory = config_.numSwitchArrays - phys_compute;
    SwitchDelta d;
    d.memToCompute = std::max<s64>(0, next.computeArrays - phys_compute);
    d.computeToMem = std::max<s64>(0, next.memoryArrays - phys_memory);
    // A chip cannot be short of both modes at once.
    cmswitch_assert(d.memToCompute == 0 || d.computeToMem == 0,
                    "inconsistent switch delta");
    return d;
}

s64
Deha::applySwitches(s64 phys_compute, const SwitchDelta &delta) const
{
    return phys_compute + delta.memToCompute - delta.computeToMem;
}

Cycles
Deha::switchLatency(const SwitchDelta &delta) const
{
    return config_.switchM2cLatency * delta.memToCompute
         + config_.switchC2mLatency * delta.computeToMem;
}

std::string
Deha::describe() const
{
    std::ostringstream oss;
    const ChipConfig &c = config_;
    oss << "DEHA(" << c.name << ")\n"
        << "  #_switch_array   " << c.numSwitchArrays << "\n"
        << "  array_size       " << c.arrayRows << "x" << c.arrayCols << "\n"
        << "  buffer_size      " << formatBytes(double(c.bufferBytes)) << "\n"
        << "  internal_bw      " << c.internalBwPerArray << " B/cycle/array\n"
        << "  extern_bw        " << c.externBw << " B/cycle\n"
        << "  OP_cim           " << c.opPerCycle << " MAC/cycle/array\n"
        << "  Methd_c2m/m2c    " << c.switchMethod << "\n"
        << "  L_c2m            " << c.switchC2mLatency << " cycle/array\n"
        << "  L_m2c            " << c.switchM2cLatency << " cycle/array\n"
        << "  L_write(array)   " << c.writeArrayLatency() << " cycles\n";
    return oss.str();
}

} // namespace cmswitch
