/**
 * @file
 * End-to-end evaluation harness shared by the tests, benchmarks and
 * examples: compiles a model with any Compiler and integrates latency
 * over an inference. Generative models are priced as prefill plus
 * KV-length-bucketed decode steps (the decode-step program is compiled
 * once per bucket and multiplied by the tokens it covers — the
 * approximation documented in DESIGN.md Sec. 9).
 */

#ifndef CMSWITCH_EVAL_EVALUATION_HPP
#define CMSWITCH_EVAL_EVALUATION_HPP

#include <string>

#include "compiler/compiler_api.hpp"
#include "models/model_zoo.hpp"

namespace cmswitch {

class JsonWriter;

/** Aggregated end-to-end numbers for one (compiler, workload) pair. */
struct EndToEndResult
{
    Cycles prefillCycles = 0;
    Cycles decodeCycles = 0;
    double compileSeconds = 0.0;
    double avgMemoryArrayRatio = 0.0; ///< Fig. 16 bottom-row metric
    Cycles switchCycles = 0;          ///< Sec. 5.5 overhead component
    s64 segments = 0;

    Cycles totalCycles() const { return prefillCycles + decodeCycles; }

    /** Emit the cycle/segment breakdown as an object into @p w
     *  (excludes compileSeconds — see CompileResult::writeJson). */
    void writeJson(JsonWriter &w) const;
};

/** Single-pass evaluation (CNNs / encoder-only models). */
EndToEndResult evaluateGraph(const Compiler &compiler, const Graph &graph);

/**
 * Generative evaluation: prefill of @p inputLen tokens, then
 * @p outputLen decode steps. Decode latency integrates over
 * @p kvBuckets representative KV lengths.
 */
EndToEndResult evaluateGenerative(const Compiler &compiler,
                                  const TransformerConfig &config, s64 batch,
                                  s64 inputLen, s64 outputLen,
                                  s64 kvBuckets = 4);

/**
 * Build a Fig. 14 benchmark model by zoo name. Transformer models get
 * @p seqLen (prefill length); CNNs ignore it.
 */
Graph buildModelByName(const std::string &name, s64 batch, s64 seqLen = 64);

/** Transformer config by zoo name; fatals for CNN names. */
TransformerConfig transformerConfigByName(const std::string &name);

/**
 * Full Fig. 14-style evaluation of one benchmark entry: generative
 * models run prefill + a short generation (outputLen = seqLen);
 * everything else runs one pass.
 */
EndToEndResult evaluateBenchmark(const Compiler &compiler,
                                 const std::string &name, s64 batch,
                                 s64 seqLen = 64);

} // namespace cmswitch

#endif // CMSWITCH_EVAL_EVALUATION_HPP
