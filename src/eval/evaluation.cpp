#include "eval/evaluation.hpp"

#include <algorithm>

#include "support/json.hpp"
#include "support/logging.hpp"

namespace cmswitch {

void
EndToEndResult::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .field("total_cycles", totalCycles())
        .field("prefill_cycles", prefillCycles)
        .field("decode_cycles", decodeCycles)
        .field("switch_cycles", switchCycles)
        .field("segments", segments)
        .field("avg_memory_array_ratio", avgMemoryArrayRatio)
        .endObject();
}

EndToEndResult
evaluateGraph(const Compiler &compiler, const Graph &graph)
{
    CompileResult r = compiler.compile(graph);
    EndToEndResult out;
    out.prefillCycles = r.totalCycles();
    out.compileSeconds = r.compileSeconds;
    out.avgMemoryArrayRatio = r.avgMemoryArrayRatio();
    out.switchCycles = r.latency.modeSwitch;
    out.segments = r.numSegments();
    return out;
}

EndToEndResult
evaluateGenerative(const Compiler &compiler, const TransformerConfig &config,
                   s64 batch, s64 inputLen, s64 outputLen, s64 kvBuckets)
{
    cmswitch_fatal_if(inputLen <= 0 || outputLen <= 0,
                      "generative workloads need input and output tokens");
    kvBuckets = std::max<s64>(1, std::min(kvBuckets, outputLen));

    EndToEndResult out;

    // Prefill pass over the prompt.
    Graph prefill = buildTransformerPrefill(config, batch, inputLen);
    CompileResult pre = compiler.compile(prefill);
    out.prefillCycles = pre.totalCycles();
    out.compileSeconds += pre.compileSeconds;
    out.switchCycles += pre.latency.modeSwitch;
    out.segments += pre.numSegments();

    // Decode: one program per KV bucket, weighted by tokens covered.
    double ratio_weighted = pre.avgMemoryArrayRatio();
    double ratio_weight = 1.0;
    for (s64 b = 0; b < kvBuckets; ++b) {
        s64 tokens_lo = b * outputLen / kvBuckets;
        s64 tokens_hi = (b + 1) * outputLen / kvBuckets;
        s64 tokens = tokens_hi - tokens_lo;
        if (tokens <= 0)
            continue;
        s64 kv_len = inputLen + (tokens_lo + tokens_hi) / 2 + 1;
        Graph step = buildTransformerDecodeStep(config, batch, kv_len);
        CompileResult dec = compiler.compile(step);
        out.decodeCycles += dec.totalCycles() * tokens;
        out.compileSeconds += dec.compileSeconds;
        out.switchCycles += dec.latency.modeSwitch * tokens;
        out.segments += dec.numSegments();
        ratio_weighted += dec.avgMemoryArrayRatio()
                        * static_cast<double>(tokens);
        ratio_weight += static_cast<double>(tokens);
    }
    out.avgMemoryArrayRatio = ratio_weighted / ratio_weight;
    return out;
}

Graph
buildModelByName(const std::string &name, s64 batch, s64 seqLen)
{
    if (name == "vgg16")
        return buildVgg16(batch);
    if (name == "resnet18")
        return buildResNet18(batch);
    if (name == "resnet50")
        return buildResNet50(batch);
    if (name == "mobilenetv2")
        return buildMobileNetV2(batch);
    // Transformers: encoder-only evaluates as a prefill pass.
    return buildTransformerPrefill(transformerConfigByName(name), batch,
                                   seqLen);
}

TransformerConfig
transformerConfigByName(const std::string &name)
{
    if (name == "bert-base")
        return TransformerConfig::bertBase();
    if (name == "bert-large")
        return TransformerConfig::bertLarge();
    if (name == "gpt")
        return TransformerConfig::gpt();
    if (name == "llama2-7b")
        return TransformerConfig::llama2_7b();
    if (name == "opt-6.7b")
        return TransformerConfig::opt6_7b();
    if (name == "opt-13b")
        return TransformerConfig::opt13b();
    cmswitch_fatal("unknown transformer model '", name, "'");
}

EndToEndResult
evaluateBenchmark(const Compiler &compiler, const std::string &name, s64 batch,
                  s64 seqLen)
{
    for (const ZooEntry &entry : fig14Benchmarks()) {
        if (entry.name == name && entry.generative) {
            return evaluateGenerative(compiler,
                                      transformerConfigByName(name), batch,
                                      seqLen, seqLen);
        }
    }
    Graph g = buildModelByName(name, batch, seqLen);
    return evaluateGraph(compiler, g);
}

} // namespace cmswitch
