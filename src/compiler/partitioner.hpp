/**
 * @file
 * Front-end flattening (paper Sec. 4.3.1): extracts the topologically
 * sorted CIM-supportable operator list from a graph, fuses function-
 * unit operators onto their neighbouring CIM operator as epilogues, and
 * greedily splits any operator whose weight tiles exceed the chip into
 * sub-operators that can be fully mapped.
 */

#ifndef CMSWITCH_COMPILER_PARTITIONER_HPP
#define CMSWITCH_COMPILER_PARTITIONER_HPP

#include <vector>

#include "cost/cost_model.hpp"
#include "graph/graph.hpp"

namespace cmswitch {

/** One schedulable unit after flattening/partitioning. */
struct ScheduledOp
{
    OpWorkload work;
    s64 subIndex = 0;  ///< which slice of the original operator
    s64 subCount = 1;  ///< total slices the operator was split into

    /** Indices (into the ScheduledOp list) of direct data predecessors. */
    std::vector<s64> preds;

    /** Bytes of this op's output consumed by later scheduled ops or by
     *  the network output (live across its segment boundary). */
    s64 liveOutBytes = 0;

    /** Bytes that may be handed from producer to consumer through a
     *  shared memory-mode array (Eq. 6 reuse upper bound), keyed
     *  parallel to preds. */
    std::vector<s64> reuseBytes;
};

/** Options controlling partitioning granularity. */
struct PartitionOptions
{
    /**
     * Largest weight-tile count a sub-operator may occupy. Defaults to
     * 0 == "derive from the chip": the greedy splitter targets the
     * whole array budget, leaving a small bandwidth reserve.
     */
    s64 maxTilesPerSubOp = 0;

    /**
     * Dual-mode-aware granularity (paper Sec. 4.3.1: partition
     * granularity is "determined by the available on-chip resources").
     * When enabled, each operator's slice size balances the compute
     * rate of its mapped tiles against the memory-mode bandwidth the
     * remaining arrays can contribute under Eq. 10:
     *
     *   t* * OP_cim * util = (D_cim * (N - t*) + D_main) * AI
     *
     * Low-AI operators (LLM decode) get small slices so most arrays
     * can serve as memory; high-AI operators keep large slices.
     * Fixed-mode baselines leave this off (max-fill slicing).
     */
    bool dualModeAware = false;

    /**
     * Fail-fast ceiling on the sub-operators a single operator may
     * split into. A chip whose arrays are far too small for a model
     * (16x16 arrays under an opt-6.7b matmul) otherwise produces tens
     * of thousands of slices and minutes of downstream DP search;
     * exceeding the ceiling fatals immediately, naming the operator
     * and the array geometry. 0 disables the guard.
     */
    s64 maxSubOpsPerOp = 4096;
};

/**
 * Flatten @p graph for @p deha. The result is topologically ordered;
 * sub-operators of one operator are consecutive and chained (slice k+1
 * depends on nothing of slice k except chip occupancy, but we keep the
 * original operator ordering).
 */
std::vector<ScheduledOp> flattenGraph(const Graph &graph, const Deha &deha,
                                      const PartitionOptions &options = {});

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_PARTITIONER_HPP
