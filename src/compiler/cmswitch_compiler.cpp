#include "compiler/cmswitch_compiler.hpp"

#include <chrono>

#include "obs/obs.hpp"
#include "support/logging.hpp"

namespace cmswitch {

CmSwitchCompiler::CmSwitchCompiler(ChipConfig chip, CmSwitchOptions options,
                                   std::string name)
    : deha_(std::move(chip)), cost_(deha_), options_(options),
      name_(std::move(name))
{
}

CompileResult
CmSwitchCompiler::compile(const Graph &graph) const
{
    return compileImpl(graph, nullptr, nullptr, nullptr, nullptr);
}

CompileResult
CmSwitchCompiler::compileWarm(
    const Graph &graph, std::shared_ptr<const CompilerWarmState> neighbor,
    std::shared_ptr<CompilerWarmState> *retain_out,
    WarmReuseStats *stats_out) const
{
    return compileImpl(graph, nullptr, neighbor, retain_out, stats_out);
}

CompileResult
CmSwitchCompiler::compileWithSchedule(const Graph &graph,
                                      ScheduleResult *schedule_out) const
{
    return compileImpl(graph, schedule_out, nullptr, nullptr, nullptr);
}

CompileResult
CmSwitchCompiler::compileImpl(
    const Graph &graph, ScheduleResult *schedule_out,
    const std::shared_ptr<const CompilerWarmState> &neighbor,
    std::shared_ptr<CompilerWarmState> *retain_out,
    WarmReuseStats *stats_out) const
{
    auto t0 = std::chrono::steady_clock::now();

    PartitionOptions partition = options_.partition;
    partition.dualModeAware =
        !options_.forceMaxFillSlicing
        && (partition.dualModeAware
            || options_.segmenter.alloc.allowMemoryMode);
    std::vector<ScheduledOp> ops = flattenGraph(graph, deha_, partition);
    cmswitch_fatal_if(ops.empty(),
                      "graph ", graph.name(), " has no CIM-supportable ops");

    Segmenter segmenter(cost_, options_.segmenter);
    if (neighbor != nullptr)
        segmenter.setWarmState(neighbor);
    if (retain_out != nullptr)
        segmenter.setRetain(true);
    ScheduleResult schedule = segmenter.run(ops);
    cmswitch_fatal_if(!schedule.feasible(),
                      "no feasible schedule for ", graph.name(), " on ",
                      deha_.config().name);
    if (retain_out != nullptr)
        *retain_out = segmenter.exportWarmState();
    if (stats_out != nullptr)
        *stats_out = segmenter.warmStats();

    CompileResult result;
    {
        obs::ScopedPhase codegen(obs::Hist::kPhaseCodegen, "codegen",
                                 "compiler");
        codegen.arg("scheduled_ops", static_cast<s64>(ops.size()));
        result.program = generateProgram(graph.name(), deha_, ops, schedule,
                                         options_.segmenter.alloc.pipelined);
    }
    result.latency = schedule.latency;

    auto t1 = std::chrono::steady_clock::now();
    result.compileSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    obs::recordSeconds(obs::Hist::kPhaseCompile, result.compileSeconds);
    if (schedule_out)
        *schedule_out = std::move(schedule);
    return result;
}

} // namespace cmswitch
