/**
 * @file
 * Dual-mode-aware network segmentation (paper Sec. 4.3.1, Alg. 1).
 *
 * Dynamic programming over the flattened operator list: L[j] = best
 * cost of executing ops [0, j), transitioning from L[i] by running
 * segment [i, j) with its MIP-allocated resources, paying the three
 * inter-segment overheads (write-back, Eq. 1 mode switch, Eq. 2 weight
 * rewrite). Infeasible windows (weights exceed the chip) are pruned,
 * which bounds the DP width; repeated segment shapes (transformer
 * blocks) hit a signature cache so each block is optimised once
 * (paper Sec. 5.6).
 *
 * Two interchangeable DP search implementations exist:
 *
 *  - runDp() — the production path. Per candidate segment [k, i) it
 *    hoists everything j-invariant (the Eq. 2 rewrite, inbound bytes,
 *    the allocation lookup) out of the predecessor-state scan, carries
 *    each state's write-back aggregates (live-out bytes, memory-array
 *    count) inside the state instead of re-deriving them from segment
 *    allocations, answers boundary-crossing reuse queries from sorted
 *    prefix/suffix byte sums, and keys the per-run range cache with a
 *    flat hash map instead of a red-black tree.
 *  - runDpReference() — the pre-optimization search, kept verbatim
 *    behind SegmenterOptions::referenceSearch. It recomputes every
 *    aggregate per (predecessor, segment) pair. The differential tests
 *    (tests/segmenter_diff_test.cpp, fuzz_test) pin that both searches
 *    produce byte-identical compile results across the full scenario
 *    matrix, which is what licenses every shortcut the fast path takes.
 */

#ifndef CMSWITCH_COMPILER_SEGMENTER_HPP
#define CMSWITCH_COMPILER_SEGMENTER_HPP

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/allocator.hpp"
#include "compiler/compiler_api.hpp"
#include "support/flat_map.hpp"
#include "support/task_pool.hpp"

namespace cmswitch {

/** Scheduling policy of a compiler built on the segmenter. */
struct SegmenterOptions
{
    AllocatorOptions alloc;

    /** true: Alg. 1 DP; false: greedy max-fill segmentation. */
    bool useDp = true;

    /** true: only live-out data is written back between segments;
     *  false: every segment output spills (naive baselines). */
    bool livenessAwareWriteback = true;

    /**
     * true: run the retained pre-optimization DP instead of the fast
     * search. Exists solely so the differential tests (and the Fig. 18
     * bench) can pin/measure the fast path against the original; both
     * must produce byte-identical plans.
     */
    bool referenceSearch = false;

    /**
     * Plan-search parallelism (>= 1). With searchThreads > 1 the
     * segmenter owns a TaskPool and (a) batches each DP boundary's
     * allocation cache misses and per-start candidate scans across it,
     * (b) hands the pool to the allocator for speculative bisection
     * probes and parallel probe branch-and-bound. Every lever reduces
     * in a fixed serial order, so emitted plans — and the signature
     * cache hit/miss counters — are byte-identical for any value of
     * this knob (pinned by segmenter_diff_test's thread sweep).
     * Ignored when referenceSearch is set; the reference path stays
     * fully serial.
     */
    s64 searchThreads = 1;
};

/** One chosen segment with its allocation and entry overheads. */
struct SegmentDecision
{
    s64 lo = 0; ///< first flattened op index (inclusive)
    s64 hi = 0; ///< last flattened op index (exclusive)
    SegmentAllocation alloc;

    /** Inter-segment overheads paid when entering this segment. */
    Cycles interWriteback = 0;
    Cycles interSwitch = 0;
    Cycles interRewrite = 0;

    /** Boundary traffic backing interWriteback (for code generation). */
    s64 storeBytes = 0;   ///< spilled by the predecessor segment
    s64 loadBytes = 0;    ///< fetched on entry of this segment
    s64 carriedBytes = 0; ///< handed over on-chip (no main-memory trip)

    Cycles interTotal() const
    {
        return interWriteback + interSwitch + interRewrite;
    }
};

/** Full schedule of a network. */
struct ScheduleResult
{
    std::vector<SegmentDecision> segments;
    LatencyBreakdown latency;

    bool feasible() const { return !segments.empty(); }
};

/**
 * The segmentation engine. Holds a per-instance cache of segment
 * allocations keyed by workload signature, so reuse it across graphs of
 * the same model family when timing compilation (Fig. 18).
 */
class Segmenter
{
  public:
    Segmenter(const CostModel &cost, SegmenterOptions options);

    /** Segment + allocate the flattened network. */
    ScheduleResult run(const std::vector<ScheduledOp> &ops);

    /** Cache statistics (allocator invocations saved by signatures). */
    s64 cacheHits() const { return cacheHits_; }
    s64 cacheMisses() const { return cacheMisses_; }

    /**
     * The cached allocation for segment [lo, hi), computing (and
     * memoising) it on first touch — the same lookup every search path
     * performs. Public so the property tests can pin cache-hit results
     * against freshly recomputed allocations. Only valid for the ops
     * list of the current/most recent run() (the range cache is keyed
     * by position).
     */
    const SegmentAllocation &
    allocationForRange(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi);

    /**
     * Largest supported flattened-network size: the per-run range cache
     * packs (lo, hi) as lo * (n + 1) + hi, which is collision-free and
     * overflow-free while (n + 1)^2 - 1 <= 2^63 - 1, i.e.
     * n + 1 <= floor(sqrt(2^63)) = 3037000499 (pinned by the
     * key-packing property test).
     */
    static constexpr s64 kMaxOps = 3037000498;

  private:
    /** @copydoc allocationForRange (internal reference-returning form) */
    const SegmentAllocation &
    allocateCachedRef(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi);

    /** Signature-cache key of segment [lo, hi): memoised per-op
     *  fragments plus range-relative dependency edges. */
    std::string rangeSignature(const std::vector<ScheduledOp> &ops, s64 lo,
                               s64 hi) const;

    /** Value-returning wrapper kept for the reference/greedy paths. */
    SegmentAllocation allocateCached(const std::vector<ScheduledOp> &ops,
                                     s64 lo, s64 hi);

    /** Bytes produced in [lo,hi) and consumed at/after @p boundary. */
    s64 liveOutBytes(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi,
                     s64 boundary) const;

    /** Bytes consumed by [lo,hi) that were produced before @p lo. */
    s64 inboundBytes(const std::vector<ScheduledOp> &ops, s64 lo,
                     s64 hi) const;

    /** Inter-segment cost entering segment [lo,hi) from a predecessor
     *  plan (write-back + switch + rewrite). */
    void interCost(const std::vector<ScheduledOp> &ops,
                   const SegmentAllocation &prev, s64 prev_lo, s64 lo, s64 hi,
                   const SegmentAllocation &cur, s64 phys_compute,
                   SegmentDecision *decision) const;

    /** Feasible segment starts per boundary: [minStart[i], i). */
    std::vector<s64> minStarts(const std::vector<ScheduledOp> &ops) const;

    ScheduleResult runDp(const std::vector<ScheduledOp> &ops);
    ScheduleResult runDpReference(const std::vector<ScheduledOp> &ops);
    ScheduleResult runGreedy(const std::vector<ScheduledOp> &ops);

    /** Fill latency totals + physical mode tracking over the chosen
     *  segment list. */
    ScheduleResult finalize(const std::vector<ScheduledOp> &ops,
                            std::vector<std::pair<s64, s64>> ranges);

    const CostModel *cost_;
    SegmenterOptions options_;
    /** Search pool (searchThreads > 1 only). Declared before the
     *  allocator, which captures the raw pointer at construction. */
    std::unique_ptr<TaskPool> pool_;
    DualModeAllocator allocator_;

    /** Cross-run signature cache: segment shape -> allocation. Node
     *  stability matters — the range cache stores pointers into it. */
    std::unordered_map<std::string, SegmentAllocation> cache_;
    s64 cacheHits_ = 0;
    s64 cacheMisses_ = 0;

    /** @{ Per-run acceleration structures (rebuilt by run()). */
    /** key lo * (n+1) + hi -> allocation in cache_ */
    FlatRangeMap<const SegmentAllocation *> rangeCache_;
    std::vector<s64> lastConsumer_;  ///< per op: max consumer index or -1
    std::vector<s64> maxEdgeBytes_;  ///< per op: widest outgoing edge
    std::vector<s64> prefixOutput_;  ///< prefix sums of work.outputBytes
    std::vector<std::string> opSig_; ///< per-op signature fragment
    /** Identity of the ops list the positional caches were built for
     *  (allocationForRange rebuilds on mismatch). */
    const ScheduledOp *cachedOps_ = nullptr;
    /** @} */
};

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_SEGMENTER_HPP
