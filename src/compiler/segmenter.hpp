/**
 * @file
 * Dual-mode-aware network segmentation (paper Sec. 4.3.1, Alg. 1).
 *
 * Dynamic programming over the flattened operator list: L[j] = best
 * cost of executing ops [0, j), transitioning from L[i] by running
 * segment [i, j) with its MIP-allocated resources, paying the three
 * inter-segment overheads (write-back, Eq. 1 mode switch, Eq. 2 weight
 * rewrite). Infeasible windows (weights exceed the chip) are pruned,
 * which bounds the DP width; repeated segment shapes (transformer
 * blocks) hit a signature cache so each block is optimised once
 * (paper Sec. 5.6).
 *
 * Two interchangeable DP search implementations exist:
 *
 *  - runDp() — the production path. Per candidate segment [k, i) it
 *    hoists everything j-invariant (the Eq. 2 rewrite, inbound bytes,
 *    the allocation lookup) out of the predecessor-state scan, carries
 *    each state's write-back aggregates (live-out bytes, memory-array
 *    count) inside the state instead of re-deriving them from segment
 *    allocations, answers boundary-crossing reuse queries from sorted
 *    prefix/suffix byte sums, and keys the per-run range cache with a
 *    flat hash map instead of a red-black tree.
 *  - runDpReference() — the pre-optimization search, kept verbatim
 *    behind SegmenterOptions::referenceSearch. It recomputes every
 *    aggregate per (predecessor, segment) pair. The differential tests
 *    (tests/segmenter_diff_test.cpp, fuzz_test) pin that both searches
 *    produce byte-identical compile results across the full scenario
 *    matrix, which is what licenses every shortcut the fast path takes.
 */

#ifndef CMSWITCH_COMPILER_SEGMENTER_HPP
#define CMSWITCH_COMPILER_SEGMENTER_HPP

#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "compiler/allocator.hpp"
#include "compiler/compiler_api.hpp"
#include "compiler/warm_state.hpp"
#include "support/flat_map.hpp"
#include "support/task_pool.hpp"

namespace cmswitch {

/** Scheduling policy of a compiler built on the segmenter. */
struct SegmenterOptions
{
    AllocatorOptions alloc;

    /** true: Alg. 1 DP; false: greedy max-fill segmentation. */
    bool useDp = true;

    /** true: only live-out data is written back between segments;
     *  false: every segment output spills (naive baselines). */
    bool livenessAwareWriteback = true;

    /**
     * true: run the retained pre-optimization DP instead of the fast
     * search. Exists solely so the differential tests (and the Fig. 18
     * bench) can pin/measure the fast path against the original; both
     * must produce byte-identical plans.
     */
    bool referenceSearch = false;

    /**
     * Plan-search parallelism (>= 1). With searchThreads > 1 the
     * segmenter owns a TaskPool and (a) batches each DP boundary's
     * allocation cache misses and per-start candidate scans across it,
     * (b) hands the pool to the allocator for speculative bisection
     * probes and parallel probe branch-and-bound. Every lever reduces
     * in a fixed serial order, so emitted plans — and the signature
     * cache hit/miss counters — are byte-identical for any value of
     * this knob (pinned by segmenter_diff_test's thread sweep).
     * Ignored when referenceSearch is set; the reference path stays
     * fully serial.
     */
    s64 searchThreads = 1;
};

/** One chosen segment with its allocation and entry overheads. */
struct SegmentDecision
{
    s64 lo = 0; ///< first flattened op index (inclusive)
    s64 hi = 0; ///< last flattened op index (exclusive)
    SegmentAllocation alloc;

    /** Inter-segment overheads paid when entering this segment. */
    Cycles interWriteback = 0;
    Cycles interSwitch = 0;
    Cycles interRewrite = 0;

    /** Boundary traffic backing interWriteback (for code generation). */
    s64 storeBytes = 0;   ///< spilled by the predecessor segment
    s64 loadBytes = 0;    ///< fetched on entry of this segment
    s64 carriedBytes = 0; ///< handed over on-chip (no main-memory trip)

    Cycles interTotal() const
    {
        return interWriteback + interSwitch + interRewrite;
    }
};

/** Full schedule of a network. */
struct ScheduleResult
{
    std::vector<SegmentDecision> segments;
    LatencyBreakdown latency;

    bool feasible() const { return !segments.empty(); }
};

/**
 * The segmentation engine. Holds a per-instance cache of segment
 * allocations keyed by workload signature, so reuse it across graphs of
 * the same model family when timing compilation (Fig. 18).
 */
class Segmenter
{
  public:
    Segmenter(const CostModel &cost, SegmenterOptions options);

    /** Segment + allocate the flattened network. */
    ScheduleResult run(const std::vector<ScheduledOp> &ops);

    /** Cache statistics (allocator invocations saved by signatures). */
    s64 cacheHits() const { return cacheHits_; }
    s64 cacheMisses() const { return cacheMisses_; }

    /**
     * @{ Incremental (delta) compilation hooks (compiler/warm_state.hpp).
     *
     * setWarmState() hands run() a neighbor compile's retained search
     * state: structurally equal prefix/suffix ranges import the
     * neighbor's allocations positionally (no signature build), its
     * signature pool seeds the cross-run cache, fully-equal DP prefix
     * boundaries import verbatim, and near-miss ranges seed the
     * allocator's bisection bracket and probe LP basis. Every import is
     * byte-identity preserving (see warm_state.hpp); referenceSearch
     * runs ignore warm state entirely.
     *
     * setRetain(true) makes run() record its own search state so
     * exportWarmState() — valid until the next run()/setWarmState() —
     * can hand it to the *next* neighbor. warmStats() reports what the
     * last run() actually reused.
     */
    void setWarmState(std::shared_ptr<const CompilerWarmState> warm)
    {
        warmIn_ = std::move(warm);
    }
    void setRetain(bool retain) { retain_ = retain; }
    std::shared_ptr<CompilerWarmState> exportWarmState() const;
    const WarmReuseStats &warmStats() const { return warmStats_; }
    /** @} */

    /**
     * The cached allocation for segment [lo, hi), computing (and
     * memoising) it on first touch — the same lookup every search path
     * performs. Public so the property tests can pin cache-hit results
     * against freshly recomputed allocations. Only valid for the ops
     * list of the current/most recent run() (the range cache is keyed
     * by position).
     */
    const SegmentAllocation &
    allocationForRange(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi);

    /**
     * Largest supported flattened-network size: the per-run range cache
     * packs (lo, hi) as lo * (n + 1) + hi, which is collision-free and
     * overflow-free while (n + 1)^2 - 1 <= 2^63 - 1, i.e.
     * n + 1 <= floor(sqrt(2^63)) = 3037000499 (pinned by the
     * key-packing property test).
     */
    static constexpr s64 kMaxOps = 3037000498;

  private:
    /** @copydoc allocationForRange (internal reference-returning form) */
    const SegmentAllocation &
    allocateCachedRef(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi);

    /** Signature-cache key of segment [lo, hi): memoised per-op
     *  fragments plus range-relative dependency edges. */
    std::string rangeSignature(const std::vector<ScheduledOp> &ops, s64 lo,
                               s64 hi) const;

    /** Value-returning wrapper kept for the reference/greedy paths. */
    SegmentAllocation allocateCached(const std::vector<ScheduledOp> &ops,
                                     s64 lo, s64 hi);

    /** Bytes produced in [lo,hi) and consumed at/after @p boundary. */
    s64 liveOutBytes(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi,
                     s64 boundary) const;

    /** Bytes consumed by [lo,hi) that were produced before @p lo. */
    s64 inboundBytes(const std::vector<ScheduledOp> &ops, s64 lo,
                     s64 hi) const;

    /** Inter-segment cost entering segment [lo,hi) from a predecessor
     *  plan (write-back + switch + rewrite). */
    void interCost(const std::vector<ScheduledOp> &ops,
                   const SegmentAllocation &prev, s64 prev_lo, s64 lo, s64 hi,
                   const SegmentAllocation &cur, s64 phys_compute,
                   SegmentDecision *decision) const;

    /** Feasible segment starts per boundary: [minStart[i], i). */
    std::vector<s64> minStarts(const std::vector<ScheduledOp> &ops) const;

    ScheduleResult runDp(const std::vector<ScheduledOp> &ops);
    ScheduleResult runDpReference(const std::vector<ScheduledOp> &ops);
    ScheduleResult runGreedy(const std::vector<ScheduledOp> &ops);

    /** Fill latency totals + physical mode tracking over the chosen
     *  segment list. */
    ScheduleResult finalize(const std::vector<ScheduledOp> &ops,
                            std::vector<std::pair<s64, s64>> ranges);

    const CostModel *cost_;
    SegmenterOptions options_;
    /** Search pool (searchThreads > 1 only). Declared before the
     *  allocator, which captures the raw pointer at construction. */
    std::unique_ptr<TaskPool> pool_;
    DualModeAllocator allocator_;

    /** Cross-run signature cache: segment shape -> allocation. Node
     *  stability matters — the range cache stores pointers into it. */
    std::unordered_map<std::string, SegmentAllocation> cache_;
    s64 cacheHits_ = 0;
    s64 cacheMisses_ = 0;

    /** @{ Per-run acceleration structures (rebuilt by run()). */
    /** key lo * (n+1) + hi -> allocation in cache_ */
    FlatRangeMap<const SegmentAllocation *> rangeCache_;
    std::vector<s64> lastConsumer_;  ///< per op: max consumer index or -1
    std::vector<s64> maxEdgeBytes_;  ///< per op: widest outgoing edge
    std::vector<s64> prefixOutput_;  ///< prefix sums of work.outputBytes
    std::vector<std::string> opSig_; ///< per-op signature fragment
    /** Identity of the ops list the positional caches were built for
     *  (allocationForRange rebuilds on mismatch). */
    const ScheduledOp *cachedOps_ = nullptr;
    /** @} */

    /** @{ Incremental-compilation state (see the public hooks above). */
    /** Neighbor allocation for range [lo, hi) when it lies inside one
     *  constant-shift matched run of the alignment, else nullptr.
     *  Counts warmStats_.rangeImports on success. */
    const SegmentAllocation *warmPositionalLookup(s64 lo, s64 hi, s64 n);

    /** Bracket/basis hints for a cache-missing range, from whichever
     *  positional window the neighbor priced (identity or shifted). */
    bool warmHintFor(s64 lo, s64 hi, AllocWarmHints *hints) const;

    /** rangeCache_.insert plus the retention log (export needs the
     *  positional bindings; FlatRangeMap is not iterable). */
    void cacheRange(s64 key, const SegmentAllocation *alloc);

    std::shared_ptr<const CompilerWarmState> warmIn_;
    bool retain_ = false;
    WarmReuseStats warmStats_;
    s64 dpPrefix_ = 0;  ///< fullEq prefix: DP-row import bound
    s64 warmDelta_ = 0; ///< numOps(cur) - numOps(neighbor)
    std::vector<WarmOpMeta> curMeta_; ///< this run's op metadata
    /** @{ warmAlign() runs: per current op, the index shift to its
     *  matched neighbor op (kNoShift if unmatched) and the id of its
     *  maximal consecutive constant-shift run (-1 if unmatched). */
    static constexpr s64 kNoShift = std::numeric_limits<s64>::min();
    std::vector<s64> matchShift_;
    std::vector<s64> runId_;
    /** Largest absolute-matched predecessor per aligned position (the
     *  relaxedEqShifted bound; -1 when every edge shifts). */
    std::vector<s64> matchAbsMax_;
    /** @} */
    /** @{ Self-alignment (warm compiles only): per current op, the lag
     *  onto the graph's own dominant structural period (kNoShift if it
     *  does not repeat), the id of its maximal consecutive constant-lag
     *  run, and the relaxedEqShifted absolute bound. A changed window
     *  usually repeats an earlier layer's structure (generative models
     *  are periodic in depth), so its ranges can be served from
     *  rangeCache_ at the lag — again without building either
     *  signature. */
    std::vector<s64> selfLag_;
    std::vector<s64> selfRunId_;
    std::vector<s64> selfAbsMax_;
    /** @} */
    /** Neighbor range key (nb coordinates) -> neighbor pool index. */
    std::unordered_map<s64, s64> warmNeighborRanges_;
    /** cache_ entries seeded from the neighbor (importedSigHits). */
    std::unordered_set<const SegmentAllocation *> importedPtrs_;
    /** Final probe basis per cache_ entry (retention + carry-forward). */
    std::unordered_map<const SegmentAllocation *, LpWarmStart> basisOf_;
    /** (range key, allocation) pairs priced this run, in touch order. */
    std::vector<std::pair<s64, const SegmentAllocation *>> rangeLog_;
    /** Retained DP rows of the last runDp() (setRetain only). */
    std::vector<std::vector<WarmDpState>> lastDpRows_;
    /** @} */
};

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_SEGMENTER_HPP
