/**
 * @file
 * The CMSwitch compiler driver: preprocessing (flatten + partition),
 * dual-mode-aware compilation optimization (DACO: DP segmentation +
 * MIP allocation), and meta-operator code generation — the full
 * pipeline of paper Fig. 7.
 */

#ifndef CMSWITCH_COMPILER_CMSWITCH_COMPILER_HPP
#define CMSWITCH_COMPILER_CMSWITCH_COMPILER_HPP

#include "compiler/codegen.hpp"
#include "compiler/compiler_api.hpp"
#include "compiler/partitioner.hpp"
#include "compiler/segmenter.hpp"
#include "cost/cost_model.hpp"

namespace cmswitch {

/** Tunables of a CMSwitch build (ablation studies flip these). */
struct CmSwitchOptions
{
    SegmenterOptions segmenter; ///< defaults: DP + dual-mode + pipeline
    PartitionOptions partition;

    /** Ablation: keep max-fill sub-operator slicing even when memory
     *  mode is on (disables the dual-mode-aware t* granularity). */
    bool forceMaxFillSlicing = false;
};

/**
 * Dual-mode-aware DNN compiler (this paper). Also serves, with
 * restricted options, as the engine of the baseline compilers.
 *
 * Instances are immutable after construction; compile() builds all
 * per-run state (segmenter, schedule) on the stack, so one compiler
 * may be shared across threads.
 */
class CmSwitchCompiler : public Compiler
{
  public:
    explicit CmSwitchCompiler(ChipConfig chip, CmSwitchOptions options = {},
                              std::string name = "cmswitch");

    std::string name() const override { return name_; }
    CompileResult compile(const Graph &graph) const override;

    /**
     * Incremental compilation (see Compiler::compileWarm): routes the
     * neighbor state into the segmenter's warm levers and exports this
     * compile's own state. Byte-identical to compile() by the
     * warm_state.hpp soundness contract; reference-search builds ignore
     * the warm state and stay cold.
     */
    CompileResult
    compileWarm(const Graph &graph,
                std::shared_ptr<const CompilerWarmState> neighbor,
                std::shared_ptr<CompilerWarmState> *retain_out,
                WarmReuseStats *stats_out) const override;

    /**
     * compile() that also returns the schedule-level view (per-segment
     * allocations) for reporting harnesses like the Fig. 15 bench.
     */
    CompileResult compileWithSchedule(const Graph &graph,
                                      ScheduleResult *schedule) const;

    const Deha &deha() const { return deha_; }
    const CostModel &cost() const { return cost_; }
    const CmSwitchOptions &options() const { return options_; }

  private:
    /** Shared pipeline behind compile()/compileWarm()/…WithSchedule(). */
    CompileResult
    compileImpl(const Graph &graph, ScheduleResult *schedule_out,
                const std::shared_ptr<const CompilerWarmState> &neighbor,
                std::shared_ptr<CompilerWarmState> *retain_out,
                WarmReuseStats *stats_out) const;

    Deha deha_;
    CostModel cost_;
    CmSwitchOptions options_;
    std::string name_;
};

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_CMSWITCH_COMPILER_HPP
