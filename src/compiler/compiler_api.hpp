/**
 * @file
 * Common compiler interface shared by CMSwitch and the three baseline
 * compilers (PUMA / OCC / CIM-MLC), so every evaluation harness drives
 * them interchangeably.
 */

#ifndef CMSWITCH_COMPILER_COMPILER_API_HPP
#define CMSWITCH_COMPILER_COMPILER_API_HPP

#include <memory>
#include <string>

#include "arch/deha.hpp"
#include "graph/graph.hpp"
#include "metaop/program.hpp"

namespace cmswitch {

/** Latency breakdown of a compiled network (compiler estimates). */
struct LatencyBreakdown
{
    Cycles intra = 0;     ///< pipelined segment execution (Eq. 9/10)
    Cycles writeback = 0; ///< inter-segment data store/reload
    Cycles modeSwitch = 0;///< Eq. 1 dual-mode switching
    Cycles rewrite = 0;   ///< Eq. 2 weight (re)programming

    Cycles total() const { return intra + writeback + modeSwitch + rewrite; }
};

/** Everything a compilation produces. */
struct CompileResult
{
    MetaProgram program;
    LatencyBreakdown latency;
    double compileSeconds = 0.0;

    Cycles totalCycles() const { return latency.total(); }
    s64 numSegments() const { return program.numSegments(); }
    double avgMemoryArrayRatio() const
    {
        return program.avgMemoryArrayRatio();
    }
};

/** Abstract DNN-to-CIM compiler. */
class Compiler
{
  public:
    virtual ~Compiler() = default;

    /** Short identifier ("cmswitch", "cim-mlc", ...). */
    virtual std::string name() const = 0;

    /** Compile @p graph for the chip this compiler was built with. */
    virtual CompileResult compile(const Graph &graph) = 0;
};

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_COMPILER_API_HPP
