/**
 * @file
 * Common compiler interface shared by CMSwitch and the three baseline
 * compilers (PUMA / OCC / CIM-MLC), so every evaluation harness drives
 * them interchangeably.
 */

#ifndef CMSWITCH_COMPILER_COMPILER_API_HPP
#define CMSWITCH_COMPILER_COMPILER_API_HPP

#include <memory>
#include <string>

#include "arch/deha.hpp"
#include "graph/graph.hpp"
#include "metaop/program.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;
class JsonWriter;
struct CompilerWarmState;
struct WarmReuseStats;

/** Latency breakdown of a compiled network (compiler estimates). */
struct LatencyBreakdown
{
    Cycles intra = 0;     ///< pipelined segment execution (Eq. 9/10)
    Cycles writeback = 0; ///< inter-segment data store/reload
    Cycles modeSwitch = 0;///< Eq. 1 dual-mode switching
    Cycles rewrite = 0;   ///< Eq. 2 weight (re)programming

    Cycles total() const { return intra + writeback + modeSwitch + rewrite; }

    /** Emit {"total", "intra", ...} as an object into @p w. */
    void writeJson(JsonWriter &w) const;

    /** @{ Exact binary round-trip for the persistent plan cache. */
    void writeBinary(BinaryWriter &w) const;
    static LatencyBreakdown readBinary(BinaryReader &r);
    /** @} */
};

/** Everything a compilation produces. */
struct CompileResult
{
    MetaProgram program;
    LatencyBreakdown latency;
    double compileSeconds = 0.0;

    Cycles totalCycles() const { return latency.total(); }
    s64 numSegments() const { return program.numSegments(); }
    double avgMemoryArrayRatio() const
    {
        return program.avgMemoryArrayRatio();
    }

    /**
     * Emit the content-deterministic view (segments, latency, ratios,
     * program traffic totals) as an object into @p w. Deliberately
     * excludes compileSeconds: report files must be byte-identical for
     * identical requests regardless of machine load or thread count.
     */
    void writeJson(JsonWriter &w) const;

    /** @{ Exact binary round-trip (including compileSeconds, which the
     *  JSON report deliberately omits). */
    void writeBinary(BinaryWriter &w) const;
    static CompileResult readBinary(BinaryReader &r);
    /** @} */
};

/**
 * Abstract DNN-to-CIM compiler.
 *
 * Thread-safety contract: compile() is const and implementations must
 * be safe to call concurrently on one instance — a compiler is
 * immutable after construction. The compile service relies on this to
 * share compiler instances across worker threads.
 */
class Compiler
{
  public:
    virtual ~Compiler() = default;

    /** Short identifier ("cmswitch", "cim-mlc", ...). */
    virtual std::string name() const = 0;

    /** Compile @p graph for the chip this compiler was built with. */
    virtual CompileResult compile(const Graph &graph) const = 0;

    /**
     * Incremental (delta) compilation entry point. @p neighbor is the
     * retained search state of a structurally similar earlier compile
     * (may be null); @p retain_out, when non-null, receives this
     * compile's own state for future neighbors; @p stats_out reports
     * what was actually reused. The invariant every implementation must
     * uphold (pinned by tests/incremental_diff_test.cpp): the result is
     * byte-identical to compile(graph). The base implementation ignores
     * the warm state and compiles cold.
     */
    virtual CompileResult
    compileWarm(const Graph &graph,
                std::shared_ptr<const CompilerWarmState> neighbor,
                std::shared_ptr<CompilerWarmState> *retain_out,
                WarmReuseStats *stats_out) const;
};

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_COMPILER_API_HPP
