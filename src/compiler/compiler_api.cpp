#include "compiler/compiler_api.hpp"

#include "support/json.hpp"

namespace cmswitch {

void
LatencyBreakdown::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .field("total", total())
        .field("intra", intra)
        .field("writeback", writeback)
        .field("mode_switch", modeSwitch)
        .field("rewrite", rewrite)
        .endObject();
}

void
CompileResult::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .field("model", program.modelName())
        .field("segments", numSegments())
        .field("avg_memory_array_ratio", avgMemoryArrayRatio())
        .field("switched_arrays", program.totalSwitchedArrays())
        .field("weight_load_bytes", program.totalWeightLoadBytes())
        .field("writeback_bytes", program.totalWritebackBytes());
    w.key("latency");
    latency.writeJson(w);
    w.endObject();
}

} // namespace cmswitch
