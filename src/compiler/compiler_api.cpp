#include "compiler/compiler_api.hpp"

#include "compiler/warm_state.hpp"
#include "support/json.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

CompileResult
Compiler::compileWarm(const Graph &graph,
                      std::shared_ptr<const CompilerWarmState> neighbor,
                      std::shared_ptr<CompilerWarmState> *retain_out,
                      WarmReuseStats *stats_out) const
{
    (void)neighbor;
    if (retain_out != nullptr)
        retain_out->reset();
    if (stats_out != nullptr)
        *stats_out = WarmReuseStats{};
    return compile(graph);
}

void
LatencyBreakdown::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .field("total", total())
        .field("intra", intra)
        .field("writeback", writeback)
        .field("mode_switch", modeSwitch)
        .field("rewrite", rewrite)
        .endObject();
}

void
CompileResult::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .field("model", program.modelName())
        .field("segments", numSegments())
        .field("avg_memory_array_ratio", avgMemoryArrayRatio())
        .field("switched_arrays", program.totalSwitchedArrays())
        .field("weight_load_bytes", program.totalWeightLoadBytes())
        .field("writeback_bytes", program.totalWritebackBytes());
    w.key("latency");
    latency.writeJson(w);
    w.endObject();
}

void
LatencyBreakdown::writeBinary(BinaryWriter &w) const
{
    w.writeS64(intra);
    w.writeS64(writeback);
    w.writeS64(modeSwitch);
    w.writeS64(rewrite);
}

LatencyBreakdown
LatencyBreakdown::readBinary(BinaryReader &r)
{
    LatencyBreakdown b;
    b.intra = r.readS64();
    b.writeback = r.readS64();
    b.modeSwitch = r.readS64();
    b.rewrite = r.readS64();
    return b;
}

void
CompileResult::writeBinary(BinaryWriter &w) const
{
    program.writeBinary(w);
    latency.writeBinary(w);
    w.writeF64(compileSeconds);
}

CompileResult
CompileResult::readBinary(BinaryReader &r)
{
    CompileResult result;
    result.program = MetaProgram::readBinary(r);
    result.latency = LatencyBreakdown::readBinary(r);
    result.compileSeconds = r.readF64();
    return result;
}

} // namespace cmswitch
