#include "compiler/warm_state.hpp"

#include <algorithm>

#include "support/hash.hpp"
#include "support/serialize.hpp"

namespace cmswitch {

namespace {

/** Bound for deserialized container counts: generous but finite, so a
 *  corrupted length prefix cannot drive a multi-gigabyte allocation. */
constexpr s64 kMaxCount = 1 << 26;

void
writeS64Vec(BinaryWriter &w, const std::vector<s64> &v)
{
    w.writeS64(static_cast<s64>(v.size()));
    for (s64 x : v)
        w.writeS64(x);
}

std::vector<s64>
readS64Vec(BinaryReader &r, const char *what)
{
    s64 count = r.readBounded(kMaxCount, what);
    std::vector<s64> v;
    v.reserve(static_cast<std::size_t>(count));
    for (s64 i = 0; i < count; ++i)
        v.push_back(r.readS64());
    return v;
}

} // namespace

bool
WarmOpMeta::structEqShifted(const WarmOpMeta &other, s64 delta) const
{
    if (sig != other.sig || reuseBytes != other.reuseBytes
        || preds.size() != other.preds.size())
        return false;
    for (std::size_t e = 0; e < preds.size(); ++e) {
        if (preds[e] != other.preds[e] + delta)
            return false;
    }
    return true;
}

bool
WarmOpMeta::relaxedEqShifted(const WarmOpMeta &other, s64 delta,
                             s64 *abs_max) const
{
    if (sig != other.sig || reuseBytes != other.reuseBytes
        || preds.size() != other.preds.size())
        return false;
    s64 abs = -1;
    for (std::size_t e = 0; e < preds.size(); ++e) {
        if (preds[e] == other.preds[e] + delta)
            continue; // shifts with the block
        if (delta != 0 && preds[e] == other.preds[e]) {
            abs = std::max(abs, preds[e]); // shared absolute producer
            continue;
        }
        return false;
    }
    *abs_max = abs;
    return true;
}

void
CompilerWarmState::writeBinary(BinaryWriter &w) const
{
    w.writeS64(static_cast<s64>(ops.size()));
    for (const WarmOpMeta &op : ops) {
        w.writeString(op.sig);
        writeS64Vec(w, op.preds);
        writeS64Vec(w, op.reuseBytes);
        w.writeS64(op.groupId);
        w.writeS64(op.lastConsumer);
        w.writeS64(op.maxEdgeBytes);
        w.writeS64(op.liveOutBytes);
    }
    w.writeS64(static_cast<s64>(dpRows.size()));
    for (const std::vector<WarmDpState> &row : dpRows) {
        w.writeS64(static_cast<s64>(row.size()));
        for (const WarmDpState &st : row) {
            w.writeS64(st.start);
            w.writeS64(st.cost);
            w.writeS64(st.prevStart);
            w.writeS64(st.memArrays);
            w.writeS64(st.outBytes);
        }
    }
    w.writeS64(static_cast<s64>(sigs.size()));
    for (std::size_t a = 0; a < sigs.size(); ++a) {
        w.writeString(sigs[a]);
        const SegmentAllocation &alloc = allocs[a];
        w.writeS64(static_cast<s64>(alloc.allocs.size()));
        for (const OpAllocation &oa : alloc.allocs)
            oa.writeBinary(w);
        w.writeS64(alloc.plan.computeArrays);
        w.writeS64(alloc.plan.memoryArrays);
        w.writeS64(alloc.reusedArrays);
        w.writeS64(alloc.intraLatency);
        const LpWarmStart &basis = bases[a];
        w.writeS64(basis.rows);
        w.writeS64(basis.cols);
        w.writeS64(static_cast<s64>(basis.basis.size()));
        for (int b : basis.basis)
            w.writeS64(b);
    }
    w.writeS64(static_cast<s64>(ranges.size()));
    for (const WarmRangeBinding &r : ranges) {
        w.writeS64(r.lo);
        w.writeS64(r.hi);
        w.writeS64(r.allocIndex);
    }
}

CompilerWarmState
CompilerWarmState::readBinary(BinaryReader &r)
{
    CompilerWarmState state;
    s64 n_ops = r.readBounded(kMaxCount, "warm op count");
    state.ops.reserve(static_cast<std::size_t>(n_ops));
    for (s64 i = 0; i < n_ops; ++i) {
        WarmOpMeta op;
        op.sig = r.readString();
        op.preds = readS64Vec(r, "warm pred count");
        op.reuseBytes = readS64Vec(r, "warm reuse count");
        if (op.reuseBytes.size() != op.preds.size())
            throw SerializeError("warm op pred/reuse length mismatch");
        op.groupId = r.readS64();
        op.lastConsumer = r.readS64();
        op.maxEdgeBytes = r.readS64();
        op.liveOutBytes = r.readS64();
        state.ops.push_back(std::move(op));
    }
    s64 n_rows = r.readBounded(kMaxCount, "warm dp row count");
    state.dpRows.reserve(static_cast<std::size_t>(n_rows));
    for (s64 i = 0; i < n_rows; ++i) {
        s64 n_states = r.readBounded(kMaxCount, "warm dp state count");
        std::vector<WarmDpState> row;
        row.reserve(static_cast<std::size_t>(n_states));
        for (s64 s = 0; s < n_states; ++s) {
            WarmDpState st;
            st.start = r.readS64();
            st.cost = r.readS64();
            st.prevStart = r.readS64();
            st.memArrays = r.readS64();
            st.outBytes = r.readS64();
            row.push_back(st);
        }
        state.dpRows.push_back(std::move(row));
    }
    s64 n_allocs = r.readBounded(kMaxCount, "warm allocation count");
    state.sigs.reserve(static_cast<std::size_t>(n_allocs));
    state.allocs.reserve(static_cast<std::size_t>(n_allocs));
    state.bases.reserve(static_cast<std::size_t>(n_allocs));
    for (s64 a = 0; a < n_allocs; ++a) {
        state.sigs.push_back(r.readString());
        SegmentAllocation alloc;
        s64 n_op_allocs = r.readBounded(kMaxCount, "warm op-alloc count");
        alloc.allocs.reserve(static_cast<std::size_t>(n_op_allocs));
        for (s64 i = 0; i < n_op_allocs; ++i)
            alloc.allocs.push_back(OpAllocation::readBinary(r));
        alloc.plan.computeArrays = r.readS64();
        alloc.plan.memoryArrays = r.readS64();
        alloc.reusedArrays = r.readS64();
        alloc.intraLatency = r.readS64();
        state.allocs.push_back(std::move(alloc));
        LpWarmStart basis;
        basis.rows = static_cast<int>(
            r.readBounded(kMaxCount, "warm basis rows"));
        basis.cols = static_cast<int>(
            r.readBounded(kMaxCount, "warm basis cols"));
        s64 n_basis = r.readBounded(kMaxCount, "warm basis count");
        basis.basis.reserve(static_cast<std::size_t>(n_basis));
        for (s64 b = 0; b < n_basis; ++b)
            basis.basis.push_back(static_cast<int>(r.readS64()));
        state.bases.push_back(std::move(basis));
    }
    s64 n_ranges = r.readBounded(kMaxCount, "warm range count");
    state.ranges.reserve(static_cast<std::size_t>(n_ranges));
    for (s64 i = 0; i < n_ranges; ++i) {
        WarmRangeBinding binding;
        binding.lo = r.readS64();
        binding.hi = r.readS64();
        binding.allocIndex = r.readS64();
        if (binding.lo < 0 || binding.hi <= binding.lo
            || binding.hi > n_ops || binding.allocIndex < 0
            || binding.allocIndex >= n_allocs)
            throw SerializeError("warm range binding out of bounds");
        state.ranges.push_back(binding);
    }
    return state;
}

std::vector<WarmMatch>
warmAlign(const std::vector<WarmOpMeta> &cur,
          const std::vector<WarmOpMeta> &neighbor)
{
    const s64 n = static_cast<s64>(cur.size());
    const s64 m = static_cast<s64>(neighbor.size());
    std::vector<WarmMatch> match(static_cast<std::size_t>(n));
    if (n == 0 || m == 0)
        return match;

    // Hash the signature fragments once so the resync search compares
    // u64s, not strings (collisions are caught by the verification
    // pass below).
    std::vector<u64> ha(static_cast<std::size_t>(n));
    std::vector<u64> hb(static_cast<std::size_t>(m));
    for (s64 i = 0; i < n; ++i)
        ha[static_cast<std::size_t>(i)] =
            fnv1a64(cur[static_cast<std::size_t>(i)].sig);
    for (s64 j = 0; j < m; ++j)
        hb[static_cast<std::size_t>(j)] =
            fnv1a64(neighbor[static_cast<std::size_t>(j)].sig);

    // A position pair matches only under the full structural check at
    // its own shift (the sig hash is just a prefilter): repeated
    // identical sub-op blocks make signature-only anchoring ambiguous,
    // and pred indices disambiguate exactly. Matching on the real
    // criterion during the walk is also what makes every reported
    // match sound by construction.
    s64 abs_scratch = -1;
    auto pair_eq = [&](s64 x, s64 y) {
        return ha[static_cast<std::size_t>(x)]
                   == hb[static_cast<std::size_t>(y)]
            && cur[static_cast<std::size_t>(x)].relaxedEqShifted(
                neighbor[static_cast<std::size_t>(y)], x - y,
                &abs_scratch);
    };

    // After a mismatch, resync on the nearest position pair (smallest
    // combined skip) that starts a run of kResync matching positions —
    // enough context to not re-anchor inside a changed window.
    constexpr s64 kResync = 8;
    constexpr s64 kMaxSkew = 512;
    auto run_eq = [&](s64 x, s64 y) {
        for (s64 r = 0; r < kResync && x + r < n && y + r < m; ++r) {
            if (!pair_eq(x + r, y + r))
                return false;
        }
        return true;
    };

    s64 i = 0;
    s64 j = 0;
    while (i < n && j < m) {
        if (pair_eq(i, j)) {
            match[static_cast<std::size_t>(i)] =
                WarmMatch{j, abs_scratch};
            ++i;
            ++j;
            continue;
        }
        bool found = false;
        for (s64 t = 1; t <= kMaxSkew && !found; ++t) {
            for (s64 di = 0; di <= t; ++di) {
                s64 dj = t - di;
                if (i + di >= n || j + dj >= m)
                    continue;
                if (run_eq(i + di, j + dj)) {
                    i += di;
                    j += dj;
                    found = true;
                    break;
                }
            }
        }
        if (!found) {
            // No resync within the skew bound: advance past the current
            // position and retry (pathological inputs; the fuzz battery
            // exercises this path).
            ++i;
            ++j;
        }
    }
    return match;
}

s64
warmCommonPrefix(const std::vector<WarmOpMeta> &cur,
                 const std::vector<WarmOpMeta> &neighbor)
{
    s64 n = static_cast<s64>(std::min(cur.size(), neighbor.size()));
    s64 p = 0;
    while (p < n
           && cur[static_cast<std::size_t>(p)].structEq(
               neighbor[static_cast<std::size_t>(p)]))
        ++p;
    return p;
}

s64
warmCommonSuffix(const std::vector<WarmOpMeta> &cur,
                 const std::vector<WarmOpMeta> &neighbor, s64 max_len)
{
    const s64 n_cur = static_cast<s64>(cur.size());
    const s64 n_nb = static_cast<s64>(neighbor.size());
    const s64 delta = n_cur - n_nb;
    s64 limit = std::min(std::min(n_cur, n_nb), std::max<s64>(0, max_len));
    s64 s = 0;
    while (s < limit
           && cur[static_cast<std::size_t>(n_cur - 1 - s)].structEqShifted(
               neighbor[static_cast<std::size_t>(n_nb - 1 - s)], delta))
        ++s;
    return s;
}

s64
warmDpSafePrefix(const std::vector<WarmOpMeta> &cur,
                 const std::vector<WarmOpMeta> &neighbor)
{
    s64 n = static_cast<s64>(std::min(cur.size(), neighbor.size()));
    s64 p = 0;
    while (p < n
           && cur[static_cast<std::size_t>(p)].fullEq(
               neighbor[static_cast<std::size_t>(p)]))
        ++p;
    return p;
}

} // namespace cmswitch
