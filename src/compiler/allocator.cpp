#include "compiler/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "obs/obs.hpp"
#include "solver/mip.hpp"
#include "support/logging.hpp"
#include "support/task_pool.hpp"

namespace cmswitch {

namespace {

constexpr double kRateEps = 1e-9;

/** Split a memory-array count into input/output shares by byte ratio. */
void
splitMemory(const OpWorkload &w, s64 mem, s64 *mem_in, s64 *mem_out)
{
    s64 in_b = w.inputBytes + (w.dynamicWeights ? w.weightBytes : 0);
    s64 total_b = in_b + w.outputBytes;
    if (mem <= 0 || total_b <= 0) {
        *mem_in = 0;
        *mem_out = std::max<s64>(0, mem);
        return;
    }
    *mem_in = static_cast<s64>(std::llround(
        static_cast<double>(mem) * static_cast<double>(in_b)
        / static_cast<double>(total_b)));
    *mem_in = std::clamp<s64>(*mem_in, 0, mem);
    *mem_out = mem - *mem_in;
}

} // namespace

SegmentView
makeSegmentView(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi)
{
    cmswitch_assert(lo >= 0 && hi <= static_cast<s64>(ops.size()) && lo < hi,
                    "bad segment range");
    SegmentView view;
    for (s64 i = lo; i < hi; ++i) {
        const ScheduledOp &s = ops[static_cast<std::size_t>(i)];
        view.ops.push_back(&s.work);
        for (std::size_t e = 0; e < s.preds.size(); ++e) {
            s64 p = s.preds[e];
            if (p >= lo && p < hi) {
                view.edges.push_back(
                    SegmentView::Edge{p - lo, i - lo, s.reuseBytes[e]});
            }
        }
    }
    return view;
}

DualModeAllocator::DualModeAllocator(const CostModel &cost,
                                     AllocatorOptions options, TaskPool *pool)
    : cost_(&cost), options_(options), pool_(pool)
{
}

DualModeAllocator::Needs
DualModeAllocator::needsForTarget(const OpWorkload &w, Cycles t,
                                  double dmain_share) const
{
    Needs n;
    Cycles fixed = cost_->fixedOverhead(w);
    Cycles budget = t - fixed;
    if (budget <= 0)
        return n;
    if (w.macs <= 0) {
        n.feasible = true;
        n.computeArrays = w.weightTiles;
        return n;
    }
    double rate_needed = static_cast<double>(w.macs)
                       / static_cast<double>(budget);

    // Compute side: smallest duplication multiple reaching the rate.
    double per_bundle = cost_->computeRate(w, w.weightTiles);
    cmswitch_assert(per_bundle > 0.0, "zero base compute rate");
    s64 dup = static_cast<s64>(
        std::ceil(rate_needed / per_bundle - kRateEps));
    dup = std::max<s64>(1, dup);
    s64 dup_cap = options_.allowDuplication
                ? std::max<s64>(1, w.movingRows)
                : 1;
    if (dup > dup_cap)
        return n;
    n.computeArrays = dup * w.weightTiles;

    // Memory side: Eq. 10's M term, inverted for the array count.
    if (cost_->memoryRate(w, 0, dmain_share) + kRateEps >= rate_needed) {
        n.memoryArrays = 0;
    } else {
        if (!options_.allowMemoryMode)
            return n;
        const ChipConfig &chip = cost_->chip();
        double bw_needed = rate_needed
                         / std::max(w.aiMacsPerByte, kRateEps);
        s64 mem = static_cast<s64>(std::ceil(
            (bw_needed - dmain_share * chip.dMain())
            / chip.internalBwPerArray - kRateEps));
        mem = std::max<s64>(0, mem);
        if (mem > cost_->maxUsefulMemoryArrays(w))
            return n; // M saturates below the needed rate
        n.memoryArrays = mem;
    }
    n.feasible = true;
    return n;
}

bool
DualModeAllocator::tryTarget(const SegmentView &segment, Cycles t,
                             SegmentAllocation *out, LpWarmStart *warm) const
{
    if (out == nullptr)
        obs::count(obs::Met::kAllocProbes);
    obs::Span probeSpan(out == nullptr ? "alloc.probe" : "alloc.fill",
                        "allocator");
    probeSpan.arg("target", t);
    const s64 n_ops = static_cast<s64>(segment.ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;
    const s64 array_bytes = cost_->chip().arrayMemoryBytes();

    std::vector<double> shares =
        options_.pipelined
            ? CostModel::dmainShares(segment.ops)
            : std::vector<double>(segment.ops.size(), 1.0);

    std::vector<Needs> needs(static_cast<std::size_t>(n_ops));
    std::vector<s64> mem_in(static_cast<std::size_t>(n_ops), 0);
    std::vector<s64> mem_out(static_cast<std::size_t>(n_ops), 0);
    s64 total = 0;
    for (s64 i = 0; i < n_ops; ++i) {
        const OpWorkload &w = *segment.ops[static_cast<std::size_t>(i)];
        needs[static_cast<std::size_t>(i)] =
            needsForTarget(w, t, shares[static_cast<std::size_t>(i)]);
        if (!needs[static_cast<std::size_t>(i)].feasible)
            return false;
        total += needs[static_cast<std::size_t>(i)].computeArrays
               + needs[static_cast<std::size_t>(i)].memoryArrays;
    }

    // Boolean-only probes (the latency bisection passes out ==
    // nullptr) only need to know whether the packed segment fits
    // (Eq. 8); cheap reuse bounds usually decide that without the
    // exact maximisation below. Both bounds are conservative — the
    // greedy pool assignment is a feasible reuse (lower bound), the
    // per-edge cap sum ignores pool sharing (upper bound) — so a probe
    // answered here returns exactly what the exact solve would, and
    // inconclusive probes fall through to it. Plans are untouched: the
    // allocation-filling call always runs the exact solve.
    if (out == nullptr && !options_.referenceSearch) {
        if (total <= n_cim) {
            obs::count(obs::Met::kAllocProbeShortcuts);
            return true; // fits with zero reuse; reuse only helps
        }
        if (segment.edges.empty() || !options_.allowMemoryMode) {
            obs::count(obs::Met::kAllocProbeShortcuts);
            return false; // no reuse possible, and total > n_cim
        }
        s64 reuse_ub = 0;
        for (const SegmentView::Edge &e : segment.edges) {
            reuse_ub += std::min(
                {ceilDiv(e.bytes, array_bytes),
                 needs[static_cast<std::size_t>(e.from)].memoryArrays,
                 needs[static_cast<std::size_t>(e.to)].memoryArrays});
        }
        if (total - reuse_ub > n_cim) {
            obs::count(obs::Met::kAllocProbeShortcuts);
            return false;
        }
        s64 reuse_lb = 0;
        std::vector<s64> probe_pool(static_cast<std::size_t>(n_ops));
        for (s64 i = 0; i < n_ops; ++i) {
            probe_pool[static_cast<std::size_t>(i)] =
                needs[static_cast<std::size_t>(i)].memoryArrays;
        }
        for (const SegmentView::Edge &e : segment.edges) {
            s64 r = std::min({probe_pool[static_cast<std::size_t>(e.from)],
                              probe_pool[static_cast<std::size_t>(e.to)],
                              ceilDiv(e.bytes, array_bytes)});
            reuse_lb += r;
            probe_pool[static_cast<std::size_t>(e.from)] -= r;
            probe_pool[static_cast<std::size_t>(e.to)] -= r;
        }
        if (total - reuse_lb <= n_cim) {
            obs::count(obs::Met::kAllocProbeShortcuts);
            return true;
        }
        // Inconclusive: fall through to the exact reuse solve.
    }

    // Maximise Eq. 6 reuse so the packed segment fits (Eq. 8). Each
    // op's memory arrays split freely between input and output buffer
    // roles (Eq. 5: a given array plays exactly one role), so the
    // split variables join the MIP. Large segments fall back to a
    // greedy pool assignment (the instances the MIP certifies in the
    // tests are exactly the small ones).
    s64 reuse_total = 0;
    std::vector<s64> reuse_edge(segment.edges.size(), 0);
    bool need_split = true;
    if (!segment.edges.empty() && options_.allowMemoryMode) {
        if (static_cast<s64>(segment.edges.size()) + 2 * n_ops <= 40) {
            LinearModel mip;
            std::vector<VarId> in_vars, out_vars, edge_vars;
            for (s64 i = 0; i < n_ops; ++i) {
                double mem = static_cast<double>(
                    needs[static_cast<std::size_t>(i)].memoryArrays);
                in_vars.push_back(
                    mip.addVar("min", 0.0, mem, VarType::kInteger));
                out_vars.push_back(
                    mip.addVar("mout", 0.0, mem, VarType::kInteger));
                LinearExpr split;
                split.add(in_vars.back(), 1.0).add(out_vars.back(), 1.0);
                mip.addConstraint(split, Rel::kEq, mem);
            }
            for (const SegmentView::Edge &e : segment.edges) {
                double cap = static_cast<double>(
                    ceilDiv(e.bytes, array_bytes));
                edge_vars.push_back(
                    mip.addVar("r", 0.0, cap, VarType::kInteger));
            }
            for (s64 i = 0; i < n_ops; ++i) {
                LinearExpr out_sum, in_sum;
                bool has_out = false, has_in = false;
                for (std::size_t e = 0; e < segment.edges.size(); ++e) {
                    if (segment.edges[e].from == i) {
                        out_sum.add(edge_vars[e], 1.0);
                        has_out = true;
                    }
                    if (segment.edges[e].to == i) {
                        in_sum.add(edge_vars[e], 1.0);
                        has_in = true;
                    }
                }
                if (has_out) {
                    out_sum.add(out_vars[static_cast<std::size_t>(i)], -1.0);
                    mip.addConstraint(out_sum, Rel::kLe, 0.0);
                }
                if (has_in) {
                    in_sum.add(in_vars[static_cast<std::size_t>(i)], -1.0);
                    mip.addConstraint(in_sum, Rel::kLe, 0.0);
                }
            }
            LinearExpr objective;
            for (VarId v : edge_vars)
                objective.add(v, 1.0);
            mip.setObjective(objective, Sense::kMaximize);
            MipOptions mip_options;
            // Warm pivoting only on boolean probes: the filling solve
            // must replay the exact cold pivot path so the chosen
            // reuse splits stay bit-identical to the reference mode.
            mip_options.warmStart =
                (out == nullptr && !options_.referenceSearch) ? warm
                                                              : nullptr;
            // Parallel branch-and-bound likewise only on probes: it
            // preserves the optimal objective (all a probe consumes)
            // but not the solution values the filling solve emits.
            if (out == nullptr && !options_.referenceSearch) {
                mip_options.pool = pool_;
                mip_options.searchThreads = options_.searchThreads;
            }
            MipResult res = solveMip(mip, mip_options);
            cmswitch_assert(res.status == SolveStatus::kOptimal,
                            "reuse MIP must be feasible");
            reuse_total = static_cast<s64>(std::llround(res.objective));
            for (s64 i = 0; i < n_ops; ++i) {
                mem_in[static_cast<std::size_t>(i)] =
                    static_cast<s64>(std::llround(
                        res.values[static_cast<std::size_t>(in_vars
                            [static_cast<std::size_t>(i)])]));
                mem_out[static_cast<std::size_t>(i)] =
                    needs[static_cast<std::size_t>(i)].memoryArrays
                    - mem_in[static_cast<std::size_t>(i)];
            }
            for (std::size_t e = 0; e < segment.edges.size(); ++e) {
                reuse_edge[e] = static_cast<s64>(std::llround(
                    res.values[static_cast<std::size_t>(edge_vars[e])]));
            }
            need_split = false;
        } else {
            // Greedy pool variant for wide segments: each op exposes
            // its memory arrays as a shared in/out pool; edges claim
            // from both endpoint pools.
            std::vector<s64> pool(static_cast<std::size_t>(n_ops));
            for (s64 i = 0; i < n_ops; ++i) {
                pool[static_cast<std::size_t>(i)] =
                    needs[static_cast<std::size_t>(i)].memoryArrays;
            }
            for (std::size_t e = 0; e < segment.edges.size(); ++e) {
                const SegmentView::Edge &edge = segment.edges[e];
                s64 r = std::min({pool[static_cast<std::size_t>(edge.from)],
                                  pool[static_cast<std::size_t>(edge.to)],
                                  ceilDiv(edge.bytes, array_bytes)});
                reuse_edge[e] = r;
                reuse_total += r;
                pool[static_cast<std::size_t>(edge.from)] -= r;
                pool[static_cast<std::size_t>(edge.to)] -= r;
                mem_out[static_cast<std::size_t>(edge.from)] += r;
                mem_in[static_cast<std::size_t>(edge.to)] += r;
            }
            // Remaining pool arrays: split by byte ratio.
            for (s64 i = 0; i < n_ops; ++i) {
                s64 mi, mo;
                splitMemory(*segment.ops[static_cast<std::size_t>(i)],
                            pool[static_cast<std::size_t>(i)], &mi, &mo);
                mem_in[static_cast<std::size_t>(i)] += mi;
                mem_out[static_cast<std::size_t>(i)] += mo;
            }
            need_split = false;
        }
    }
    if (need_split) {
        for (s64 i = 0; i < n_ops; ++i) {
            splitMemory(*segment.ops[static_cast<std::size_t>(i)],
                        needs[static_cast<std::size_t>(i)].memoryArrays,
                        &mem_in[static_cast<std::size_t>(i)],
                        &mem_out[static_cast<std::size_t>(i)]);
        }
    }

    if (total - reuse_total > n_cim)
        return false;

    if (out) {
        out->allocs.clear();
        for (s64 i = 0; i < n_ops; ++i) {
            OpAllocation a;
            a.computeArrays = needs[static_cast<std::size_t>(i)].computeArrays;
            a.memInArrays = mem_in[static_cast<std::size_t>(i)];
            a.memOutArrays = mem_out[static_cast<std::size_t>(i)];
            out->allocs.push_back(a);
        }
        out->reusedArrays = reuse_total;
        out->plan.computeArrays = 0;
        out->plan.memoryArrays = 0;
        for (const OpAllocation &a : out->allocs) {
            out->plan.computeArrays += a.computeArrays;
            out->plan.memoryArrays += a.memoryArrays();
        }
        out->plan.memoryArrays -= reuse_total;
        Cycles worst = 0;
        for (s64 i = 0; i < n_ops; ++i) {
            Cycles l = cost_->opLatency(
                *segment.ops[static_cast<std::size_t>(i)],
                out->allocs[static_cast<std::size_t>(i)],
                shares[static_cast<std::size_t>(i)]);
            worst = std::max(worst, l);
        }
        out->intraLatency = worst;
    }
    return true;
}

SegmentAllocation
DualModeAllocator::allocate(const SegmentView &segment,
                            const AllocWarmHints *hints,
                            LpWarmStart *basis_out) const
{
    obs::ScopedPhase phase(obs::Hist::kPhaseAllocate, "alloc.allocate",
                           "allocator");
    phase.arg("ops", static_cast<s64>(segment.ops.size()));
    obs::count(obs::Met::kAllocRuns);
    SegmentAllocation result;
    if (segment.ops.empty())
        return result;

    s64 tiles_total = 0;
    for (const OpWorkload *w : segment.ops)
        tiles_total += w->weightTiles;
    if (tiles_total > cost_->chip().numSwitchArrays)
        return result; // cannot even hold one copy of the weights

    if (!options_.pipelined)
        return allocateSerial(segment);

    // Upper bound: minimal allocation (one weight copy, no memory).
    std::vector<double> shares = CostModel::dmainShares(segment.ops);
    Cycles ub = 0;
    for (std::size_t i = 0; i < segment.ops.size(); ++i) {
        OpAllocation minimal;
        minimal.computeArrays = segment.ops[i]->weightTiles;
        ub = std::max(ub, cost_->opLatency(*segment.ops[i], minimal,
                                           shares[i]));
    }
    cmswitch_assert(ub < kInfCycles, "minimal allocation must be finite");

    // Every bisection probe builds the same reuse MIP with different
    // bounds; one warm-start slot carries the basis across all of them.
    LpWarmStart warm;
    Cycles lo = 1, hi = ub;
    cmswitch_assert(tryTarget(segment, ub, nullptr, &warm),
                    "upper bound must be feasible");

    // Neighbor bracket hint: probe the neighbor segment's optimum (and
    // its left edge) before bisecting. A matching optimum answers the
    // whole search in two probes; a nearby one still collapses the
    // bracket. Feasibility is monotone in the target, so the loop below
    // converges to the same minimal feasible target either way — hints
    // change probe order, never the result. Reference mode stays cold.
    if (hints != nullptr && hints->target >= 1 && !options_.referenceSearch) {
        if (hints->basis != nullptr && hints->basis->rows > 0)
            warm = *hints->basis;
        Cycles guess = std::min(hints->target, ub);
        if (tryTarget(segment, guess, nullptr, &warm)) {
            hi = guess;
            if (guess > lo) {
                if (tryTarget(segment, guess - 1, nullptr, &warm))
                    hi = guess - 1;
                else
                    lo = guess;
            }
        } else {
            lo = guess + 1;
        }
    }

    // Speculative probe evaluation: the serial bisection visits a
    // target sequence fully determined by earlier probe outcomes. We
    // expand that outcome tree breadth-first from the current bracket
    // (following memoised branches where the answer is already known),
    // evaluate the next batch of unknown targets concurrently, and let
    // the unchanged serial loop below consume the memo — so the
    // bracket walk, the final target, and the cold-pivot filling solve
    // are identical to the serial search for any thread count. Probe
    // answers are warm-start-independent booleans, which is the same
    // invariant the warm-vs-reference differential tests already pin.
    const bool speculate = pool_ != nullptr && options_.searchThreads > 1
                           && !options_.referenceSearch
                           && !TaskPool::insideTask();
    std::map<Cycles, bool> memo;
    auto speculateBatch = [&](Cycles cur_lo, Cycles cur_hi) {
        std::vector<Cycles> targets;
        std::deque<std::pair<Cycles, Cycles>> brackets{{cur_lo, cur_hi}};
        while (!brackets.empty()
               && static_cast<s64>(targets.size())
                      < options_.searchThreads) {
            auto [l, h] = brackets.front();
            brackets.pop_front();
            if (l >= h)
                continue;
            Cycles mid = l + (h - l) / 2;
            auto known = memo.find(mid);
            if (known == memo.end()) {
                if (std::find(targets.begin(), targets.end(), mid)
                    == targets.end())
                    targets.push_back(mid);
                brackets.push_back({l, mid});
                brackets.push_back({mid + 1, h});
            } else if (known->second) {
                brackets.push_back({l, mid});
            } else {
                brackets.push_back({mid + 1, h});
            }
        }
        if (targets.empty())
            return;
        std::vector<char> answers(targets.size(), 0);
        pool_->parallelFor(
            static_cast<s64>(targets.size()), [&](s64 idx) {
                LpWarmStart local_warm; // cold per probe; never shared
                answers[static_cast<std::size_t>(idx)] =
                    tryTarget(segment,
                              targets[static_cast<std::size_t>(idx)],
                              nullptr, &local_warm)
                        ? 1
                        : 0;
            });
        for (std::size_t i = 0; i < targets.size(); ++i)
            memo[targets[i]] = answers[i] != 0;
    };

    while (lo < hi) {
        obs::count(obs::Met::kAllocBisectionIters);
        Cycles mid = lo + (hi - lo) / 2;
        bool fits;
        if (speculate) {
            auto it = memo.find(mid);
            if (it == memo.end()) {
                speculateBatch(lo, hi);
                it = memo.find(mid);
            }
            fits = it != memo.end()
                       ? it->second
                       : tryTarget(segment, mid, nullptr, &warm);
        } else {
            fits = tryTarget(segment, mid, nullptr, &warm);
        }
        if (fits)
            hi = mid;
        else
            lo = mid + 1;
    }
    bool ok = tryTarget(segment, hi, &result, &warm);
    cmswitch_assert(ok, "bisection result must be feasible");
    // The filling solve never updates the warm slot (cold pivot by
    // design), so this is the last *probe* basis — the right seed for a
    // neighbor compile's probes of a similar segment.
    if (basis_out != nullptr)
        *basis_out = warm;
    return result;
}

SegmentAllocation
DualModeAllocator::allocateSerial(const SegmentView &segment) const
{
    const s64 n_ops = static_cast<s64>(segment.ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;

    SegmentAllocation result;
    result.allocs.assign(static_cast<std::size_t>(n_ops), OpAllocation{});
    s64 used = 0;
    for (s64 i = 0; i < n_ops; ++i) {
        result.allocs[static_cast<std::size_t>(i)].computeArrays =
            segment.ops[static_cast<std::size_t>(i)]->weightTiles;
        used += segment.ops[static_cast<std::size_t>(i)]->weightTiles;
    }
    if (used > n_cim)
        return SegmentAllocation{};

    auto latency_of = [&](s64 i) {
        return cost_->opLatency(*segment.ops[static_cast<std::size_t>(i)],
                                result.allocs[static_cast<std::size_t>(i)]);
    };

    // Greedy: repeatedly spend arrays where they cut the most serial
    // latency (duplication bundles or +1 memory array).
    while (used < n_cim) {
        s64 best_op = -1;
        bool best_is_mem = false;
        double best_gain_per_array = 0.0;
        for (s64 i = 0; i < n_ops; ++i) {
            const OpWorkload &w = *segment.ops[static_cast<std::size_t>(i)];
            OpAllocation &a = result.allocs[static_cast<std::size_t>(i)];
            Cycles cur = latency_of(i);
            if (options_.allowDuplication
                && a.computeArrays + w.weightTiles <= n_cim - used
                                                      + a.computeArrays) {
                OpAllocation trial = a;
                trial.computeArrays += w.weightTiles;
                if (used + w.weightTiles <= n_cim) {
                    Cycles next = cost_->opLatency(w, trial);
                    double gain = static_cast<double>(cur - next)
                                / static_cast<double>(w.weightTiles);
                    if (gain > best_gain_per_array) {
                        best_gain_per_array = gain;
                        best_op = i;
                        best_is_mem = false;
                    }
                }
            }
            if (options_.allowMemoryMode && used + 1 <= n_cim) {
                OpAllocation trial = a;
                trial.memInArrays += 1;
                Cycles next = cost_->opLatency(w, trial);
                double gain = static_cast<double>(cur - next);
                if (gain > best_gain_per_array) {
                    best_gain_per_array = gain;
                    best_op = i;
                    best_is_mem = true;
                }
            }
        }
        if (best_op < 0 || best_gain_per_array <= 0.0)
            break;
        if (best_is_mem) {
            result.allocs[static_cast<std::size_t>(best_op)].memInArrays += 1;
            used += 1;
        } else {
            s64 tiles =
                segment.ops[static_cast<std::size_t>(best_op)]->weightTiles;
            result.allocs[static_cast<std::size_t>(best_op)].computeArrays +=
                tiles;
            used += tiles;
        }
    }

    Cycles total = 0;
    result.plan = ModePlan{};
    for (s64 i = 0; i < n_ops; ++i) {
        total += latency_of(i);
        result.plan.computeArrays +=
            result.allocs[static_cast<std::size_t>(i)].computeArrays;
        result.plan.memoryArrays +=
            result.allocs[static_cast<std::size_t>(i)].memoryArrays();
    }
    result.intraLatency = total;
    return result;
}

SegmentAllocation
DualModeAllocator::allocateExhaustive(const SegmentView &segment) const
{
    const s64 n_ops = static_cast<s64>(segment.ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;
    cmswitch_assert(n_ops <= 3 && n_cim <= 16,
                    "exhaustive search is for tiny test segments only");

    SegmentAllocation best;
    std::vector<OpAllocation> current(static_cast<std::size_t>(n_ops));

    // Greedy max reuse for a fixed allocation (optimal on chains).
    auto reuse_of = [&]() {
        s64 array_bytes = cost_->chip().arrayMemoryBytes();
        std::vector<s64> out_left(static_cast<std::size_t>(n_ops));
        std::vector<s64> in_left(static_cast<std::size_t>(n_ops));
        for (s64 i = 0; i < n_ops; ++i) {
            out_left[static_cast<std::size_t>(i)] =
                current[static_cast<std::size_t>(i)].memOutArrays;
            in_left[static_cast<std::size_t>(i)] =
                current[static_cast<std::size_t>(i)].memInArrays;
        }
        s64 total = 0;
        for (const SegmentView::Edge &e : segment.edges) {
            s64 r = std::min({out_left[static_cast<std::size_t>(e.from)],
                              in_left[static_cast<std::size_t>(e.to)],
                              ceilDiv(e.bytes, array_bytes)});
            total += r;
            out_left[static_cast<std::size_t>(e.from)] -= r;
            in_left[static_cast<std::size_t>(e.to)] -= r;
        }
        return total;
    };

    std::vector<double> shares = CostModel::dmainShares(segment.ops);

    auto consider = [&]() {
        s64 used = 0;
        for (s64 i = 0; i < n_ops; ++i)
            used += current[static_cast<std::size_t>(i)].total();
        s64 reuse = options_.allowMemoryMode ? reuse_of() : 0;
        if (used - reuse > n_cim)
            return;
        Cycles worst = 0;
        for (s64 i = 0; i < n_ops; ++i) {
            worst = std::max(
                worst,
                cost_->opLatency(*segment.ops[static_cast<std::size_t>(i)],
                                 current[static_cast<std::size_t>(i)],
                                 shares[static_cast<std::size_t>(i)]));
        }
        bool better = worst < best.intraLatency;
        if (better) {
            best.allocs = current;
            best.intraLatency = worst;
            best.reusedArrays = reuse;
            best.plan = ModePlan{};
            for (s64 i = 0; i < n_ops; ++i) {
                best.plan.computeArrays +=
                    current[static_cast<std::size_t>(i)].computeArrays;
                best.plan.memoryArrays +=
                    current[static_cast<std::size_t>(i)].memoryArrays();
            }
            best.plan.memoryArrays -= reuse;
        }
    };

    // Recursive enumeration over (dup multiple, memIn, memOut) per op.
    auto recurse = [&](auto &&self, s64 i) -> void {
        if (i == n_ops) {
            consider();
            return;
        }
        const OpWorkload &w = *segment.ops[static_cast<std::size_t>(i)];
        s64 dup_cap = options_.allowDuplication
                    ? std::min(std::max<s64>(1, w.movingRows),
                               n_cim / std::max<s64>(1, w.weightTiles))
                    : 1;
        s64 mem_cap = options_.allowMemoryMode
                    ? std::min<s64>(n_cim, cost_->maxUsefulMemoryArrays(w))
                    : 0;
        for (s64 dup = 1; dup <= std::max<s64>(1, dup_cap); ++dup) {
            for (s64 mi = 0; mi <= mem_cap; ++mi) {
                for (s64 mo = 0; mi + mo <= mem_cap; ++mo) {
                    current[static_cast<std::size_t>(i)] =
                        OpAllocation{dup * w.weightTiles, mi, mo};
                    self(self, i + 1);
                }
            }
        }
    };
    recurse(recurse, 0);
    return best;
}

} // namespace cmswitch
