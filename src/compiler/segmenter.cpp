#include "compiler/segmenter.hpp"

#include <algorithm>
#include <charconv>
#include <limits>
#include <map>
#include <utility>

#include "obs/obs.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

/** Hard cap on ops per segment, a safety net for the DP width. */
constexpr s64 kMaxSegmentOps = 64;

void
appendInt(std::string &out, s64 value)
{
    char buf[24];
    auto res = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, res.ptr);
}

/** Signature fragment of one op's workload (edges are appended per
 *  range, with range-relative indices). */
std::string
opSignature(const OpWorkload &w)
{
    std::string out;
    out.reserve(64);
    appendInt(out, w.weightTiles);
    out.push_back(':');
    appendInt(out, w.macs);
    out.push_back(':');
    appendInt(out, w.weightBytes);
    out.push_back(':');
    appendInt(out, w.inputBytes);
    out.push_back(':');
    appendInt(out, w.outputBytes);
    out.push_back(':');
    appendInt(out, w.vectorElems);
    out.push_back(':');
    appendInt(out, w.movingRows);
    out.push_back(':');
    out.push_back(w.dynamicWeights ? '1' : '0');
    out.push_back(':');
    out += formatDouble(w.utilization, 5);
    out.push_back(';');
    return out;
}

} // namespace

namespace {

/** referenceSearch covers the whole search stack: the DP *and* the
 *  allocator's probe shortcuts revert together. */
AllocatorOptions
allocatorOptionsFor(const SegmenterOptions &options)
{
    AllocatorOptions alloc = options.alloc;
    alloc.referenceSearch = alloc.referenceSearch || options.referenceSearch;
    alloc.searchThreads = options.searchThreads;
    return alloc;
}

} // namespace

Segmenter::Segmenter(const CostModel &cost, SegmenterOptions options)
    : cost_(&cost), options_(options),
      pool_(options.searchThreads > 1 && !options.referenceSearch
                ? std::make_unique<TaskPool>(options.searchThreads)
                : nullptr),
      allocator_(cost, allocatorOptionsFor(options), pool_.get())
{
}

const SegmentAllocation &
Segmenter::allocateCachedRef(const std::vector<ScheduledOp> &ops, s64 lo,
                             s64 hi)
{
    // Fast path: this exact range was priced before in this run.
    s64 range_key = lo * (static_cast<s64>(ops.size()) + 1) + hi;
    if (const SegmentAllocation **found = rangeCache_.find(range_key)) {
        ++cacheHits_;
        return **found;
    }

    // Warm positional path: the range lies inside the structurally
    // matched prefix/suffix and the neighbor priced the same window, so
    // its allocation is byte-identical — without building either
    // range signature (the dominant cost of a cold search).
    if (const SegmentAllocation *warm =
            warmPositionalLookup(lo, hi, static_cast<s64>(ops.size()))) {
        ++cacheHits_;
        cacheRange(range_key, warm);
        return *warm;
    }

    std::string key = rangeSignature(ops, lo, hi);

    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++cacheHits_;
        if (!importedPtrs_.empty() && importedPtrs_.count(&it->second) > 0)
            ++warmStats_.importedSigHits;
    } else {
        ++cacheMisses_;
        AllocWarmHints hints;
        const AllocWarmHints *hints_ptr = nullptr;
        if (warmHintFor(lo, hi, &hints)) {
            hints_ptr = &hints;
            ++warmStats_.bracketHints;
        }
        LpWarmStart basis;
        it = cache_
                 .emplace(std::move(key),
                          allocator_.allocate(makeSegmentView(ops, lo, hi),
                                              hints_ptr,
                                              retain_ ? &basis : nullptr))
                 .first;
        if (retain_)
            basisOf_.emplace(&it->second, std::move(basis));
    }
    cacheRange(range_key, &it->second);
    return it->second;
}

std::string
Segmenter::rangeSignature(const std::vector<ScheduledOp> &ops, s64 lo,
                          s64 hi) const
{
    // Signature of the segment's workloads + intra edges: memoised
    // per-op fragments plus range-relative dependency edges.
    std::string key;
    key.reserve(static_cast<std::size_t>(hi - lo) * 72);
    for (s64 i = lo; i < hi; ++i) {
        const ScheduledOp &op = ops[static_cast<std::size_t>(i)];
        key += opSig_[static_cast<std::size_t>(i)];
        for (std::size_t e = 0; e < op.preds.size(); ++e) {
            s64 p = op.preds[e];
            if (p >= lo && p < hi) {
                appendInt(key, p - lo);
                key.push_back('>');
                appendInt(key, i - lo);
                key.push_back('=');
                appendInt(key, op.reuseBytes[e]);
                key.push_back(',');
            }
        }
        key.push_back('|');
    }
    return key;
}

SegmentAllocation
Segmenter::allocateCached(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi)
{
    return allocateCachedRef(ops, lo, hi);
}

const SegmentAllocation &
Segmenter::allocationForRange(const std::vector<ScheduledOp> &ops, s64 lo,
                              s64 hi)
{
    if (cachedOps_ != ops.data() || opSig_.size() != ops.size()) {
        // Probed before (or with a different list than) the last run():
        // the range cache is positional, so rebuild the per-run
        // structures for this list instead of serving stale entries.
        rangeCache_.clear();
        rangeLog_.clear(); // keys are packed with this list's size
        // The warm alignment belongs to run()'s list only.
        warmNeighborRanges_.clear();
        matchShift_.clear();
        runId_.clear();
        matchAbsMax_.clear();
        selfLag_.clear();
        selfRunId_.clear();
        selfAbsMax_.clear();
        opSig_.clear();
        opSig_.reserve(ops.size());
        for (const ScheduledOp &op : ops)
            opSig_.push_back(opSignature(op.work));
        cachedOps_ = ops.data();
    }
    return allocateCachedRef(ops, lo, hi);
}

s64
Segmenter::liveOutBytes(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi,
                        s64 boundary) const
{
    // Store-side traffic: each producer whose data is consumed at or
    // beyond the boundary spills its tensor once (widest edge), plus
    // any network outputs. lastConsumer_/maxEdgeBytes_ are prefix
    // structures built by run().
    s64 total = 0;
    for (s64 i = lo; i < hi; ++i) {
        total += ops[static_cast<std::size_t>(i)].liveOutBytes; // net outputs
        if (lastConsumer_[static_cast<std::size_t>(i)] >= boundary)
            total += maxEdgeBytes_[static_cast<std::size_t>(i)];
    }
    return total;
}

s64
Segmenter::inboundBytes(const std::vector<ScheduledOp> &ops, s64 lo,
                        s64 hi) const
{
    s64 total = 0;
    for (s64 i = lo; i < hi; ++i) {
        const ScheduledOp &op = ops[static_cast<std::size_t>(i)];
        for (std::size_t e = 0; e < op.preds.size(); ++e) {
            if (op.preds[e] < lo)
                total += op.reuseBytes[e];
        }
    }
    return total;
}

void
Segmenter::interCost(const std::vector<ScheduledOp> &ops,
                     const SegmentAllocation &prev, s64 prev_lo, s64 lo,
                     s64 hi, const SegmentAllocation &cur, s64 phys_compute,
                     SegmentDecision *decision) const
{
    const ChipConfig &chip = cost_->chip();
    const Deha &deha = cost_->deha();

    // Step 2 (Eq. 1): mode switching from the current physical state.
    SwitchDelta delta = deha.switchesBetween(phys_compute, cur.plan);
    decision->interSwitch = deha.switchLatency(delta);

    // Step 3 (Eq. 2): (re)programming the segment's static weights.
    std::vector<OpWorkload> ws;
    for (s64 i = lo; i < hi; ++i)
        ws.push_back(ops[static_cast<std::size_t>(i)].work);
    decision->interRewrite = cost_->weightRewriteLatency(ws, cur.allocs);

    // Step 1: write-back + reload around the boundary.
    s64 store_bytes = 0;
    s64 carried = 0;
    if (prev_lo >= 0) {
        s64 direct = 0;
        for (s64 i = lo; i < hi; ++i) {
            const ScheduledOp &op = ops[static_cast<std::size_t>(i)];
            for (std::size_t e = 0; e < op.preds.size(); ++e) {
                if (op.preds[e] >= prev_lo && op.preds[e] < lo)
                    direct += op.reuseBytes[e];
            }
        }
        s64 carry_cap = chip.bufferBytes;
        if (options_.alloc.allowMemoryMode) {
            carry_cap += std::min(prev.plan.memoryArrays,
                                  cur.plan.memoryArrays)
                       * chip.arrayMemoryBytes();
        }
        carried = options_.livenessAwareWriteback ? std::min(direct, carry_cap)
                                                  : 0;
        if (options_.livenessAwareWriteback) {
            store_bytes = liveOutBytes(ops, prev_lo, lo, lo) - carried;
        } else {
            for (s64 i = prev_lo; i < lo; ++i)
                store_bytes += ops[static_cast<std::size_t>(i)].work.outputBytes;
        }
        store_bytes = std::max<s64>(0, store_bytes);
    }
    s64 load_bytes = std::max<s64>(0, inboundBytes(ops, lo, hi) - carried);
    decision->storeBytes = store_bytes;
    decision->loadBytes = load_bytes;
    decision->carriedBytes = carried;
    decision->interWriteback = cost_->mainMemoryTransfer(store_bytes)
                             + cost_->mainMemoryTransfer(load_bytes);
}

ScheduleResult
Segmenter::run(const std::vector<ScheduledOp> &ops)
{
    if (ops.empty())
        return ScheduleResult{};
    cmswitch_assert(static_cast<s64>(ops.size()) <= kMaxOps,
                    "flattened network too large for range-key packing");

    rangeCache_.clear();
    rangeLog_.clear();
    cachedOps_ = ops.data();
    lastConsumer_.assign(ops.size(), -1);
    maxEdgeBytes_.assign(ops.size(), 0);
    for (std::size_t c = 0; c < ops.size(); ++c) {
        for (std::size_t e = 0; e < ops[c].preds.size(); ++e) {
            auto p = static_cast<std::size_t>(ops[c].preds[e]);
            lastConsumer_[p] = std::max(lastConsumer_[p],
                                        static_cast<s64>(c));
            maxEdgeBytes_[p] = std::max(maxEdgeBytes_[p],
                                        ops[c].reuseBytes[e]);
        }
    }
    prefixOutput_.assign(ops.size() + 1, 0);
    for (std::size_t i = 0; i < ops.size(); ++i)
        prefixOutput_[i + 1] = prefixOutput_[i] + ops[i].work.outputBytes;
    opSig_.clear();
    opSig_.reserve(ops.size());
    for (const ScheduledOp &op : ops)
        opSig_.push_back(opSignature(op.work));

    // Incremental compilation: align this op list against the neighbor
    // state and seed every warm lever. Reference searches opt out
    // wholesale — they exist to stay byte-for-byte the original.
    warmStats_ = WarmReuseStats{};
    dpPrefix_ = 0;
    warmDelta_ = 0;
    warmNeighborRanges_.clear();
    matchShift_.clear();
    runId_.clear();
    matchAbsMax_.clear();
    selfLag_.clear();
    selfRunId_.clear();
    selfAbsMax_.clear();
    curMeta_.clear();
    if ((warmIn_ != nullptr || retain_) && !options_.referenceSearch) {
        const s64 n = static_cast<s64>(ops.size());
        curMeta_.reserve(ops.size());
        // Rewrite grouping as a graph-local dense id (first-appearance
        // order): raw OpIds are allocator-global, so they never compare
        // equal across independently built graphs.
        std::unordered_map<s64, s64> group_of;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            WarmOpMeta m;
            m.sig = opSig_[i];
            m.preds = ops[i].preds;
            m.reuseBytes = ops[i].reuseBytes;
            m.groupId = group_of
                            .emplace(static_cast<s64>(ops[i].work.opId),
                                     static_cast<s64>(group_of.size()))
                            .first->second;
            m.lastConsumer = lastConsumer_[i];
            m.maxEdgeBytes = maxEdgeBytes_[i];
            m.liveOutBytes = ops[i].liveOutBytes;
            curMeta_.push_back(std::move(m));
        }
        if (warmIn_ != nullptr && !warmIn_->empty()) {
            const CompilerWarmState &nb = *warmIn_;
            warmDelta_ = n - nb.numOps();
            // Block alignment: graph edits are local, so most positions
            // match a neighbor op under some per-block index shift.
            std::vector<WarmMatch> match = warmAlign(curMeta_, nb.ops);
            matchShift_.assign(ops.size(), kNoShift);
            runId_.assign(ops.size(), -1);
            matchAbsMax_.assign(ops.size(), -1);
            s64 run = -1;
            bool in_run = false;
            for (s64 i = 0; i < n; ++i) {
                if (match[static_cast<std::size_t>(i)].index < 0) {
                    in_run = false;
                    continue;
                }
                s64 shift = i - match[static_cast<std::size_t>(i)].index;
                if (!in_run
                    || shift != matchShift_[static_cast<std::size_t>(i - 1)])
                    ++run;
                in_run = true;
                matchShift_[static_cast<std::size_t>(i)] = shift;
                runId_[static_cast<std::size_t>(i)] = run;
                matchAbsMax_[static_cast<std::size_t>(i)] =
                    match[static_cast<std::size_t>(i)].absMax;
            }
            // Self-alignment: lag ops onto the graph's own dominant
            // structural period. Inside a changed window the neighbor
            // has nothing to offer, but an earlier layer of *this*
            // graph usually does — ranges at a constant lag have equal
            // signatures by the same argument as the neighbor runs, and
            // the lagged range is already in rangeCache_ by the time
            // the DP reaches the window (boundaries ascend). Period
            // detection must be global: local nearest-match lags latch
            // onto short sub-op periodicity and fragment the runs.
            selfLag_.assign(ops.size(), kNoShift);
            selfRunId_.assign(ops.size(), -1);
            selfAbsMax_.assign(ops.size(), -1);
            {
                std::vector<u64> h(ops.size());
                std::unordered_map<u64, std::vector<s64>> at;
                at.reserve(ops.size());
                for (s64 i = 0; i < n; ++i) {
                    h[static_cast<std::size_t>(i)] =
                        fnv1a64(curMeta_[static_cast<std::size_t>(i)].sig);
                    at[h[static_cast<std::size_t>(i)]].push_back(i);
                }
                // Rare signatures (a handful of occurrences: the once-
                // per-layer ops) vote for their consecutive-occurrence
                // distances; frequent ones (sliced sub-ops) would vote
                // for their intra-block stride instead.
                std::unordered_map<s64, s64> votes;
                for (const auto &[hash, occ] : at) {
                    if (occ.size() < 2 || occ.size() > 64)
                        continue;
                    for (std::size_t t = 1; t < occ.size(); ++t)
                        ++votes[occ[t] - occ[t - 1]];
                }
                std::vector<std::pair<s64, s64>> top; // (votes, lag)
                top.reserve(votes.size());
                for (const auto &[lag, count] : votes)
                    top.emplace_back(count, lag);
                std::sort(top.begin(), top.end(),
                          [](const auto &x, const auto &y) {
                              return x.first != y.first
                                         ? x.first > y.first
                                         : x.second < y.second;
                          });
                if (top.size() > 4)
                    top.resize(4);
                // Full verification picks the candidate that actually
                // matches the most positions (ties: smallest lag, which
                // is the fundamental period rather than a multiple).
                s64 best_lag = 0;
                s64 best_matched = 0;
                s64 abs_scratch = -1;
                for (const auto &[count, lag] : top) {
                    if (lag <= 0)
                        continue;
                    s64 matched = 0;
                    for (s64 i = lag; i < n; ++i) {
                        const auto ui = static_cast<std::size_t>(i);
                        const auto uj = static_cast<std::size_t>(i - lag);
                        if (h[ui] == h[uj]
                            && curMeta_[ui].relaxedEqShifted(
                                curMeta_[uj], lag, &abs_scratch))
                            ++matched;
                    }
                    if (matched > best_matched) {
                        best_matched = matched;
                        best_lag = lag;
                    }
                }
                if (best_lag > 0) {
                    s64 self_run = -1;
                    bool in_self_run = false;
                    for (s64 i = best_lag; i < n; ++i) {
                        const auto ui = static_cast<std::size_t>(i);
                        const auto uj = static_cast<std::size_t>(
                            i - best_lag);
                        if (h[ui] == h[uj]
                            && curMeta_[ui].relaxedEqShifted(
                                curMeta_[uj], best_lag, &abs_scratch)) {
                            if (!in_self_run)
                                ++self_run;
                            in_self_run = true;
                            selfLag_[ui] = best_lag;
                            selfRunId_[ui] = self_run;
                            selfAbsMax_[ui] = abs_scratch;
                        } else {
                            in_self_run = false;
                        }
                    }
                }
            }
            if (options_.useDp
                && nb.dpRows.size()
                       == static_cast<std::size_t>(nb.numOps()) + 1)
                dpPrefix_ = warmDpSafePrefix(curMeta_, nb.ops);
            for (std::size_t a = 0; a < nb.sigs.size(); ++a) {
                auto [slot, inserted] = cache_.emplace(nb.sigs[a],
                                                       nb.allocs[a]);
                if (inserted) {
                    ++warmStats_.sigImports;
                    importedPtrs_.insert(&slot->second);
                    if (nb.bases[a].rows > 0)
                        basisOf_.emplace(&slot->second, nb.bases[a]);
                }
            }
            warmNeighborRanges_.reserve(nb.ranges.size());
            for (const WarmRangeBinding &b : nb.ranges)
                warmNeighborRanges_.emplace(
                    b.lo * (nb.numOps() + 1) + b.hi, b.allocIndex);
        }
    }

    obs::ScopedPhase phase(obs::Hist::kPhaseSegment, "segmenter.run",
                           "segmenter");
    phase.arg("ops", static_cast<s64>(ops.size()));
    const s64 hitsBefore = cacheHits_;
    const s64 missesBefore = cacheMisses_;
    ScheduleResult result;
    if (!options_.useDp)
        result = runGreedy(ops);
    else
        result = options_.referenceSearch ? runDpReference(ops)
                                          : runDp(ops);
    obs::count(obs::Met::kDpSigCacheHits, cacheHits_ - hitsBefore);
    obs::count(obs::Met::kDpSigCacheMisses, cacheMisses_ - missesBefore);
    return result;
}

ScheduleResult
Segmenter::runGreedy(const std::vector<ScheduledOp> &ops)
{
    const s64 n = static_cast<s64>(ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;

    // Greedy segmentation: extend the open segment while doing so is
    // locally profitable — the joint segment must not cost more than
    // cutting here (intra + Eq. 2 rewrite + boundary traffic). This is
    // the one-pass scheduling the fixed-mode baseline stacks perform;
    // only the DP (Alg. 1) explores alternative cut points globally.
    auto segment_cost = [&](s64 lo, s64 hi) -> Cycles {
        const SegmentAllocation &a = allocateCachedRef(ops, lo, hi);
        if (!a.feasible())
            return kInfCycles;
        std::vector<OpWorkload> ws;
        std::vector<OpAllocation> as;
        for (s64 i = lo; i < hi; ++i) {
            ws.push_back(ops[static_cast<std::size_t>(i)].work);
            as.push_back(a.allocs[static_cast<std::size_t>(i - lo)]);
        }
        return a.intraLatency + cost_->weightRewriteLatency(ws, as);
    };

    std::vector<std::pair<s64, s64>> ranges;
    s64 lo = 0;
    while (lo < n) {
        s64 hi = lo + 1;
        s64 tiles = ops[static_cast<std::size_t>(lo)].work.weightTiles;
        cmswitch_assert(tiles <= n_cim, "operator ",
                        ops[static_cast<std::size_t>(lo)].work.name,
                        " does not fit the chip even alone");
        while (hi < n && hi - lo < kMaxSegmentOps) {
            s64 t = ops[static_cast<std::size_t>(hi)].work.weightTiles;
            if (tiles + t > n_cim)
                break;
            Cycles joined = segment_cost(lo, hi + 1);
            if (joined >= kInfCycles)
                break;
            Cycles boundary =
                cost_->mainMemoryTransfer(liveOutBytes(ops, lo, hi, hi))
                + cost_->mainMemoryTransfer(inboundBytes(ops, hi, hi + 1));
            Cycles separate = segment_cost(lo, hi) + segment_cost(hi, hi + 1)
                            + boundary;
            if (joined > separate)
                break;
            tiles += t;
            ++hi;
        }
        ranges.emplace_back(lo, hi);
        lo = hi;
    }
    return finalize(ops, std::move(ranges));
}

std::vector<s64>
Segmenter::minStarts(const std::vector<ScheduledOp> &ops) const
{
    const s64 n = static_cast<s64>(ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;

    // Feasible segment starts for each boundary i: [minStart[i], i).
    std::vector<s64> min_start(static_cast<std::size_t>(n) + 1, 0);
    s64 tiles = 0;
    s64 k = 0;
    for (s64 i = 0; i < n; ++i) {
        tiles += ops[static_cast<std::size_t>(i)].work.weightTiles;
        while (tiles > n_cim || i - k + 1 > kMaxSegmentOps) {
            tiles -= ops[static_cast<std::size_t>(k)].work.weightTiles;
            ++k;
        }
        cmswitch_assert(k <= i, "operator ",
                        ops[static_cast<std::size_t>(i)].work.name,
                        " does not fit the chip even alone");
        min_start[static_cast<std::size_t>(i) + 1] = k;
    }
    return min_start;
}

ScheduleResult
Segmenter::runDp(const std::vector<ScheduledOp> &ops)
{
    const s64 n = static_cast<s64>(ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;
    const ChipConfig &chip = cost_->chip();
    const Deha &deha = cost_->deha();
    const s64 array_bytes = chip.arrayMemoryBytes();
    const bool liveness = options_.livenessAwareWriteback;
    const bool memory_mode = options_.alloc.allowMemoryMode;

    std::vector<s64> min_start = minStarts(ops);

    // One DP state per (boundary i, segment start k): best prefix cost
    // plus everything a *successor* transition needs from this state —
    // the memory-array count of [k, i) (physical-mode handover) and its
    // live-out bytes at boundary i (write-back pricing). Carrying these
    // in the state is what lets the inner scan below run without
    // touching segment allocations at all. States are appended in k
    // order, preserving the reference search's ascending-key iteration
    // (and therefore its exact tie-breaking).
    struct FastState
    {
        s64 start = 0;
        Cycles cost = kInfCycles;
        s64 prevStart = -1;
        s64 memArrays = 0; ///< memory arrays of segment [start, boundary)
        s64 outBytes = 0;  ///< liveOutBytes(start, boundary, boundary)
    };
    std::vector<std::vector<FastState>> dp(static_cast<std::size_t>(n) + 1);

    // Warm import: every DP row up to the fullEq-safe prefix is, by the
    // warm_state.hpp soundness argument, exactly what this search would
    // recompute — take the neighbor's rows verbatim and start the
    // boundary loop after them.
    s64 first_boundary = 1;
    if (dpPrefix_ > 0 && warmIn_ != nullptr) {
        for (s64 b = 1; b <= dpPrefix_; ++b) {
            const auto &row = warmIn_->dpRows[static_cast<std::size_t>(b)];
            auto &dst = dp[static_cast<std::size_t>(b)];
            dst.reserve(row.size());
            for (const WarmDpState &st : row)
                dst.push_back(FastState{st.start, st.cost, st.prevStart,
                                        st.memArrays, st.outBytes});
        }
        warmStats_.dpRowsReused = dpPrefix_;
        first_boundary = dpPrefix_ + 1;
    }

    // Per-candidate evaluation of segment [k, i): the one body both
    // the serial loop and the sharded path run, so their costs agree
    // by construction. Reads only immutable per-run structures and
    // earlier DP boundaries; all scratch is caller-provided.
    auto evalCandidate = [&](s64 k, s64 i, const SegmentAllocation &cur,
                             std::vector<const OpWorkload *> &ws_view,
                             std::vector<std::pair<s64, s64>> &crossing,
                             std::vector<s64> &crossing_suffix,
                             Cycles *best_cost_out, s64 *best_prev_out) {
        // Hoisted predecessor-invariants of segment [k, i): Eq. 2
        // rewrite, inbound bytes, allocation aggregates. The
        // reference search recomputes each of these per
        // predecessor state.
        ws_view.clear();
        for (s64 t = k; t < i; ++t)
            ws_view.push_back(&ops[static_cast<std::size_t>(t)].work);
        const Cycles rewrite =
            cost_->weightRewriteLatency(ws_view, cur.allocs);
        const s64 inbound = inboundBytes(ops, k, i);
        const s64 cur_mem = cur.plan.memoryArrays;
        const Cycles intra = cur.intraLatency;

        Cycles best_cost = kInfCycles;
        s64 best_prev = -1;
        if (k == 0) {
            // First segment: switches from the all-compute boot
            // state, initial weight load, no predecessor data.
            SwitchDelta delta = deha.switchesBetween(n_cim, cur.plan);
            best_cost = intra + deha.switchLatency(delta) + rewrite
                      + cost_->mainMemoryTransfer(
                            std::max<s64>(0, inbound));
            best_prev = -1;
        } else if (!dp[static_cast<std::size_t>(k)].empty()) {
            // Dependency edges crossing into [k, i) from before k,
            // sorted by producer with suffix byte sums: the bytes a
            // predecessor segment [j, k) hands over directly is the
            // suffix at its start j — an O(log E) probe instead of
            // the reference's full range walk per predecessor.
            crossing.clear();
            for (s64 t = k; t < i; ++t) {
                const ScheduledOp &op = ops[static_cast<std::size_t>(t)];
                for (std::size_t e = 0; e < op.preds.size(); ++e) {
                    if (op.preds[e] < k)
                        crossing.emplace_back(op.preds[e],
                                              op.reuseBytes[e]);
                }
            }
            std::sort(crossing.begin(), crossing.end());
            crossing_suffix.assign(crossing.size() + 1, 0);
            for (std::size_t c = crossing.size(); c-- > 0;)
                crossing_suffix[c] =
                    crossing_suffix[c + 1] + crossing[c].second;

            for (const FastState &st : dp[static_cast<std::size_t>(k)]) {
                auto from = std::lower_bound(
                    crossing.begin(), crossing.end(),
                    std::make_pair(st.start,
                                   std::numeric_limits<s64>::min()));
                s64 direct = crossing_suffix[static_cast<std::size_t>(
                    from - crossing.begin())];
                s64 carry_cap = chip.bufferBytes;
                if (memory_mode) {
                    carry_cap += std::min(st.memArrays, cur_mem)
                               * array_bytes;
                }
                s64 carried = liveness ? std::min(direct, carry_cap) : 0;
                s64 store = liveness
                              ? st.outBytes - carried
                              : prefixOutput_[static_cast<std::size_t>(k)]
                                    - prefixOutput_[
                                        static_cast<std::size_t>(
                                            st.start)];
                store = std::max<s64>(0, store);
                s64 load = std::max<s64>(0, inbound - carried);

                // Approximate physical state entering the segment:
                // everything not used as memory by the previous
                // segment is (or can be) in compute mode.
                SwitchDelta delta = deha.switchesBetween(
                    n_cim - st.memArrays, cur.plan);
                Cycles cost = st.cost + intra
                            + cost_->mainMemoryTransfer(store)
                            + cost_->mainMemoryTransfer(load)
                            + deha.switchLatency(delta) + rewrite;
                if (cost < best_cost) {
                    best_cost = cost;
                    best_prev = st.start;
                }
            }
        }
        *best_cost_out = best_cost;
        *best_prev_out = best_prev;
    };

    // Scratch reused across candidate segments (serial path).
    std::vector<const OpWorkload *> ws_view;
    std::vector<std::pair<s64, s64>> crossing; // (producer, bytes), sorted
    std::vector<s64> crossing_suffix;          // suffix byte sums

    TaskPool *pool = pool_.get();

    // Sharded-path scratch: one boundary's candidates with their
    // allocation resolution state (miss < 0: served from cache).
    struct Candidate
    {
        s64 k = 0;
        const SegmentAllocation *alloc = nullptr;
        s64 miss = -1;
        Cycles cost = kInfCycles;
        s64 prev = -1;
    };
    struct Miss
    {
        std::string sig;
        s64 k = 0;
        SegmentAllocation result;
        AllocWarmHints hints; ///< basis points into warmIn_ (immutable)
        bool hasHint = false;
        LpWarmStart basis; ///< final probe basis (retention only)
    };
    std::vector<Candidate> cands;
    std::vector<Miss> misses;
    std::vector<const SegmentAllocation *> miss_ptr;

    for (s64 i = first_boundary; i <= n; ++i) {
        obs::count(obs::Met::kDpBoundaries);
        if (pool == nullptr) {
            for (s64 k = min_start[static_cast<std::size_t>(i)]; k < i;
                 ++k) {
                const SegmentAllocation &cur = allocateCachedRef(ops, k, i);
                if (!cur.feasible())
                    continue;
                Cycles best_cost = kInfCycles;
                s64 best_prev = -1;
                evalCandidate(k, i, cur, ws_view, crossing, crossing_suffix,
                              &best_cost, &best_prev);
                if (best_cost < kInfCycles) {
                    dp[static_cast<std::size_t>(i)].push_back(
                        FastState{k, best_cost, best_prev,
                                  cur.plan.memoryArrays,
                                  liveOutBytes(ops, k, i, i)});
                }
            }
            continue;
        }

        // Phase A (serial): resolve each candidate's allocation through
        // the caches with the exact serial bookkeeping — the first
        // start index of an unseen signature counts the miss, repeats
        // count hits — batching the misses for Phase B.
        cands.clear();
        misses.clear();
        {
            obs::Span spanA("dp.phase_a", "segmenter");
            spanA.arg("boundary", i);
            for (s64 k = min_start[static_cast<std::size_t>(i)]; k < i;
                 ++k) {
                s64 range_key = k * (n + 1) + i;
                if (const SegmentAllocation **found =
                        rangeCache_.find(range_key)) {
                    ++cacheHits_;
                    cands.push_back(
                        Candidate{k, *found, -1, kInfCycles, -1});
                    continue;
                }
                if (const SegmentAllocation *warm =
                        warmPositionalLookup(k, i, n)) {
                    ++cacheHits_;
                    cacheRange(range_key, warm);
                    cands.push_back(
                        Candidate{k, warm, -1, kInfCycles, -1});
                    continue;
                }
                std::string sig = rangeSignature(ops, k, i);
                auto it = cache_.find(sig);
                if (it != cache_.end()) {
                    ++cacheHits_;
                    if (!importedPtrs_.empty()
                        && importedPtrs_.count(&it->second) > 0)
                        ++warmStats_.importedSigHits;
                    cacheRange(range_key, &it->second);
                    cands.push_back(
                        Candidate{k, &it->second, -1, kInfCycles, -1});
                    continue;
                }
                s64 miss_slot = -1;
                for (std::size_t m = 0; m < misses.size(); ++m) {
                    if (misses[m].sig == sig) {
                        miss_slot = static_cast<s64>(m);
                        break;
                    }
                }
                if (miss_slot < 0) {
                    ++cacheMisses_;
                    miss_slot = static_cast<s64>(misses.size());
                    Miss miss;
                    miss.sig = std::move(sig);
                    miss.k = k;
                    if (warmHintFor(k, i, &miss.hints)) {
                        miss.hasHint = true;
                        ++warmStats_.bracketHints;
                    }
                    misses.push_back(std::move(miss));
                } else {
                    ++cacheHits_;
                }
                cands.push_back(
                    Candidate{k, nullptr, miss_slot, kInfCycles, -1});
            }
        }

        // Phase B: allocate the batched misses concurrently. Each
        // allocation sees the same segment view the serial first touch
        // would, and the allocator's own levers are thread-count
        // invariant, so the results match the serial search's.
        {
            obs::Span spanB("dp.phase_b", "segmenter");
            spanB.arg("boundary", i);
            spanB.arg("misses", static_cast<s64>(misses.size()));
            pool->parallelFor(
                static_cast<s64>(misses.size()), [&](s64 m) {
                    Miss &miss = misses[static_cast<std::size_t>(m)];
                    obs::Span missSpan("dp.alloc_miss", "segmenter");
                    missSpan.arg("start", miss.k);
                    missSpan.arg("end", i);
                    miss.result = allocator_.allocate(
                        makeSegmentView(ops, miss.k, i),
                        miss.hasHint ? &miss.hints : nullptr,
                        retain_ ? &miss.basis : nullptr);
                });
        }

        // Phase B2 (serial, ascending k): publish into the caches.
        miss_ptr.assign(misses.size(), nullptr);
        for (std::size_t m = 0; m < misses.size(); ++m) {
            auto it = cache_
                          .emplace(std::move(misses[m].sig),
                                   std::move(misses[m].result))
                          .first;
            miss_ptr[m] = &it->second;
            if (retain_)
                basisOf_.emplace(&it->second, std::move(misses[m].basis));
        }
        for (Candidate &cand : cands) {
            if (cand.miss >= 0) {
                cand.alloc = miss_ptr[static_cast<std::size_t>(cand.miss)];
                cacheRange(cand.k * (n + 1) + i, cand.alloc);
            }
        }
        cands.erase(std::remove_if(cands.begin(), cands.end(),
                                   [](const Candidate &cand) {
                                       return !cand.alloc->feasible();
                                   }),
                    cands.end());

        // Phase C: score candidates concurrently (reads only earlier
        // DP boundaries), then reduce in ascending-k order — the same
        // append order and strict-< tie-breaking as the serial loop.
        obs::Span spanC("dp.phase_c", "segmenter");
        spanC.arg("boundary", i);
        spanC.arg("candidates", static_cast<s64>(cands.size()));
        pool->parallelFor(
            static_cast<s64>(cands.size()), [&](s64 c) {
                Candidate &cand = cands[static_cast<std::size_t>(c)];
                std::vector<const OpWorkload *> task_ws;
                std::vector<std::pair<s64, s64>> task_crossing;
                std::vector<s64> task_suffix;
                evalCandidate(cand.k, i, *cand.alloc, task_ws,
                              task_crossing, task_suffix, &cand.cost,
                              &cand.prev);
            });
        for (const Candidate &cand : cands) {
            if (cand.cost < kInfCycles) {
                dp[static_cast<std::size_t>(i)].push_back(
                    FastState{cand.k, cand.cost, cand.prev,
                              cand.alloc->plan.memoryArrays,
                              liveOutBytes(ops, cand.k, i, i)});
            }
        }
    }

    // Retention: the full DP table, whether each row was computed here
    // or imported (imported rows are byte-equal to a cold compute, so a
    // chained warm compile retains the same state a cold one would).
    if (retain_) {
        lastDpRows_.clear();
        lastDpRows_.resize(dp.size());
        for (std::size_t b = 0; b < dp.size(); ++b) {
            lastDpRows_[b].reserve(dp[b].size());
            for (const FastState &st : dp[b])
                lastDpRows_[b].push_back(
                    WarmDpState{st.start, st.cost, st.prevStart,
                                st.memArrays, st.outBytes});
        }
    }

    // Pick the best terminal state and backtrack the segmentation.
    cmswitch_assert(!dp[static_cast<std::size_t>(n)].empty(),
                    "network has no feasible segmentation");
    s64 best_k = -1;
    Cycles best_cost = kInfCycles;
    for (const FastState &st : dp[static_cast<std::size_t>(n)]) {
        if (st.cost < best_cost) {
            best_cost = st.cost;
            best_k = st.start;
        }
    }
    std::vector<std::pair<s64, s64>> ranges;
    s64 i = n;
    s64 k = best_k;
    while (k >= 0) {
        ranges.emplace_back(k, i);
        const auto &states = dp[static_cast<std::size_t>(i)];
        auto it = std::lower_bound(
            states.begin(), states.end(), k,
            [](const FastState &st, s64 start) { return st.start < start; });
        cmswitch_assert(it != states.end() && it->start == k,
                        "DP backlink missing");
        i = k;
        k = it->prevStart;
    }
    std::reverse(ranges.begin(), ranges.end());
    return finalize(ops, std::move(ranges));
}

ScheduleResult
Segmenter::runDpReference(const std::vector<ScheduledOp> &ops)
{
    // The pre-optimization Alg. 1 search, kept verbatim: every
    // (predecessor, segment) pair re-walks its aggregates and re-prices
    // the Eq. 2 rewrite through interCost(). The differential tests
    // assert byte-identical plans against runDp(); do not "fix" or
    // optimise this path — its whole value is being the original.
    const s64 n = static_cast<s64>(ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;

    std::vector<s64> min_start = minStarts(ops);

    // dp[i] = states for boundary i, keyed by the start of the segment
    // that ends at i. Value: best prefix cost + backlink (start of the
    // previous segment).
    struct State
    {
        Cycles cost = kInfCycles;
        s64 prevStart = -1;
    };
    std::vector<std::map<s64, State>> dp(static_cast<std::size_t>(n) + 1);

    for (s64 i = 1; i <= n; ++i) {
        for (s64 k = min_start[static_cast<std::size_t>(i)]; k < i; ++k) {
            SegmentAllocation cur = allocateCached(ops, k, i);
            if (!cur.feasible())
                continue;
            State best;
            if (k == 0) {
                // First segment: switches from the all-compute boot
                // state, initial weight load, no predecessor data.
                SegmentDecision d;
                interCost(ops, SegmentAllocation{}, -1, k, i, cur,
                          n_cim, &d);
                best.cost = cur.intraLatency + d.interTotal();
                best.prevStart = -1;
            } else {
                for (const auto &[j, state] : dp[static_cast<std::size_t>(k)]) {
                    if (state.cost >= kInfCycles)
                        continue;
                    SegmentAllocation prev = allocateCached(ops, j, k);
                    SegmentDecision d;
                    // Approximate physical state entering the segment:
                    // everything not used as memory by the previous
                    // segment is (or can be) in compute mode.
                    s64 phys = n_cim - prev.plan.memoryArrays;
                    interCost(ops, prev, j, k, i, cur, phys, &d);
                    Cycles cost = state.cost + cur.intraLatency
                                + d.interTotal();
                    if (cost < best.cost) {
                        best.cost = cost;
                        best.prevStart = j;
                    }
                }
            }
            if (best.cost < kInfCycles)
                dp[static_cast<std::size_t>(i)][k] = best;
        }
    }

    // Pick the best terminal state and backtrack the segmentation.
    cmswitch_assert(!dp[static_cast<std::size_t>(n)].empty(),
                    "network has no feasible segmentation");
    s64 best_k = -1;
    Cycles best_cost = kInfCycles;
    for (const auto &[k, state] : dp[static_cast<std::size_t>(n)]) {
        if (state.cost < best_cost) {
            best_cost = state.cost;
            best_k = k;
        }
    }
    std::vector<std::pair<s64, s64>> ranges;
    s64 i = n;
    s64 k = best_k;
    while (k >= 0) {
        ranges.emplace_back(k, i);
        s64 prev = dp[static_cast<std::size_t>(i)].at(k).prevStart;
        i = k;
        k = prev;
    }
    std::reverse(ranges.begin(), ranges.end());
    return finalize(ops, std::move(ranges));
}

ScheduleResult
Segmenter::finalize(const std::vector<ScheduledOp> &ops,
                    std::vector<std::pair<s64, s64>> ranges)
{
    const Deha &deha = cost_->deha();
    const s64 n_cim = cost_->chip().numSwitchArrays;

    ScheduleResult result;
    s64 phys_compute = n_cim; // boot: all switchable arrays in compute
    SegmentAllocation prev;
    s64 prev_lo = -1;

    for (auto [lo, hi] : ranges) {
        SegmentDecision d;
        d.lo = lo;
        d.hi = hi;
        d.alloc = allocateCached(ops, lo, hi);
        if (!d.alloc.feasible())
            return ScheduleResult{};
        interCost(ops, prev, prev_lo, lo, hi, d.alloc, phys_compute, &d);

        result.latency.intra += d.alloc.intraLatency;
        result.latency.writeback += d.interWriteback;
        result.latency.modeSwitch += d.interSwitch;
        result.latency.rewrite += d.interRewrite;

        SwitchDelta delta = deha.switchesBetween(phys_compute, d.alloc.plan);
        phys_compute = deha.applySwitches(phys_compute, delta);

        prev = d.alloc;
        prev_lo = lo;
        result.segments.push_back(std::move(d));
    }

    // Final network outputs leave the chip.
    if (!ranges.empty()) {
        auto [lo, hi] = ranges.back();
        result.latency.writeback += cost_->mainMemoryTransfer(
            liveOutBytes(ops, lo, hi, static_cast<s64>(ops.size())));
    }
    return result;
}

const SegmentAllocation *
Segmenter::warmPositionalLookup(s64 lo, s64 hi, s64 n)
{
    // Neighbor serve: [lo, hi) lies inside one constant-shift matched
    // run, so every op (and every in-range edge, whose endpoints shift
    // together or sit below both windows) equals its neighbor
    // counterpart and the two range signatures are equal by
    // construction — without building either.
    if (!warmNeighborRanges_.empty()) {
        const s64 rid = runId_[static_cast<std::size_t>(lo)];
        if (rid >= 0 && rid == runId_[static_cast<std::size_t>(hi - 1)]) {
            const s64 shift = matchShift_[static_cast<std::size_t>(lo)];
            // Absolute-matched edges must stay outside both ranges.
            const s64 bound = lo - std::max<s64>(0, shift);
            bool ok = true;
            for (s64 x = lo; x < hi; ++x) {
                if (matchAbsMax_[static_cast<std::size_t>(x)] >= bound) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                const s64 n_nb = warmIn_->numOps();
                auto it = warmNeighborRanges_.find(
                    (lo - shift) * (n_nb + 1) + (hi - shift));
                if (it != warmNeighborRanges_.end()) {
                    ++warmStats_.rangeImports;
                    return &warmIn_->allocs[static_cast<std::size_t>(
                        it->second)];
                }
            }
        }
    }
    // Self serve, same argument at a lag within this run's own op list:
    // the lagged range was priced at an earlier DP boundary (boundaries
    // ascend, and lookups at boundary i only lag to boundary i - lag).
    if (!selfRunId_.empty()) {
        const s64 srid = selfRunId_[static_cast<std::size_t>(lo)];
        if (srid >= 0
            && srid == selfRunId_[static_cast<std::size_t>(hi - 1)]) {
            const s64 lag = selfLag_[static_cast<std::size_t>(lo)];
            const s64 bound = lo - lag;
            bool ok = bound >= 0;
            for (s64 x = lo; ok && x < hi; ++x) {
                if (selfAbsMax_[static_cast<std::size_t>(x)] >= bound)
                    ok = false;
            }
            if (ok) {
                if (const SegmentAllocation **found = rangeCache_.find(
                        (lo - lag) * (n + 1) + (hi - lag))) {
                    ++warmStats_.rangeImports;
                    return *found;
                }
            }
        }
    }
    return nullptr;
}

bool
Segmenter::warmHintFor(s64 lo, s64 hi, AllocWarmHints *hints) const
{
    if (warmIn_ == nullptr || warmNeighborRanges_.empty())
        return false;
    // A genuine miss is a range the neighbor never priced as-is (it
    // crosses a changed window, say) — but whichever window the
    // neighbor *did* price at the same position is usually near the
    // optimum, and hints only steer the probe order.
    const s64 n_nb = warmIn_->numOps();
    s64 deltas[4];
    int tries = 0;
    if (runId_[static_cast<std::size_t>(lo)] >= 0)
        deltas[tries++] = matchShift_[static_cast<std::size_t>(lo)];
    if (runId_[static_cast<std::size_t>(hi - 1)] >= 0)
        deltas[tries++] = matchShift_[static_cast<std::size_t>(hi - 1)];
    deltas[tries++] = 0;
    deltas[tries++] = warmDelta_;
    for (int d = 0; d < tries; ++d) {
        if (d > 0
            && std::find(deltas, deltas + d, deltas[d]) != deltas + d)
            continue;
        s64 nb_lo = lo - deltas[d];
        s64 nb_hi = hi - deltas[d];
        if (nb_lo < 0 || nb_hi > n_nb || nb_hi <= nb_lo)
            continue;
        auto it = warmNeighborRanges_.find(nb_lo * (n_nb + 1) + nb_hi);
        if (it == warmNeighborRanges_.end())
            continue;
        const auto a = static_cast<std::size_t>(it->second);
        if (!warmIn_->allocs[a].feasible())
            continue;
        hints->target = warmIn_->allocs[a].intraLatency;
        hints->basis = warmIn_->bases[a].rows > 0 ? &warmIn_->bases[a]
                                                  : nullptr;
        return true;
    }
    return false;
}

void
Segmenter::cacheRange(s64 key, const SegmentAllocation *alloc)
{
    rangeCache_.insert(key, alloc);
    if (retain_)
        rangeLog_.emplace_back(key, alloc);
}

std::shared_ptr<CompilerWarmState>
Segmenter::exportWarmState() const
{
    auto state = std::make_shared<CompilerWarmState>();
    if (curMeta_.empty())
        return state;
    state->ops = curMeta_;
    state->dpRows = lastDpRows_;

    // Allocation pool: every signature this run priced or imported.
    std::unordered_map<const SegmentAllocation *, s64> index;
    index.reserve(cache_.size());
    for (const auto &entry : cache_) {
        index.emplace(&entry.second, static_cast<s64>(state->sigs.size()));
        state->sigs.push_back(entry.first);
        state->allocs.push_back(entry.second);
        auto bit = basisOf_.find(&entry.second);
        state->bases.push_back(bit != basisOf_.end() ? bit->second
                                                     : LpWarmStart{});
    }

    // Positional bindings. Ranges served straight from the neighbor
    // pool alias a cache_ entry with the same signature (the sig-import
    // pass seeded all of them), so rebind through it.
    const s64 n1 = static_cast<s64>(curMeta_.size()) + 1;
    state->ranges.reserve(rangeLog_.size());
    for (const auto &[key, alloc] : rangeLog_) {
        auto it = index.find(alloc);
        if (it == index.end() && warmIn_ != nullptr
            && !warmIn_->allocs.empty()
            && alloc >= warmIn_->allocs.data()
            && alloc < warmIn_->allocs.data() + warmIn_->allocs.size()) {
            const auto a = static_cast<std::size_t>(
                alloc - warmIn_->allocs.data());
            auto cit = cache_.find(warmIn_->sigs[a]);
            if (cit != cache_.end())
                it = index.find(&cit->second);
        }
        if (it == index.end())
            continue;
        state->ranges.push_back(
            WarmRangeBinding{key / n1, key % n1, it->second});
    }
    return state;
}

} // namespace cmswitch
