#include "compiler/segmenter.hpp"

#include <algorithm>
#include <sstream>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace cmswitch {

namespace {

/** Hard cap on ops per segment, a safety net for the DP width. */
constexpr s64 kMaxSegmentOps = 64;

/** Signature of a segment's workloads + intra edges for the cache. */
std::string
segmentSignature(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi)
{
    std::ostringstream oss;
    for (s64 i = lo; i < hi; ++i) {
        const OpWorkload &w = ops[static_cast<std::size_t>(i)].work;
        oss << w.weightTiles << ':' << w.macs << ':' << w.weightBytes << ':'
            << w.inputBytes << ':' << w.outputBytes << ':' << w.vectorElems
            << ':' << w.movingRows << ':' << (w.dynamicWeights ? 1 : 0) << ':'
            << formatDouble(w.utilization, 5) << ';';
        for (std::size_t e = 0;
             e < ops[static_cast<std::size_t>(i)].preds.size(); ++e) {
            s64 p = ops[static_cast<std::size_t>(i)].preds[e];
            if (p >= lo && p < hi) {
                oss << (p - lo) << '>' << (i - lo) << '='
                    << ops[static_cast<std::size_t>(i)].reuseBytes[e] << ',';
            }
        }
        oss << '|';
    }
    return oss.str();
}

} // namespace

Segmenter::Segmenter(const CostModel &cost, SegmenterOptions options)
    : cost_(&cost), options_(options), allocator_(cost, options.alloc)
{
}

SegmentAllocation
Segmenter::allocateCached(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi)
{
    // Fast path: this exact range was priced before in this run.
    s64 range_key = lo * (static_cast<s64>(ops.size()) + 1) + hi;
    auto rit = rangeCache_.find(range_key);
    if (rit != rangeCache_.end()) {
        ++cacheHits_;
        return rit->second;
    }

    std::string key = segmentSignature(ops, lo, hi);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++cacheHits_;
        rangeCache_.emplace(range_key, it->second);
        return it->second;
    }
    ++cacheMisses_;
    SegmentAllocation alloc = allocator_.allocate(makeSegmentView(ops, lo, hi));
    cache_.emplace(std::move(key), alloc);
    rangeCache_.emplace(range_key, alloc);
    return alloc;
}

s64
Segmenter::liveOutBytes(const std::vector<ScheduledOp> &ops, s64 lo, s64 hi,
                        s64 boundary) const
{
    // Store-side traffic: each producer whose data is consumed at or
    // beyond the boundary spills its tensor once (widest edge), plus
    // any network outputs. lastConsumer_/maxEdgeBytes_ are prefix
    // structures built by run().
    s64 total = 0;
    for (s64 i = lo; i < hi; ++i) {
        total += ops[static_cast<std::size_t>(i)].liveOutBytes; // net outputs
        if (lastConsumer_[static_cast<std::size_t>(i)] >= boundary)
            total += maxEdgeBytes_[static_cast<std::size_t>(i)];
    }
    return total;
}

s64
Segmenter::inboundBytes(const std::vector<ScheduledOp> &ops, s64 lo,
                        s64 hi) const
{
    s64 total = 0;
    for (s64 i = lo; i < hi; ++i) {
        const ScheduledOp &op = ops[static_cast<std::size_t>(i)];
        for (std::size_t e = 0; e < op.preds.size(); ++e) {
            if (op.preds[e] < lo)
                total += op.reuseBytes[e];
        }
    }
    return total;
}

void
Segmenter::interCost(const std::vector<ScheduledOp> &ops,
                     const SegmentAllocation &prev, s64 prev_lo, s64 lo,
                     s64 hi, const SegmentAllocation &cur, s64 phys_compute,
                     SegmentDecision *decision) const
{
    const ChipConfig &chip = cost_->chip();
    const Deha &deha = cost_->deha();

    // Step 2 (Eq. 1): mode switching from the current physical state.
    SwitchDelta delta = deha.switchesBetween(phys_compute, cur.plan);
    decision->interSwitch = deha.switchLatency(delta);

    // Step 3 (Eq. 2): (re)programming the segment's static weights.
    std::vector<OpWorkload> ws;
    for (s64 i = lo; i < hi; ++i)
        ws.push_back(ops[static_cast<std::size_t>(i)].work);
    decision->interRewrite = cost_->weightRewriteLatency(ws, cur.allocs);

    // Step 1: write-back + reload around the boundary.
    s64 store_bytes = 0;
    s64 carried = 0;
    if (prev_lo >= 0) {
        s64 direct = 0;
        for (s64 i = lo; i < hi; ++i) {
            const ScheduledOp &op = ops[static_cast<std::size_t>(i)];
            for (std::size_t e = 0; e < op.preds.size(); ++e) {
                if (op.preds[e] >= prev_lo && op.preds[e] < lo)
                    direct += op.reuseBytes[e];
            }
        }
        s64 carry_cap = chip.bufferBytes;
        if (options_.alloc.allowMemoryMode) {
            carry_cap += std::min(prev.plan.memoryArrays,
                                  cur.plan.memoryArrays)
                       * chip.arrayMemoryBytes();
        }
        carried = options_.livenessAwareWriteback ? std::min(direct, carry_cap)
                                                  : 0;
        if (options_.livenessAwareWriteback) {
            store_bytes = liveOutBytes(ops, prev_lo, lo, lo) - carried;
        } else {
            for (s64 i = prev_lo; i < lo; ++i)
                store_bytes += ops[static_cast<std::size_t>(i)].work.outputBytes;
        }
        store_bytes = std::max<s64>(0, store_bytes);
    }
    s64 load_bytes = std::max<s64>(0, inboundBytes(ops, lo, hi) - carried);
    decision->storeBytes = store_bytes;
    decision->loadBytes = load_bytes;
    decision->carriedBytes = carried;
    decision->interWriteback = cost_->mainMemoryTransfer(store_bytes)
                             + cost_->mainMemoryTransfer(load_bytes);
}

ScheduleResult
Segmenter::run(const std::vector<ScheduledOp> &ops)
{
    if (ops.empty())
        return ScheduleResult{};

    rangeCache_.clear();
    lastConsumer_.assign(ops.size(), -1);
    maxEdgeBytes_.assign(ops.size(), 0);
    for (std::size_t c = 0; c < ops.size(); ++c) {
        for (std::size_t e = 0; e < ops[c].preds.size(); ++e) {
            auto p = static_cast<std::size_t>(ops[c].preds[e]);
            lastConsumer_[p] = std::max(lastConsumer_[p],
                                        static_cast<s64>(c));
            maxEdgeBytes_[p] = std::max(maxEdgeBytes_[p],
                                        ops[c].reuseBytes[e]);
        }
    }
    return options_.useDp ? runDp(ops) : runGreedy(ops);
}

ScheduleResult
Segmenter::runGreedy(const std::vector<ScheduledOp> &ops)
{
    const s64 n = static_cast<s64>(ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;

    // Greedy segmentation: extend the open segment while doing so is
    // locally profitable — the joint segment must not cost more than
    // cutting here (intra + Eq. 2 rewrite + boundary traffic). This is
    // the one-pass scheduling the fixed-mode baseline stacks perform;
    // only the DP (Alg. 1) explores alternative cut points globally.
    auto segment_cost = [&](s64 lo, s64 hi) -> Cycles {
        SegmentAllocation a = allocateCached(ops, lo, hi);
        if (!a.feasible())
            return kInfCycles;
        std::vector<OpWorkload> ws;
        std::vector<OpAllocation> as;
        for (s64 i = lo; i < hi; ++i) {
            ws.push_back(ops[static_cast<std::size_t>(i)].work);
            as.push_back(a.allocs[static_cast<std::size_t>(i - lo)]);
        }
        return a.intraLatency + cost_->weightRewriteLatency(ws, as);
    };

    std::vector<std::pair<s64, s64>> ranges;
    s64 lo = 0;
    while (lo < n) {
        s64 hi = lo + 1;
        s64 tiles = ops[static_cast<std::size_t>(lo)].work.weightTiles;
        cmswitch_assert(tiles <= n_cim, "operator ",
                        ops[static_cast<std::size_t>(lo)].work.name,
                        " does not fit the chip even alone");
        while (hi < n && hi - lo < kMaxSegmentOps) {
            s64 t = ops[static_cast<std::size_t>(hi)].work.weightTiles;
            if (tiles + t > n_cim)
                break;
            Cycles joined = segment_cost(lo, hi + 1);
            if (joined >= kInfCycles)
                break;
            Cycles boundary =
                cost_->mainMemoryTransfer(liveOutBytes(ops, lo, hi, hi))
                + cost_->mainMemoryTransfer(inboundBytes(ops, hi, hi + 1));
            Cycles separate = segment_cost(lo, hi) + segment_cost(hi, hi + 1)
                            + boundary;
            if (joined > separate)
                break;
            tiles += t;
            ++hi;
        }
        ranges.emplace_back(lo, hi);
        lo = hi;
    }
    return finalize(ops, std::move(ranges));
}

ScheduleResult
Segmenter::runDp(const std::vector<ScheduledOp> &ops)
{
    const s64 n = static_cast<s64>(ops.size());
    const s64 n_cim = cost_->chip().numSwitchArrays;

    // Feasible segment starts for each boundary i: [minStart[i], i).
    std::vector<s64> min_start(static_cast<std::size_t>(n) + 1, 0);
    {
        s64 tiles = 0;
        s64 k = 0;
        for (s64 i = 0; i < n; ++i) {
            tiles += ops[static_cast<std::size_t>(i)].work.weightTiles;
            while (tiles > n_cim || i - k + 1 > kMaxSegmentOps) {
                tiles -= ops[static_cast<std::size_t>(k)].work.weightTiles;
                ++k;
            }
            cmswitch_assert(k <= i, "operator ",
                            ops[static_cast<std::size_t>(i)].work.name,
                            " does not fit the chip even alone");
            min_start[static_cast<std::size_t>(i) + 1] = k;
        }
    }

    // dp[i] = states for boundary i, keyed by the start of the segment
    // that ends at i. Value: best prefix cost + backlink (start of the
    // previous segment).
    struct State
    {
        Cycles cost = kInfCycles;
        s64 prevStart = -1;
    };
    std::vector<std::map<s64, State>> dp(static_cast<std::size_t>(n) + 1);

    for (s64 i = 1; i <= n; ++i) {
        for (s64 k = min_start[static_cast<std::size_t>(i)]; k < i; ++k) {
            SegmentAllocation cur = allocateCached(ops, k, i);
            if (!cur.feasible())
                continue;
            State best;
            if (k == 0) {
                // First segment: switches from the all-compute boot
                // state, initial weight load, no predecessor data.
                SegmentDecision d;
                interCost(ops, SegmentAllocation{}, -1, k, i, cur,
                          n_cim, &d);
                best.cost = cur.intraLatency + d.interTotal();
                best.prevStart = -1;
            } else {
                for (const auto &[j, state] : dp[static_cast<std::size_t>(k)]) {
                    if (state.cost >= kInfCycles)
                        continue;
                    SegmentAllocation prev = allocateCached(ops, j, k);
                    SegmentDecision d;
                    // Approximate physical state entering the segment:
                    // everything not used as memory by the previous
                    // segment is (or can be) in compute mode.
                    s64 phys = n_cim - prev.plan.memoryArrays;
                    interCost(ops, prev, j, k, i, cur, phys, &d);
                    Cycles cost = state.cost + cur.intraLatency
                                + d.interTotal();
                    if (cost < best.cost) {
                        best.cost = cost;
                        best.prevStart = j;
                    }
                }
            }
            if (best.cost < kInfCycles)
                dp[static_cast<std::size_t>(i)][k] = best;
        }
    }

    // Pick the best terminal state and backtrack the segmentation.
    cmswitch_assert(!dp[static_cast<std::size_t>(n)].empty(),
                    "network has no feasible segmentation");
    s64 best_k = -1;
    Cycles best_cost = kInfCycles;
    for (const auto &[k, state] : dp[static_cast<std::size_t>(n)]) {
        if (state.cost < best_cost) {
            best_cost = state.cost;
            best_k = k;
        }
    }
    std::vector<std::pair<s64, s64>> ranges;
    s64 i = n;
    s64 k = best_k;
    while (k >= 0) {
        ranges.emplace_back(k, i);
        s64 prev = dp[static_cast<std::size_t>(i)].at(k).prevStart;
        i = k;
        k = prev;
    }
    std::reverse(ranges.begin(), ranges.end());
    return finalize(ops, std::move(ranges));
}

ScheduleResult
Segmenter::finalize(const std::vector<ScheduledOp> &ops,
                    std::vector<std::pair<s64, s64>> ranges)
{
    const Deha &deha = cost_->deha();
    const s64 n_cim = cost_->chip().numSwitchArrays;

    ScheduleResult result;
    s64 phys_compute = n_cim; // boot: all switchable arrays in compute
    SegmentAllocation prev;
    s64 prev_lo = -1;

    for (auto [lo, hi] : ranges) {
        SegmentDecision d;
        d.lo = lo;
        d.hi = hi;
        d.alloc = allocateCached(ops, lo, hi);
        if (!d.alloc.feasible())
            return ScheduleResult{};
        interCost(ops, prev, prev_lo, lo, hi, d.alloc, phys_compute, &d);

        result.latency.intra += d.alloc.intraLatency;
        result.latency.writeback += d.interWriteback;
        result.latency.modeSwitch += d.interSwitch;
        result.latency.rewrite += d.interRewrite;

        SwitchDelta delta = deha.switchesBetween(phys_compute, d.alloc.plan);
        phys_compute = deha.applySwitches(phys_compute, delta);

        prev = d.alloc;
        prev_lo = lo;
        result.segments.push_back(std::move(d));
    }

    // Final network outputs leave the chip.
    if (!ranges.empty()) {
        auto [lo, hi] = ranges.back();
        result.latency.writeback += cost_->mainMemoryTransfer(
            liveOutBytes(ops, lo, hi, static_cast<s64>(ops.size())));
    }
    return result;
}

} // namespace cmswitch
