/**
 * @file
 * Code generation: lowers a segmentation schedule to the dual-mode
 * meta-operator program of paper Sec. 4.4. The store of a segment's
 * spilled data is emitted in that segment's epilogue; loads, switches
 * and weight programming appear in the successor's prologue, mirroring
 * the three inter-segment steps of paper Fig. 10.
 */

#ifndef CMSWITCH_COMPILER_CODEGEN_HPP
#define CMSWITCH_COMPILER_CODEGEN_HPP

#include <string>

#include "compiler/segmenter.hpp"
#include "metaop/program.hpp"

namespace cmswitch {

/** Lower @p schedule for @p ops into a meta-operator program.
 *  @param pipelined_body whether the parallel blocks execute pipelined
 *  (Eq. 9 max) or serially (PUMA/OCC-style). */
MetaProgram generateProgram(const std::string &model_name, const Deha &deha,
                            const std::vector<ScheduledOp> &ops,
                            const ScheduleResult &schedule,
                            bool pipelined_body = true);

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_CODEGEN_HPP
