#include "compiler/partitioner.hpp"

#include <algorithm>
#include <map>

#include "obs/obs.hpp"
#include "support/logging.hpp"

namespace cmswitch {

namespace {

/** Book-keeping while walking the graph in topological order. */
struct TensorInfo
{
    std::vector<s64> producers; ///< sched-op indices producing this data
    s64 chainBytes = 0;         ///< narrowest tensor along the FU chain
    s64 pendingElems = 0;       ///< FU work waiting for a CIM host op
};

/** Default sub-operator tile budget: chip minus a bandwidth reserve. */
s64
defaultTileBudget(const Deha &deha)
{
    s64 n = deha.config().numSwitchArrays;
    return std::max<s64>(1, n - std::max<s64>(2, n / 12));
}

/**
 * Split @p base into slices of at most @p budget weight tiles along the
 * output-column / weight-copy dimension: every slice keeps the full
 * moving input but owns a disjoint share of weights, MACs and output
 * (paper Sec. 4.3.1's greedy sub-operator partitioning).
 */
std::vector<OpWorkload>
splitWorkload(const OpWorkload &base, s64 budget)
{
    if (base.weightTiles <= budget)
        return {base};

    std::vector<OpWorkload> out;
    s64 sub_count = ceilDiv(base.weightTiles, budget);
    for (s64 k = 0; k < sub_count; ++k) {
        s64 tiles_lo = k * base.weightTiles / sub_count;
        s64 tiles_hi = (k + 1) * base.weightTiles / sub_count;
        s64 tiles = tiles_hi - tiles_lo;
        double frac = static_cast<double>(tiles)
                    / static_cast<double>(base.weightTiles);
        OpWorkload sub = base;
        sub.name = base.name + ".part" + std::to_string(k);
        sub.weightTiles = tiles;
        sub.macs = static_cast<s64>(static_cast<double>(base.macs) * frac);
        sub.weightBytes =
            static_cast<s64>(static_cast<double>(base.weightBytes) * frac);
        // Column/head splits share the moving input across slices but
        // partition the output.
        sub.inputBytes = base.inputBytes;
        sub.outputBytes =
            std::max<s64>(1, static_cast<s64>(
                                 static_cast<double>(base.outputBytes) * frac));
        sub.vectorElems =
            static_cast<s64>(static_cast<double>(base.vectorElems) * frac);
        sub.aiMacsPerByte =
            static_cast<double>(sub.macs)
            / static_cast<double>(sub.weightBytes + sub.inputBytes
                                  + sub.outputBytes);
        out.push_back(std::move(sub));
    }
    cmswitch_assert(!out.empty(), "split produced no slices");
    return out;
}

} // namespace

std::vector<ScheduledOp>
flattenGraph(const Graph &graph, const Deha &deha,
             const PartitionOptions &options)
{
    obs::ScopedPhase phase(obs::Hist::kPhasePartition, "partition.flatten",
                           "compiler");
    phase.arg("graph_ops", graph.numOps());
    s64 budget = options.maxTilesPerSubOp > 0 ? options.maxTilesPerSubOp
                                              : defaultTileBudget(deha);
    cmswitch_fatal_if(budget < 1, "tile budget must be >= 1");

    std::vector<TensorInfo> info(static_cast<std::size_t>(graph.numTensors()));
    for (TensorId t = 0; t < graph.numTensors(); ++t)
        info[static_cast<std::size_t>(t)].chainBytes = graph.tensor(t).bytes();

    std::vector<ScheduledOp> sched;

    for (OpId id : graph.topoOrder()) {
        const Operator &op = graph.op(id);

        if (op.isCim()) {
            OpWorkload base = makeWorkload(graph, id, deha);

            // Dual-mode-aware slice size: balance the Eq. 10 compute
            // and memory rates of a slice occupying t* compute arrays
            // with the rest of the chip in memory mode.
            s64 op_budget = budget;
            if (options.dualModeAware) {
                const ChipConfig &chip = deha.config();
                double n = static_cast<double>(chip.numSwitchArrays);
                double ai = base.aiMacsPerByte;
                double t_star = (chip.internalBwPerArray * n + chip.dMain())
                              * ai
                              / (chip.opPerCycle * base.utilization
                                 + chip.internalBwPerArray * ai);
                s64 floor_tiles =
                    std::max<s64>(4, chip.numSwitchArrays / 12);
                op_budget = std::clamp<s64>(static_cast<s64>(t_star),
                                            floor_tiles, budget);
            }

            // Fold pending upstream FU work into this op.
            s64 pending = 0;
            for (TensorId t : op.inputs)
                pending += info[static_cast<std::size_t>(t)].pendingElems;
            base.vectorElems += pending;

            // Gather predecessor edges (dedup by producer index).
            std::map<s64, s64> edges; // producer index -> bytes
            for (TensorId t : op.inputs) {
                const TensorInfo &ti = info[static_cast<std::size_t>(t)];
                if (ti.producers.empty())
                    continue;
                s64 per_producer = std::max<s64>(
                    1, ti.chainBytes
                           / static_cast<s64>(ti.producers.size()));
                for (s64 p : ti.producers) {
                    auto [it, inserted] = edges.insert({p, per_producer});
                    if (!inserted)
                        it->second = std::max(it->second, per_producer);
                }
            }

            // Tiling guard: refuse pathological splits up front instead
            // of handing the DP a many-thousand-op schedule.
            s64 sub_count = ceilDiv(base.weightTiles, op_budget);
            const ChipConfig &geom = deha.config();
            cmswitch_fatal_if(
                options.maxSubOpsPerOp > 0
                    && sub_count > options.maxSubOpsPerOp,
                "operator '", op.name, "' needs ", sub_count,
                " sub-operators (", base.weightTiles, " weight tiles, ",
                op_budget, " tiles/sub-op) on ", geom.name, "'s ",
                geom.numSwitchArrays, " arrays of ", geom.arrayRows, "x",
                geom.arrayCols, "; exceeds the tiling guard of ",
                options.maxSubOpsPerOp,
                " (arrays are likely too small for this model; raise "
                "PartitionOptions::maxSubOpsPerOp to override)");

            std::vector<OpWorkload> slices = splitWorkload(base, op_budget);
            std::vector<s64> indices;
            for (std::size_t k = 0; k < slices.size(); ++k) {
                ScheduledOp s;
                s.work = std::move(slices[k]);
                s.subIndex = static_cast<s64>(k);
                s.subCount = static_cast<s64>(slices.size());
                for (const auto &[from, bytes] : edges) {
                    s.preds.push_back(from);
                    s.reuseBytes.push_back(
                        std::max<s64>(1, bytes
                                             / static_cast<s64>(slices.size())));
                }
                indices.push_back(static_cast<s64>(sched.size()));
                sched.push_back(std::move(s));
            }

            for (TensorId t : op.outputs) {
                TensorInfo &ti = info[static_cast<std::size_t>(t)];
                ti.producers = indices;
                ti.chainBytes = graph.tensor(t).bytes();
                ti.pendingElems = 0;
                if (graph.tensor(t).kind == TensorKind::kOutput) {
                    for (s64 idx : indices) {
                        sched[static_cast<std::size_t>(idx)].liveOutBytes +=
                            graph.tensor(t).bytes()
                            / static_cast<s64>(indices.size());
                    }
                }
            }
            continue;
        }

        // Function-unit operator: attach to the nearest upstream CIM op
        // if one exists, otherwise defer downstream via pendingElems.
        OpProfile p = profileOp(graph, id);
        s64 elems = op.kind == OpKind::kReshape ? 0 : p.vectorElems;

        std::vector<s64> upstream;
        s64 chain_bytes = 0;
        s64 pending = elems;
        for (TensorId t : op.inputs) {
            const TensorInfo &ti = info[static_cast<std::size_t>(t)];
            if (!ti.producers.empty() && upstream.empty()) {
                upstream = ti.producers;
                chain_bytes = ti.chainBytes;
            }
            pending += ti.pendingElems;
        }

        if (!upstream.empty()) {
            // Fold this FU op's work onto its producer(s).
            s64 share = std::max<s64>(
                1, pending / static_cast<s64>(upstream.size()));
            for (s64 idx : upstream)
                sched[static_cast<std::size_t>(idx)].work.vectorElems += share;
            pending = 0;
        }

        for (TensorId t : op.outputs) {
            TensorInfo &ti = info[static_cast<std::size_t>(t)];
            ti.producers = upstream;
            ti.chainBytes =
                upstream.empty()
                    ? graph.tensor(t).bytes()
                    : std::min(chain_bytes, graph.tensor(t).bytes());
            ti.pendingElems = pending;
            if (graph.tensor(t).kind == TensorKind::kOutput) {
                for (s64 idx : upstream) {
                    sched[static_cast<std::size_t>(idx)].liveOutBytes +=
                        graph.tensor(t).bytes()
                        / std::max<s64>(1,
                                        static_cast<s64>(upstream.size()));
                }
            }
        }
    }

    return sched;
}

} // namespace cmswitch
