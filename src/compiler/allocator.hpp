/**
 * @file
 * Unified dual-mode allocation with scheduling (paper Sec. 4.3.2).
 *
 * For one network segment the allocator chooses, per operator, the
 * number of compute-mode arrays (weight tiles x duplication factor) and
 * memory-mode arrays (input/output streaming buffers), subject to the
 * array-overlap / dependency-reuse / resource-limit constraints
 * (Eqs. 5-8), minimising the pipelined max-latency objective (Eq. 9)
 * under the Eq. 10 latency model.
 *
 * Solution strategy: the min-max objective is bisected over a latency
 * target T; at fixed T the per-operator minimum compute and memory
 * arrays are closed-form (Eq. 10 is monotone in both), and the only
 * coupling left - maximising producer->consumer buffer reuse so the
 * segment fits the chip (Eqs. 6-8) - is an integer transportation
 * problem solved exactly with the bundled MIP solver.
 */

#ifndef CMSWITCH_COMPILER_ALLOCATOR_HPP
#define CMSWITCH_COMPILER_ALLOCATOR_HPP

#include <vector>

#include "compiler/partitioner.hpp"
#include "cost/cost_model.hpp"
#include "solver/simplex.hpp"

namespace cmswitch {

class TaskPool;

/** A candidate segment handed to the allocator. */
struct SegmentView
{
    /** Workloads of the member ops, in topological order. */
    std::vector<const OpWorkload *> ops;

    /** Intra-segment dependency edge with its Eq. 6 reuse byte bound. */
    struct Edge
    {
        s64 from = 0; ///< local producer index
        s64 to = 0;   ///< local consumer index
        s64 bytes = 0;
    };
    std::vector<Edge> edges;
};

/** Build a SegmentView over ops [lo, hi) of a flattened network. */
SegmentView makeSegmentView(const std::vector<ScheduledOp> &ops, s64 lo,
                            s64 hi);

/** Allocation policy switches (what a given compiler may use). */
struct AllocatorOptions
{
    bool allowMemoryMode = true;  ///< dual-mode aware (CMSwitch only)
    bool allowDuplication = true; ///< weight duplication across arrays
    bool pipelined = true;        ///< Eq. 9 max; false = serial sum

    /**
     * true: pre-optimization behaviour — every bisection probe runs
     * the exact reuse solve (no conservative-bound shortcuts, no LP
     * warm starts). Retained for the differential tests and the
     * Fig. 18 reference measurements; Segmenter propagates its
     * SegmenterOptions::referenceSearch here. Allocation-filling
     * solves are identical in both modes by construction.
     */
    bool referenceSearch = false;

    /**
     * Search parallelism (>= 1). With a TaskPool handed to the
     * constructor and searchThreads > 1, the latency bisection
     * speculatively evaluates upcoming probes of its own decision
     * tree concurrently, and probe reuse MIPs may split their
     * branch-and-bound across the pool. Probe answers are boolean and
     * warm-start-independent, so the bisection walks the exact same
     * bracket sequence as the serial search and the emitted
     * allocation is bit-identical for any thread count. Ignored in
     * referenceSearch mode, which stays fully serial.
     */
    s64 searchThreads = 1;
};

/**
 * Warm-start hints for one allocate() call, carried over from a
 * neighbor compile's allocation of a structurally similar segment
 * (compiler/warm_state.hpp). Hints steer the search only: the latency
 * bisection still converges to the same minimal feasible target
 * (feasibility is monotone in the target), probe LP warm bases never
 * reach the filling solve, and referenceSearch mode ignores hints
 * entirely — so the emitted allocation is byte-identical with or
 * without them (pinned by the incremental diff/fuzz battery).
 */
struct AllocWarmHints
{
    /** Neighbor segment's optimal intra latency; probed first so a
     *  nearby optimum collapses the bisection bracket immediately.
     *  <= 0 disables the bracket probe. */
    Cycles target = 0;

    /** Neighbor's final probe basis; seeds probe LP warm starts.
     *  Optional, not owned. */
    const LpWarmStart *basis = nullptr;
};

/** Result of allocating one segment. */
struct SegmentAllocation
{
    std::vector<OpAllocation> allocs; ///< parallel to SegmentView::ops
    ModePlan plan;                    ///< totals after reuse
    s64 reusedArrays = 0;
    Cycles intraLatency = kInfCycles;

    bool feasible() const { return intraLatency < kInfCycles; }
};

/**
 * The MIP-backed dual-mode allocator. Stateless; safe to share across
 * segments and threads.
 */
class DualModeAllocator
{
  public:
    /** @p pool (optional, caller-owned, must outlive the allocator)
     *  enables the parallel search levers when
     *  options.searchThreads > 1. */
    DualModeAllocator(const CostModel &cost, AllocatorOptions options,
                      TaskPool *pool = nullptr);

    /** Solve one segment; infeasible segments return
     *  intraLatency == kInfCycles. */
    SegmentAllocation allocate(const SegmentView &segment) const
    {
        return allocate(segment, nullptr, nullptr);
    }

    /**
     * allocate() with optional warm-start @p hints (see AllocWarmHints;
     * may be null) and, when @p basis_out is non-null, the final probe
     * basis exported for a future neighbor compile. Results are
     * byte-identical to the hint-free call.
     */
    SegmentAllocation allocate(const SegmentView &segment,
                               const AllocWarmHints *hints,
                               LpWarmStart *basis_out) const;

    /**
     * Reference implementation: exhaustive search over duplication
     * multiples and memory-array counts. Exponential; only usable for
     * tiny segments. Tests certify allocate() against this.
     */
    SegmentAllocation allocateExhaustive(const SegmentView &segment) const;

    const AllocatorOptions &options() const { return options_; }
    const CostModel &cost() const { return *cost_; }

  private:
    /** Per-op minimum arrays to reach latency target @p t. */
    struct Needs
    {
        bool feasible = false;
        s64 computeArrays = 0;
        s64 memoryArrays = 0;
    };
    Needs needsForTarget(const OpWorkload &w, Cycles t,
                        double dmain_share) const;

    /** Check whether target @p t fits the chip; fills the allocation.
     *  @p warm carries the reuse MIP's pivoting state across the
     *  bisection's probes (stack-owned by allocate(), so the allocator
     *  itself stays stateless and thread-safe). */
    bool tryTarget(const SegmentView &segment, Cycles t,
                   SegmentAllocation *out, LpWarmStart *warm) const;

    /** Serial-schedule greedy refinement (PUMA-style compilers). */
    SegmentAllocation allocateSerial(const SegmentView &segment) const;

    const CostModel *cost_;
    AllocatorOptions options_;
    TaskPool *pool_ = nullptr;
};

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_ALLOCATOR_HPP
