/**
 * @file
 * Retained plan-search state for incremental (delta) compilation.
 *
 * A generative serving workload compiles one near-identical graph per
 * KV bucket; a cold compile rebuilds every range signature and re-runs
 * the allocator for structures the previous request already priced.
 * CompilerWarmState is the search state one compile retains so a
 * *neighbor* request (same model family, slightly different shapes) can
 * skip the redundant work:
 *
 *  - per-op structural metadata (the signature fragment plus the
 *    dependency/liveness facts the DP folds into its states), used to
 *    align the two flattened op lists and find the structurally equal
 *    prefix/suffix around the changed window;
 *  - the DP rows of every boundary, importable verbatim for the
 *    structurally-identical prefix;
 *  - the signature-keyed segment allocations with their positional
 *    range bindings and final LP probe bases, importable wherever the
 *    neighbor priced the same segment shape.
 *
 * Soundness contract (pinned by tests/incremental_diff_test.cpp and
 * the IncrementalDiffFuzz battery): every import below reproduces
 * byte-identical compile results versus a cold compile.
 *
 *  - Allocation import: rangeSignature equality implies an identical
 *    SegmentAllocation (the cross-run signature cache already rests on
 *    this). Positional import binds range [k, i) to the neighbor's
 *    allocation only when every op in the range is structurally equal
 *    (warmCommonPrefix) or equal under the suffix index shift
 *    (warmCommonSuffix), which makes the two range signatures equal by
 *    construction — without building either string.
 *  - DP-row import: row i depends only on ops [0, i) *metadata*
 *    including liveness facts that look ahead (lastConsumer,
 *    maxEdgeBytes) and the Eq. 2 rewrite grouping (groupId). Rows are
 *    imported only up to warmDpSafePrefix, which requires full
 *    per-position equality of all of it.
 *  - Bracket/basis hints steer the allocator's probe order only; the
 *    bisection still converges to the same minimal feasible target
 *    (feasibility is monotone in the target) and filling solves stay
 *    cold-pivot, so emitted allocations are unchanged.
 *
 * State is only meaningful between compiles of the same configuration
 * (chip + compiler options + build); the service layer keys warm-state
 * artifacts by a structural family digest that folds all of it in
 * (src/service/incremental/structural_digest.hpp).
 */

#ifndef CMSWITCH_COMPILER_WARM_STATE_HPP
#define CMSWITCH_COMPILER_WARM_STATE_HPP

#include <string>
#include <vector>

#include "compiler/allocator.hpp"
#include "solver/simplex.hpp"

namespace cmswitch {

class BinaryReader;
class BinaryWriter;

/** Structural metadata of one flattened op, as the DP search sees it. */
struct WarmOpMeta
{
    std::string sig;            ///< opSignature fragment (workload shape)
    std::vector<s64> preds;     ///< direct predecessors (absolute indices)
    std::vector<s64> reuseBytes;///< Eq. 6 bounds, parallel to preds
    s64 groupId = -1;           ///< Eq. 2 rewrite group (originating OpId)
    s64 lastConsumer = -1;      ///< max consumer index, or -1
    s64 maxEdgeBytes = 0;       ///< widest outgoing edge
    s64 liveOutBytes = 0;       ///< bytes live past the network end

    /** Equality of everything a range signature folds in. */
    bool structEq(const WarmOpMeta &other) const
    {
        return sig == other.sig && preds == other.preds
            && reuseBytes == other.reuseBytes;
    }

    /** structEq with this op's indices shifted down by @p delta
     *  (suffix alignment: this = current op, other = neighbor op). */
    bool structEqShifted(const WarmOpMeta &other, s64 delta) const;

    /**
     * structEqShifted relaxed edge-wise: each dependency may either
     * shift with the block (p' == p - delta) or stay absolute
     * (p' == p, a producer shared by both windows — common when
     * flattened sub-ops fan in from one sliced tensor). Absolute edges
     * leave the range-signature argument intact only while they stay
     * *outside* both ranges, so the largest absolute-matched
     * predecessor is reported through @p abs_max (-1 when all edges
     * shift); callers must check it against each served range's low
     * bound.
     */
    bool relaxedEqShifted(const WarmOpMeta &other, s64 delta,
                          s64 *abs_max) const;

    /** Equality of everything a DP row folds in. */
    bool fullEq(const WarmOpMeta &other) const
    {
        return structEq(other) && groupId == other.groupId
            && lastConsumer == other.lastConsumer
            && maxEdgeBytes == other.maxEdgeBytes
            && liveOutBytes == other.liveOutBytes;
    }
};

/** One retained DP state (mirrors the fast search's FastState). */
struct WarmDpState
{
    s64 start = 0;
    Cycles cost = 0;
    s64 prevStart = -1;
    s64 memArrays = 0;
    s64 outBytes = 0;
};

/** Positional binding: range [lo, hi) resolved to allocation #index. */
struct WarmRangeBinding
{
    s64 lo = 0;
    s64 hi = 0;
    s64 allocIndex = 0;
};

/** Everything one compile retains for its neighbors. */
struct CompilerWarmState
{
    std::vector<WarmOpMeta> ops;

    /** dpRows[i] = the fast DP's states at boundary i (index 0 unused;
     *  empty when the producing search was greedy/reference). */
    std::vector<std::vector<WarmDpState>> dpRows;

    /** @{ Signature-keyed allocation pool (parallel vectors). */
    std::vector<std::string> sigs;
    std::vector<SegmentAllocation> allocs;
    std::vector<LpWarmStart> bases; ///< final probe basis per allocation
    /** @} */

    /** Ranges the producing run priced, bound to pool entries. */
    std::vector<WarmRangeBinding> ranges;

    s64 numOps() const { return static_cast<s64>(ops.size()); }
    bool empty() const { return ops.empty(); }

    /** @{ Exact binary round-trip for the warm-state sidecar artifact
     *  (service/incremental wraps it in a versioned envelope). */
    void writeBinary(BinaryWriter &w) const;
    static CompilerWarmState readBinary(BinaryReader &r); ///< throws
    /** @} */
};

/** What a warm compile actually reused (observability + tests). */
struct WarmReuseStats
{
    s64 dpRowsReused = 0;   ///< DP boundaries imported verbatim
    s64 sigImports = 0;     ///< allocations seeded into the sig cache
    s64 rangeImports = 0;   ///< positional range bindings served
    s64 importedSigHits = 0;///< sig-cache hits on imported entries
    s64 bracketHints = 0;   ///< allocator searches seeded with a bracket

    /** Nonzero iff the neighbor's state did any work for this compile. */
    s64 reuseScore() const
    {
        return dpRowsReused + rangeImports + importedSigHits + bracketHints;
    }
};

/** One aligned position: the matched neighbor index (or -1) plus the
 *  largest absolute-matched predecessor of the relaxed equality
 *  (see WarmOpMeta::relaxedEqShifted; -1 when every edge shifts). */
struct WarmMatch
{
    s64 index = -1;
    s64 absMax = -1;
};

/**
 * Align two op lists block-wise: result[i] is the neighbor position
 * matched to current op i. A greedy resync diff over the signature
 * fragments finds candidate blocks (graph edits are local: a KV-length
 * bump reshapes a few attention sub-ops per layer, an inserted op
 * shifts everything after it); every candidate match is verified with
 * relaxedEqShifted at its own shift, so a poor alignment can only lose
 * reuse, never soundness. Matched positions with one constant shift
 * form the runs whose interior ranges import positionally (subject to
 * the per-range absMax bound).
 */
std::vector<WarmMatch> warmAlign(const std::vector<WarmOpMeta> &cur,
                                 const std::vector<WarmOpMeta> &neighbor);

/** Longest structurally-equal prefix of two op lists (structEq). */
s64 warmCommonPrefix(const std::vector<WarmOpMeta> &cur,
                     const std::vector<WarmOpMeta> &neighbor);

/**
 * Longest structurally-equal suffix under the index shift
 * delta = cur.size() - neighbor.size(), capped to @p max_len (callers
 * pass min(n) - prefix so the two regions never overlap).
 */
s64 warmCommonSuffix(const std::vector<WarmOpMeta> &cur,
                     const std::vector<WarmOpMeta> &neighbor, s64 max_len);

/** Longest fully-equal prefix (fullEq): the DP-row import bound. */
s64 warmDpSafePrefix(const std::vector<WarmOpMeta> &cur,
                     const std::vector<WarmOpMeta> &neighbor);

} // namespace cmswitch

#endif // CMSWITCH_COMPILER_WARM_STATE_HPP
