#include "compiler/codegen.hpp"

#include "support/logging.hpp"

namespace cmswitch {

MetaProgram
generateProgram(const std::string &model_name, const Deha &deha,
                const std::vector<ScheduledOp> &ops,
                const ScheduleResult &schedule, bool pipelined_body)
{
    MetaProgram program(model_name, deha.config().name);
    s64 phys_compute = deha.config().numSwitchArrays;

    for (std::size_t s = 0; s < schedule.segments.size(); ++s) {
        const SegmentDecision &d = schedule.segments[s];
        SegmentRecord record;
        record.pipelinedBody = pipelined_body;
        record.plan = d.alloc.plan;
        record.reusedArrays = d.alloc.reusedArrays;
        record.plannedIntra = d.alloc.intraLatency;
        record.plannedInter = d.interTotal();

        // Prologue step 2: mode switches (Eq. 1).
        SwitchDelta delta = deha.switchesBetween(phys_compute, d.alloc.plan);
        if (delta.memToCompute > 0) {
            record.prologue.push_back(MetaOp::makeSwitch(
                ArrayMode::kCompute, 0, delta.memToCompute));
        }
        if (delta.computeToMem > 0) {
            record.prologue.push_back(MetaOp::makeSwitch(
                ArrayMode::kMemory, 0, delta.computeToMem));
        }
        phys_compute = deha.applySwitches(phys_compute, delta);

        // Prologue step 3: reload boundary data + program weights.
        if (d.loadBytes > 0) {
            record.prologue.push_back(MetaOp::makeLoad(
                "seg" + std::to_string(s) + ".inbound", d.loadBytes));
        }
        for (s64 i = d.lo; i < d.hi; ++i) {
            const ScheduledOp &op = ops[static_cast<std::size_t>(i)];
            const OpAllocation &alloc =
                d.alloc.allocs[static_cast<std::size_t>(i - d.lo)];
            if (op.work.dynamicWeights)
                continue; // programmed at runtime, inside the body
            s64 copies = std::max<s64>(
                1, alloc.computeArrays / std::max<s64>(1, op.work.weightTiles));
            record.prologue.push_back(MetaOp::makeLoadWeight(
                op.work.name, op.work.weightBytes * copies,
                alloc.computeArrays, op.work.opId));
        }

        // Body: the pipelined parallel block.
        for (s64 i = d.lo; i < d.hi; ++i) {
            record.body.push_back(MetaOp::makeCompute(
                ops[static_cast<std::size_t>(i)].work,
                d.alloc.allocs[static_cast<std::size_t>(i - d.lo)]));
        }

        // Epilogue step 1 belongs to the *next* boundary: the successor
        // segment's storeBytes were produced here.
        if (s + 1 < schedule.segments.size()) {
            const SegmentDecision &next = schedule.segments[s + 1];
            if (next.storeBytes > 0) {
                record.epilogue.push_back(MetaOp::makeStore(
                    "seg" + std::to_string(s) + ".liveout", next.storeBytes));
            }
        } else {
            // Network outputs always leave the chip.
            s64 out_bytes = 0;
            for (s64 i = d.lo; i < d.hi; ++i)
                out_bytes += ops[static_cast<std::size_t>(i)].liveOutBytes;
            if (out_bytes > 0) {
                record.epilogue.push_back(
                    MetaOp::makeStore("network.out", out_bytes));
            }
        }

        program.addSegment(std::move(record));
    }
    return program;
}

} // namespace cmswitch
