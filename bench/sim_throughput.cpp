/**
 * @file
 * Serving-simulator throughput trajectory: how fast the discrete-event
 * loop (src/sim/serving/) replays traffic, and what the simulated
 * fleet delivers while it does.
 *
 * Two scenarios over a 2-chip heterogeneous fleet serving the resident
 * tiny-mlp plan: moderate load (rho ~0.6 per chip) and saturation
 * (offered 3x capacity against a finite queue). The simulated numbers
 * (arrived/completed/throughput) are deterministic model properties;
 * the wall-clock events-per-second figure is the perf trajectory this
 * driver exists to track. Load factors are expressed in units of the
 * plan's own service time, so the scenario keeps its shape if the
 * compiler's latency model moves.
 */

#include <iostream>

#include "arch/deha.hpp"
#include "bench_util.hpp"
#include "harness.hpp"
#include "service/compile_service.hpp"
#include "service/serve/serve_protocol.hpp"
#include "sim/serving/service_time.hpp"
#include "sim/serving/simulator.hpp"
#include "sim/timing.hpp"
#include "support/logging.hpp"
#include "support/table.hpp"

namespace cmswitch {

namespace {

/** Two-chip fleet under Poisson load of @p rho per chip, running long
 *  enough for ~horizonServices services per chip. */
SimScenario
makeScenario(const char *name, double rho, double horizonServices,
             double serviceSeconds)
{
    SimScenario scenario;
    scenario.name = name;
    scenario.seed = 17;
    scenario.durationSeconds = horizonServices * serviceSeconds;
    scenario.maxQueue = 64;
    scenario.arrival.process = SimArrivalSpec::Process::kPoisson;
    scenario.arrival.ratePerSecond = 2.0 * rho / serviceSeconds;
    SimChipSpec prime;
    prime.preset = "prime";
    scenario.chips = {SimChipSpec{}, prime};
    SimWorkloadSpec workload;
    workload.name = "tiny-mlp";
    workload.model = "tiny-mlp";
    scenario.workloads = {workload};
    return scenario;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    bench::Harness::Options hopts;
    hopts.repeats = args.repeats > 0 ? args.repeats : 3;
    if (args.warmups >= 0)
        hopts.warmups = args.warmups;
    bench::Harness harness(hopts);
    bench::BenchReport report("sim_throughput", hopts);

    // Price the plan once so load is phrased in service times.
    ServeRequest wire;
    wire.model = "tiny-mlp";
    CompileRequest request;
    std::string error;
    if (!resolveServeRequest(wire, &request, &error))
        cmswitch_fatal("sim_throughput: ", error);
    ArtifactPtr artifact = compileArtifact(request);
    TimingReport timing =
        TimingSimulator(Deha(artifact->chip)).run(artifact->result.program);
    double serviceSeconds =
        cyclesToSeconds(planResidentCycles(timing.breakdown), 1.0);

    struct Case
    {
        const char *name;
        double rho;
        double horizonServices;
    };
    const Case kCases[] = {
        {"moderate_load", 0.6, args.full ? 20000.0 : 3000.0},
        {"saturated", 3.0, args.full ? 8000.0 : 1200.0},
    };

    Table table("Serving simulator: simulated fleet throughput and "
                "event-loop wall speed");
    table.addRow({"scenario", "arrived", "completed", "sim rps",
                  "wall s", "events/s wall"});
    for (const Case &c : kCases) {
        SimScenario scenario =
            makeScenario(c.name, c.rho, c.horizonServices, serviceSeconds);
        SimResult result;
        bench::TimingStats stats = harness.time([&] {
            SimResult fresh;
            if (!runServingSimulation(scenario, ServingSimOptions{},
                                      &fresh, &error))
                cmswitch_fatal("sim_throughput: ", error);
            result = std::move(fresh);
        });
        // Every request is one arrival event plus (if served) one
        // completion event.
        double events = static_cast<double>(result.arrived)
                        + static_cast<double>(result.completed);
        double eventsPerSecond =
            stats.trimmedMean > 0.0 ? events / stats.trimmedMean : 0.0;
        table.addRow(c.name,
                     {static_cast<double>(result.arrived),
                      static_cast<double>(result.completed),
                      result.throughputPerSecond(), stats.trimmedMean,
                      eventsPerSecond},
                     2);
        bench::BenchRecord row;
        row.name = c.name;
        row.metric("arrived", static_cast<double>(result.arrived))
            .metric("completed", static_cast<double>(result.completed))
            .metric("shed_admission",
                    static_cast<double>(result.shedAdmission))
            .metric("sim_makespan_seconds", result.makespanSeconds)
            .metric("sim_throughput_rps", result.throughputPerSecond())
            .metric("wall_seconds", stats.trimmedMean)
            .metric("events_per_wall_second", eventsPerSecond);
        report.add(std::move(row));
    }
    table.print(std::cout);

    if (!args.out.empty()) {
        report.write(args.out);
        std::cout << "\nwrote " << args.out << "\n";
    }
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
