/**
 * @file
 * Figure 17: generative-model stage study on LLaMA2-7B and OPT-13B.
 * (a) fixed input length (128), sweeping output length: speedup over
 * CIM-MLC should stay nearly flat (decode AI is length-invariant).
 * (b) fixed output length (128), sweeping input length: speedup
 * shrinks as the prefill's arithmetic intensity grows.
 */

#include "bench_util.hpp"

namespace cmswitch {
namespace {

double
speedup(const ChipConfig &chip, const TransformerConfig &cfg, s64 batch,
        s64 input_len, s64 output_len, bool full)
{
    auto ours = makeCmSwitchCompiler(chip);
    auto mlc = makeCimMlcCompiler(chip);
    double a = static_cast<double>(
        evaluateGenerative(*mlc, cfg, batch, input_len, output_len,
                           full ? 4 : 2)
            .totalCycles());
    double b = static_cast<double>(
        evaluateGenerative(*ours, cfg, batch, input_len, output_len,
                           full ? 4 : 2)
            .totalCycles());
    return a / b;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();

    std::vector<s64> lens = args.full
                          ? std::vector<s64>{32, 64, 128, 256, 512, 1024,
                                             2048}
                          : std::vector<s64>{32, 128, 512};

    const std::string models[] = {"llama2-7b", "opt-13b"};
    for (const std::string &model : models) {
        TransformerConfig cfg = bench::trimmedConfig(model, args.full);

        Table a("Fig. 17(a): " + model
                + " fixed input 128, speedup vs CIM-MLC over output length");
        std::vector<std::string> header = {"output"};
        std::vector<std::string> row = {"speedup"};
        for (s64 len : lens) {
            header.push_back(std::to_string(len));
            row.push_back(formatDouble(
                speedup(chip, cfg, 1, 128, len, args.full), 2));
        }
        a.addRow(header);
        a.addRow(row);
        a.print(std::cout);

        Table b("Fig. 17(b): " + model
                + " fixed output 128, speedup vs CIM-MLC over input length");
        header = {"input"};
        row = {"speedup"};
        for (s64 len : lens) {
            header.push_back(std::to_string(len));
            row.push_back(formatDouble(
                speedup(chip, cfg, 1, len, 128, args.full), 2));
        }
        b.addRow(header);
        b.addRow(row);
        b.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper anchors: (a) nearly constant speedup (1.10-1.24x "
                 "LLaMA2, 1.43-1.62x OPT-13B); (b) speedup shrinks as the "
                 "input grows.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
