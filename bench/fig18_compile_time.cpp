/**
 * @file
 * Figure 18: compilation time of CMSwitch vs CIM-MLC per benchmark.
 * The paper reports CMSwitch taking 2.8x-6.3x longer than CIM-MLC
 * (the expanded joint optimization space), with CNNs costlier than
 * transformers thanks to per-block result reuse.
 */

#include "bench_util.hpp"

namespace cmswitch {
namespace {

double
compileSeconds(Compiler &compiler, const ZooEntry &entry, bool full,
               int repeats)
{
    double total = 0.0;
    for (int r = 0; r < repeats; ++r) {
        EndToEndResult res;
        if (entry.generative) {
            TransformerConfig cfg = bench::trimmedConfig(entry.name, full);
            res = evaluateGenerative(compiler, cfg, 1, 64, 64, 2);
        } else if (entry.name == "bert-large") {
            TransformerConfig cfg = bench::trimmedConfig(entry.name, full);
            res = evaluateGraph(compiler,
                                buildTransformerPrefill(cfg, 1, 64));
        } else {
            res = evaluateGraph(compiler, buildModelByName(entry.name, 1));
        }
        total += res.compileSeconds;
    }
    return total / repeats;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();
    const int repeats = args.full ? 20 : 3; // paper uses 20

    Table t("Fig. 18: compilation time (seconds, mean of "
            + std::to_string(repeats) + " runs)");
    t.addRow({"model", "cim-mlc (s)", "cmswitch (s)", "ratio"});
    for (const ZooEntry &entry : fig14Benchmarks()) {
        auto mlc = makeCimMlcCompiler(chip);
        auto ours = makeCmSwitchCompiler(chip);
        double a = compileSeconds(*mlc, entry, args.full, repeats);
        double b = compileSeconds(*ours, entry, args.full, repeats);
        t.addRow(entry.name, {a, b, b / std::max(a, 1e-9)}, 3);
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: CMSwitch compiles 2.8x-6.3x slower than "
                 "CIM-MLC; absolute times 95-660s on the authors' "
                 "machine/full models (ours are reduced configs).\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
