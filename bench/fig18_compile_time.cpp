/**
 * @file
 * Figure 18: compilation time of CMSwitch vs CIM-MLC per benchmark.
 * The paper reports CMSwitch taking 2.8x-6.3x longer than CIM-MLC
 * (the expanded joint optimization space), with CNNs costlier than
 * transformers thanks to per-block result reuse.
 *
 * This driver doubles as the repo's compile-time perf trajectory: it
 * times every fig14 workload under three compiler configurations —
 * CIM-MLC, the optimized CMSwitch search, and the retained
 * pre-optimization reference search (SegmenterOptions::referenceSearch)
 * — through bench::Harness (steady clock, warmup + trimmed mean) and,
 * with --out, emits the cmswitch-bench-v1 JSON report that
 * tests/bench_gate.cmake gates on and CI uploads as
 * BENCH_compile_time.json. The differential tests guarantee the fast
 * and reference searches produce byte-identical plans, so the
 * speedup_vs_reference column measures pure search-efficiency gains.
 *
 * A fourth configuration times the optimized search at
 * kSearchThreads-way parallelism on the generative workloads (the
 * longest compiles), reported as search_threads_speedup per workload
 * plus a geomean summary. The config block records the search width
 * and std::thread::hardware_concurrency so the gate can skip the
 * speedup floor on machines with fewer cores than search threads
 * (a 1-core runner measures honest overhead, not parallelism).
 *
 * A fifth configuration measures incremental (delta) compilation on
 * the generative workloads: each graph is recompiled warm from its own
 * retained state — the serving scenario where a plan artifact was
 * evicted but the .warm sidecar survived, an exact structural-digest
 * hit. Reported as warm_neighbor_seconds/warm_neighbor_speedup per
 * workload plus a geomean summary; tests/incremental_diff_test.cpp
 * pins the warm results byte-identical, so the speedup is free.
 */

#include <thread>

#include "bench_util.hpp"
#include "compiler/warm_state.hpp"
#include "harness.hpp"

namespace cmswitch {
namespace {

/**
 * The graphs one fig18 measurement compiles: non-generative models are
 * a single pass; generative ones replay evaluateGenerative's prefill +
 * per-KV-bucket decode programs (batch 1, 64+64 tokens, 2 buckets).
 * Prebuilt once so the timed region is compilation only.
 */
std::vector<Graph>
benchGraphs(const ZooEntry &entry, bool full)
{
    std::vector<Graph> graphs;
    if (entry.generative) {
        TransformerConfig cfg = bench::trimmedConfig(entry.name, full);
        const s64 input_len = 64, output_len = 64, buckets = 2;
        graphs.push_back(buildTransformerPrefill(cfg, 1, input_len));
        for (s64 b = 0; b < buckets; ++b) {
            s64 tokens_lo = b * output_len / buckets;
            s64 tokens_hi = (b + 1) * output_len / buckets;
            s64 kv_len = input_len + (tokens_lo + tokens_hi) / 2 + 1;
            graphs.push_back(buildTransformerDecodeStep(cfg, 1, kv_len));
        }
    } else if (entry.name == "bert-large") {
        TransformerConfig cfg = bench::trimmedConfig(entry.name, full);
        graphs.push_back(buildTransformerPrefill(cfg, 1, 64));
    } else {
        graphs.push_back(buildModelByName(entry.name, 1));
    }
    return graphs;
}

double
compileSeconds(const bench::Harness &harness, const Compiler &compiler,
               const std::vector<Graph> &graphs)
{
    bench::TimingStats stats = harness.time([&] {
        for (const Graph &g : graphs)
            compiler.compile(g);
    });
    return stats.trimmedMean;
}

/**
 * Warm-neighbor recompile time: each graph's state is retained once,
 * outside the timed region (the serving scenario pays retention at the
 * original compile, not at the recompile), then the timed region runs
 * compileWarm against that exact-match neighbor — full DP import.
 */
double
compileWarmSeconds(const bench::Harness &harness, const Compiler &compiler,
                   const std::vector<Graph> &graphs)
{
    std::vector<std::shared_ptr<const CompilerWarmState>> neighbors;
    for (const Graph &g : graphs) {
        std::shared_ptr<CompilerWarmState> retained;
        compiler.compileWarm(g, nullptr, &retained, nullptr);
        neighbors.push_back(std::move(retained));
    }
    bench::TimingStats stats = harness.time([&] {
        for (std::size_t i = 0; i < graphs.size(); ++i)
            compiler.compileWarm(graphs[i], neighbors[i], nullptr,
                                 nullptr);
    });
    return stats.trimmedMean;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();

    bench::Harness::Options opts;
    opts.repeats = args.repeats > 0 ? args.repeats : (args.full ? 20 : 3);
    opts.warmups = args.warmups >= 0 ? args.warmups : 1;
    bench::Harness harness(opts);

    // Search width of the parallel measurement. Fixed (not
    // hardware-derived) so reports from different machines stay
    // comparable; the gate decides from hardware_concurrency whether
    // the speedup floor is meaningful on the producing machine.
    const s64 kSearchThreads = 4;

    auto mlc = makeCimMlcCompiler(chip);
    auto ours = makeCmSwitchCompiler(chip);
    auto ours_mt = makeCmSwitchCompiler(chip, /*referenceSearch=*/false,
                                        kSearchThreads);
    CmSwitchOptions ref_options;
    ref_options.segmenter.referenceSearch = true;
    CmSwitchCompiler reference(chip, ref_options, "cmswitch-reference");

    bench::BenchReport report("fig18_compile_time", opts);
    report.setConfig("sweep", args.full ? "full" : "trimmed");
    report.setConfig("chip", chip.name);
    report.setConfig("search_threads", kSearchThreads);
    report.setConfig(
        "hardware_concurrency",
        static_cast<s64>(std::thread::hardware_concurrency()));

    Table t("Fig. 18: compilation time (seconds, trimmed mean of "
            + std::to_string(opts.repeats) + " runs)");
    t.addRow({"model", "cim-mlc (s)", "cmswitch (s)", "ratio",
              "reference (s)", "speedup", "mt-speedup", "warm-speedup"});
    std::vector<double> ratios, speedups, mt_speedups, warm_speedups;
    for (const ZooEntry &entry : fig14Benchmarks()) {
        std::vector<Graph> graphs = benchGraphs(entry, args.full);
        double mlc_s = compileSeconds(harness, *mlc, graphs);
        double ours_s = compileSeconds(harness, *ours, graphs);
        double ref_s = compileSeconds(harness, reference, graphs);
        double ratio = ours_s / std::max(mlc_s, 1e-9);
        double speedup = ref_s / std::max(ours_s, 1e-9);
        ratios.push_back(ratio);
        speedups.push_back(speedup);

        // The parallel-search and warm-neighbor dimensions are timed on
        // the generative workloads only: they are the longest compiles
        // (least noise), and timing them alone keeps the bench's
        // runtime growth small.
        double mt_s = -1.0, mt_speedup = -1.0;
        double warm_s = -1.0, warm_speedup = -1.0;
        if (entry.generative) {
            mt_s = compileSeconds(harness, *ours_mt, graphs);
            mt_speedup = ours_s / std::max(mt_s, 1e-9);
            mt_speedups.push_back(mt_speedup);
            warm_s = compileWarmSeconds(harness, *ours, graphs);
            warm_speedup = ours_s / std::max(warm_s, 1e-9);
            warm_speedups.push_back(warm_speedup);
        }
        t.addRow(entry.name,
                 {mlc_s, ours_s, ratio, ref_s, speedup,
                  entry.generative ? mt_speedup : 0.0,
                  entry.generative ? warm_speedup : 0.0},
                 3);

        bench::BenchRecord record;
        record.name = entry.name;
        record.metric("cim_mlc_seconds", mlc_s)
            .metric("cmswitch_seconds", ours_s)
            .metric("cmswitch_reference_seconds", ref_s)
            .metric("ratio_vs_cim_mlc", ratio)
            .metric("speedup_vs_reference", speedup);
        if (entry.generative) {
            record.metric("cmswitch_parallel_seconds", mt_s)
                .metric("search_threads_speedup", mt_speedup)
                .metric("warm_neighbor_seconds", warm_s)
                .metric("warm_neighbor_speedup", warm_speedup);
        }
        report.add(std::move(record));
    }
    report.setSummary("geomean_ratio_vs_cim_mlc", bench::geomean(ratios));
    report.setSummary("geomean_speedup_vs_reference",
                      bench::geomean(speedups));
    if (!mt_speedups.empty())
        report.setSummary("geomean_search_threads_speedup",
                          bench::geomean(mt_speedups));
    if (!warm_speedups.empty())
        report.setSummary("geomean_warm_neighbor_speedup",
                          bench::geomean(warm_speedups));

    t.print(std::cout);
    std::cout << "\nPaper anchors: CMSwitch compiles 2.8x-6.3x slower than "
                 "CIM-MLC; absolute times 95-660s on the authors' "
                 "machine/full models (ours are reduced configs). The "
                 "'reference' column is the retained pre-optimization "
                 "search (plan-identical by the differential tests).\n";

    if (!args.out.empty()) {
        report.write(args.out);
        std::cout << "bench report: " << args.out << "\n";
    }
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
