/**
 * @file
 * Ablation: the dynamic-programming network segmenter (Alg. 1) vs. a
 * greedy max-fill segmentation, everything else (dual-mode MIP
 * allocation, granularity) held equal. Quantifies how much of
 * CMSwitch's win comes from segmentation alone.
 */

#include "bench_util.hpp"
#include "compiler/cmswitch_compiler.hpp"

namespace cmswitch {
namespace {

std::unique_ptr<Compiler>
greedyCmSwitch(const ChipConfig &chip)
{
    CmSwitchOptions options; // full dual-mode pipeline...
    options.segmenter.useDp = false; // ...but greedy segmentation
    return std::make_unique<CmSwitchCompiler>(chip, options,
                                              "cmswitch-greedy");
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();

    Table t("Ablation: DP segmentation vs greedy max-fill (cycles ratio, "
            ">1 means DP wins)");
    t.addRow({"model", "greedy/dp"});
    for (const ZooEntry &entry : fig14Benchmarks()) {
        auto dp = makeCmSwitchCompiler(chip);
        auto greedy = greedyCmSwitch(chip);
        double a, b;
        if (entry.generative) {
            TransformerConfig cfg = bench::trimmedConfig(entry.name,
                                                         args.full);
            a = static_cast<double>(
                evaluateGenerative(*greedy, cfg, 1, 64, 64, 2)
                    .totalCycles());
            b = static_cast<double>(
                evaluateGenerative(*dp, cfg, 1, 64, 64, 2).totalCycles());
        } else if (entry.name == "bert-large") {
            TransformerConfig cfg = bench::trimmedConfig(entry.name,
                                                         args.full);
            Graph g = buildTransformerPrefill(cfg, 1, 64);
            a = static_cast<double>(
                evaluateGraph(*greedy, g).totalCycles());
            b = static_cast<double>(evaluateGraph(*dp, g).totalCycles());
        } else {
            Graph g = buildModelByName(entry.name, 1);
            a = static_cast<double>(
                evaluateGraph(*greedy, g).totalCycles());
            b = static_cast<double>(evaluateGraph(*dp, g).totalCycles());
        }
        t.addRow(entry.name, {a / b}, 3);
    }
    t.print(std::cout);
    std::cout << "\nDP should never lose (ratio >= 1) and win most where "
                 "inter-segment overheads vary across cut points.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
