/**
 * @file
 * Figure 1(b): normalized performance as the fraction of CIM arrays in
 * compute mode sweeps from 0% to ~100%, for six networks on the
 * 100-array theoretical chip. Reproduces the motivational observation
 * that CNNs peak around 80% compute while decode-phase LLMs peak near
 * 10%.
 */

#include "bench_util.hpp"
#include "cost/cost_model.hpp"
#include "graph/analysis.hpp"
#include "models/model_zoo.hpp"

namespace cmswitch {
namespace {

/** Whole-model Eq. 10 sweep point: min(compute rate, memory rate). */
double
modelRate(const CostModel &cost, double ai_macs_per_byte, s64 compute,
          s64 memory)
{
    const ChipConfig &chip = cost.chip();
    double c = static_cast<double>(compute) * chip.opPerCycle;
    double m = (static_cast<double>(memory) * chip.internalBwPerArray
                + chip.dMain())
             * ai_macs_per_byte;
    return std::min(c, m);
}

struct ModelCase
{
    std::string label;
    double aiMacsPerByte;
};

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    Deha deha(ChipConfig::theoretical100());
    CostModel cost(deha);
    const s64 total = deha.config().numSwitchArrays;

    auto decode_ai = [](const TransformerConfig &base) {
        TransformerConfig cfg = base;
        cfg.layers = 2;
        Graph g = buildTransformerDecodeStep(cfg, 1, 512);
        GraphProfile p = profileGraph(g);
        return 0.5 * p.aiFlopsPerByte(); // back to MACs/byte
    };
    auto prefill_ai = [](const TransformerConfig &base, s64 seq) {
        TransformerConfig cfg = base;
        cfg.layers = 2;
        Graph g = buildTransformerPrefill(cfg, 1, seq);
        return 0.5 * profileGraph(g).aiFlopsPerByte();
    };

    std::vector<ModelCase> cases = {
        {"GPT", decode_ai(TransformerConfig::gpt())},
        {"llama2", decode_ai(TransformerConfig::llama2_7b())},
        {"VGG", 0.5 * profileGraph(buildVgg16(1)).aiFlopsPerByte()},
        {"ResNet50", 0.5 * profileGraph(buildResNet50(1)).aiFlopsPerByte()},
        {"Bert-base", prefill_ai(TransformerConfig::bertBase(), 64)},
        {"Bert-large", prefill_ai(TransformerConfig::bertLarge(), 64)},
    };

    Table table("Fig. 1(b): normalized perf vs. % arrays in compute mode "
                "(100-array chip)");
    std::vector<std::string> header = {"model"};
    for (s64 pct = 0; pct <= 90; pct += 10)
        header.push_back(std::to_string(pct) + "%");
    header.push_back("best@");
    table.addRow(header);

    for (const ModelCase &c : cases) {
        // Find the model's peak to normalise against.
        double best = 0.0;
        s64 best_c = 1;
        for (s64 cc = 1; cc < total; ++cc) {
            double r = modelRate(cost, c.aiMacsPerByte, cc, total - cc);
            if (r > best) {
                best = r;
                best_c = cc;
            }
        }
        std::vector<std::string> row = {c.label};
        for (s64 pct = 0; pct <= 90; pct += 10) {
            s64 cc = std::max<s64>(1, pct * total / 100);
            double r = modelRate(cost, c.aiMacsPerByte, cc, total - cc);
            row.push_back(formatDouble(r / best, 2));
        }
        row.push_back(std::to_string(best_c) + "%");
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nPaper anchors: ResNet50 peaks near 80% compute; "
                 "LLaMA2 decode near 10%.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
