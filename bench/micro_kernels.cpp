/**
 * @file
 * Micro-benchmarks (google-benchmark) for the performance-critical
 * substrates: the simplex/MIP solver, the dual-mode allocator, the
 * cost model, the timing simulator, and the tiled functional matmul.
 */

#include <benchmark/benchmark.h>

#include "compiler/cmswitch_compiler.hpp"
#include "models/model_zoo.hpp"
#include "sim/functional.hpp"
#include "sim/timing.hpp"
#include "solver/mip.hpp"

namespace cmswitch {
namespace {

void
BM_SimplexSmallLp(benchmark::State &state)
{
    LinearModel m;
    VarId x = m.addVar("x", 0, 10);
    VarId y = m.addVar("y", 0, 10);
    VarId z = m.addVar("z", 0, 10);
    LinearExpr c1;
    c1.add(x, 1.0).add(y, 2.0).add(z, 1.0);
    m.addConstraint(c1, Rel::kLe, 14);
    LinearExpr c2;
    c2.add(x, 3.0).add(y, -1.0);
    m.addConstraint(c2, Rel::kGe, 0);
    LinearExpr obj;
    obj.add(x, 1.0).add(y, 2.0).add(z, 3.0);
    m.setObjective(obj, Sense::kMaximize);
    for (auto _ : state)
        benchmark::DoNotOptimize(solveLp(m));
}
BENCHMARK(BM_SimplexSmallLp);

void
BM_MipKnapsack(benchmark::State &state)
{
    LinearModel m;
    LinearExpr cap, obj;
    for (int i = 0; i < 8; ++i) {
        VarId v = m.addVar("v", 0, 1, VarType::kInteger);
        cap.add(v, 5.0 + i);
        obj.add(v, 7.0 + 3 * i);
    }
    m.addConstraint(cap, Rel::kLe, 31);
    m.setObjective(obj, Sense::kMaximize);
    for (auto _ : state)
        benchmark::DoNotOptimize(solveMip(m));
}
BENCHMARK(BM_MipKnapsack);

void
BM_AllocatorSegment(benchmark::State &state)
{
    Deha deha(ChipConfig::dynaplasia());
    CostModel cost(deha);
    Graph g = buildResNet18(1);
    auto ops = flattenGraph(g, deha);
    DualModeAllocator alloc(cost, AllocatorOptions{});
    SegmentView view =
        makeSegmentView(ops, 0, std::min<s64>(6, ops.size()));
    for (auto _ : state)
        benchmark::DoNotOptimize(alloc.allocate(view));
}
BENCHMARK(BM_AllocatorSegment);

void
BM_CostModelOpLatency(benchmark::State &state)
{
    Deha deha(ChipConfig::dynaplasia());
    CostModel cost(deha);
    Graph g = buildTinyMlp(8, 512, 512, 512);
    OpWorkload w = makeWorkload(g, g.cimOps()[0], deha);
    OpAllocation a{8, 2, 2};
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.opLatency(w, a));
}
BENCHMARK(BM_CostModelOpLatency);

void
BM_CompileMobileNet(benchmark::State &state)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    Graph g = buildMobileNetV2(1);
    for (auto _ : state) {
        CmSwitchCompiler compiler(chip);
        benchmark::DoNotOptimize(compiler.compile(g));
    }
}
BENCHMARK(BM_CompileMobileNet)->Unit(benchmark::kMillisecond);

void
BM_TimingSimulation(benchmark::State &state)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    Graph g = buildResNet18(1);
    CompileResult r = compiler.compile(g);
    Deha deha(chip);
    TimingSimulator sim(deha);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(r.program));
}
BENCHMARK(BM_TimingSimulation)->Unit(benchmark::kMicrosecond);

void
BM_FunctionalTiledExecution(benchmark::State &state)
{
    ChipConfig chip;
    chip.name = "micro";
    chip.numSwitchArrays = 16;
    chip.arrayRows = 32;
    chip.arrayCols = 32;
    CmSwitchCompiler compiler(chip);
    Graph g = buildTinyMlp(4, 64, 128, 32);
    CompileResult r = compiler.compile(g);
    Deha deha(chip);
    for (auto _ : state)
        benchmark::DoNotOptimize(verifyProgram(g, r.program, deha));
}
BENCHMARK(BM_FunctionalTiledExecution)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace cmswitch

BENCHMARK_MAIN();
