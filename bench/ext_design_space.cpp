/**
 * @file
 * Extension: hardware design-space exploration through the DEHA. The
 * paper's Discussion (Sec. 6) argues dual-mode flexibility matters
 * more as workload diversity grows; this harness quantifies it by
 * sweeping the chip's array count and off-chip bandwidth and reporting
 * CMSwitch's advantage over the fixed-mode CIM-MLC at each point —
 * i.e. how much silicon flexibility buys under different provisioning.
 */

#include "bench_util.hpp"

namespace cmswitch {
namespace {

double
speedupAt(const ChipConfig &chip, const Graph &graph)
{
    auto ours = makeCmSwitchCompiler(chip);
    auto mlc = makeCimMlcCompiler(chip);
    double a = static_cast<double>(
        evaluateGraph(*mlc, graph).totalCycles());
    double b = static_cast<double>(
        evaluateGraph(*ours, graph).totalCycles());
    return a / b;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);

    TransformerConfig opt = bench::trimmedConfig("opt-6.7b", args.full);
    Graph decode = buildTransformerDecodeStep(opt, 1, 512);
    Graph cnn = buildResNet18(1);

    // Sweep 1: array count (chip area) at fixed bandwidth.
    Table a("DSE: CMSwitch speedup vs CIM-MLC over switchable-array count");
    a.addRow({"arrays", "opt-6.7b decode", "resnet18"});
    for (s64 arrays : {48, 96, 192, 384}) {
        ChipConfig chip = ChipConfig::dynaplasia();
        chip.numSwitchArrays = arrays;
        a.addRow(std::to_string(arrays),
                 {speedupAt(chip, decode), speedupAt(chip, cnn)}, 2);
    }
    a.print(std::cout);
    std::cout << "\n";

    // Sweep 2: off-chip bandwidth at the Table 2 array count.
    Table b("DSE: CMSwitch speedup vs CIM-MLC over off-chip bandwidth "
            "(B/cycle)");
    b.addRow({"extern_bw", "opt-6.7b decode", "resnet18"});
    for (double bw : {20.0, 40.0, 80.0, 160.0}) {
        ChipConfig chip = ChipConfig::dynaplasia();
        chip.externBw = bw;
        b.addRow(formatDouble(bw, 0),
                 {speedupAt(chip, decode), speedupAt(chip, cnn)}, 2);
    }
    b.print(std::cout);
    std::cout << "\nExpected: dual-mode flexibility is worth the most on "
                 "bandwidth-starved chips running low-AI workloads; ample "
                 "off-chip bandwidth erodes the memory-mode advantage.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
