/**
 * @file
 * Table 2: the evaluated CIM architecture configuration (Dynaplasia
 * style), printed through the DEHA, plus the PRIME variant used by the
 * Sec. 5.5 scalability study.
 */

#include "arch/deha.hpp"
#include "bench_util.hpp"

namespace cmswitch {

int
benchMain(int argc, char **argv)
{
    bench::parseArgs(argc, argv);

    Table t("Table 2: CIM architecture configuration");
    t.addRow({"parameter", "configuration"});
    ChipConfig c = ChipConfig::dynaplasia();
    t.addRow({"#_switch_array", std::to_string(c.numSwitchArrays)});
    t.addRow({"array_size", std::to_string(c.arrayRows) + "x"
                                + std::to_string(c.arrayCols)});
    t.addRow({"buffer_size", "10KBx8"});
    t.addRow({"internal_bw", "32b/cycle ("
                                 + formatDouble(c.internalBwPerArray, 0)
                                 + " B/cycle/array)"});
    t.addRow({"Methd_c2m / Methd_m2c", c.switchMethod});
    t.addRow({"L_c2m / L_m2c", std::to_string(c.switchC2mLatency)
                                   + " cycle/array"});
    t.print(std::cout);

    std::cout << "\nFull DEHA dumps:\n\n";
    std::cout << Deha(ChipConfig::dynaplasia()).describe() << "\n";
    std::cout << Deha(ChipConfig::prime()).describe() << "\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
