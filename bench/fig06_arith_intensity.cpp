/**
 * @file
 * Figure 6: (a) layer-wise arithmetic intensity inside ResNet-50 (the
 * three conv shapes of each of the four stages); (b) BERT-large
 * arithmetic intensity by operator class across sequence lengths,
 * showing FC-type classes outgrowing QKV-type classes.
 */

#include <set>

#include "bench_util.hpp"
#include "graph/analysis.hpp"
#include "models/model_zoo.hpp"

namespace cmswitch {

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);

    // (a) ResNet-50 layer-wise AI: first occurrence of each distinct
    // conv configuration, in network order.
    Graph resnet = buildResNet50(1);
    Table a("Fig. 6(a): ResNet-50 layer-wise arithmetic intensity");
    a.addRow({"#", "layer", "AI (FLOPs/byte)"});
    std::set<std::string> seen;
    int index = 0;
    for (const Operator &op : resnet.ops()) {
        if (op.kind != OpKind::kConv2d)
            continue;
        const TensorDesc &w = resnet.tensor(op.inputs[1]);
        std::string shape_key = w.shape.toString() + "/"
                              + std::to_string(op.conv.strideH);
        if (!seen.insert(shape_key).second)
            continue;
        if (++index > 12)
            break;
        OpProfile p = profileOp(resnet, op.id);
        a.addRow(std::to_string(index) + "  " + op.name + " "
                     + w.shape.toString(),
                 {p.aiFlopsPerByte()}, 1);
    }
    a.print(std::cout);

    // (b) BERT-large AI by operator class vs. sequence length.
    Table b("Fig. 6(b): BERT-large arithmetic intensity by class");
    b.addRow({"seq", "MHA(QKV)", "MHA(FC)", "FFN(FC)", "Other"});
    TransformerConfig cfg = TransformerConfig::bertLarge();
    cfg.layers = args.full ? cfg.layers : 2;
    const s64 seqs[] = {128, 512, 4096};
    for (s64 seq : seqs) {
        Graph g = buildTransformerPrefill(cfg, 1, seq);
        double qkv = 0, fc = 0, ffn = 0, other_macs = 0, other_traffic = 0;
        for (const ClassProfile &c : profileByClass(g)) {
            switch (c.cls) {
              case OpClass::kMhaQkvProj: qkv = c.aiFlopsPerByte(); break;
              case OpClass::kMhaOutProj: fc = c.aiFlopsPerByte(); break;
              case OpClass::kFfn: ffn = c.aiFlopsPerByte(); break;
              default:
                other_macs += static_cast<double>(c.macs);
                other_traffic += static_cast<double>(c.traffic);
                break;
            }
        }
        double other =
            other_traffic > 0 ? 2.0 * other_macs / other_traffic : 0.0;
        b.addRow(std::to_string(seq), {qkv, fc, ffn, other}, 1);
    }
    b.print(std::cout);
    std::cout << "\nPaper anchors: AI spans <150 to >1000 FLOPs/MOP as "
                 "sequence grows; FC classes rise fastest.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
