/**
 * @file
 * Ablation: dual-mode-aware sub-operator granularity (the t* balance of
 * DESIGN.md) vs. plain max-fill slicing, with the rest of CMSwitch
 * unchanged. Shows that on low-AI (decode) workloads the slice size is
 * the lever that frees arrays for memory mode.
 */

#include "bench_util.hpp"
#include "compiler/cmswitch_compiler.hpp"

namespace cmswitch {
namespace {

std::unique_ptr<Compiler>
maxFillCmSwitch(const ChipConfig &chip)
{
    CmSwitchOptions options;
    options.forceMaxFillSlicing = true;
    return std::make_unique<CmSwitchCompiler>(chip, options,
                                              "cmswitch-maxfill");
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();

    Table t("Ablation: dual-mode-aware slice size vs max-fill slicing");
    t.addRow({"workload", "maxfill/t* cycles", "t* mem%", "maxfill mem%"});

    struct Case
    {
        std::string label;
        Graph graph;
    };
    TransformerConfig opt = bench::trimmedConfig("opt-6.7b", args.full);
    TransformerConfig bert = bench::trimmedConfig("bert-large", args.full);
    std::vector<Case> cases;
    cases.push_back({"opt-6.7b decode kv512",
                     buildTransformerDecodeStep(opt, 1, 512)});
    cases.push_back({"bert-large prefill s64",
                     buildTransformerPrefill(bert, 1, 64)});
    cases.push_back({"vgg16 b1", buildVgg16(1)});

    for (Case &c : cases) {
        auto tstar = makeCmSwitchCompiler(chip);
        auto maxfill = maxFillCmSwitch(chip);
        CompileResult a = maxfill->compile(c.graph);
        CompileResult b = tstar->compile(c.graph);
        t.addRow(c.label,
                 {static_cast<double>(a.totalCycles())
                      / static_cast<double>(b.totalCycles()),
                  100.0 * b.avgMemoryArrayRatio(),
                  100.0 * a.avgMemoryArrayRatio()},
                 2);
    }
    t.print(std::cout);
    std::cout << "\nExpected: large win + high memory ratio on decode; "
                 "parity on compute-bound prefill/CNNs.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
