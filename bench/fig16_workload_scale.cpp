/**
 * @file
 * Figure 16: workload-scale study. For BERT-large, LLaMA2-7B, OPT-6.7B
 * and OPT-13B, sweep sequence length (and batch size with --full) and
 * report (i) the four compilers' performance normalized to PUMA, (ii)
 * CMSwitch's speedup over CIM-MLC (the red numbers), and (iii) the
 * bottom-row metric: average fraction of arrays in memory mode.
 */

#include "bench_util.hpp"

namespace cmswitch {
namespace {

struct Cell
{
    double speedupVsMlc = 0.0;
    double memRatio = 0.0;
    std::vector<double> normalized; // vs PUMA, all four compilers
};

Cell
runCell(const ChipConfig &chip, const std::string &model, s64 batch, s64 seq,
        bool full)
{
    TransformerConfig cfg = bench::trimmedConfig(model, full);
    auto compilers = makeAllCompilers(chip);
    std::vector<double> cycles;
    double mem_ratio = 0.0;
    for (auto &compiler : compilers) {
        EndToEndResult r;
        if (cfg.decoderOnly) {
            r = evaluateGenerative(*compiler, cfg, batch, seq, seq,
                                   full ? 4 : 2);
        } else {
            Graph g = buildTransformerPrefill(cfg, batch, seq);
            r = evaluateGraph(*compiler, g);
        }
        cycles.push_back(static_cast<double>(r.totalCycles()));
        if (compiler->name() == "cmswitch")
            mem_ratio = r.avgMemoryArrayRatio;
    }
    Cell cell;
    cell.speedupVsMlc = cycles[2] / cycles[3];
    cell.memRatio = mem_ratio;
    for (double c : cycles)
        cell.normalized.push_back(cycles[0] / c);
    return cell;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();

    const std::vector<std::string> models = {"bert-large", "llama2-7b",
                                             "opt-6.7b", "opt-13b"};
    std::vector<s64> batches = args.full ? std::vector<s64>{4, 8, 16}
                                         : std::vector<s64>{4};
    std::vector<s64> seqs = args.full
                          ? std::vector<s64>{32, 64, 128, 256, 512, 1024,
                                             2048}
                          : std::vector<s64>{32, 128, 512};

    for (const std::string &model : models) {
        Table t("Fig. 16: " + model
                + " — CMSwitch speedup vs CIM-MLC / memory-array ratio");
        std::vector<std::string> header = {"batch"};
        for (s64 s : seqs)
            header.push_back(concat("s", s));
        t.addRow(header);
        for (s64 batch : batches) {
            std::vector<std::string> row_speed = {concat("b", batch,
                                                         " speedup")};
            std::vector<std::string> row_ratio = {concat("b", batch,
                                                         " mem%")};
            for (s64 seq : seqs) {
                Cell cell = runCell(chip, model, batch, seq, args.full);
                row_speed.push_back(formatDouble(cell.speedupVsMlc, 2));
                row_ratio.push_back(
                    formatDouble(100.0 * cell.memRatio, 1) + "%");
            }
            t.addRow(row_speed);
            t.addRow(row_ratio);
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper anchors: BERT speedup 1.19x->1.0x as seq grows "
                 "(memory ratio -> 0); generative models 1.2-1.9x with "
                 "memory ratio falling from ~30% toward ~12%.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
