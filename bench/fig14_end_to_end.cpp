/**
 * @file
 * Figure 14: end-to-end speedup of PUMA / OCC / CIM-MLC / CMSwitch on
 * the six benchmark networks across batch sizes, normalized to PUMA,
 * with CMSwitch's speedup over the main baseline (CIM-MLC) called out,
 * plus the geomean row.
 *
 * Default run: batches {1, 4}, transformers trimmed to 2 layers
 * (identical blocks make the ratios layer-invariant); --full runs
 * batches {1, 2, 4, 8}.
 */

#include <cmath>

#include "bench_util.hpp"

namespace cmswitch {
namespace {

/** Evaluate a Fig. 14 entry with a trimmed transformer config. */
EndToEndResult
runEntry(Compiler &compiler, const ZooEntry &entry, s64 batch, bool full)
{
    const s64 seq = 64; // paper Sec. 5.2 sequence length
    if (entry.generative) {
        TransformerConfig cfg = bench::trimmedConfig(entry.name, full);
        return evaluateGenerative(compiler, cfg, batch, seq, seq,
                                  full ? 4 : 2);
    }
    if (entry.name == "bert-large") {
        TransformerConfig cfg = bench::trimmedConfig(entry.name, full);
        Graph g = buildTransformerPrefill(cfg, batch, seq);
        return evaluateGraph(compiler, g);
    }
    Graph g = buildModelByName(entry.name, batch, seq);
    return evaluateGraph(compiler, g);
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();

    std::vector<s64> batches = args.full ? std::vector<s64>{1, 2, 4, 8}
                                         : std::vector<s64>{1, 4};

    Table t("Fig. 14: normalized performance (vs PUMA) and CMSwitch "
            "speedup over CIM-MLC");
    t.addRow({"batch", "model", "puma", "occ", "cim-mlc", "cmswitch",
              "ours/mlc"});

    double geo_sum = 0.0;
    s64 geo_count = 0;
    for (s64 batch : batches) {
        for (const ZooEntry &entry : fig14Benchmarks()) {
            auto compilers = makeAllCompilers(chip);
            std::vector<double> cycles;
            for (auto &compiler : compilers) {
                cycles.push_back(static_cast<double>(
                    runEntry(*compiler, entry, batch, args.full)
                        .totalCycles()));
            }
            double puma = cycles[0];
            std::vector<double> normalized;
            for (double c : cycles)
                normalized.push_back(puma / c);
            double ours_vs_mlc = cycles[2] / cycles[3];
            geo_sum += std::log(ours_vs_mlc);
            ++geo_count;
            t.addRow(concat("b", batch, " ", entry.name),
                     {normalized[0], normalized[1], normalized[2],
                      normalized[3], ours_vs_mlc},
                     2);
        }
    }
    double geomean = std::exp(geo_sum / static_cast<double>(geo_count));
    t.addRow("geomean ours/mlc", {geomean}, 2);
    t.print(std::cout);
    std::cout << "\nPaper anchors: average 1.31x over CIM-MLC, max 2.03x "
                 "(OPT-13B); CNNs 1.06-1.48x.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
