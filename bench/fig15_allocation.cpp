/**
 * @file
 * Figure 15: compiled resource-allocation demonstrations — the network
 * segmentation and per-segment compute/memory array split for (a)
 * VGG-16 and (b) one OPT-6.7B decode layer.
 */

#include "bench_util.hpp"
#include "compiler/cmswitch_compiler.hpp"

namespace cmswitch {
namespace {

void
printSchedule(const std::string &title, const CmSwitchCompiler &compiler,
              const Graph &graph, s64 max_segments)
{
    ScheduleResult schedule;
    CompileResult r = compiler.compileWithSchedule(graph, &schedule);

    Table t(title);
    t.addRow({"segment", "ops", "compute", "memory", "%compute", "%memory"});
    s64 shown = 0;
    for (const SegmentDecision &d : schedule.segments) {
        if (++shown > max_segments) {
            t.addRow({"...", "", "", "", "", ""});
            break;
        }
        double total = static_cast<double>(d.alloc.plan.total());
        t.addRow({std::to_string(d.lo) + ".." + std::to_string(d.hi - 1),
                  std::to_string(d.hi - d.lo),
                  std::to_string(d.alloc.plan.computeArrays),
                  std::to_string(d.alloc.plan.memoryArrays),
                  formatDouble(100.0 * d.alloc.plan.computeArrays / total, 0)
                      + "%",
                  formatDouble(100.0 * d.alloc.plan.memoryArrays / total, 0)
                      + "%"});
    }
    t.print(std::cout);
    std::cout << "segments=" << r.numSegments()
              << "  avg memory ratio="
              << formatDouble(r.avgMemoryArrayRatio(), 3) << "\n\n";
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);

    printSchedule("Fig. 15(a): VGG-16 segment allocation", compiler,
                  buildVgg16(1), args.full ? 64 : 24);

    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 1;
    printSchedule("Fig. 15(b): OPT-6.7B one decode layer (kv=512)",
                  compiler, buildTransformerDecodeStep(cfg, 1, 512),
                  args.full ? 96 : 24);

    std::cout << "Paper anchors: early VGG layers lean compute-heavy, "
                 "later conv layers gain memory arrays; OPT attention "
                 "ops allocate 33-67% of their arrays to memory mode.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
