/**
 * @file
 * Section 5.5: (a) the dual-mode switch process contributes only a few
 * percent of total execution time (the paper quotes 3-5% for the whole
 * store/switch/reload sequence; the Eq. 1 signal change itself is far
 * below that); (b) scalability — retargeting the identical flow to a
 * PRIME-style ReRAM chip still yields speedups over CIM-MLC.
 */

#include "bench_util.hpp"
#include "sim/timing.hpp"

namespace cmswitch {

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig dyna = ChipConfig::dynaplasia();

    // (a) switch-process share of end-to-end time.
    Table a("Sec. 5.5(a): dual-mode switch process share of runtime "
            "(CMSwitch on Dynaplasia)");
    a.addRow({"model", "Eq.1 switch %", "switch process % (incl. "
              "store/reload)"});
    for (const ZooEntry &entry : fig14Benchmarks()) {
        auto ours = makeCmSwitchCompiler(dyna);
        EndToEndResult r;
        Cycles writeback;
        if (entry.generative) {
            TransformerConfig cfg = bench::trimmedConfig(entry.name,
                                                         args.full);
            Graph step = buildTransformerDecodeStep(cfg, 1, 256);
            CompileResult c = ours->compile(step);
            r.prefillCycles = c.totalCycles();
            r.switchCycles = c.latency.modeSwitch;
            writeback = c.latency.writeback;
        } else if (entry.name == "bert-large") {
            TransformerConfig cfg = bench::trimmedConfig(entry.name,
                                                         args.full);
            CompileResult c =
                ours->compile(buildTransformerPrefill(cfg, 1, 64));
            r.prefillCycles = c.totalCycles();
            r.switchCycles = c.latency.modeSwitch;
            writeback = c.latency.writeback;
        } else {
            CompileResult c =
                ours->compile(buildModelByName(entry.name, 1));
            r.prefillCycles = c.totalCycles();
            r.switchCycles = c.latency.modeSwitch;
            writeback = c.latency.writeback;
        }
        double total = static_cast<double>(r.prefillCycles);
        a.addRow(entry.name,
                 {100.0 * static_cast<double>(r.switchCycles) / total,
                  100.0 * static_cast<double>(r.switchCycles + writeback)
                      / total},
                 2);
    }
    a.print(std::cout);

    // (b) PRIME scalability.
    ChipConfig prime = ChipConfig::prime();
    Table b("Sec. 5.5(b): CMSwitch speedup over CIM-MLC on the PRIME "
            "configuration");
    b.addRow({"model", "speedup"});
    const std::string models[] = {"bert-large", "llama2-7b", "opt-13b"};
    for (const std::string &model : models) {
        TransformerConfig cfg = bench::trimmedConfig(model, args.full);
        auto ours = makeCmSwitchCompiler(prime);
        auto mlc = makeCimMlcCompiler(prime);
        double x, y;
        if (cfg.decoderOnly) {
            x = static_cast<double>(
                evaluateGenerative(*mlc, cfg, 1, 64, 64, 2).totalCycles());
            y = static_cast<double>(
                evaluateGenerative(*ours, cfg, 1, 64, 64, 2).totalCycles());
        } else {
            Graph g = buildTransformerPrefill(cfg, 1, 64);
            x = static_cast<double>(
                evaluateGraph(*mlc, g).totalCycles());
            y = static_cast<double>(
                evaluateGraph(*ours, g).totalCycles());
        }
        b.addRow(model, {x / y}, 2);
    }
    b.print(std::cout);
    std::cout << "\nPaper anchors: switch process ~3-5% of runtime; PRIME "
                 "speedups 1.48x (BERT), 1.09x (LLaMA-7B), 1.10x "
                 "(OPT-13B).\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
