/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every harness supports `--full` to run the paper's complete sweep;
 * the default configuration is trimmed (fewer transformer layers,
 * fewer batch sizes) so the whole bench suite completes in minutes.
 * Speedup *ratios* are unaffected by the layer trimming because
 * transformer blocks are identical (see EXPERIMENTS.md).
 */

#ifndef CMSWITCH_BENCH_BENCH_UTIL_HPP
#define CMSWITCH_BENCH_BENCH_UTIL_HPP

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace cmswitch::bench {

struct BenchArgs
{
    bool full = false;

    /** @{ Harness-driven drivers (fig18): JSON report destination and
     *  sampling overrides (0 / -1 = driver default). */
    std::string out;
    int repeats = 0;
    int warmups = -1;
    /** @} */
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            args.full = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            args.out = argv[++i];
        else if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc)
            args.repeats = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--warmups") == 0 && i + 1 < argc)
            args.warmups = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--help") == 0) {
            std::cout
                << "usage: " << argv[0]
                << " [--full] [--out report.json] [--repeats N]"
                   " [--warmups N]\n"
                << "  --full       run the paper's complete sweep\n"
                << "  --out PATH   write the cmswitch-bench-v1 JSON report\n"
                << "  --repeats N  timed samples per measurement\n"
                << "  --warmups N  untimed runs before sampling\n";
            std::exit(0);
        }
    }
    return args;
}

/** Transformer config trimmed for bench runtime (identical blocks make
 *  speedup ratios layer-count invariant). */
inline TransformerConfig
trimmedConfig(const std::string &name, bool full)
{
    TransformerConfig cfg = transformerConfigByName(name);
    if (!full)
        cfg.layers = std::min<s64>(cfg.layers, 2);
    return cfg;
}

} // namespace cmswitch::bench

#endif // CMSWITCH_BENCH_BENCH_UTIL_HPP
