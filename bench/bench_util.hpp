/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every harness supports `--full` to run the paper's complete sweep;
 * the default configuration is trimmed (fewer transformer layers,
 * fewer batch sizes) so the whole bench suite completes in minutes.
 * Speedup *ratios* are unaffected by the layer trimming because
 * transformer blocks are identical (see EXPERIMENTS.md).
 */

#ifndef CMSWITCH_BENCH_BENCH_UTIL_HPP
#define CMSWITCH_BENCH_BENCH_UTIL_HPP

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace cmswitch::bench {

struct BenchArgs
{
    bool full = false;
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            args.full = true;
        else if (std::strcmp(argv[i], "--help") == 0) {
            std::cout << "usage: " << argv[0] << " [--full]\n"
                      << "  --full   run the paper's complete sweep\n";
            std::exit(0);
        }
    }
    return args;
}

/** Transformer config trimmed for bench runtime (identical blocks make
 *  speedup ratios layer-count invariant). */
inline TransformerConfig
trimmedConfig(const std::string &name, bool full)
{
    TransformerConfig cfg = transformerConfigByName(name);
    if (!full)
        cfg.layers = std::min<s64>(cfg.layers, 2);
    return cfg;
}

} // namespace cmswitch::bench

#endif // CMSWITCH_BENCH_BENCH_UTIL_HPP
