/**
 * @file
 * Figure 5: (a)(b) normalized-performance heat-maps of LLaMA2 (decode)
 * and ResNet-50 over the (memory arrays, compute arrays) grid of the
 * 100-array theoretical chip; (c) average arithmetic intensity of the
 * benchmark networks (FLOPs per byte of streamed traffic).
 */

#include "bench_util.hpp"
#include "cost/cost_model.hpp"
#include "graph/analysis.hpp"
#include "models/model_zoo.hpp"

namespace cmswitch {
namespace {

double
rateAt(const ChipConfig &chip, double ai, s64 compute, s64 memory)
{
    double c = static_cast<double>(compute) * chip.opPerCycle;
    double m = (static_cast<double>(memory) * chip.internalBwPerArray
                + chip.dMain())
             * ai;
    return std::min(c, m);
}

void
printHeatmap(const ChipConfig &chip, const std::string &label, double ai)
{
    const s64 total = chip.numSwitchArrays;
    double best = 0.0;
    for (s64 c = 1; c <= total; ++c)
        for (s64 m = 0; c + m <= total; m += 1)
            best = std::max(best, rateAt(chip, ai, c, m));

    Table t("Fig. 5: " + label + " normalized perf over (compute, memory) "
            "arrays");
    std::vector<std::string> header = {"com\\mem"};
    for (s64 m = 0; m <= 80; m += 20)
        header.push_back(std::to_string(m));
    t.addRow(header);
    for (s64 c = 20; c <= 100; c += 20) {
        std::vector<std::string> row = {std::to_string(c)};
        for (s64 m = 0; m <= 80; m += 20) {
            if (c + m > total) {
                row.push_back("-");
            } else {
                row.push_back(
                    formatDouble(rateAt(chip, ai, c, m) / best, 2));
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
benchMain(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::theoretical100();

    TransformerConfig llama = TransformerConfig::llama2_7b();
    llama.layers = 2;
    double llama_ai =
        0.5
        * profileGraph(buildTransformerDecodeStep(llama, 1, 512))
              .aiFlopsPerByte();
    double resnet_ai = 0.5 * profileGraph(buildResNet50(1)).aiFlopsPerByte();

    printHeatmap(chip, "LLaMA2 (decode)", llama_ai);
    printHeatmap(chip, "ResNet-50", resnet_ai);

    // Fig. 5(c): average arithmetic intensity per model.
    Table c("Fig. 5(c): average arithmetic intensity (FLOPs/byte)");
    c.addRow({"model", "AI"});
    TransformerConfig bert_b = TransformerConfig::bertBase();
    bert_b.layers = 2;
    TransformerConfig bert_l = TransformerConfig::bertLarge();
    bert_l.layers = 2;
    c.addRow("llama2 (decode)", {2.0 * llama_ai}, 1);
    c.addRow("VGG",
             {profileGraph(buildVgg16(1)).aiFlopsPerByte()}, 1);
    c.addRow("ResNet50", {2.0 * resnet_ai}, 1);
    c.addRow("Bert-base (seq 64)",
             {profileGraph(buildTransformerPrefill(bert_b, 1, 64))
                  .aiFlopsPerByte()},
             1);
    c.addRow("Bert-large (seq 64)",
             {profileGraph(buildTransformerPrefill(bert_l, 1, 64))
                  .aiFlopsPerByte()},
             1);
    c.print(std::cout);
    std::cout << "\nPaper anchors: ResNet-50 AI ~66, LLaMA2 decode AI ~2; "
                 "green zone hugs low-compute for LLaMA2 and high-compute "
                 "for ResNet-50.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
