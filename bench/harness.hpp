/**
 * @file
 * Reusable compile-time measurement harness for the bench drivers.
 *
 * The paper-figure drivers print human tables; CI needs machine-
 * readable numbers with enough statistical hygiene to gate on. The
 * harness provides both halves:
 *
 *  - bench::Harness — steady-clock timing with warmup iterations and a
 *    trimmed-mean over repeats, so one scheduler hiccup cannot fail the
 *    perf gate;
 *  - bench::sampleMemory — peak/current RSS from /proc/self/status
 *    (-1 where unavailable; reports omit unmeasured fields instead of
 *    publishing the sentinel), so memory regressions show up in the
 *    trajectory too;
 *  - bench::BenchReport — the versioned `cmswitch-bench-v1` JSON
 *    report (schema documented in README.md) written via the
 *    deterministic JsonWriter, consumed by tests/bench_gate.cmake and
 *    uploaded by CI as BENCH_compile_time.json.
 */

#ifndef CMSWITCH_BENCH_HARNESS_HPP
#define CMSWITCH_BENCH_HARNESS_HPP

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/common.hpp"

namespace cmswitch::bench {

/** Process memory usage in KiB; -1 where the platform can't say. */
struct MemorySample
{
    s64 rssKb = -1;     ///< current resident set (VmRSS)
    s64 peakRssKb = -1; ///< high-water mark (VmHWM)
};

/** Read /proc/self/status (Linux); fields stay -1 elsewhere. */
MemorySample sampleMemory();

/** Timing statistics of one benchmarked function. */
struct TimingStats
{
    std::vector<double> samples; ///< seconds, in run order
    double trimmedMean = 0.0;    ///< mean after trimming both tails
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Warmup + repeat + trimmed-mean steady-clock timer. */
class Harness
{
  public:
    struct Options
    {
        int warmups = 1; ///< untimed runs before sampling
        int repeats = 5; ///< timed samples
        /** Fraction of samples dropped from *each* tail before the
         *  mean (0.2 with 5 repeats drops the best and worst run). */
        double trimFraction = 0.2;
    };

    Harness(); ///< all-default options
    explicit Harness(Options options);

    /** Run @p fn warmups + repeats times; time the repeats. */
    TimingStats time(const std::function<void()> &fn) const;

    const Options &options() const { return options_; }

  private:
    Options options_;
};

/** One benchmark row of a cmswitch-bench-v1 report. */
struct BenchRecord
{
    std::string name;
    /** Metric key/value pairs, emitted in insertion order. */
    std::vector<std::pair<std::string, double>> metrics;

    BenchRecord &
    metric(std::string key, double value)
    {
        metrics.emplace_back(std::move(key), value);
        return *this;
    }
};

/**
 * Builder for the versioned machine-readable report. Keys are emitted
 * in insertion order so reports diff cleanly run-over-run.
 */
class BenchReport
{
  public:
    BenchReport(std::string benchName, const Harness::Options &options);

    /** Free-form configuration note (e.g. "full" vs trimmed sweep). */
    void setConfig(const std::string &key, const std::string &value);

    /** Numeric configuration note, emitted as a JSON number. */
    void setConfig(const std::string &key, s64 value);

    void add(BenchRecord record);

    /** Cross-workload aggregate (geomeans etc.). */
    void setSummary(std::string key, double value);

    /** The serialized cmswitch-bench-v1 document. */
    std::string toJson() const;

    /** Write toJson() to @p path (fatal on I/O failure). */
    void write(const std::string &path) const;

  private:
    std::string benchName_;
    Harness::Options options_;
    struct ConfigEntry
    {
        std::string key;
        std::string text; // used when !numeric
        s64 number = 0;   // used when numeric
        bool numeric = false;
    };
    std::vector<ConfigEntry> config_;
    std::vector<BenchRecord> records_;
    std::vector<std::pair<std::string, double>> summary_;
};

/** Geometric mean of @p values (which must all be > 0). */
double geomean(const std::vector<double> &values);

} // namespace cmswitch::bench

#endif // CMSWITCH_BENCH_HARNESS_HPP
