/**
 * @file
 * Extension: energy comparison across compilers. The paper claims
 * dual-mode switching improves energy efficiency (Sec. 3.2) without
 * reporting numbers; this harness prices every compiler's program with
 * the DEHA-derived energy model so the claim is measurable.
 */

#include "bench_util.hpp"
#include "sim/energy.hpp"

namespace cmswitch {

int
benchMain(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    ChipConfig chip = ChipConfig::dynaplasia();
    Deha deha(chip);
    EnergyModel model(deha, EnergyParams::dynaplasia());

    Table t("Extension: energy per inference pass (uJ) and CMSwitch "
            "saving vs CIM-MLC");
    t.addRow({"workload", "puma", "occ", "cim-mlc", "cmswitch",
              "mlc/ours"});

    struct Case
    {
        std::string label;
        Graph graph;
    };
    TransformerConfig opt = bench::trimmedConfig("opt-6.7b", args.full);
    TransformerConfig bert = bench::trimmedConfig("bert-large", args.full);
    std::vector<Case> cases;
    cases.push_back({"opt-6.7b decode kv512",
                     buildTransformerDecodeStep(opt, 1, 512)});
    cases.push_back({"bert-large prefill s64",
                     buildTransformerPrefill(bert, 1, 64)});
    cases.push_back({"resnet18 b1", buildResNet18(1)});
    cases.push_back({"vgg16 b1", buildVgg16(1)});

    for (Case &c : cases) {
        std::vector<double> uj;
        for (auto &compiler : makeAllCompilers(chip)) {
            CompileResult r = compiler->compile(c.graph);
            uj.push_back(
                model.price(r.program, r.totalCycles()).totalUj());
        }
        t.addRow(c.label, {uj[0], uj[1], uj[2], uj[3], uj[2] / uj[3]}, 2);
    }
    t.print(std::cout);
    std::cout << "\nExpected: parity on decode (weight DMA dominates and "
                 "is identical for every compiler), savings on "
                 "activation-heavy CNNs (spills become on-chip "
                 "hand-overs), small overheads possible where weight "
                 "duplication loads extra copies.\n";
    return 0;
}

} // namespace cmswitch

int
main(int argc, char **argv)
{
    return cmswitch::benchMain(argc, argv);
}
