#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/json.hpp"
#include "support/logging.hpp"

namespace cmswitch::bench {

MemorySample
sampleMemory()
{
    MemorySample sample;
#ifdef __linux__
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        s64 *field = nullptr;
        if (line.rfind("VmRSS:", 0) == 0)
            field = &sample.rssKb;
        else if (line.rfind("VmHWM:", 0) == 0)
            field = &sample.peakRssKb;
        if (field != nullptr) {
            std::istringstream fields(line.substr(line.find(':') + 1));
            s64 value = -1;
            if (fields >> value)
                *field = value; // /proc reports kB
        }
    }
#endif
    return sample;
}

Harness::Harness() : Harness(Options{})
{
}

Harness::Harness(Options options) : options_(options)
{
    cmswitch_assert(options_.repeats >= 1, "need at least one repeat");
    cmswitch_assert(options_.warmups >= 0, "negative warmup count");
    cmswitch_assert(options_.trimFraction >= 0.0
                        && options_.trimFraction < 0.5,
                    "trim fraction must be in [0, 0.5)");
}

TimingStats
Harness::time(const std::function<void()> &fn) const
{
    for (int i = 0; i < options_.warmups; ++i)
        fn();

    TimingStats stats;
    stats.samples.reserve(static_cast<std::size_t>(options_.repeats));
    for (int i = 0; i < options_.repeats; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        stats.samples.push_back(
            std::chrono::duration<double>(t1 - t0).count());
    }

    std::vector<double> sorted = stats.samples;
    std::sort(sorted.begin(), sorted.end());
    stats.min = sorted.front();
    stats.max = sorted.back();
    double sum = 0.0;
    for (double s : sorted)
        sum += s;
    stats.mean = sum / static_cast<double>(sorted.size());

    auto trim = static_cast<std::size_t>(
        std::floor(options_.trimFraction
                   * static_cast<double>(sorted.size())));
    double trimmed_sum = 0.0;
    std::size_t kept = sorted.size() - 2 * trim;
    for (std::size_t i = trim; i < sorted.size() - trim; ++i)
        trimmed_sum += sorted[i];
    stats.trimmedMean = trimmed_sum / static_cast<double>(kept);
    return stats;
}

BenchReport::BenchReport(std::string benchName,
                         const Harness::Options &options)
    : benchName_(std::move(benchName)), options_(options)
{
}

void
BenchReport::setConfig(const std::string &key, const std::string &value)
{
    config_.push_back(ConfigEntry{key, value, 0, false});
}

void
BenchReport::setConfig(const std::string &key, s64 value)
{
    config_.push_back(ConfigEntry{key, {}, value, true});
}

void
BenchReport::add(BenchRecord record)
{
    records_.push_back(std::move(record));
}

void
BenchReport::setSummary(std::string key, double value)
{
    summary_.emplace_back(std::move(key), value);
}

std::string
BenchReport::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("schema", "cmswitch-bench-v1");
    w.field("bench", benchName_);

    w.key("config").beginObject();
    w.field("warmups", static_cast<s64>(options_.warmups));
    w.field("repeats", static_cast<s64>(options_.repeats));
    w.field("trim_fraction", options_.trimFraction);
    for (const ConfigEntry &entry : config_) {
        if (entry.numeric)
            w.field(entry.key, entry.number);
        else
            w.field(entry.key, entry.text);
    }
    w.endObject();

    // Sampling failures (non-Linux, or a truncated /proc read) leave
    // the -1 sentinels; omit those fields rather than publish a bogus
    // negative size — consumers (tests/bench_gate.cmake) treat an
    // absent field as "not measured" and skip it.
    MemorySample mem = sampleMemory();
    w.key("memory").beginObject();
    if (mem.rssKb >= 0)
        w.field("rss_kb", mem.rssKb);
    if (mem.peakRssKb >= 0)
        w.field("peak_rss_kb", mem.peakRssKb);
    w.endObject();

    w.key("workloads").beginArray();
    for (const BenchRecord &record : records_) {
        w.beginObject();
        w.field("name", record.name);
        w.key("metrics").beginObject();
        for (const auto &[key, value] : record.metrics)
            w.field(key, value);
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("summary").beginObject();
    for (const auto &[key, value] : summary_)
        w.field(key, value);
    w.endObject();

    w.endObject();
    return w.str();
}

void
BenchReport::write(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    cmswitch_fatal_if(!out, "cannot open bench report file ", path);
    out << toJson() << "\n";
    out.flush();
    cmswitch_fatal_if(!out, "failed writing bench report ", path);
}

double
geomean(const std::vector<double> &values)
{
    cmswitch_assert(!values.empty(), "geomean of nothing");
    double log_sum = 0.0;
    for (double v : values) {
        cmswitch_assert(v > 0.0, "geomean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace cmswitch::bench
