/**
 * @file
 * LLM inference deployment: compiles OPT-6.7B (trimmed to two layers
 * for demo runtime; blocks are identical) for a dual-mode CIM chip and
 * walks through what the paper's introduction motivates — the decode
 * phase is memory-hungry, so CMSwitch flips most arrays into memory
 * mode and wins over every fixed-mode baseline.
 *
 * Build & run:  ./build/examples/llm_inference
 */

#include <iostream>

#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "metaop/printer.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int
main()
{
    using namespace cmswitch;

    ChipConfig chip = ChipConfig::dynaplasia();
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2; // demo size; per-block results repeat across layers

    const s64 batch = 1, prompt = 128, generate = 128;
    std::cout << "Deploying " << cfg.name << " (" << cfg.layers
              << " layers), prompt " << prompt << " tokens, generating "
              << generate << " tokens, batch " << batch << "\n\n";

    Table t("end-to-end latency by compiler (cycles)");
    t.addRow({"compiler", "prefill", "decode", "total", "mem-array %"});
    Cycles best_total = 0;
    for (auto &compiler : makeAllCompilers(chip)) {
        EndToEndResult r = evaluateGenerative(*compiler, cfg, batch, prompt,
                                              generate, /*kvBuckets=*/2);
        t.addRow({compiler->name(), std::to_string(r.prefillCycles),
                  std::to_string(r.decodeCycles),
                  std::to_string(r.totalCycles()),
                  formatDouble(100.0 * r.avgMemoryArrayRatio, 1) + "%"});
        best_total = r.totalCycles();
    }
    t.print(std::cout);

    // Show the dual-mode switching schedule of one decode step.
    auto ours = makeCmSwitchCompiler(chip);
    Graph step = buildTransformerDecodeStep(cfg, batch, prompt + generate);
    CompileResult r = ours->compile(step);
    std::cout << "\nDecode-step program (first segments):\n";
    std::string text = printProgram(r.program);
    std::size_t cut = 0;
    for (int lines = 0; lines < 30 && cut != std::string::npos; ++lines)
        cut = text.find('\n', cut + 1);
    std::cout << text.substr(0, cut) << "\n...\n";

    std::cout << "\nOne decode step: " << r.totalCycles()
              << " cycles with " << r.numSegments() << " segments, "
              << formatDouble(100.0 * r.avgMemoryArrayRatio(), 1)
              << "% of array allocations in memory mode.\n";
    (void)best_total;
    return 0;
}
