/**
 * @file
 * CNN deployment: compiles the paper's convolutional benchmarks
 * (MobileNet-V2 / ResNet-18 / VGG-16) across batch sizes, comparing
 * all four compilers and showing where the dual-mode allocation puts
 * memory-mode arrays inside VGG-16 (later, wider layers).
 *
 * Build & run:  ./build/examples/cnn_deployment
 */

#include <iostream>

#include "baselines/baseline.hpp"
#include "compiler/cmswitch_compiler.hpp"
#include "eval/evaluation.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int
main()
{
    using namespace cmswitch;

    ChipConfig chip = ChipConfig::dynaplasia();
    const std::string models[] = {"mobilenetv2", "resnet18", "vgg16"};
    const s64 batches[] = {1, 4};

    Table t("CNN latency (cycles) by compiler");
    t.addRow({"model", "batch", "puma", "occ", "cim-mlc", "cmswitch",
              "ours/mlc"});
    for (const std::string &model : models) {
        for (s64 batch : batches) {
            Graph g = buildModelByName(model, batch);
            std::vector<double> cycles;
            for (auto &compiler : makeAllCompilers(chip)) {
                cycles.push_back(static_cast<double>(
                    evaluateGraph(*compiler, g).totalCycles()));
            }
            t.addRow({model, std::to_string(batch),
                      formatDouble(cycles[0], 0), formatDouble(cycles[1], 0),
                      formatDouble(cycles[2], 0), formatDouble(cycles[3], 0),
                      formatDouble(cycles[2] / cycles[3], 2)});
        }
    }
    t.print(std::cout);

    // Where do the memory-mode arrays go inside VGG-16?
    CmSwitchCompiler ours(chip);
    CompileResult r = ours.compile(buildVgg16(1));
    std::cout << "\nVGG-16 per-segment allocation (CMSwitch):\n";
    for (const SegmentRecord &seg : r.program.segments()) {
        std::cout << "  segment " << seg.index << ": "
                  << seg.plan.computeArrays << " compute / "
                  << seg.plan.memoryArrays << " memory";
        if (seg.reusedArrays > 0)
            std::cout << " (+" << seg.reusedArrays << " reused buffers)";
        std::cout << "\n";
    }
    return 0;
}
