/**
 * @file
 * Quickstart: the whole CMSwitch pipeline on a small MLP in ~50 lines.
 *
 *   1. build (or import) a computation graph;
 *   2. compile it for a dual-mode CIM chip;
 *   3. inspect the meta-operator program (CM.switch & friends);
 *   4. validate the program and verify it bit-exactly against the
 *      reference executor;
 *   5. price it on the timing simulator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "compiler/cmswitch_compiler.hpp"
#include "metaop/printer.hpp"
#include "metaop/validator.hpp"
#include "models/model_zoo.hpp"
#include "sim/functional.hpp"
#include "sim/timing.hpp"
#include "support/strings.hpp"

int
main()
{
    using namespace cmswitch;

    // 1. A batch-4 two-layer MLP. Any Graph works: build your own or
    //    parse one from the textual exchange format (graph/serialize.hpp).
    Graph model = buildTinyMlp(/*batch=*/4, /*inDim=*/256, /*hidden=*/512,
                               /*outDim=*/128);

    // 2. Compile for the Dynaplasia-style default chip.
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    CompileResult result = compiler.compile(model);

    std::cout << "compiled " << model.name() << " into "
              << result.numSegments() << " segment(s), estimated "
              << result.totalCycles() << " cycles\n"
              << "  intra " << result.latency.intra
              << " | write-back " << result.latency.writeback
              << " | mode-switch " << result.latency.modeSwitch
              << " | weight rewrite " << result.latency.rewrite << "\n\n";

    // 3. The dual-mode meta-operator program (paper Fig. 13 syntax).
    std::cout << printProgram(result.program) << "\n";

    // 4. Structural validation + functional verification.
    Deha deha(chip);
    ValidationReport report = validateProgram(result.program, deha);
    std::cout << "validator: " << report.summary() << "\n";
    s64 mismatches = verifyProgram(model, result.program, deha);
    std::cout << "functional check vs reference executor: "
              << (mismatches == 0 ? "bit-exact" : "MISMATCH") << "\n";

    // 5. Independent cycle accounting by the timing simulator.
    TimingReport timing = TimingSimulator(deha).run(result.program);
    std::cout << "timing simulator: " << timing.total()
              << " cycles (switch share "
              << formatDouble(100.0 * timing.switchShare(), 3) << "%)\n";
    return mismatches == 0 && report.ok() ? 0 : 1;
}
