/**
 * @file
 * Custom hardware: the DEHA (paper Fig. 8) is plain data, so targeting
 * a new dual-mode chip means filling one struct. This example defines
 * an edge-class chip (fewer, smaller arrays, narrow DRAM link), prints
 * its abstraction, and compares BERT-base latency and mode allocation
 * against the Dynaplasia and PRIME presets.
 *
 * Build & run:  ./build/examples/custom_hardware
 */

#include <iostream>

#include "arch/deha.hpp"
#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int
main()
{
    using namespace cmswitch;

    // An edge-class dual-mode CIM chip.
    ChipConfig edge;
    edge.name = "edge-cim";
    edge.numSwitchArrays = 32;
    edge.arrayRows = 128;
    edge.arrayCols = 128;
    edge.bufferBytes = 16 * 1024;
    edge.internalBwPerArray = 2.0;
    edge.externBw = 12.0; // narrow LPDDR link
    edge.bufferBw = 4.0;
    edge.opPerCycle = 32.0;
    edge.switchMethod = "wordline-driver";
    edge.switchC2mLatency = 2;
    edge.switchM2cLatency = 2;
    edge.writeRowLatency = 1;
    edge.validate();

    std::cout << Deha(edge).describe() << "\n";

    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 2;
    Graph model = buildTransformerPrefill(cfg, 1, 64);

    Table t("BERT-base (2 layers, seq 64) across chips");
    t.addRow({"chip", "cim-mlc cycles", "cmswitch cycles", "speedup",
              "mem-array %"});
    for (const ChipConfig &chip :
         {edge, ChipConfig::dynaplasia(), ChipConfig::prime()}) {
        auto mlc = makeCimMlcCompiler(chip);
        auto ours = makeCmSwitchCompiler(chip);
        EndToEndResult a = evaluateGraph(*mlc, model);
        EndToEndResult b = evaluateGraph(*ours, model);
        t.addRow({chip.name, std::to_string(a.totalCycles()),
                  std::to_string(b.totalCycles()),
                  formatDouble(static_cast<double>(a.totalCycles())
                                   / static_cast<double>(b.totalCycles()),
                               2),
                  formatDouble(100.0 * b.avgMemoryArrayRatio, 1) + "%"});
    }
    t.print(std::cout);

    std::cout << "\nSmaller chips lean harder on memory mode: less "
                 "on-chip capacity makes bandwidth the binding "
                 "constraint.\n";
    return 0;
}
