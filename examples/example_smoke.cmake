# Smoke-run one example binary: it must exit 0 and actually say
# something (an example that prints nothing teaches nothing, and an
# empty stdout+stderr usually means it silently did no work).
# Run as `cmake -DEXAMPLE=<exe> -P example_smoke.cmake`.

if(NOT EXAMPLE)
    message(FATAL_ERROR "pass -DEXAMPLE=<path to example binary>")
endif()

execute_process(COMMAND ${EXAMPLE}
                RESULT_VARIABLE result
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "${EXAMPLE} exited ${result}:\n${out}${err}")
endif()

string(STRIP "${out}${err}" combined)
if(combined STREQUAL "")
    message(FATAL_ERROR "${EXAMPLE} produced no output")
endif()

message(STATUS "example_smoke: ${EXAMPLE} exited 0 with output")
