/** @file Unit tests for the computation-graph IR. */

#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(Shape, Basics)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.numElements(), 24);
    EXPECT_EQ(s.leadingElements(), 6);
    EXPECT_EQ(s.lastDim(), 4);
    EXPECT_EQ(s.toString(), "[2x3x4]");

    Shape scalar;
    EXPECT_EQ(scalar.numElements(), 1);
    EXPECT_EQ(scalar.lastDim(), 1);
}

TEST(Tensor, BytesUseDtype)
{
    TensorDesc t{"t", Shape{4, 4}, DType::kInt32, TensorKind::kActivation};
    EXPECT_EQ(t.bytes(), 64);
    t.dtype = DType::kInt8;
    EXPECT_EQ(t.bytes(), 16);
}

TEST(Graph, ProducersAndConsumers)
{
    Graph g = testing::chainMlp(3);
    // Tensor x feeds fc0 only.
    EXPECT_FALSE(g.producerOf(0).has_value());
    auto consumers = g.consumersOf(0);
    ASSERT_EQ(consumers.size(), 1u);
    EXPECT_EQ(g.op(consumers[0]).name, "fc0");
}

TEST(Graph, TopoOrderIsStable)
{
    Graph g = testing::chainMlp(4);
    auto order = g.topoOrder();
    ASSERT_EQ(order.size(), 4u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(g.op(order[i]).name, "fc" + std::to_string(i));
}

TEST(Graph, CimOpsFiltersFunctionUnits)
{
    Graph g("mixed");
    TensorId x = g.addTensor("x", Shape{1, 8}, DType::kInt8,
                             TensorKind::kInput);
    TensorId w = g.addTensor("w", Shape{8, 8}, DType::kInt8,
                             TensorKind::kWeight);
    TensorId y = g.addTensor("y", Shape{1, 8});
    Operator mm;
    mm.name = "mm";
    mm.kind = OpKind::kMatMul;
    mm.inputs = {x, w};
    mm.outputs = {y};
    g.addOp(mm);
    TensorId z = g.addTensor("z", Shape{1, 8}, DType::kInt8,
                             TensorKind::kOutput);
    Operator act;
    act.name = "act";
    act.kind = OpKind::kActivation;
    act.activationName = "relu";
    act.inputs = {y};
    act.outputs = {z};
    g.addOp(act);

    EXPECT_EQ(g.cimOps().size(), 1u);
    EXPECT_EQ(g.numOps(), 2);
}

TEST(Graph, DirectlyFeeds)
{
    Graph g = testing::chainMlp(3);
    EXPECT_TRUE(g.directlyFeeds(0, 1));
    EXPECT_FALSE(g.directlyFeeds(0, 2));
    EXPECT_FALSE(g.directlyFeeds(1, 0));
}

TEST(Graph, TotalWeightBytes)
{
    Graph g = testing::chainMlp(2, /*dim=*/16);
    EXPECT_EQ(g.totalWeightBytes(), 2 * 16 * 16);
}

TEST(GraphDeath, CycleDetected)
{
    Graph g("cyclic");
    TensorId a = g.addTensor("a", Shape{1, 4});
    TensorId b = g.addTensor("b", Shape{1, 4});
    Operator o1;
    o1.name = "o1";
    o1.kind = OpKind::kElementwiseAdd;
    o1.inputs = {a};
    o1.outputs = {b};
    g.addOp(o1);
    Operator o2;
    o2.name = "o2";
    o2.kind = OpKind::kElementwiseAdd;
    o2.inputs = {b};
    o2.outputs = {a};
    g.addOp(o2);
    EXPECT_DEATH(g.topoOrder(), "cycle");
}

TEST(GraphDeath, DoubleProducerRejected)
{
    Graph g("dup");
    TensorId a = g.addTensor("a", Shape{1, 4});
    TensorId b = g.addTensor("b", Shape{1, 4});
    Operator o1;
    o1.name = "o1";
    o1.kind = OpKind::kElementwiseAdd;
    o1.inputs = {a};
    o1.outputs = {b};
    g.addOp(o1);
    Operator o2 = o1;
    o2.name = "o2";
    EXPECT_DEATH(g.addOp(o2), "two producers");
}

} // namespace
} // namespace cmswitch
