# Smoke test for `cmswitchc sim` — the serving simulator through the
# real binary:
#
#   1. a pinned heterogeneous scenario (1x dynaplasia + 1x prime,
#      Poisson prefill/decode mix with KV buckets) runs to a
#      cmswitch-sim-v1 report whose structure and invariants are
#      checked with CMake's JSON parser;
#   2. the same scenario re-runs byte-identically — once as a plain
#      second run, once at --threads 4 (plan compilation parallelism
#      must never leak into the simulated result).
#
# Run as `cmake -DCMSWITCHC=<exe> -DWORK_DIR=<dir> -P sim_smoke.cmake`.

if(NOT CMSWITCHC)
    message(FATAL_ERROR "pass -DCMSWITCHC=<path to cmswitchc>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

file(WRITE ${WORK_DIR}/scenario.json
[[{
  "schema": "cmswitch-sim-scenario-v1",
  "name": "smoke",
  "seed": 2025,
  "duration_seconds": 8.0,
  "max_queue": 8,
  "arrival": {"process": "poisson", "rate_per_second": 6.0},
  "chips": [
    {"chip": "dynaplasia", "count": 1, "clock_ghz": 1.0},
    {"chip": "prime", "count": 1, "clock_ghz": 1.0}
  ],
  "workloads": [
    {"name": "prefill", "model": "tiny-mlp", "weight": 3.0,
     "priority": 1},
    {"name": "decode", "model": "opt-6.7b", "layers": 2,
     "kv_buckets": [128, 256], "weight": 1.0}
  ]
}
]])

function(run_sim out_file extra_args)
    execute_process(COMMAND ${CMSWITCHC} sim
                            --scenario ${WORK_DIR}/scenario.json
                            --out ${out_file} ${extra_args}
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err
                    RESULT_VARIABLE result
                    TIMEOUT 300)
    if(NOT result EQUAL 0)
        message(FATAL_ERROR "cmswitchc sim failed (${result}):\n${err}")
    endif()
endfunction()

run_sim(${WORK_DIR}/report_a.json "")
file(READ ${WORK_DIR}/report_a.json report)

# --- Structure and invariants of the cmswitch-sim-v1 document --------

string(JSON schema GET "${report}" schema)
if(NOT schema STREQUAL "cmswitch-sim-v1")
    message(FATAL_ERROR "schema: expected cmswitch-sim-v1, got '${schema}'")
endif()
string(JSON name GET "${report}" scenario name)
if(NOT name STREQUAL "smoke")
    message(FATAL_ERROR "scenario name: got '${name}'")
endif()

string(JSON arrived GET "${report}" requests arrived)
string(JSON completed GET "${report}" requests completed)
string(JSON shed_admission GET "${report}" requests shed_admission)
string(JSON shed_deadline GET "${report}" requests shed_deadline)
if(arrived LESS_EQUAL 0)
    message(FATAL_ERROR "expected arrivals, got ${arrived}")
endif()
math(EXPR accounted
     "${completed} + ${shed_admission} + ${shed_deadline}")
if(NOT accounted EQUAL arrived)
    message(FATAL_ERROR "request accounting: ${arrived} arrived but "
                        "${accounted} completed+shed")
endif()
if(completed LESS_EQUAL 0)
    message(FATAL_ERROR "expected completions, got ${completed}")
endif()

string(JSON throughput GET "${report}" throughput_rps)
if(throughput LESS_EQUAL 0)
    message(FATAL_ERROR "throughput_rps: expected > 0, got ${throughput}")
endif()

string(JSON n_chips LENGTH "${report}" chips)
if(NOT n_chips EQUAL 2)
    message(FATAL_ERROR "expected 2 chip instances, got ${n_chips}")
endif()
string(JSON chip0 GET "${report}" chips 0 chip)
string(JSON chip1 GET "${report}" chips 1 chip)
if(NOT chip0 STREQUAL "dynaplasia" OR NOT chip1 STREQUAL "prime")
    message(FATAL_ERROR "fleet order: got '${chip0}', '${chip1}'")
endif()
set(total_served 0)
foreach(i 0 1)
    string(JSON served GET "${report}" chips ${i} served)
    string(JSON util GET "${report}" chips ${i} utilization)
    if(util LESS 0 OR util GREATER 1)
        message(FATAL_ERROR "chips[${i}] utilization out of [0,1]: ${util}")
    endif()
    math(EXPR total_served "${total_served} + ${served}")
endforeach()
if(NOT total_served EQUAL completed)
    message(FATAL_ERROR "per-chip served (${total_served}) != "
                        "completed (${completed})")
endif()

# Plan table: prefill on both presets + 2 decode buckets on both
# presets = 6 plans, and per-plan served counts partition completions.
string(JSON n_plans LENGTH "${report}" plans)
if(NOT n_plans EQUAL 6)
    message(FATAL_ERROR "expected 6 plan-table entries, got ${n_plans}")
endif()
set(plan_served 0)
math(EXPR last_plan "${n_plans} - 1")
foreach(i RANGE ${last_plan})
    string(JSON served GET "${report}" plans ${i} served)
    string(JSON cold GET "${report}" plans ${i} cold_cycles)
    string(JSON resident GET "${report}" plans ${i} resident_cycles)
    string(JSON reconf GET "${report}" plans ${i} reconfigure_cycles)
    math(EXPR split "${resident} + ${reconf}")
    if(NOT split EQUAL cold)
        message(FATAL_ERROR "plans[${i}]: resident ${resident} + "
                            "reconfigure ${reconf} != cold ${cold}")
    endif()
    math(EXPR plan_served "${plan_served} + ${served}")
endforeach()
if(NOT plan_served EQUAL completed)
    message(FATAL_ERROR "per-plan served (${plan_served}) != "
                        "completed (${completed})")
endif()

string(JSON lat_count GET "${report}" latency total_seconds count)
if(NOT lat_count EQUAL completed)
    message(FATAL_ERROR "latency count ${lat_count} != completed "
                        "${completed}")
endif()
string(JSON p99 GET "${report}" latency total_seconds p99)
if(p99 LESS_EQUAL 0)
    message(FATAL_ERROR "latency p99: expected > 0, got ${p99}")
endif()

message(STATUS "sim_smoke: report structure checks passed "
               "(${arrived} arrived, ${completed} completed)")

# --- Determinism: byte-identical across runs and --threads -----------

run_sim(${WORK_DIR}/report_b.json "")
run_sim(${WORK_DIR}/report_c.json "--threads;4")

file(READ ${WORK_DIR}/report_b.json report_b)
file(READ ${WORK_DIR}/report_c.json report_c)
if(NOT report STREQUAL report_b)
    message(FATAL_ERROR "two runs of one scenario differ")
endif()
if(NOT report STREQUAL report_c)
    message(FATAL_ERROR "--threads 4 changed the report bytes")
endif()

message(STATUS "sim_smoke: all checks passed "
               "(structure + run-to-run and --threads determinism)")
