/** @file Tests for the text chip-description parser. */

#include <gtest/gtest.h>

#include "arch/chip_parser.hpp"

namespace cmswitch {
namespace {

TEST(ChipParser, ParsesMinimalConfig)
{
    ChipConfig c = parseChipConfig(R"(
        # my edge chip
        name = edge-cim
        num_switch_arrays = 32
        array_rows = 128
        array_cols = 128
        extern_bw = 12.5
        op_per_cycle = 32
    )");
    EXPECT_EQ(c.name, "edge-cim");
    EXPECT_EQ(c.numSwitchArrays, 32);
    EXPECT_EQ(c.arrayRows, 128);
    EXPECT_DOUBLE_EQ(c.externBw, 12.5);
    EXPECT_DOUBLE_EQ(c.opPerCycle, 32.0);
    // Untouched keys keep the Dynaplasia defaults.
    EXPECT_EQ(c.switchC2mLatency, 1);
}

TEST(ChipParser, RoundTripsEveryField)
{
    ChipConfig original = ChipConfig::prime();
    original.fuOpsPerCycle = 48.0;
    original.bufferBytes = 12345;
    ChipConfig back = parseChipConfig(serializeChipConfig(original));
    EXPECT_EQ(back.name, original.name);
    EXPECT_EQ(back.technology, original.technology);
    EXPECT_EQ(back.numSwitchArrays, original.numSwitchArrays);
    EXPECT_EQ(back.arrayRows, original.arrayRows);
    EXPECT_EQ(back.arrayCols, original.arrayCols);
    EXPECT_EQ(back.bufferBytes, original.bufferBytes);
    EXPECT_DOUBLE_EQ(back.internalBwPerArray, original.internalBwPerArray);
    EXPECT_DOUBLE_EQ(back.externBw, original.externBw);
    EXPECT_DOUBLE_EQ(back.bufferBw, original.bufferBw);
    EXPECT_DOUBLE_EQ(back.opPerCycle, original.opPerCycle);
    EXPECT_EQ(back.switchMethod, original.switchMethod);
    EXPECT_EQ(back.switchC2mLatency, original.switchC2mLatency);
    EXPECT_EQ(back.switchM2cLatency, original.switchM2cLatency);
    EXPECT_EQ(back.writeRowLatency, original.writeRowLatency);
    EXPECT_EQ(back.readRowLatency, original.readRowLatency);
    EXPECT_DOUBLE_EQ(back.fuOpsPerCycle, original.fuOpsPerCycle);
}

TEST(ChipParser, CommentsAndBlanksIgnored)
{
    ChipConfig c = parseChipConfig("\n# comment only\n\n");
    EXPECT_EQ(c.name, ChipConfig().name);
}

TEST(ChipParser, TechnologyDefaultsToEdram)
{
    ChipConfig c = parseChipConfig("name = user-chip");
    EXPECT_EQ(c.technology, CellTechnology::kEdram);
}

TEST(ChipParser, TechnologyParsedCaseInsensitively)
{
    EXPECT_EQ(parseChipConfig("technology = ReRAM").technology,
              CellTechnology::kReram);
    EXPECT_EQ(parseChipConfig("technology = eDRAM").technology,
              CellTechnology::kEdram);
}

TEST(ChipParserDeath, UnknownTechnologyIsFatal)
{
    EXPECT_EXIT(parseChipConfig("technology = memristor"),
                ::testing::ExitedWithCode(1), "unknown cell technology");
}

TEST(ChipParserDeath, UnknownKeyIsFatal)
{
    EXPECT_EXIT(parseChipConfig("bogus_key = 1"),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(ChipParserDeath, MissingEqualsIsFatal)
{
    EXPECT_EXIT(parseChipConfig("just words"),
                ::testing::ExitedWithCode(1), "expected key = value");
}

TEST(ChipParserDeath, NonPhysicalConfigIsFatal)
{
    EXPECT_EXIT(parseChipConfig("num_switch_arrays = 0"),
                ::testing::ExitedWithCode(1), "at least one");
}

} // namespace
} // namespace cmswitch
