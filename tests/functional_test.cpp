/** @file Functional verification: tiled CIM execution == reference. */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "compiler/cmswitch_compiler.hpp"
#include "models/model_zoo.hpp"
#include "sim/functional.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

CompileResult
compileOn(const ChipConfig &chip, const Graph &g)
{
    CmSwitchCompiler compiler(chip);
    return compiler.compile(g);
}

TEST(Functional, TinyMlpMatchesReference)
{
    ChipConfig chip = testing::tinyChip(8);
    Graph g = buildTinyMlp(2, 16, 32, 8);
    CompileResult r = compileOn(chip, g);
    Deha deha(chip);
    EXPECT_EQ(verifyProgram(g, r.program, deha), 0);
}

TEST(Functional, PartitionedMatMulMatchesReference)
{
    // Weights larger than the chip force sub-operator slices; the
    // functional path must still reproduce the reference bit-exactly.
    ChipConfig chip = testing::tinyChip(6);
    Graph g = testing::chainMlp(2, /*dim=*/64, /*batch=*/3);
    CompileResult r = compileOn(chip, g);
    Deha deha(chip);
    EXPECT_EQ(verifyProgram(g, r.program, deha), 0);
}

TEST(Functional, SmallCnnMatchesReference)
{
    ChipConfig chip = testing::tinyChip(10);
    Graph g("cnn");
    TensorId x = g.addTensor("x", Shape{1, 4, 12, 12}, DType::kInt8,
                             TensorKind::kInput);
    TensorId w1 = g.addTensor("w1", Shape{8, 4, 3, 3}, DType::kInt8,
                              TensorKind::kWeight);
    TensorId y1 = g.addTensor("y1", Shape{1, 8, 12, 12});
    Operator conv1;
    conv1.name = "conv1";
    conv1.kind = OpKind::kConv2d;
    conv1.conv = ConvAttrs{3, 3, 1, 1, 1, 1, 1};
    conv1.inputs = {x, w1};
    conv1.outputs = {y1};
    g.addOp(conv1);
    TensorId y2 = g.addTensor("y2", Shape{1, 8, 12, 12});
    Operator relu;
    relu.name = "relu";
    relu.kind = OpKind::kActivation;
    relu.activationName = "relu";
    relu.inputs = {y1};
    relu.outputs = {y2};
    g.addOp(relu);
    TensorId w2 = g.addTensor("w2", Shape{8, 1, 3, 3}, DType::kInt8,
                              TensorKind::kWeight);
    TensorId y3 = g.addTensor("y3", Shape{1, 8, 12, 12}, DType::kInt8,
                              TensorKind::kOutput);
    Operator dw;
    dw.name = "dw";
    dw.kind = OpKind::kDepthwiseConv2d;
    dw.conv = ConvAttrs{3, 3, 1, 1, 1, 1, 8};
    dw.inputs = {y2, w2};
    dw.outputs = {y3};
    g.addOp(dw);
    g.validate();

    CompileResult r = compileOn(chip, g);
    Deha deha(chip);
    EXPECT_EQ(verifyProgram(g, r.program, deha), 0);
}

TEST(Functional, StridedPaddedConvMatchesReference)
{
    ChipConfig chip = testing::tinyChip(10);
    Graph g("cnn2");
    TensorId x = g.addTensor("x", Shape{2, 3, 11, 11}, DType::kInt8,
                             TensorKind::kInput);
    TensorId w = g.addTensor("w", Shape{6, 3, 5, 5}, DType::kInt8,
                             TensorKind::kWeight);
    TensorId y = g.addTensor("y", Shape{2, 6, 5, 5}, DType::kInt8,
                             TensorKind::kOutput);
    Operator conv;
    conv.name = "conv";
    conv.kind = OpKind::kConv2d;
    conv.conv = ConvAttrs{5, 5, 2, 2, 1, 1, 1};
    conv.inputs = {x, w};
    conv.outputs = {y};
    g.addOp(conv);
    g.validate();

    CompileResult r = compileOn(chip, g);
    Deha deha(chip);
    EXPECT_EQ(verifyProgram(g, r.program, deha), 0);
}

TEST(Functional, TransformerBlockMatchesReference)
{
    ChipConfig chip = testing::tinyChip(12);
    TransformerConfig cfg;
    cfg.name = "micro";
    cfg.layers = 1;
    cfg.dModel = 32;
    cfg.heads = 2;
    cfg.ffnDim = 64;
    cfg.vocab = 64;
    cfg.decoderOnly = false;
    Graph g = buildTransformerPrefill(cfg, 1, 8);
    CompileResult r = compileOn(chip, g);
    Deha deha(chip);
    EXPECT_EQ(verifyProgram(g, r.program, deha), 0);
}

TEST(Functional, BaselineProgramsAlsoCorrect)
{
    // Scheduling policy must never change numerics.
    ChipConfig chip = testing::tinyChip(12);
    Graph g = buildTinyMlp(2, 32, 48, 16);
    Deha deha(chip);
    for (auto &compiler : makeAllCompilers(chip)) {
        CompileResult r = compiler->compile(g);
        EXPECT_EQ(verifyProgram(g, r.program, deha), 0) << compiler->name();
    }
}

TEST(Functional, DifferentSeedsDiffer)
{
    // Sanity: the check is not vacuous (values actually vary).
    ChipConfig chip = testing::tinyChip(8);
    Graph g = buildTinyMlp(1, 16, 16, 8);
    TensorValues a = seedTensors(g, 1);
    TensorValues b = seedTensors(g, 2);
    EXPECT_NE(a.at(0), b.at(0));
}

TEST(Functional, ReferenceDeterministic)
{
    ChipConfig chip = testing::tinyChip(8);
    Graph g = buildTinyMlp(1, 16, 16, 8);
    TensorValues v1 = seedTensors(g, 7);
    TensorValues v2 = seedTensors(g, 7);
    referenceExecute(g, v1);
    referenceExecute(g, v2);
    for (TensorId t = 0; t < g.numTensors(); ++t)
        EXPECT_EQ(v1.at(t), v2.at(t));
}

} // namespace
} // namespace cmswitch
