/** @file Unit tests certifying the simplex LP solver on known problems. */

#include <gtest/gtest.h>

#include "solver/simplex.hpp"

namespace cmswitch {
namespace {

TEST(Simplex, TextbookMaximisation)
{
    // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), 36.
    LinearModel m;
    VarId x = m.addVar("x", 0, kInfinity);
    VarId y = m.addVar("y", 0, kInfinity);
    m.addConstraint(term(x), Rel::kLe, 4);
    m.addConstraint(term(y, 2.0), Rel::kLe, 12);
    LinearExpr c3;
    c3.add(x, 3.0).add(y, 2.0);
    m.addConstraint(c3, Rel::kLe, 18);
    LinearExpr obj;
    obj.add(x, 3.0).add(y, 5.0);
    m.setObjective(obj, Sense::kMaximize);

    LpSolution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective, 36.0, 1e-6);
    EXPECT_NEAR(s.values[0], 2.0, 1e-6);
    EXPECT_NEAR(s.values[1], 6.0, 1e-6);
}

TEST(Simplex, MinimisationWithGe)
{
    // min 2x + 3y s.t. x + y >= 10, x >= 2 => (8, 2) ... check: cost
    // 2*8+3*2 = 22 vs all-x (10,0): 20. Optimal is y=0, x=10 => 20.
    LinearModel m;
    VarId x = m.addVar("x", 2, kInfinity);
    VarId y = m.addVar("y", 0, kInfinity);
    LinearExpr sum;
    sum.add(x, 1.0).add(y, 1.0);
    m.addConstraint(sum, Rel::kGe, 10);
    LinearExpr obj;
    obj.add(x, 2.0).add(y, 3.0);
    m.setObjective(obj, Sense::kMinimize);

    LpSolution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective, 20.0, 1e-6);
    EXPECT_NEAR(s.values[0], 10.0, 1e-6);
}

TEST(Simplex, EqualityConstraint)
{
    // min x + y s.t. x + 2y = 8, x <= 4 => x=4, y=2, obj 6... check
    // x=0,y=4: obj 4 (feasible!) so optimum is 4.
    LinearModel m;
    VarId x = m.addVar("x", 0, 4);
    VarId y = m.addVar("y", 0, kInfinity);
    LinearExpr eq;
    eq.add(x, 1.0).add(y, 2.0);
    m.addConstraint(eq, Rel::kEq, 8);
    LinearExpr obj;
    obj.add(x, 1.0).add(y, 1.0);
    m.setObjective(obj, Sense::kMinimize);

    LpSolution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective, 4.0, 1e-6);
    EXPECT_NEAR(s.values[1], 4.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible)
{
    LinearModel m;
    VarId x = m.addVar("x", 0, 5);
    m.addConstraint(term(x), Rel::kGe, 10);
    m.setObjective(term(x), Sense::kMinimize);
    EXPECT_EQ(solveLp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded)
{
    LinearModel m;
    VarId x = m.addVar("x", 0, kInfinity);
    m.setObjective(term(x), Sense::kMaximize);
    EXPECT_EQ(solveLp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, ShiftedLowerBounds)
{
    // min x s.t. x >= 7 via bound only.
    LinearModel m;
    VarId x = m.addVar("x", 7, 100);
    m.setObjective(term(x), Sense::kMinimize);
    LpSolution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.values[0], 7.0, 1e-6);
}

TEST(Simplex, NegativeRhsNormalised)
{
    // x - y <= -2 with min x => x=0 requires y >= 2.
    LinearModel m;
    VarId x = m.addVar("x", 0, 10);
    VarId y = m.addVar("y", 0, 10);
    LinearExpr e;
    e.add(x, 1.0).add(y, -1.0);
    m.addConstraint(e, Rel::kLe, -2);
    LinearExpr obj;
    obj.add(x, 1.0).add(y, 1.0);
    m.setObjective(obj, Sense::kMinimize);
    LpSolution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective, 2.0, 1e-6);
    EXPECT_NEAR(s.values[1], 2.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates)
{
    // Classic cycling-prone instance; Bland's rule must terminate.
    LinearModel m;
    VarId x1 = m.addVar("x1", 0, kInfinity);
    VarId x2 = m.addVar("x2", 0, kInfinity);
    VarId x3 = m.addVar("x3", 0, kInfinity);
    VarId x4 = m.addVar("x4", 0, kInfinity);
    LinearExpr c1;
    c1.add(x1, 0.5).add(x2, -5.5).add(x3, -2.5).add(x4, 9.0);
    m.addConstraint(c1, Rel::kLe, 0);
    LinearExpr c2;
    c2.add(x1, 0.5).add(x2, -1.5).add(x3, -0.5).add(x4, 1.0);
    m.addConstraint(c2, Rel::kLe, 0);
    m.addConstraint(term(x1), Rel::kLe, 1);
    LinearExpr obj;
    obj.add(x1, 10.0).add(x2, -57.0).add(x3, -9.0).add(x4, -24.0);
    m.setObjective(obj, Sense::kMaximize);
    LpSolution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(Simplex, SolutionSatisfiesModel)
{
    LinearModel m;
    VarId a = m.addVar("a", 0, 9);
    VarId b = m.addVar("b", 1, 7);
    VarId c = m.addVar("c", 0, kInfinity);
    LinearExpr e1;
    e1.add(a, 2.0).add(b, 1.0).add(c, 1.0);
    m.addConstraint(e1, Rel::kLe, 14);
    LinearExpr e2;
    e2.add(a, 1.0).add(c, -1.0);
    m.addConstraint(e2, Rel::kGe, -3);
    LinearExpr obj;
    obj.add(a, 1.0).add(b, 2.0).add(c, 3.0);
    m.setObjective(obj, Sense::kMaximize);
    LpSolution s = solveLp(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    EXPECT_TRUE(m.isFeasible(s.values, 1e-6));
}

} // namespace
} // namespace cmswitch
