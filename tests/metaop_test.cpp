/** @file Meta-operator IR: printer/parser round trip + validator. */

#include <gtest/gtest.h>

#include "arch/deha.hpp"
#include "metaop/parser.hpp"
#include "metaop/printer.hpp"
#include "metaop/validator.hpp"
#include "support/random.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

MetaOp
randomCompute(Rng &rng)
{
    OpWorkload w;
    w.name = "op" + std::to_string(rng.nextInt(0, 99));
    w.opId = static_cast<OpId>(rng.nextInt(0, 50));
    w.kind = rng.nextInt(0, 1) ? OpKind::kMatMul : OpKind::kConv2d;
    w.macs = rng.nextInt(1, 1 << 20);
    w.weightBytes = rng.nextInt(1, 1 << 16);
    w.inputBytes = rng.nextInt(1, 1 << 16);
    w.outputBytes = rng.nextInt(1, 1 << 16);
    w.vectorElems = rng.nextInt(0, 1 << 10);
    w.weightTiles = rng.nextInt(1, 9);
    w.utilization = rng.nextDouble(0.1, 1.0);
    w.movingRows = rng.nextInt(1, 1000);
    w.dynamicWeights = rng.nextInt(0, 1) == 1;
    w.aiMacsPerByte = rng.nextDouble(0.1, 500.0);
    OpAllocation a{rng.nextInt(1, 16), rng.nextInt(0, 8), rng.nextInt(0, 8)};
    return MetaOp::makeCompute(w, a);
}

void
expectOpRoundTrip(const MetaOp &op)
{
    MetaOp back = parseMetaOp(printMetaOp(op));
    EXPECT_EQ(back.kind, op.kind);
    EXPECT_EQ(back.target, op.target);
    EXPECT_EQ(back.bytes, op.bytes);
    EXPECT_EQ(back.arrayCount, op.arrayCount);
    if (op.kind == MetaOpKind::kSwitch) {
        EXPECT_EQ(back.switchTo, op.switchTo);
    }
    if (op.kind == MetaOpKind::kCompute) {
        EXPECT_EQ(back.graphOp, op.graphOp);
        EXPECT_EQ(back.work.macs, op.work.macs);
        EXPECT_EQ(back.work.weightBytes, op.work.weightBytes);
        EXPECT_EQ(back.work.weightTiles, op.work.weightTiles);
        EXPECT_EQ(back.work.movingRows, op.work.movingRows);
        EXPECT_EQ(back.work.dynamicWeights, op.work.dynamicWeights);
        EXPECT_NEAR(back.work.utilization, op.work.utilization, 1e-5);
        EXPECT_NEAR(back.work.aiMacsPerByte, op.work.aiMacsPerByte, 1e-5);
        EXPECT_EQ(back.alloc.computeArrays, op.alloc.computeArrays);
        EXPECT_EQ(back.alloc.memInArrays, op.alloc.memInArrays);
        EXPECT_EQ(back.alloc.memOutArrays, op.alloc.memOutArrays);
    }
}

TEST(MetaOpPrint, SwitchSyntaxMatchesFig13)
{
    MetaOp s = MetaOp::makeSwitch(ArrayMode::kMemory, 4, 12);
    EXPECT_EQ(printMetaOp(s), "CM.switch(TOM, addr=4, n=12)");
    MetaOp c = MetaOp::makeSwitch(ArrayMode::kCompute, 0, 3);
    EXPECT_EQ(printMetaOp(c), "CM.switch(TOC, addr=0, n=3)");
}

TEST(MetaOpRoundTrip, AllKinds)
{
    expectOpRoundTrip(MetaOp::makeSwitch(ArrayMode::kMemory, 0, 5));
    expectOpRoundTrip(MetaOp::makeSwitch(ArrayMode::kCompute, 2, 1));
    expectOpRoundTrip(MetaOp::makeLoadWeight("fc1", 12345, 7));
    expectOpRoundTrip(MetaOp::makeLoad("seg1.inbound", 999));
    expectOpRoundTrip(MetaOp::makeStore("seg0.liveout", 4096));
    expectOpRoundTrip(MetaOp::makeFuCompute("softmax", 777));
}

class MetaOpFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(MetaOpFuzz, ComputeRoundTrip)
{
    Rng rng(static_cast<u64>(GetParam()) * 31 + 17);
    for (int i = 0; i < 20; ++i)
        expectOpRoundTrip(randomCompute(rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetaOpFuzz, ::testing::Range(0, 10));

TEST(ProgramRoundTrip, FullProgram)
{
    Rng rng(99);
    MetaProgram p("tiny", "dynaplasia");
    for (int s = 0; s < 3; ++s) {
        SegmentRecord seg;
        seg.plan = ModePlan{rng.nextInt(1, 5), rng.nextInt(0, 3)};
        seg.reusedArrays = rng.nextInt(0, 2);
        seg.plannedIntra = rng.nextInt(100, 9999);
        seg.plannedInter = rng.nextInt(0, 500);
        seg.prologue.push_back(
            MetaOp::makeSwitch(ArrayMode::kMemory, 0, rng.nextInt(1, 4)));
        seg.prologue.push_back(
            MetaOp::makeLoadWeight("w" + std::to_string(s),
                                   rng.nextInt(1, 4096), rng.nextInt(1, 4)));
        seg.body.push_back(randomCompute(rng));
        seg.body.push_back(randomCompute(rng));
        seg.epilogue.push_back(
            MetaOp::makeStore("out" + std::to_string(s),
                              rng.nextInt(1, 4096)));
        p.addSegment(std::move(seg));
    }

    MetaProgram back = parseProgram(printProgram(p));
    EXPECT_EQ(back.modelName(), "tiny");
    EXPECT_EQ(back.chipName(), "dynaplasia");
    ASSERT_EQ(back.numSegments(), 3);
    for (s64 s = 0; s < 3; ++s) {
        const SegmentRecord &a = p.segments()[static_cast<std::size_t>(s)];
        const SegmentRecord &b = back.segments()[static_cast<std::size_t>(s)];
        EXPECT_EQ(a.plan.computeArrays, b.plan.computeArrays);
        EXPECT_EQ(a.plan.memoryArrays, b.plan.memoryArrays);
        EXPECT_EQ(a.reusedArrays, b.reusedArrays);
        EXPECT_EQ(a.plannedIntra, b.plannedIntra);
        EXPECT_EQ(a.plannedInter, b.plannedInter);
        EXPECT_EQ(a.prologue.size(), b.prologue.size());
        EXPECT_EQ(a.body.size(), b.body.size());
        EXPECT_EQ(a.epilogue.size(), b.epilogue.size());
    }
    // Aggregate stats survive the trip.
    EXPECT_EQ(p.totalSwitchedArrays(), back.totalSwitchedArrays());
    EXPECT_EQ(p.totalWeightLoadBytes(), back.totalWeightLoadBytes());
    EXPECT_EQ(p.totalWritebackBytes(), back.totalWritebackBytes());
    EXPECT_DOUBLE_EQ(p.avgMemoryArrayRatio(), back.avgMemoryArrayRatio());
}

TEST(Validator, AcceptsConsistentProgram)
{
    Deha deha(testing::tinyChip(8));
    MetaProgram p("demo", "tiny");
    SegmentRecord seg;
    OpWorkload w;
    w.name = "fc";
    w.weightTiles = 2;
    w.utilization = 1.0;
    w.macs = 1000;
    w.movingRows = 10;
    w.aiMacsPerByte = 1.0;
    w.inputBytes = 100;
    w.outputBytes = 100;
    w.weightBytes = 512;
    seg.plan = ModePlan{2, 3};
    seg.prologue.push_back(MetaOp::makeSwitch(ArrayMode::kMemory, 0, 3));
    seg.body.push_back(MetaOp::makeCompute(w, OpAllocation{2, 2, 1}));
    p.addSegment(std::move(seg));

    ValidationReport r = validateProgram(p, deha);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Validator, CatchesResourceOverflow)
{
    Deha deha(testing::tinyChip(4));
    MetaProgram p("demo", "tiny");
    SegmentRecord seg;
    seg.plan = ModePlan{4, 4}; // 8 > 4 arrays
    p.addSegment(std::move(seg));
    ValidationReport r = validateProgram(p, deha);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("exceeds"), std::string::npos);
}

TEST(Validator, CatchesWrongSwitchPrologue)
{
    Deha deha(testing::tinyChip(8));
    MetaProgram p("demo", "tiny");
    SegmentRecord seg;
    seg.plan = ModePlan{2, 3};
    // Claims only 1 array switched to memory; 3 are needed from boot.
    seg.prologue.push_back(MetaOp::makeSwitch(ArrayMode::kMemory, 0, 1));
    p.addSegment(std::move(seg));
    ValidationReport r = validateProgram(p, deha);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("switch prologue"), std::string::npos);
}

TEST(Validator, CatchesWeightsOverflow)
{
    Deha deha(testing::tinyChip(8));
    MetaProgram p("demo", "tiny");
    SegmentRecord seg;
    OpWorkload w;
    w.name = "fat";
    w.weightTiles = 5;
    w.utilization = 1.0;
    w.macs = 10;
    w.movingRows = 1;
    w.aiMacsPerByte = 1.0;
    seg.plan = ModePlan{3, 0};
    seg.body.push_back(MetaOp::makeCompute(w, OpAllocation{3, 0, 0}));
    p.addSegment(std::move(seg));
    ValidationReport r = validateProgram(p, deha);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("cannot hold"), std::string::npos);
}

TEST(ValidatorDeath, ParserRejectsBadSwitchType)
{
    EXPECT_EXIT(parseMetaOp("CM.switch(XXX, addr=0, n=1)"),
                ::testing::ExitedWithCode(1), "TOM or TOC");
}

} // namespace
} // namespace cmswitch
