/** @file End-to-end compiler -> program structural tests. */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "compiler/cmswitch_compiler.hpp"
#include "metaop/printer.hpp"
#include "metaop/validator.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(Codegen, TinyMlpProgramValidates)
{
    CmSwitchCompiler compiler(testing::tinyChip(8));
    Graph g = buildTinyMlp(2, 16, 32, 8);
    CompileResult r = compiler.compile(g);
    ASSERT_GE(r.numSegments(), 1);

    ValidationReport report = validateProgram(r.program, compiler.deha());
    EXPECT_TRUE(report.ok()) << report.summary()
                             << printProgram(r.program);
}

TEST(Codegen, ProgramsValidateAcrossCompilers)
{
    Graph g = buildResNet18(1);
    for (auto &compiler : makeAllCompilers(ChipConfig::dynaplasia())) {
        CompileResult r = compiler->compile(g);
        Deha deha(ChipConfig::dynaplasia());
        ValidationReport report = validateProgram(r.program, deha);
        EXPECT_TRUE(report.ok()) << compiler->name() << ": "
                                 << report.summary();
    }
}

TEST(Codegen, SwitchPrologueMatchesPlanDeltas)
{
    CmSwitchCompiler compiler(testing::tinyChip(8));
    Graph g = testing::chainMlp(4);
    CompileResult r = compiler.compile(g);

    Deha deha(testing::tinyChip(8));
    s64 phys = deha.config().numSwitchArrays;
    for (const SegmentRecord &seg : r.program.segments()) {
        SwitchDelta expected = deha.switchesBetween(phys, seg.plan);
        s64 toc = 0, tom = 0;
        for (const MetaOp &op : seg.prologue) {
            if (op.kind != MetaOpKind::kSwitch)
                continue;
            (op.switchTo == ArrayMode::kCompute ? toc : tom) += op.arrayCount;
        }
        EXPECT_EQ(toc, expected.memToCompute);
        EXPECT_EQ(tom, expected.computeToMem);
        phys = deha.applySwitches(phys, expected);
    }
}

TEST(Codegen, WeightLoadsCoverStaticOps)
{
    CmSwitchCompiler compiler(testing::tinyChip(8));
    Graph g = buildTinyMlp(1, 16, 32, 16);
    CompileResult r = compiler.compile(g);
    s64 loads = 0;
    s64 computes = 0;
    for (const SegmentRecord &seg : r.program.segments()) {
        for (const MetaOp &op : seg.prologue)
            if (op.kind == MetaOpKind::kLoadWeight)
                ++loads;
        for (const MetaOp &op : seg.body)
            if (op.kind == MetaOpKind::kCompute
                && !op.work.dynamicWeights) {
                ++computes;
            }
    }
    EXPECT_EQ(loads, computes);
}

TEST(Codegen, CompileResultReportsSeconds)
{
    CmSwitchCompiler compiler(testing::tinyChip(8));
    Graph g = testing::chainMlp(3);
    CompileResult r = compiler.compile(g);
    EXPECT_GT(r.compileSeconds, 0.0);
    EXPECT_LT(r.compileSeconds, 60.0);
}

TEST(Codegen, PrintedProgramShowsParallelBlocks)
{
    CmSwitchCompiler compiler(testing::tinyChip(8));
    Graph g = testing::chainMlp(2);
    CompileResult r = compiler.compile(g);
    std::string text = printProgram(r.program);
    EXPECT_NE(text.find("parallel {"), std::string::npos);
    EXPECT_NE(text.find("CIM.compute"), std::string::npos);
    EXPECT_NE(text.find("MEM.load_weight"), std::string::npos);
}

} // namespace
} // namespace cmswitch
