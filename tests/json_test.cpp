/** @file Tests for the ordered JSON writer (support/json.hpp). */

#include <gtest/gtest.h>

#include "support/hash.hpp"
#include "support/json.hpp"

namespace cmswitch {
namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line1\nline2"), "line1\\nline2");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
    EXPECT_EQ(jsonEscape("\r\b\f"), "\\r\\b\\f");
}

TEST(JsonNumber, IntegralDoublesStayShort)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-7.0), "-7");
}

TEST(JsonNumber, RoundTripsExactly)
{
    // Shortest round-trip form: parsing the text recovers the bits.
    for (double v : {0.1, 1.0 / 3.0, 3.141592653589793, 1e-30, 2.5e17}) {
        std::string text = jsonNumber(v);
        EXPECT_EQ(std::stod(text), v) << text;
    }
}

TEST(JsonWriter, GoldenNestedDocument)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "resnet18")
        .field("segments", s64{5})
        .field("ratio", 0.25)
        .field("valid", true);
    w.key("latency").beginObject().field("total", s64{10}).endObject();
    w.key("tags").beginArray().value("a").value("b").endArray();
    w.key("empty").beginArray().endArray();
    w.endObject();

    EXPECT_EQ(w.str(), R"({
  "name": "resnet18",
  "segments": 5,
  "ratio": 0.25,
  "valid": true,
  "latency": {
    "total": 10
  },
  "tags": [
    "a",
    "b"
  ],
  "empty": []
}
)");
}

TEST(JsonWriter, CompactModeOmitsWhitespace)
{
    JsonWriter w(0);
    w.beginObject().field("a", s64{1});
    w.key("b").beginArray().value(s64{2}).value(s64{3}).endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[2,3]}\n");
}

TEST(JsonWriter, KeysKeepInsertionOrder)
{
    JsonWriter w(0);
    w.beginObject()
        .field("zebra", s64{1})
        .field("alpha", s64{2})
        .field("mid", s64{3})
        .endObject();
    EXPECT_EQ(w.str(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}\n");
}

TEST(JsonWriter, EscapesInsideKeysAndValues)
{
    JsonWriter w(0);
    w.beginObject().field("we\"ird", "va\\lue\n").endObject();
    EXPECT_EQ(w.str(), "{\"we\\\"ird\":\"va\\\\lue\\n\"}\n");
}

TEST(JsonWriterDeath, ValueWithoutKeyPanics)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH(w.value(s64{1}), "needs a key");
}

TEST(JsonWriterDeath, StrWithOpenContainerPanics)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH(w.str(), "open containers");
}

TEST(JsonWriterDeath, NonFiniteNumberPanics)
{
    EXPECT_DEATH(jsonNumber(1.0 / 0.0), "non-finite");
}

TEST(Fnv1a, StableAndSensitive)
{
    // Pinned digest: the cache key format must not drift silently
    // (persisted keys/reports reference it).
    EXPECT_EQ(hexDigest(fnv1a64("")), "cbf29ce484222325");
    EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
    // Chaining differs from concatenation of independent hashes but is
    // equivalent to hashing the concatenation.
    EXPECT_EQ(fnv1a64("def", fnv1a64("abc")), fnv1a64("abcdef"));
}

} // namespace
} // namespace cmswitch
