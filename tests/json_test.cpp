/** @file Tests for the ordered JSON writer (support/json.hpp) and the
 *  strict parser that reads it back (support/json_parse.hpp). */

#include <gtest/gtest.h>

#include "support/hash.hpp"
#include "support/json.hpp"
#include "support/json_parse.hpp"

namespace cmswitch {
namespace {

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line1\nline2"), "line1\\nline2");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
    EXPECT_EQ(jsonEscape("\r\b\f"), "\\r\\b\\f");
}

TEST(JsonNumber, IntegralDoublesStayShort)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-7.0), "-7");
}

TEST(JsonNumber, RoundTripsExactly)
{
    // Shortest round-trip form: parsing the text recovers the bits.
    for (double v : {0.1, 1.0 / 3.0, 3.141592653589793, 1e-30, 2.5e17}) {
        std::string text = jsonNumber(v);
        EXPECT_EQ(std::stod(text), v) << text;
    }
}

TEST(JsonWriter, GoldenNestedDocument)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "resnet18")
        .field("segments", s64{5})
        .field("ratio", 0.25)
        .field("valid", true);
    w.key("latency").beginObject().field("total", s64{10}).endObject();
    w.key("tags").beginArray().value("a").value("b").endArray();
    w.key("empty").beginArray().endArray();
    w.endObject();

    EXPECT_EQ(w.str(), R"({
  "name": "resnet18",
  "segments": 5,
  "ratio": 0.25,
  "valid": true,
  "latency": {
    "total": 10
  },
  "tags": [
    "a",
    "b"
  ],
  "empty": []
}
)");
}

TEST(JsonWriter, CompactModeOmitsWhitespace)
{
    JsonWriter w(0);
    w.beginObject().field("a", s64{1});
    w.key("b").beginArray().value(s64{2}).value(s64{3}).endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[2,3]}\n");
}

TEST(JsonWriter, KeysKeepInsertionOrder)
{
    JsonWriter w(0);
    w.beginObject()
        .field("zebra", s64{1})
        .field("alpha", s64{2})
        .field("mid", s64{3})
        .endObject();
    EXPECT_EQ(w.str(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}\n");
}

TEST(JsonWriter, EscapesInsideKeysAndValues)
{
    JsonWriter w(0);
    w.beginObject().field("we\"ird", "va\\lue\n").endObject();
    EXPECT_EQ(w.str(), "{\"we\\\"ird\":\"va\\\\lue\\n\"}\n");
}

TEST(JsonWriterDeath, ValueWithoutKeyPanics)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH(w.value(s64{1}), "needs a key");
}

TEST(JsonWriterDeath, StrWithOpenContainerPanics)
{
    JsonWriter w;
    w.beginObject();
    EXPECT_DEATH(w.str(), "open containers");
}

TEST(JsonWriterDeath, NonFiniteNumberPanics)
{
    EXPECT_DEATH(jsonNumber(1.0 / 0.0), "non-finite");
}

TEST(JsonParse, ReadsScalarsArraysAndNestedObjects)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(
        R"({"a": 1, "b": [true, null, "x"], "c": {"d": -2.5}})", &doc,
        &error))
        << error;
    ASSERT_TRUE(doc.isObject());
    const JsonValue *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->isIntegral);
    EXPECT_EQ(a->intValue, 1);
    const JsonValue *b = doc.find("b");
    ASSERT_TRUE(b && b->isArray());
    ASSERT_EQ(b->items.size(), 3u);
    EXPECT_TRUE(b->items[0].boolValue);
    EXPECT_TRUE(b->items[1].isNull());
    EXPECT_EQ(b->items[2].stringValue, "x");
    const JsonValue *d = doc.find("c")->find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_FALSE(d->isIntegral);
    EXPECT_DOUBLE_EQ(d->numberValue, -2.5);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, PreservesLargeIntegersExactly)
{
    // 2^53 + 1 is not representable as a double; the protocol's s64
    // fields must survive anyway.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson("9007199254740993", &doc, &error)) << error;
    EXPECT_TRUE(doc.isIntegral);
    EXPECT_EQ(doc.intValue, 9007199254740993);
}

TEST(JsonParse, DecodesEscapesIncludingSurrogatePairs)
{
    JsonValue doc;
    std::string error;
    // \u00e9 = é; the surrogate pair \ud83d\ude00 = U+1F600.
    ASSERT_TRUE(parseJson(R"("a\"\\\n\tA\u00e9\ud83d\ude00")", &doc,
                          &error))
        << error;
    EXPECT_EQ(doc.stringValue, "a\"\\\n\tA\xc3\xa9\xf0\x9f\x98\x80");
    // A lone high surrogate is malformed.
    EXPECT_FALSE(parseJson(R"("\ud83d")", &doc, &error));
    // Raw control characters must be escaped.
    EXPECT_FALSE(parseJson("\"a\nb\"", &doc, &error));
}

TEST(JsonParse, RejectsMalformedDocumentsWithByteOffsets)
{
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(parseJson("", &doc, &error));
    EXPECT_FALSE(parseJson("{", &doc, &error));
    EXPECT_FALSE(parseJson("{\"a\":1,}", &doc, &error));
    EXPECT_FALSE(parseJson("[1 2]", &doc, &error));
    EXPECT_FALSE(parseJson("truth", &doc, &error));
    EXPECT_FALSE(parseJson("01", &doc, &error));
    EXPECT_FALSE(parseJson("1e999", &doc, &error)); // overflows double
    // Trailing garbage after a complete value is an error.
    EXPECT_FALSE(parseJson("{} {}", &doc, &error));
    EXPECT_NE(error.find("byte"), std::string::npos) << error;
    // Duplicate keys are rejected, not last-one-wins.
    EXPECT_FALSE(parseJson(R"({"k":1,"k":2})", &doc, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(JsonParse, BoundsRecursionDepth)
{
    // Hostile nesting fails with a message instead of blowing the stack.
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(parseJson(deep, &doc, &error));
    EXPECT_NE(error.find("deep"), std::string::npos) << error;
    // Depth at the limit is fine.
    std::string ok(30, '[');
    ok += std::string(30, ']');
    EXPECT_TRUE(parseJson(ok, &doc, &error)) << error;
}

TEST(JsonParse, RoundTripsTheWriter)
{
    // The pair contract: anything JsonWriter emits, parseJson reads
    // back value-for-value (including compact mode with indent 0).
    JsonWriter w(0);
    w.beginObject()
        .field("name", "serve \"smoke\"\n")
        .field("count", s64{42})
        .field("ratio", 0.125)
        .field("on", true);
    w.key("list").beginArray().value(s64{1}).value(s64{2}).endArray();
    w.endObject();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(w.str(), &doc, &error)) << error;
    EXPECT_EQ(doc.find("name")->stringValue, "serve \"smoke\"\n");
    EXPECT_EQ(doc.find("count")->intValue, 42);
    EXPECT_DOUBLE_EQ(doc.find("ratio")->numberValue, 0.125);
    EXPECT_TRUE(doc.find("on")->boolValue);
    EXPECT_EQ(doc.find("list")->items.size(), 2u);
}

TEST(Fnv1a, StableAndSensitive)
{
    // Pinned digest: the cache key format must not drift silently
    // (persisted keys/reports reference it).
    EXPECT_EQ(hexDigest(fnv1a64("")), "cbf29ce484222325");
    EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
    // Chaining differs from concatenation of independent hashes but is
    // equivalent to hashing the concatenation.
    EXPECT_EQ(fnv1a64("def", fnv1a64("abc")), fnv1a64("abcdef"));
}

} // namespace
} // namespace cmswitch
