/** @file End-to-end compiler properties across models and chips. */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "metaop/validator.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(E2e, MemoryRatioHigherOnDecodeThanCnn)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);

    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    double decode_ratio =
        compiler.compile(buildTransformerDecodeStep(cfg, 1, 512))
            .avgMemoryArrayRatio();
    double cnn_ratio =
        compiler.compile(buildResNet18(1)).avgMemoryArrayRatio();
    EXPECT_GT(decode_ratio, cnn_ratio);
}

TEST(E2e, BertMemoryRatioShrinksWithSequenceLength)
{
    // Fig. 16 bottom row: longer sequences raise arithmetic intensity,
    // pushing arrays toward compute mode.
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    TransformerConfig cfg = TransformerConfig::bertLarge();
    cfg.layers = 2;
    double r64 =
        compiler.compile(buildTransformerPrefill(cfg, 1, 64))
            .avgMemoryArrayRatio();
    double r1024 =
        compiler.compile(buildTransformerPrefill(cfg, 1, 1024))
            .avgMemoryArrayRatio();
    EXPECT_GE(r64, r1024);
}

TEST(E2e, SpeedupShrinksAsSequenceGrows)
{
    // Fig. 16: CMSwitch's edge over CIM-MLC narrows for long sequences.
    ChipConfig chip = ChipConfig::dynaplasia();
    auto ours = makeCmSwitchCompiler(chip);
    auto mlc = makeCimMlcCompiler(chip);
    TransformerConfig cfg = TransformerConfig::bertLarge();
    cfg.layers = 2;

    auto speedup = [&](s64 seq) {
        Graph g = buildTransformerPrefill(cfg, 1, seq);
        double a = static_cast<double>(mlc->compile(g).totalCycles());
        double b = static_cast<double>(ours->compile(g).totalCycles());
        return a / b;
    };
    double s32 = speedup(32);
    double s1024 = speedup(1024);
    EXPECT_GE(s32, 1.0 - 1e-9);
    EXPECT_GE(s1024, 1.0 - 1e-9);
    EXPECT_GE(s32, s1024 - 0.05);
}

TEST(E2e, PrimeChipAlsoCompiles)
{
    // Sec. 5.5 scalability: the same flow retargets to PRIME.
    ChipConfig prime = ChipConfig::prime();
    auto ours = makeCmSwitchCompiler(prime);
    auto mlc = makeCimMlcCompiler(prime);
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 2;
    Graph g = buildTransformerPrefill(cfg, 1, 64);
    CompileResult a = ours->compile(g);
    CompileResult b = mlc->compile(g);
    EXPECT_GT(a.totalCycles(), 0);
    EXPECT_LE(a.totalCycles(), b.totalCycles());
    Deha deha(prime);
    EXPECT_TRUE(validateProgram(a.program, deha).ok());
}

TEST(E2e, BatchScalingMonotone)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    Cycles b1 = compiler.compile(buildMobileNetV2(1)).totalCycles();
    Cycles b4 = compiler.compile(buildMobileNetV2(4)).totalCycles();
    EXPECT_GT(b4, b1); // more work cannot be faster
    EXPECT_LT(b4, 8 * b1); // batching amortises weight loads
}

TEST(E2e, SwitchOverheadShareInPaperRange)
{
    // Sec. 5.5: Eq. 1 switching cost is a negligible slice; the paper
    // attributes 3-5% to the whole switching *process* (store +
    // switch + reload), which we bound loosely here.
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    CompileResult r =
        compiler.compile(buildTransformerDecodeStep(cfg, 2, 256));
    double process_share =
        static_cast<double>(r.latency.modeSwitch + r.latency.writeback)
        / static_cast<double>(r.totalCycles());
    EXPECT_LT(process_share, 0.35);
    double switch_share = static_cast<double>(r.latency.modeSwitch)
                        / static_cast<double>(r.totalCycles());
    EXPECT_LT(switch_share, 0.02);
}

/** Property sweep: CMSwitch >= CIM-MLC on every (model, batch) pair. */
class NeverWorse
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(NeverWorse, AgainstCimMlc)
{
    auto [name, batch] = GetParam();
    ChipConfig chip = ChipConfig::dynaplasia();
    auto ours = makeCmSwitchCompiler(chip);
    auto mlc = makeCimMlcCompiler(chip);

    Graph g = buildModelByName(name, batch, 32);
    Cycles a = ours->compile(g).totalCycles();
    Cycles b = mlc->compile(g).totalCycles();
    EXPECT_LE(a, b) << name << " batch " << batch;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndBatches, NeverWorse,
    ::testing::Combine(::testing::Values(std::string("mobilenetv2"),
                                         std::string("resnet18"),
                                         std::string("bert-base")),
                       ::testing::Values(1, 4)));

} // namespace
} // namespace cmswitch
