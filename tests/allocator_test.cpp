/** @file Tests for the MIP-based dual-mode allocator (Sec. 4.3.2). */

#include <gtest/gtest.h>

#include "compiler/allocator.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

SegmentView
viewOf(const std::vector<OpWorkload> &ws,
       std::vector<SegmentView::Edge> edges = {})
{
    SegmentView v;
    for (const OpWorkload &w : ws)
        v.ops.push_back(&w);
    v.edges = std::move(edges);
    return v;
}

TEST(Allocator, SingleOpGetsMinimalFeasible)
{
    Deha deha(testing::tinyChip(8));
    CostModel cost(deha);
    DualModeAllocator alloc(cost, AllocatorOptions{});

    Rng rng(1);
    std::vector<OpWorkload> ws = {testing::randomWorkload(rng, deha.config())};
    SegmentAllocation a = alloc.allocate(viewOf(ws));
    ASSERT_TRUE(a.feasible());
    EXPECT_GE(a.allocs[0].computeArrays, ws[0].weightTiles);
    EXPECT_LE(a.plan.total(), deha.config().numSwitchArrays);
    EXPECT_EQ(a.intraLatency, cost.opLatency(ws[0], a.allocs[0]));
}

TEST(Allocator, InfeasibleWhenWeightsExceedChip)
{
    Deha deha(testing::tinyChip(4));
    CostModel cost(deha);
    DualModeAllocator alloc(cost, AllocatorOptions{});
    OpWorkload w;
    w.name = "huge";
    w.weightTiles = 5;
    w.utilization = 1.0;
    w.movingRows = 4;
    w.macs = 1000;
    w.weightBytes = 5 * 16 * 16;
    w.inputBytes = 100;
    w.outputBytes = 100;
    w.aiMacsPerByte = 0.5;
    std::vector<OpWorkload> ws = {w};
    EXPECT_FALSE(alloc.allocate(viewOf(ws)).feasible());
}

TEST(Allocator, MemoryModeOffMeansZeroMemoryArrays)
{
    Deha deha(testing::tinyChip(8));
    CostModel cost(deha);
    AllocatorOptions opts;
    opts.allowMemoryMode = false;
    DualModeAllocator alloc(cost, opts);

    Rng rng(3);
    std::vector<OpWorkload> ws = {testing::randomWorkload(rng, deha.config()),
                                  testing::randomWorkload(rng, deha.config())};
    SegmentAllocation a = alloc.allocate(viewOf(ws));
    ASSERT_TRUE(a.feasible());
    for (const OpAllocation &oa : a.allocs)
        EXPECT_EQ(oa.memoryArrays(), 0);
    EXPECT_EQ(a.plan.memoryArrays, 0);
}

TEST(Allocator, DualModeNeverSlowerThanComputeOnly)
{
    Deha deha(testing::tinyChip(10));
    CostModel cost(deha);
    AllocatorOptions dual;
    AllocatorOptions fixed;
    fixed.allowMemoryMode = false;
    DualModeAllocator dual_alloc(cost, dual);
    DualModeAllocator fixed_alloc(cost, fixed);

    Rng rng(11);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<OpWorkload> ws;
        s64 n = rng.nextInt(1, 3);
        for (s64 i = 0; i < n; ++i)
            ws.push_back(testing::randomWorkload(rng, deha.config(), 2));
        SegmentView v = viewOf(ws);
        SegmentAllocation d = dual_alloc.allocate(v);
        SegmentAllocation f = fixed_alloc.allocate(v);
        if (!f.feasible())
            continue;
        ASSERT_TRUE(d.feasible());
        EXPECT_LE(d.intraLatency, f.intraLatency) << "trial " << trial;
    }
}

TEST(Allocator, ReuseEnablesTightPacking)
{
    // Two chained ops whose memory needs exceed the chip unless the
    // producer's output buffer doubles as the consumer's input buffer.
    Deha deha(testing::tinyChip(6));
    CostModel cost(deha);
    const ChipConfig &chip = deha.config();

    OpWorkload a;
    a.name = "a";
    a.weightTiles = 1;
    a.utilization = 1.0;
    a.movingRows = 256;
    a.weightBytes = chip.arrayRows * chip.arrayCols;
    a.macs = a.weightBytes * a.movingRows;
    a.inputBytes = 2 * chip.arrayMemoryBytes();
    a.outputBytes = 2 * chip.arrayMemoryBytes();
    a.aiMacsPerByte = 0.4;
    OpWorkload b = a;
    b.name = "b";

    std::vector<OpWorkload> ws = {a, b};
    SegmentView v = viewOf(
        ws, {SegmentView::Edge{0, 1, 2 * chip.arrayMemoryBytes()}});

    DualModeAllocator alloc(cost, AllocatorOptions{});
    SegmentAllocation s = alloc.allocate(v);
    ASSERT_TRUE(s.feasible());
    s64 gross = 0;
    for (const OpAllocation &oa : s.allocs)
        gross += oa.total();
    EXPECT_EQ(gross - s.reusedArrays,
              s.plan.computeArrays + s.plan.memoryArrays);
    EXPECT_LE(s.plan.total(), chip.numSwitchArrays);
}

/** Property: bisection+MIP matches exhaustive search on tiny segments. */
class AllocatorVsExhaustive : public ::testing::TestWithParam<int>
{
};

TEST_P(AllocatorVsExhaustive, SameOptimalLatency)
{
    Rng rng(static_cast<u64>(GetParam()) * 104729 + 7);
    Deha deha(testing::tinyChip(rng.nextInt(6, 10)));
    CostModel cost(deha);
    AllocatorOptions opts;
    DualModeAllocator alloc(cost, opts);

    std::vector<OpWorkload> ws;
    s64 n = rng.nextInt(1, 2);
    for (s64 i = 0; i < n; ++i)
        ws.push_back(testing::randomWorkload(rng, deha.config(), 2));
    std::vector<SegmentView::Edge> edges;
    if (n == 2 && rng.nextInt(0, 1) == 1)
        edges.push_back(SegmentView::Edge{0, 1, rng.nextInt(64, 2048)});
    SegmentView v = viewOf(ws, edges);

    SegmentAllocation fast = alloc.allocate(v);
    SegmentAllocation brute = alloc.allocateExhaustive(v);
    ASSERT_EQ(fast.feasible(), brute.feasible());
    if (fast.feasible()) {
        EXPECT_EQ(fast.intraLatency, brute.intraLatency)
            << "fast plan: " << fast.plan.computeArrays << "c/"
            << fast.plan.memoryArrays << "m vs brute "
            << brute.plan.computeArrays << "c/" << brute.plan.memoryArrays
            << "m";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorVsExhaustive,
                         ::testing::Range(0, 20));

TEST(AllocatorSerial, GreedyImprovesOnMinimal)
{
    Deha deha(testing::tinyChip(12));
    CostModel cost(deha);
    AllocatorOptions opts;
    opts.pipelined = false;
    opts.allowMemoryMode = false;
    DualModeAllocator alloc(cost, opts);

    Rng rng(5);
    std::vector<OpWorkload> ws = {testing::randomWorkload(rng, deha.config()),
                                  testing::randomWorkload(rng, deha.config())};
    SegmentView v = viewOf(ws);
    SegmentAllocation a = alloc.allocate(v);
    ASSERT_TRUE(a.feasible());

    // Serial latency equals the sum of op latencies.
    Cycles sum = 0;
    for (std::size_t i = 0; i < ws.size(); ++i)
        sum += cost.opLatency(ws[i], a.allocs[i]);
    EXPECT_EQ(a.intraLatency, sum);

    // And it is no worse than the bare minimal allocation.
    Cycles minimal = 0;
    for (const OpWorkload &w : ws)
        minimal += cost.opLatency(w, OpAllocation{w.weightTiles, 0, 0});
    EXPECT_LE(a.intraLatency, minimal);
}

} // namespace
} // namespace cmswitch
