# Smoke test for the observability surface: compile the same model
# with and without `--trace`/`--metrics` and check that
#   1. the trace file is valid Chrome trace-event JSON (traceEvents
#      array whose complete events carry ph/ts/dur/pid/tid/name),
#      covering segmenter, allocator, solver and cache spans;
#   2. the metrics snapshot has counters and p50/p90/p95/p99 quantiles;
#   3. the emitted *plan* is byte-identical to an untraced compile —
#      observability observes, never steers.
# Run as `cmake -DCMSWITCHC=<exe> -DWORK_DIR=<dir> -P trace_smoke.cmake`.

if(NOT CMSWITCHC)
    message(FATAL_ERROR "pass -DCMSWITCHC=<path to cmswitchc>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(model resnet18)
set(common --model ${model} --optimize --search-threads 2)

# Plain compile: the reference program, no observability.
execute_process(COMMAND ${CMSWITCHC} ${common}
                        --out ${WORK_DIR}/plain.cmprog
                RESULT_VARIABLE result
                ERROR_VARIABLE err)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "plain compile failed (${result}):\n${err}")
endif()

# Traced compile: same request plus --trace/--metrics/--emit-json.
execute_process(COMMAND ${CMSWITCHC} ${common}
                        --out ${WORK_DIR}/traced.cmprog
                        --trace ${WORK_DIR}/trace.json
                        --metrics ${WORK_DIR}/metrics.json
                        --emit-json ${WORK_DIR}/report.json
                RESULT_VARIABLE result
                ERROR_VARIABLE err)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "traced compile failed (${result}):\n${err}")
endif()

# --- 1. plan bytes are identical with observability on ----------------
file(READ ${WORK_DIR}/plain.cmprog plain_prog)
file(READ ${WORK_DIR}/traced.cmprog traced_prog)
if(NOT plain_prog STREQUAL traced_prog)
    message(FATAL_ERROR "--trace changed the emitted program: "
                        "${WORK_DIR}/plain.cmprog vs traced.cmprog differ")
endif()

# --- 2. the trace is well-formed Chrome trace-event JSON --------------
file(READ ${WORK_DIR}/trace.json trace_doc)

string(JSON unit GET "${trace_doc}" displayTimeUnit)
if(NOT unit STREQUAL "ms")
    message(FATAL_ERROR "trace displayTimeUnit: expected 'ms', got '${unit}'")
endif()
string(JSON event_count LENGTH "${trace_doc}" traceEvents)
if(NOT event_count GREATER 10)
    message(FATAL_ERROR "trace has only ${event_count} event(s)")
endif()

# Structurally validate a bounded sample of events (each string(JSON)
# call re-parses the whole document, so a full walk would be O(n^2)):
# every sampled event must carry the trace-event keys and be an 'M'
# metadata record or an 'X' complete span with non-negative duration.
if(event_count GREATER 40)
    set(last 40)
else()
    math(EXPR last "${event_count} - 1")
endif()
foreach(i RANGE ${last})
    string(JSON ph GET "${trace_doc}" traceEvents ${i} ph)
    string(JSON name GET "${trace_doc}" traceEvents ${i} name)
    string(JSON tid GET "${trace_doc}" traceEvents ${i} tid)
    string(JSON pid GET "${trace_doc}" traceEvents ${i} pid)
    string(JSON ts GET "${trace_doc}" traceEvents ${i} ts)
    if(ph STREQUAL "X")
        string(JSON dur GET "${trace_doc}" traceEvents ${i} dur)
        if(dur LESS 0)
            message(FATAL_ERROR "event ${i} (${name}) has negative dur")
        endif()
    elseif(NOT ph STREQUAL "M")
        message(FATAL_ERROR "event ${i}: unexpected phase '${ph}'")
    endif()
endforeach()

# The pipeline's marquee spans must all appear somewhere in the trace:
# frontend, partitioner, segmenter DP phases, allocator, solver.
foreach(span frontend_passes partition.flatten segmenter.run dp.phase_a
        dp.phase_b dp.phase_c alloc.allocate alloc.probe mip.solve codegen)
    string(FIND "${trace_doc}" "\"name\": \"${span}\"" at)
    if(at EQUAL -1)
        message(FATAL_ERROR "trace is missing span '${span}'")
    endif()
endforeach()

# --- 3. the metrics snapshot has counters and quantiles ---------------
file(READ ${WORK_DIR}/metrics.json metrics_doc)
string(JSON compiles GET "${metrics_doc}" counters compile.compiles)
if(NOT compiles EQUAL 1)
    message(FATAL_ERROR "metrics compile.compiles: expected 1, "
                        "got '${compiles}'")
endif()
string(JSON probes GET "${metrics_doc}" counters alloc.probes)
if(NOT probes GREATER 0)
    message(FATAL_ERROR "metrics alloc.probes: expected > 0, got '${probes}'")
endif()
foreach(p p50 p90 p95 p99)
    string(JSON q GET "${metrics_doc}"
           quantiles phase.compile_seconds ${p})
    if(q LESS_EQUAL 0)
        message(FATAL_ERROR "metrics phase.compile_seconds ${p}: "
                            "expected > 0, got '${q}'")
    endif()
endforeach()

# --- 4. cache spans: a --cache-dir compile traces load and store ------
execute_process(COMMAND ${CMSWITCHC} ${common} --stats
                        --cache-dir ${WORK_DIR}/plans
                        --trace ${WORK_DIR}/cache.trace.json
                RESULT_VARIABLE result
                ERROR_VARIABLE err)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "cached traced compile failed (${result}):\n${err}")
endif()
file(READ ${WORK_DIR}/cache.trace.json cache_trace_doc)
foreach(span disk_cache.load disk_cache.store)
    string(FIND "${cache_trace_doc}" "\"name\": \"${span}\"" at)
    if(at EQUAL -1)
        message(FATAL_ERROR "cache trace is missing span '${span}'")
    endif()
endforeach()

# --- 5. the --emit-json report gained the observability section -------
# v2 shape: "observability" holds the per-request queue-wait/execute
# split under "request" and the metrics snapshot under "metrics"
# (docs/schemas.md) — the same shape serve responses and batch
# --job-latency reports use.
file(READ ${WORK_DIR}/report.json report_doc)
string(JSON seg_count GET "${report_doc}"
       observability metrics quantiles phase.segment_seconds count)
if(NOT seg_count GREATER 0)
    message(FATAL_ERROR "report observability phase.segment_seconds count: "
                        "expected > 0, got '${seg_count}'")
endif()
string(JSON exec_seconds GET "${report_doc}"
       observability request execute_seconds)
if(exec_seconds LESS_EQUAL 0)
    message(FATAL_ERROR "report observability request execute_seconds: "
                        "expected > 0, got '${exec_seconds}'")
endif()
string(JSON wait_seconds GET "${report_doc}"
       observability request queue_wait_seconds)
if(NOT wait_seconds EQUAL 0)
    message(FATAL_ERROR "single-mode queue_wait_seconds: expected 0, "
                        "got '${wait_seconds}'")
endif()

message(STATUS "trace_smoke: all checks passed "
               "(${event_count} trace events, plans byte-identical)")
