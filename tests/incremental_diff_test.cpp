/**
 * @file
 * Differential battery for incremental (delta) compilation: a warm
 * compile seeded with a structurally similar neighbor's retained state
 * must produce a CompileResult byte-identical to a cold compile of the
 * same graph — always, for every reuse level from full DP import
 * (exact structural match) down to cross-KV-bucket delta reuse and the
 * no-neighbor cold fallback.
 *
 * The sweep mirrors the fig18 bench's generative replay: for each
 * generative zoo model (llama2-7b, opt-13b, trimmed to 2 layers) it
 * compiles the prefill program plus each per-KV-bucket decode step,
 * chaining every compile's retained state into a WarmStateStore so the
 * next bucket warm-starts from its nearest structural neighbor. The
 * whole battery runs at search widths 1 and 8 because warm import must
 * not perturb the sharded DP any more than the cold path does.
 *
 * Byte-compare convention: CompileResult::writeBinary with
 * compileSeconds zeroed first — wall-clock is the one field that
 * legitimately differs between a cold and a warm compile (that
 * difference is the whole point).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline.hpp"
#include "compiler/warm_state.hpp"
#include "eval/evaluation.hpp"
#include "models/model_zoo.hpp"
#include "service/compile_service.hpp"
#include "service/disk_plan_cache.hpp"
#include "service/incremental/incremental_compile.hpp"
#include "service/incremental/structural_digest.hpp"
#include "service/incremental/warm_state_store.hpp"
#include "support/serialize.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

namespace fs = std::filesystem;
using testing::tinyChip;

/** Fresh scratch directory under gtest's temp root, removed on exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_(fs::path(::testing::TempDir())
                / ("cmswitch_" + tag + "_"
                   + std::to_string(
                         ::testing::UnitTest::GetInstance()->random_seed())
                   + "_"
                   + std::to_string(
                         reinterpret_cast<std::uintptr_t>(this))))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    std::string str() const { return path_.string(); }
    const fs::path &path() const { return path_; }

  private:
    fs::path path_;
};

/** Serialized result with compileSeconds zeroed (see file comment). */
std::string
resultBytes(const CompileResult &result)
{
    CompileResult copy = result;
    copy.compileSeconds = 0.0;
    BinaryWriter w;
    copy.writeBinary(w);
    return w.take();
}

/** The fig18 generative replay: prefill + per-KV-bucket decode steps
 *  (batch 1, 64+64 tokens, 2 buckets), trimmed to 2 layers. */
std::vector<Graph>
generativeGraphs(const std::string &model_name)
{
    TransformerConfig cfg = transformerConfigByName(model_name);
    cfg.layers = 2;
    const s64 input_len = 64, output_len = 64, buckets = 2;
    std::vector<Graph> graphs;
    graphs.push_back(buildTransformerPrefill(cfg, 1, input_len));
    for (s64 b = 0; b < buckets; ++b) {
        s64 tokens_lo = b * output_len / buckets;
        s64 tokens_hi = (b + 1) * output_len / buckets;
        s64 kv_len = input_len + (tokens_lo + tokens_hi) / 2 + 1;
        graphs.push_back(buildTransformerDecodeStep(cfg, 1, kv_len));
    }
    return graphs;
}

CompileRequest
makeRequest(const ChipConfig &chip, Graph graph)
{
    CompileRequest request;
    request.chip = chip;
    request.workload = std::move(graph);
    request.compilerId = "cmswitch";
    return request;
}

class IncrementalDiffThreads : public ::testing::TestWithParam<int>
{
};

/**
 * The core differential: chain the generative replay through a
 * WarmStateStore exactly the way the compile service does, and demand
 * byte-identity against the cold compile at every link. Along the way
 * pin the neighbor topology the store must produce: the first graph of
 * a family compiles cold, the second KV bucket warm-starts from the
 * first (same family, different exact), and a same-graph relookup is
 * an exact hit that reuses the full DP table.
 */
TEST_P(IncrementalDiffThreads, GenerativeKvSweepIsByteIdentical)
{
    const s64 threads = GetParam();
    ChipConfig chip = ChipConfig::dynaplasia();
    auto compiler = makeCmSwitchCompiler(chip, false, threads);

    for (const char *model : {"llama2-7b", "opt-13b"}) {
        SCOPED_TRACE(model);
        std::vector<Graph> graphs = generativeGraphs(model);
        ASSERT_EQ(graphs.size(), 3u); // prefill + 2 decode buckets

        // Cold truth, compiled with no warm machinery in sight.
        std::vector<std::string> cold;
        for (const Graph &g : graphs)
            cold.push_back(resultBytes(compiler->compile(g)));

        WarmStateStore store(""); // memory-only
        std::vector<StructuralDigest> digests;
        for (std::size_t i = 0; i < graphs.size(); ++i) {
            SCOPED_TRACE("graph " + std::to_string(i));
            CompileRequest request = makeRequest(chip, graphs[i]);
            StructuralDigest digest = requestStructuralDigest(request);
            digests.push_back(digest);

            WarmStateStore::Neighbor neighbor = store.findNeighbor(digest);
            if (i == 2) {
                // Second decode bucket: same ops as the first, shifted
                // KV shapes -> same family, non-exact neighbor.
                ASSERT_NE(neighbor.state, nullptr);
                EXPECT_FALSE(neighbor.exact);
                EXPECT_EQ(digests[2].family, digests[1].family);
                EXPECT_NE(digests[2].exact, digests[1].exact);
            }

            std::shared_ptr<CompilerWarmState> retained;
            WarmReuseStats stats;
            CompileResult warm = compiler->compileWarm(
                request.workload, neighbor.state, &retained, &stats);
            EXPECT_EQ(resultBytes(warm), cold[i])
                << "warm result diverged from cold compile";
            if (i == 2) {
                EXPECT_GT(stats.reuseScore(), 0)
                    << "cross-bucket neighbor did no work";
            }

            ASSERT_NE(retained, nullptr);
            store.put(digest, std::move(retained));
        }

        // Same-graph relookup: exact hit, full DP import, same bytes.
        for (std::size_t i = 0; i < graphs.size(); ++i) {
            SCOPED_TRACE("exact relookup " + std::to_string(i));
            WarmStateStore::Neighbor neighbor =
                store.findNeighbor(digests[i]);
            ASSERT_NE(neighbor.state, nullptr);
            EXPECT_TRUE(neighbor.exact);
            WarmReuseStats stats;
            CompileResult warm = compiler->compileWarm(
                graphs[i], neighbor.state, nullptr, &stats);
            EXPECT_EQ(resultBytes(warm), cold[i]);
            EXPECT_GT(stats.dpRowsReused, 0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SearchThreads, IncrementalDiffThreads,
                         ::testing::Values(1, 8));

/**
 * The .warm sidecar must survive a full disk round-trip: a second
 * store instance (fresh memory, same directory) finds the first
 * instance's retained state as an exact neighbor, and the warm compile
 * it seeds is still byte-identical.
 */
TEST(IncrementalDiff, WarmStateSurvivesDiskRoundtrip)
{
    ScratchDir dir("warm_roundtrip");
    ChipConfig chip = ChipConfig::dynaplasia();
    auto compiler = makeCmSwitchCompiler(chip);
    Graph graph = generativeGraphs("llama2-7b")[1]; // first decode bucket
    CompileRequest request = makeRequest(chip, graph);
    StructuralDigest digest = requestStructuralDigest(request);

    std::string cold = resultBytes(compiler->compile(graph));
    {
        WarmStateStore store(dir.str());
        std::shared_ptr<CompilerWarmState> retained;
        compiler->compileWarm(graph, nullptr, &retained, nullptr);
        ASSERT_NE(retained, nullptr);
        store.put(digest, std::move(retained));
        EXPECT_TRUE(fs::exists(store.warmPath(digest)));
    }

    WarmStateStore reloaded(dir.str());
    WarmStateStore::Neighbor neighbor = reloaded.findNeighbor(digest);
    ASSERT_NE(neighbor.state, nullptr);
    EXPECT_TRUE(neighbor.exact);
    WarmReuseStats stats;
    CompileResult warm =
        compiler->compileWarm(graph, neighbor.state, nullptr, &stats);
    EXPECT_EQ(resultBytes(warm), cold);
    EXPECT_GT(stats.dpRowsReused, 0);
}

/**
 * A truncated .warm file must read as "no neighbor": the lookup falls
 * back to a cold compile instead of importing garbage.
 */
TEST(IncrementalDiff, DamagedWarmFileFallsBackToCold)
{
    ScratchDir dir("warm_damage");
    ChipConfig chip = tinyChip();
    auto compiler = makeCmSwitchCompiler(chip);
    Graph graph = buildResNet18(1);
    CompileRequest request = makeRequest(chip, graph);
    StructuralDigest digest = requestStructuralDigest(request);
    {
        WarmStateStore store(dir.str());
        std::shared_ptr<CompilerWarmState> retained;
        compiler->compileWarm(graph, nullptr, &retained, nullptr);
        store.put(digest, std::move(retained));
        fs::resize_file(store.warmPath(digest), 16);
    }
    WarmStateStore reloaded(dir.str());
    EXPECT_EQ(reloaded.findNeighbor(digest).state, nullptr);
}

/**
 * Service-level pin over a CNN: compileArtifactIncremental's first
 * call records a neighbor miss and publishes a .warm sidecar; the
 * second call is an exact hit whose artifact is byte-identical. CNNs
 * take a different segmentation shape than the transformer sweeps
 * above, so this also widens the byte-identity coverage.
 */
TEST(IncrementalDiff, ServiceNeighborRecompileIsByteIdentical)
{
    ScratchDir dir("service_neighbor");
    CompileRequest request = makeRequest(tinyChip(), buildResNet18(1));
    std::string key = requestKey(request);
    std::string cold = resultBytes(compileArtifact(request, key)->result);

    DiskPlanCache disk(dir.str());
    WarmStateStore store(dir.str());
    ArtifactPtr first = compileArtifactIncremental(request, key, store,
                                                   &disk);
    ArtifactPtr second = compileArtifactIncremental(request, key, store,
                                                    &disk);
    EXPECT_EQ(resultBytes(first->result), cold);
    EXPECT_EQ(resultBytes(second->result), cold);

    DiskPlanCacheStats stats = disk.stats();
    EXPECT_EQ(stats.neighborMisses, 1);
    EXPECT_EQ(stats.neighborHits, 1);
    EXPECT_EQ(stats.neighborPartials, 0);

    StructuralDigest digest = requestStructuralDigest(request);
    EXPECT_TRUE(fs::exists(store.warmPath(digest)));
}

/**
 * The baseline compilers are CmSwitchCompiler configurations (greedy
 * segmentation, restricted modes, ...), so they ride the same warm
 * path. The byte-identity invariant must hold for them too — cim-mlc
 * runs with useDp=false, which exercises the warm levers under a
 * segmenter configuration the generative sweeps above never hit.
 */
TEST(IncrementalDiff, BaselineCompilerWarmPathIsByteIdentical)
{
    ChipConfig chip = tinyChip();
    auto baseline = makeCimMlcCompiler(chip);
    Graph graph = buildMobileNetV2(1);
    std::string cold = resultBytes(baseline->compile(graph));

    std::shared_ptr<CompilerWarmState> retained;
    CompileResult first =
        baseline->compileWarm(graph, nullptr, &retained, nullptr);
    EXPECT_EQ(resultBytes(first), cold);

    WarmReuseStats stats;
    CompileResult warm =
        baseline->compileWarm(graph, retained, nullptr, &stats);
    EXPECT_EQ(resultBytes(warm), cold);
}

} // namespace
} // namespace cmswitch
