/**
 * @file
 * Parameterized property sweeps over randomly generated inputs:
 * monotonicity of the Eq. 10 latency model, allocator resource
 * invariants (Eqs. 5-8), DP-vs-greedy dominance, and serializer
 * round-trips. These complement the targeted unit tests with
 * breadth.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "compiler/segmenter.hpp"
#include "graph/serialize.hpp"
#include "models/model_zoo.hpp"
#include "scenario_util.hpp"
#include "service/incremental/structural_digest.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

/** Random small DAG of ScheduledOps: workloads sized for the tiny
 *  chips, dependency edges reaching up to three ops back. */
std::vector<ScheduledOp>
randomScheduledOps(Rng &rng, const ChipConfig &chip, s64 n)
{
    std::vector<ScheduledOp> ops;
    ops.reserve(static_cast<std::size_t>(n));
    for (s64 i = 0; i < n; ++i) {
        ScheduledOp op;
        op.work = testing::randomWorkload(rng, chip, 3);
        op.work.opId = static_cast<OpId>(i);
        op.liveOutBytes = rng.nextInt(0, 4096);
        for (s64 p = std::max<s64>(0, i - 3); p < i; ++p) {
            if (rng.nextInt(0, 2) == 0) {
                op.preds.push_back(p);
                op.reuseBytes.push_back(rng.nextInt(64, 8192));
            }
        }
        ops.push_back(std::move(op));
    }
    return ops;
}

void
expectSameAllocation(const SegmentAllocation &cached,
                     const SegmentAllocation &fresh, s64 lo, s64 hi)
{
    EXPECT_EQ(cached.intraLatency, fresh.intraLatency)
        << "range [" << lo << ", " << hi << ")";
    EXPECT_EQ(cached.reusedArrays, fresh.reusedArrays);
    EXPECT_EQ(cached.plan.computeArrays, fresh.plan.computeArrays);
    EXPECT_EQ(cached.plan.memoryArrays, fresh.plan.memoryArrays);
    ASSERT_EQ(cached.allocs.size(), fresh.allocs.size());
    for (std::size_t i = 0; i < cached.allocs.size(); ++i) {
        EXPECT_EQ(cached.allocs[i].computeArrays,
                  fresh.allocs[i].computeArrays);
        EXPECT_EQ(cached.allocs[i].memInArrays, fresh.allocs[i].memInArrays);
        EXPECT_EQ(cached.allocs[i].memOutArrays,
                  fresh.allocs[i].memOutArrays);
    }
}

class Seeded : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng_{static_cast<u64>(GetParam()) * 1099511628211ull + 5};
};

using CostMonotonicity = Seeded;

TEST_P(CostMonotonicity, LatencyNonIncreasingInResources)
{
    Deha deha(testing::tinyChip(16));
    CostModel cost(deha);
    for (int trial = 0; trial < 20; ++trial) {
        OpWorkload w = testing::randomWorkload(rng_, deha.config(), 4);
        // Compute axis (at fixed memory).
        Cycles prev = kInfCycles;
        for (s64 c = w.weightTiles; c <= 4 * w.weightTiles;
             c += w.weightTiles) {
            Cycles l = cost.opLatency(w, OpAllocation{c, 1, 1});
            EXPECT_LE(l, prev);
            prev = l;
        }
        // Memory axis (at fixed compute).
        prev = kInfCycles;
        for (s64 m = 0; m <= 12; ++m) {
            Cycles l = cost.opLatency(w, OpAllocation{w.weightTiles, m, 0});
            EXPECT_LE(l, prev);
            prev = l;
        }
        // A smaller D_main share can never make an op faster.
        Cycles full = cost.opLatency(w, OpAllocation{w.weightTiles, 2, 2},
                                     1.0);
        Cycles half = cost.opLatency(w, OpAllocation{w.weightTiles, 2, 2},
                                     0.5);
        EXPECT_LE(full, half);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostMonotonicity, ::testing::Range(0, 8));

using AllocatorInvariants = Seeded;

TEST_P(AllocatorInvariants, ResourceAndConsistency)
{
    Deha deha(testing::tinyChip(static_cast<s64>(rng_.nextInt(8, 16))));
    CostModel cost(deha);
    DualModeAllocator alloc(cost, AllocatorOptions{});

    for (int trial = 0; trial < 10; ++trial) {
        std::vector<OpWorkload> ws;
        s64 n = rng_.nextInt(1, 4);
        for (s64 i = 0; i < n; ++i) {
            ws.push_back(testing::randomWorkload(rng_, deha.config(), 3));
            ws.back().opId = static_cast<OpId>(i);
        }
        SegmentView view;
        for (const OpWorkload &w : ws)
            view.ops.push_back(&w);
        for (s64 i = 1; i < n; ++i) {
            if (rng_.nextInt(0, 1)) {
                view.edges.push_back(SegmentView::Edge{
                    i - 1, i, rng_.nextInt(64, 8192)});
            }
        }

        SegmentAllocation a = alloc.allocate(view);
        if (!a.feasible())
            continue;

        // Eq. 8: the packed segment fits the chip.
        EXPECT_LE(a.plan.total(), deha.config().numSwitchArrays);
        s64 gross = 0;
        for (std::size_t i = 0; i < a.allocs.size(); ++i) {
            // Weights always fit their compute arrays.
            EXPECT_GE(a.allocs[i].computeArrays, ws[i].weightTiles);
            EXPECT_GE(a.allocs[i].memInArrays, 0);
            EXPECT_GE(a.allocs[i].memOutArrays, 0);
            gross += a.allocs[i].total();
        }
        EXPECT_EQ(gross - a.reusedArrays, a.plan.total());

        // The claimed latency is exactly what the cost model computes.
        std::vector<OpAllocation> as = a.allocs;
        EXPECT_EQ(a.intraLatency, cost.segmentLatency(ws, as));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorInvariants, ::testing::Range(0, 8));

using DpDominance = Seeded;

TEST_P(DpDominance, DpNeverWorseThanGreedy)
{
    Deha deha(testing::tinyChip(10));
    CostModel cost(deha);
    Graph g = testing::chainMlp(static_cast<s64>(rng_.nextInt(3, 7)),
                                8 * rng_.nextInt(2, 5),
                                rng_.nextInt(1, 3));
    auto ops = flattenGraph(g, deha);

    for (bool memory_mode : {true, false}) {
        SegmenterOptions opt;
        opt.alloc.allowMemoryMode = memory_mode;
        opt.useDp = true;
        Segmenter dp(cost, opt);
        opt.useDp = false;
        Segmenter greedy(cost, opt);
        Cycles a = dp.run(ops).latency.total();
        Cycles b = greedy.run(ops).latency.total();
        EXPECT_LE(a, b) << "memory_mode=" << memory_mode;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpDominance, ::testing::Range(0, 10));

using RangeCacheConsistency = Seeded;

TEST_P(RangeCacheConsistency, CachedAllocationsEqualFreshRecomputes)
{
    // The segmenter's two-level cache (flat-hash range keys over the
    // cross-run signature cache) must be semantically invisible: for
    // any range of any random DAG, the cached allocation equals what a
    // fresh allocator computes from scratch.
    Deha deha(testing::tinyChip(static_cast<s64>(rng_.nextInt(8, 16))));
    CostModel cost(deha);
    SegmenterOptions opt;
    Segmenter segmenter(cost, opt);
    DualModeAllocator fresh(cost, opt.alloc);

    const s64 n = rng_.nextInt(4, 12);
    std::vector<ScheduledOp> ops = randomScheduledOps(rng_, deha.config(), n);
    segmenter.run(ops); // populates the caches along the DP's ranges
    EXPECT_GT(segmenter.cacheMisses(), 0);

    for (int probe = 0; probe < 25; ++probe) {
        s64 lo = rng_.nextInt(0, n - 1);
        s64 hi = rng_.nextInt(lo + 1, n);
        const SegmentAllocation &cached =
            segmenter.allocationForRange(ops, lo, hi);
        // Probe again: the second lookup is a guaranteed range-cache
        // hit and must alias the same allocation.
        s64 hits_before = segmenter.cacheHits();
        const SegmentAllocation &rehit =
            segmenter.allocationForRange(ops, lo, hi);
        EXPECT_EQ(&cached, &rehit);
        EXPECT_GT(segmenter.cacheHits(), hits_before);
        expectSameAllocation(cached,
                             fresh.allocate(makeSegmentView(ops, lo, hi)),
                             lo, hi);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeCacheConsistency,
                         ::testing::Range(0, 10));

using RangeKeyPacking = Seeded;

TEST_P(RangeKeyPacking, PackedKeysRoundTripWithoutCollision)
{
    // The per-run range cache packs (lo, hi) as lo * (n + 1) + hi.
    // Round-tripping the key through / and % proves injectivity; the
    // sweep covers n from tiny up to Segmenter::kMaxOps (the packing
    // guard asserted by Segmenter::run).
    const s64 sizes[] = {1, 2, 63, 64, 4096, 1 << 20,
                         Segmenter::kMaxOps};
    for (s64 n : sizes) {
        for (int trial = 0; trial < 50; ++trial) {
            s64 lo = rng_.nextInt(0, n - 1);
            s64 hi = rng_.nextInt(lo + 1, n);
            s64 key = lo * (n + 1) + hi;
            ASSERT_GE(key, 0) << "overflow at n=" << n;
            EXPECT_EQ(key / (n + 1), lo) << "n=" << n;
            EXPECT_EQ(key % (n + 1), hi) << "n=" << n;
        }
    }
    // Small n: exhaustive distinctness over every legal (lo, hi).
    const s64 n = 40;
    std::unordered_set<s64> seen;
    for (s64 lo = 0; lo < n; ++lo) {
        for (s64 hi = lo + 1; hi <= n; ++hi)
            EXPECT_TRUE(seen.insert(lo * (n + 1) + hi).second)
                << "collision at (" << lo << ", " << hi << ")";
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n * (n + 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeKeyPacking, ::testing::Range(0, 4));

using SerializeFuzz = Seeded;

TEST_P(SerializeFuzz, RandomChainsRoundTrip)
{
    Graph g = testing::chainMlp(static_cast<s64>(rng_.nextInt(1, 8)),
                                8 * rng_.nextInt(1, 8),
                                rng_.nextInt(1, 5));
    Graph back = parseGraph(serializeGraph(g));
    EXPECT_EQ(serializeGraph(back), serializeGraph(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz, ::testing::Range(0, 10));

using PartitionConservation = Seeded;

TEST_P(PartitionConservation, SlicesPreserveTotals)
{
    Deha deha(testing::tinyChip(6));
    PartitionOptions opts;
    opts.maxTilesPerSubOp = static_cast<s64>(rng_.nextInt(1, 4));
    s64 dim = 16 * rng_.nextInt(2, 6);
    Graph g = testing::chainMlp(2, dim, 2);
    auto ops = flattenGraph(g, deha, opts);

    s64 macs = 0, weight_bytes = 0;
    for (const ScheduledOp &s : ops) {
        EXPECT_LE(s.work.weightTiles, opts.maxTilesPerSubOp);
        macs += s.work.macs;
        weight_bytes += s.work.weightBytes;
    }
    // Column splits partition MACs and weights exactly.
    EXPECT_EQ(macs, 2 * 2 * dim * dim);
    EXPECT_EQ(weight_bytes, 2 * dim * dim);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionConservation,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------
// Structural digests (incremental compilation's neighbor index).
// ---------------------------------------------------------------------

/**
 * Every cell of the scenario matrix (3 chips x 4 workloads x 4
 * compilers), plus a shape-mutated variant of each workload, must map
 * to a distinct exact digest and a distinct family — and rebuilding
 * the identical request must reproduce all four digest components
 * bit-for-bit (the builders append ops in one deterministic order, so
 * digest stability is order stability).
 */
TEST(StructuralDigestProperties, MatrixCellsDistinctAndOrderStable)
{
    std::unordered_set<u64> exacts, families;
    s64 cells = 0;
    for (const std::string &chip : testing::scenarioChipNames()) {
        for (const std::string &workload :
             testing::scenarioWorkloadNames()) {
            for (const std::string &compiler :
                 testing::scenarioCompilerNames()) {
                CompileRequest request;
                request.chip = testing::scenarioChip(chip);
                request.workload = testing::scenarioWorkload(workload);
                request.compilerId = compiler;
                StructuralDigest a = requestStructuralDigest(request);

                CompileRequest rebuilt;
                rebuilt.chip = testing::scenarioChip(chip);
                rebuilt.workload = testing::scenarioWorkload(workload);
                rebuilt.compilerId = compiler;
                StructuralDigest b = requestStructuralDigest(rebuilt);
                EXPECT_TRUE(a == b)
                    << chip << "/" << workload << "/" << compiler;

                EXPECT_TRUE(exacts.insert(a.exact).second)
                    << "exact collision at " << chip << "/" << workload
                    << "/" << compiler;
                EXPECT_TRUE(families.insert(a.family).second)
                    << "family collision at " << chip << "/" << workload
                    << "/" << compiler;
                ++cells;
            }
        }
    }
    EXPECT_EQ(cells, 48);

    // Mutated variants: one extra transformer layer is an op insert —
    // a *structural* change, so the family moves and cannot collide
    // with any unmutated cell's.
    for (const char *workload : {"bert-base-prefill", "opt-6.7b-decode"}) {
        CompileRequest request;
        request.chip = testing::scenarioChip("tiny");
        request.workload = testing::scenarioWorkload(
            workload, testing::kTier1TransformerLayers + 1);
        request.compilerId = "cmswitch";
        StructuralDigest d = requestStructuralDigest(request);
        EXPECT_TRUE(families.insert(d.family).second) << workload;
        EXPECT_TRUE(exacts.insert(d.exact).second) << workload;
    }
}

/**
 * KV-bucket variants are the neighbor lookup's bread and butter: the
 * same decode program at two cache lengths shares a family (shape-free
 * structure) while every shape-inclusive component separates them.
 */
TEST(StructuralDigestProperties, KvVariantsShareFamilyNotExact)
{
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    CompileRequest a, b;
    a.chip = b.chip = testing::scenarioChip("tiny");
    a.compilerId = b.compilerId = "cmswitch";
    a.workload = buildTransformerDecodeStep(cfg, 1, 81);
    b.workload = buildTransformerDecodeStep(cfg, 1, 113);
    StructuralDigest da = requestStructuralDigest(a);
    StructuralDigest db = requestStructuralDigest(b);
    EXPECT_EQ(da.family, db.family);
    EXPECT_NE(da.exact, db.exact);

    // The same graph under a different compiler id (or chip) is a
    // different family: warm state never leaks across configurations.
    CompileRequest c = a;
    c.compilerId = "cim-mlc";
    EXPECT_NE(requestStructuralDigest(c).family, da.family);
}

/** Deterministic matmul chain: op i maps dims[i] -> dims[i+1]. */
Graph
chainGraph(const std::vector<s64> &dims)
{
    Graph g("digest-chain");
    TensorId cursor = g.addTensor("x", Shape{1, dims[0]}, DType::kInt8,
                                  TensorKind::kInput);
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
        TensorId w = g.addTensor(concat("w", i),
                                 Shape{dims[i], dims[i + 1]}, DType::kInt8,
                                 TensorKind::kWeight);
        TensorId y = g.addTensor(concat("y", i), Shape{1, dims[i + 1]});
        Operator mm;
        mm.name = "mm" + std::to_string(i);
        mm.kind = OpKind::kMatMul;
        mm.inputs = {cursor, w};
        mm.outputs = {y};
        g.addOp(mm);
        cursor = y;
    }
    g.tensor(cursor).kind = TensorKind::kOutput;
    g.validate();
    return g;
}

class StructuralDigestWindows : public ::testing::TestWithParam<int>
{
};

/**
 * The prefix/suffix windows are what ranks same-family candidates, so
 * pin their blast radius exactly: a shape bump strictly between the
 * two windows leaves both intact (exact alone moves); a bump inside
 * one window dirties that window and only that window. Random chain
 * lengths and dims; the family never moves on a pure shape change.
 */
TEST_P(StructuralDigestWindows, ShapeBumpDirtiesOnlyItsWindow)
{
    Rng rng(static_cast<u64>(GetParam()) * 1099511628211ull + 5);
    const s64 n = rng.nextInt(3 * kDigestWindow, 4 * kDigestWindow);
    std::vector<s64> dims;
    for (s64 i = 0; i <= n; ++i)
        dims.push_back(8 * rng.nextInt(2, 6));
    const u64 seed = 0x5eedu + static_cast<u64>(GetParam());
    StructuralDigest base = graphStructuralDigest(chainGraph(dims), seed);

    // Same graph, different context seed: nothing survives.
    StructuralDigest other = graphStructuralDigest(chainGraph(dims),
                                                   seed + 1);
    EXPECT_NE(other.family, base.family);
    EXPECT_NE(other.exact, base.exact);

    auto bumped = [&](s64 index) {
        std::vector<s64> copy = dims;
        copy[static_cast<std::size_t>(index)] += 8;
        return graphStructuralDigest(chainGraph(copy), seed);
    };

    // Strictly between the windows. Op i touches dims[i] and
    // dims[i+1], so a bump at index k dirties ops k-1 and k: keep k-1
    // inside [kDigestWindow, n - kDigestWindow).
    StructuralDigest mid = bumped(
        rng.nextInt(kDigestWindow + 1, n - kDigestWindow));
    EXPECT_EQ(mid.family, base.family);
    EXPECT_EQ(mid.prefix, base.prefix);
    EXPECT_EQ(mid.suffix, base.suffix);
    EXPECT_NE(mid.exact, base.exact);

    // Inside the prefix window only.
    StructuralDigest head = bumped(rng.nextInt(0, kDigestWindow - 1));
    EXPECT_EQ(head.family, base.family);
    EXPECT_NE(head.prefix, base.prefix);
    EXPECT_EQ(head.suffix, base.suffix);
    EXPECT_NE(head.exact, base.exact);

    // Inside the suffix window only.
    StructuralDigest tail = bumped(rng.nextInt(n - kDigestWindow + 2, n));
    EXPECT_EQ(tail.family, base.family);
    EXPECT_EQ(tail.prefix, base.prefix);
    EXPECT_NE(tail.suffix, base.suffix);
    EXPECT_NE(tail.exact, base.exact);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuralDigestWindows,
                         ::testing::Range(0, 8));

} // namespace
} // namespace cmswitch
