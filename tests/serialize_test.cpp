/** @file Round-trip tests for the textual graph exchange format. */

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/serialize.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

void
expectRoundTrip(const Graph &g)
{
    std::string text = serializeGraph(g);
    Graph back = parseGraph(text);
    ASSERT_EQ(back.numTensors(), g.numTensors());
    ASSERT_EQ(back.numOps(), g.numOps());
    EXPECT_EQ(back.name(), g.name());
    for (TensorId t = 0; t < g.numTensors(); ++t) {
        EXPECT_EQ(back.tensor(t).name, g.tensor(t).name);
        EXPECT_EQ(back.tensor(t).shape, g.tensor(t).shape);
        EXPECT_EQ(back.tensor(t).dtype, g.tensor(t).dtype);
        EXPECT_EQ(back.tensor(t).kind, g.tensor(t).kind);
    }
    for (OpId o = 0; o < g.numOps(); ++o) {
        EXPECT_EQ(back.op(o).name, g.op(o).name);
        EXPECT_EQ(back.op(o).kind, g.op(o).kind);
        EXPECT_EQ(back.op(o).cls, g.op(o).cls);
        EXPECT_EQ(back.op(o).inputs, g.op(o).inputs);
        EXPECT_EQ(back.op(o).outputs, g.op(o).outputs);
        EXPECT_EQ(back.op(o).conv.kernelH, g.op(o).conv.kernelH);
        EXPECT_EQ(back.op(o).conv.groups, g.op(o).conv.groups);
        EXPECT_EQ(back.op(o).activationName, g.op(o).activationName);
    }
    // Profiles must be identical too (a strong structural check).
    GraphProfile p1 = profileGraph(g);
    GraphProfile p2 = profileGraph(back);
    EXPECT_EQ(p1.totalMacs, p2.totalMacs);
    EXPECT_EQ(p1.totalTraffic, p2.totalTraffic);
}

TEST(Serialize, TinyMlpRoundTrip)
{
    expectRoundTrip(buildTinyMlp());
}

TEST(Serialize, ChainRoundTrip)
{
    expectRoundTrip(testing::chainMlp(5));
}

TEST(Serialize, ResNet18RoundTrip)
{
    expectRoundTrip(buildResNet18(2));
}

TEST(Serialize, MobileNetRoundTrip)
{
    expectRoundTrip(buildMobileNetV2(1));
}

TEST(Serialize, TransformerRoundTrip)
{
    TransformerConfig cfg = TransformerConfig::bertBase();
    cfg.layers = 2;
    expectRoundTrip(buildTransformerPrefill(cfg, 2, 32));
}

TEST(Serialize, DecodeStepRoundTrip)
{
    TransformerConfig cfg = TransformerConfig::gpt();
    cfg.layers = 1;
    expectRoundTrip(buildTransformerDecodeStep(cfg, 1, 16));
}

TEST(SerializeDeath, RejectsGarbage)
{
    EXPECT_EXIT(parseGraph("bogus line"), ::testing::ExitedWithCode(1),
                "unknown line tag");
}

TEST(SerializeDeath, RejectsMissingHeader)
{
    EXPECT_EXIT(parseGraph(""), ::testing::ExitedWithCode(1),
                "missing 'graph' header");
}

} // namespace
} // namespace cmswitch
