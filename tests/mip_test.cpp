/** @file Branch-and-bound MIP solver tests, incl. brute-force certification. */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/mip.hpp"
#include "support/random.hpp"

namespace cmswitch {
namespace {

TEST(Mip, KnapsackOptimal)
{
    // max 60a + 100b + 120c s.t. 10a + 20b + 30c <= 50, binaries.
    // 0/1 knapsack optimum: b + c = 220.
    LinearModel m;
    VarId a = m.addVar("a", 0, 1, VarType::kInteger);
    VarId b = m.addVar("b", 0, 1, VarType::kInteger);
    VarId c = m.addVar("c", 0, 1, VarType::kInteger);
    LinearExpr cap;
    cap.add(a, 10).add(b, 20).add(c, 30);
    m.addConstraint(cap, Rel::kLe, 50);
    LinearExpr obj;
    obj.add(a, 60).add(b, 100).add(c, 120);
    m.setObjective(obj, Sense::kMaximize);

    MipResult r = solveMip(m);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, 220.0, 1e-6);
    EXPECT_NEAR(r.values[0], 0.0, 1e-6);
    EXPECT_NEAR(r.values[1], 1.0, 1e-6);
    EXPECT_NEAR(r.values[2], 1.0, 1e-6);
}

TEST(Mip, IntegralityForcesWorseThanLp)
{
    // max x s.t. 2x <= 7: LP gives 3.5, MIP must give 3.
    LinearModel m;
    VarId x = m.addVar("x", 0, kInfinity, VarType::kInteger);
    m.addConstraint(term(x, 2.0), Rel::kLe, 7);
    m.setObjective(term(x), Sense::kMaximize);
    MipResult r = solveMip(m);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(Mip, MixedIntegerContinuous)
{
    // max 2x + y, x integer <= 2.5-ish via 2x <= 5, y <= 1.5 cont.
    LinearModel m;
    VarId x = m.addVar("x", 0, kInfinity, VarType::kInteger);
    VarId y = m.addVar("y", 0, 1.5);
    m.addConstraint(term(x, 2.0), Rel::kLe, 5);
    LinearExpr obj;
    obj.add(x, 2.0).add(y, 1.0);
    m.setObjective(obj, Sense::kMaximize);
    MipResult r = solveMip(m);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, 5.5, 1e-6); // x=2, y=1.5
}

TEST(Mip, InfeasibleInteger)
{
    // 2 <= 3x <= 4 has no integer point... 3x >= 2 and 3x <= 4 => x in
    // [0.67, 1.33] => x = 1 works! Use [4, 5] => x in [1.33, 1.67]: none.
    LinearModel m;
    VarId x = m.addVar("x", 0, 10, VarType::kInteger);
    m.addConstraint(term(x, 3.0), Rel::kGe, 4);
    m.addConstraint(term(x, 3.0), Rel::kLe, 5);
    m.setObjective(term(x), Sense::kMinimize);
    EXPECT_EQ(solveMip(m).status, SolveStatus::kInfeasible);
}

TEST(Mip, TransportationIsIntegral)
{
    // 2 producers x 2 consumers, maximize shipped subject to caps.
    LinearModel m;
    VarId r00 = m.addVar("r00", 0, 5, VarType::kInteger);
    VarId r01 = m.addVar("r01", 0, 5, VarType::kInteger);
    VarId r10 = m.addVar("r10", 0, 5, VarType::kInteger);
    VarId r11 = m.addVar("r11", 0, 5, VarType::kInteger);
    LinearExpr p0, p1, c0, c1;
    p0.add(r00, 1.0).add(r01, 1.0);
    p1.add(r10, 1.0).add(r11, 1.0);
    c0.add(r00, 1.0).add(r10, 1.0);
    c1.add(r01, 1.0).add(r11, 1.0);
    m.addConstraint(p0, Rel::kLe, 3);  // producer 0 supply
    m.addConstraint(p1, Rel::kLe, 4);  // producer 1 supply
    m.addConstraint(c0, Rel::kLe, 2);  // consumer 0 demand
    m.addConstraint(c1, Rel::kLe, 6);  // consumer 1 demand
    LinearExpr obj;
    obj.add(r00, 1.0).add(r01, 1.0).add(r10, 1.0).add(r11, 1.0);
    m.setObjective(obj, Sense::kMaximize);
    MipResult r = solveMip(m);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, 7.0, 1e-6); // min(supply 7, demand 8)
}

/**
 * Property: on random small integer programs, branch-and-bound matches
 * exhaustive enumeration exactly.
 */
class RandomMip : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomMip, MatchesBruteForce)
{
    Rng rng(static_cast<u64>(GetParam()) * 7919 + 13);
    const s64 n = rng.nextInt(2, 4);
    const s64 ub = 4;

    LinearModel m;
    std::vector<VarId> vars;
    for (s64 i = 0; i < n; ++i)
        vars.push_back(m.addVar("v", 0, static_cast<double>(ub),
                                VarType::kInteger));
    const s64 n_cons = rng.nextInt(1, 3);
    std::vector<std::vector<s64>> cons_coef;
    std::vector<s64> cons_rhs;
    for (s64 c = 0; c < n_cons; ++c) {
        LinearExpr e;
        std::vector<s64> coef;
        for (s64 i = 0; i < n; ++i) {
            s64 k = rng.nextInt(0, 3);
            coef.push_back(k);
            if (k != 0)
                e.add(vars[static_cast<std::size_t>(i)],
                      static_cast<double>(k));
        }
        s64 rhs = rng.nextInt(2, 12);
        m.addConstraint(e, Rel::kLe, static_cast<double>(rhs));
        cons_coef.push_back(coef);
        cons_rhs.push_back(rhs);
    }
    std::vector<s64> obj_coef;
    LinearExpr obj;
    for (s64 i = 0; i < n; ++i) {
        s64 k = rng.nextInt(1, 5);
        obj_coef.push_back(k);
        obj.add(vars[static_cast<std::size_t>(i)], static_cast<double>(k));
    }
    m.setObjective(obj, Sense::kMaximize);

    // Brute force.
    s64 best = -1;
    std::vector<s64> x(static_cast<std::size_t>(n), 0);
    std::function<void(s64)> enumerate = [&](s64 i) {
        if (i == n) {
            for (s64 c = 0; c < n_cons; ++c) {
                s64 lhs = 0;
                for (s64 j = 0; j < n; ++j)
                    lhs += cons_coef[static_cast<std::size_t>(c)]
                                    [static_cast<std::size_t>(j)]
                         * x[static_cast<std::size_t>(j)];
                if (lhs > cons_rhs[static_cast<std::size_t>(c)])
                    return;
            }
            s64 v = 0;
            for (s64 j = 0; j < n; ++j)
                v += obj_coef[static_cast<std::size_t>(j)]
                   * x[static_cast<std::size_t>(j)];
            best = std::max(best, v);
            return;
        }
        for (s64 v = 0; v <= ub; ++v) {
            x[static_cast<std::size_t>(i)] = v;
            enumerate(i + 1);
        }
    };
    enumerate(0);

    MipResult r = solveMip(m);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, static_cast<double>(best), 1e-6);
    EXPECT_TRUE(m.isFeasible(r.values, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMip, ::testing::Range(0, 25));

} // namespace
} // namespace cmswitch
