# Smoke test for `cmswitchc --emit-json`: compile resnet18, then
# consume the machine-readable report with CMake's JSON parser instead
# of regexing stderr (the ROADMAP "bench drivers reparse stderr" item).
# Run as `cmake -DCMSWITCHC=<exe> -DWORK_DIR=<dir> -P json_smoke.cmake`.

if(NOT CMSWITCHC)
    message(FATAL_ERROR "pass -DCMSWITCHC=<path to cmswitchc>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})
set(report ${WORK_DIR}/resnet18.json)

execute_process(COMMAND ${CMSWITCHC} --model resnet18 --stats
                        --emit-json ${report}
                RESULT_VARIABLE result
                ERROR_VARIABLE err)
if(NOT result EQUAL 0)
    message(FATAL_ERROR "cmswitchc --emit-json failed (${result}):\n${err}")
endif()

file(READ ${report} doc)

# expect_json_equal(<expected> <path...>) / expect_json_positive(<path...>)
function(expect_json_equal expected)
    string(JSON actual GET "${doc}" ${ARGN})
    if(NOT actual STREQUAL expected)
        message(FATAL_ERROR "report ${ARGN}: expected '${expected}', "
                            "got '${actual}'")
    endif()
endfunction()

function(expect_json_positive)
    string(JSON actual GET "${doc}" ${ARGN})
    if(NOT actual GREATER 0)
        message(FATAL_ERROR "report ${ARGN}: expected > 0, got '${actual}'")
    endif()
endfunction()

expect_json_equal("cmswitch-compile-report-v2" schema)
expect_json_equal("dynaplasia" chip)
expect_json_equal("edram" technology)
expect_json_equal("cmswitch" compiler)
expect_json_equal("ON" valid)  # CMake renders JSON true as ON
expect_json_positive(result segments)
expect_json_positive(result latency total)
expect_json_positive(energy total_pj)

# The latency breakdown must sum to the total, checked from JSON alone.
string(JSON total GET "${doc}" result latency total)
string(JSON intra GET "${doc}" result latency intra)
string(JSON writeback GET "${doc}" result latency writeback)
string(JSON mode_switch GET "${doc}" result latency mode_switch)
string(JSON rewrite GET "${doc}" result latency rewrite)
math(EXPR sum "${intra} + ${writeback} + ${mode_switch} + ${rewrite}")
if(NOT sum EQUAL total)
    message(FATAL_ERROR "latency breakdown ${sum} != total ${total}")
endif()

message(STATUS "json_smoke: all checks passed")
