# The `cmswitchc batch` acceptance gate: drive the full 3-chip x
# 4-workload x 4-compiler scenario matrix (plus duplicated jobs)
# through the compile service on 4 threads, and require
#   - exit 0 with validator-clean plans for every job,
#   - a cache hit for every repeated request key,
#   - per-job JSON byte-identical to the --threads 1 run.
# Run as `cmake -DCMSWITCHC=<exe> -DWORK_DIR=<dir> -P batch_smoke.cmake`.

if(NOT CMSWITCHC)
    message(FATAL_ERROR "pass -DCMSWITCHC=<path to cmswitchc>")
endif()
if(NOT WORK_DIR)
    message(FATAL_ERROR "pass -DWORK_DIR=<scratch directory>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# The tests' "tiny" scenario chip (testing::tinyChip(16, 128)), spelled
# as a user chip file so the CLI exercises the file-parsing path too.
set(tiny_chip ${WORK_DIR}/tiny.chip)
file(WRITE ${tiny_chip} "\
name = tiny
technology = edram
num_switch_arrays = 16
array_rows = 128
array_cols = 128
buffer_bytes = 64
internal_bw = 2
extern_bw = 4
buffer_bw = 1
op_per_cycle = 8
write_row_latency = 2
fu_ops_per_cycle = 16
")

# Scenario workloads at the e2e suites' scale (transformers at 2 layers).
set(workloads
    "--model resnet18"
    "--model mobilenetv2"
    "--model bert-base --layers 2 --seq 64"
    "--model opt-6.7b --decode 256 --layers 2")
set(compilers cmswitch cim-mlc occ puma)

set(jobs "# full scenario matrix\n")
foreach(chip dynaplasia prime ${tiny_chip})
    foreach(workload IN LISTS workloads)
        foreach(compiler IN LISTS compilers)
            string(APPEND jobs
                   "${workload} --chip ${chip} --compiler ${compiler}\n")
        endforeach()
    endforeach()
endforeach()
# Repeat four matrix cells so the cache sees duplicate keys.
string(APPEND jobs
       "--model resnet18 --chip dynaplasia --compiler cmswitch\n"
       "--model resnet18 --chip prime --compiler puma\n"
       "--model opt-6.7b --decode 256 --layers 2 --chip ${tiny_chip} --compiler cmswitch\n"
       "--model bert-base --layers 2 --seq 64 --chip dynaplasia --compiler occ\n")
set(jobs_file ${WORK_DIR}/jobs.txt)
file(WRITE ${jobs_file} "${jobs}")

function(run_batch threads out_dir)
    execute_process(COMMAND ${CMSWITCHC} batch --jobs ${jobs_file}
                            --threads ${threads} --out-dir ${out_dir}
                    RESULT_VARIABLE result
                    ERROR_VARIABLE err)
    if(NOT result EQUAL 0)
        message(FATAL_ERROR "cmswitchc batch --threads ${threads} failed "
                            "(${result}):\n${err}")
    endif()
endfunction()

run_batch(4 ${WORK_DIR}/mt)
run_batch(1 ${WORK_DIR}/serial)

# Summary sanity: 52 jobs, 48 unique keys -> 4 hits, none invalid.
file(READ ${WORK_DIR}/mt/summary.json summary)
# expect_summary(<expected> <path...>)
function(expect_summary expected)
    string(JSON actual GET "${summary}" ${ARGN})
    if(NOT actual STREQUAL expected)
        message(FATAL_ERROR "summary ${ARGN}: expected '${expected}', "
                            "got '${actual}'")
    endif()
endfunction()
expect_summary(52 jobs)
expect_summary(0 invalid_jobs)
expect_summary(48 cache misses)
expect_summary(4 cache hits)

# Every repeated request key must be reported as a cache hit.
string(JSON job_count LENGTH "${summary}" job_reports)
math(EXPR last "${job_count} - 1")
set(hits 0)
foreach(k RANGE ${last})
    string(JSON cache GET "${summary}" job_reports ${k} cache)
    if(cache STREQUAL "hit")
        math(EXPR hits "${hits} + 1")
    endif()
endforeach()
if(NOT hits EQUAL 4)
    message(FATAL_ERROR "expected 4 per-job cache hits, got ${hits}")
endif()

# Per-job reports must be byte-identical across thread counts, and
# every one of them validator-clean.
file(GLOB reports RELATIVE ${WORK_DIR}/mt ${WORK_DIR}/mt/job*.json)
list(LENGTH reports report_count)
if(NOT report_count EQUAL 52)
    message(FATAL_ERROR "expected 52 per-job reports, got ${report_count}")
endif()
foreach(report IN LISTS reports)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                            ${WORK_DIR}/mt/${report}
                            ${WORK_DIR}/serial/${report}
                    RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
        message(FATAL_ERROR "${report} differs between --threads 4 and "
                            "--threads 1")
    endif()
    file(READ ${WORK_DIR}/mt/${report} doc)
    string(JSON valid GET "${doc}" valid)
    if(NOT valid STREQUAL "ON")
        message(FATAL_ERROR "${report} is not validator-clean")
    endif()
endforeach()

message(STATUS "batch_smoke: ${report_count} jobs, 4 cache hits, "
               "byte-identical across thread counts")
