/** @file Baseline compiler behaviour and relative-performance checks. */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"
#include "eval/evaluation.hpp"
#include "models/model_zoo.hpp"
#include "test_util.hpp"

namespace cmswitch {
namespace {

TEST(Baselines, NamesAndOrder)
{
    auto compilers = makeAllCompilers(ChipConfig::dynaplasia());
    ASSERT_EQ(compilers.size(), 4u);
    EXPECT_EQ(compilers[0]->name(), "puma");
    EXPECT_EQ(compilers[1]->name(), "occ");
    EXPECT_EQ(compilers[2]->name(), "cim-mlc");
    EXPECT_EQ(compilers[3]->name(), "cmswitch");
}

TEST(Baselines, FixedModeCompilersNeverUseMemoryArrays)
{
    Graph g = buildResNet18(1);
    for (auto &compiler : makeAllCompilers(ChipConfig::dynaplasia())) {
        if (compiler->name() == "cmswitch")
            continue;
        CompileResult r = compiler->compile(g);
        EXPECT_DOUBLE_EQ(r.avgMemoryArrayRatio(), 0.0) << compiler->name();
        EXPECT_EQ(r.latency.modeSwitch, 0) << compiler->name();
    }
}

TEST(Baselines, CmSwitchUsesMemoryModeOnDecode)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    CmSwitchCompiler compiler(chip);
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    CompileResult r = compiler.compile(buildTransformerDecodeStep(cfg, 1, 256));
    EXPECT_GT(r.avgMemoryArrayRatio(), 0.02);
}

TEST(Baselines, CimMlcBeatsSerialBaselinesOnCnn)
{
    // Pipelining + duplication should not lose to serial scheduling.
    ChipConfig chip = ChipConfig::dynaplasia();
    auto compilers = makeAllCompilers(chip);
    Graph g = buildMobileNetV2(1);
    Cycles puma = compilers[0]->compile(g).totalCycles();
    Cycles occ = compilers[1]->compile(g).totalCycles();
    Cycles mlc = compilers[2]->compile(g).totalCycles();
    EXPECT_LE(mlc, puma);
    EXPECT_LE(mlc, occ);
}

TEST(Baselines, CmSwitchNeverLosesToCimMlc)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    auto cmswitch = makeCmSwitchCompiler(chip);
    auto mlc = makeCimMlcCompiler(chip);

    TransformerConfig small = TransformerConfig::bertBase();
    small.layers = 2;
    const Graph graphs[] = {
        buildMobileNetV2(1),
        buildResNet18(1),
        buildTransformerPrefill(small, 1, 64),
    };
    for (const Graph &g : graphs) {
        Cycles ours = cmswitch->compile(g).totalCycles();
        Cycles theirs = mlc->compile(g).totalCycles();
        EXPECT_LE(ours, theirs) << g.name();
    }
}

TEST(Baselines, DualModeWinsBigOnDecode)
{
    // The headline effect: decode-phase LLM inference favours memory
    // mode, which fixed-mode compilers cannot provide (paper Sec. 5.2).
    ChipConfig chip = ChipConfig::dynaplasia();
    auto cmswitch = makeCmSwitchCompiler(chip);
    auto mlc = makeCimMlcCompiler(chip);
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    Graph step = buildTransformerDecodeStep(cfg, 1, 512);
    Cycles ours = cmswitch->compile(step).totalCycles();
    Cycles theirs = mlc->compile(step).totalCycles();
    EXPECT_LT(static_cast<double>(ours), 0.95 * static_cast<double>(theirs));
}

TEST(Baselines, EvaluateBenchmarkRunsEveryEntry)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    auto compiler = makeCmSwitchCompiler(chip);
    for (const ZooEntry &entry : fig14Benchmarks()) {
        if (entry.name == "llama2-7b" || entry.name == "opt-13b")
            continue; // exercised by the benches; too slow for unit tests
        EndToEndResult r = evaluateBenchmark(*compiler, entry.name, 1, 32);
        EXPECT_GT(r.totalCycles(), 0) << entry.name;
        EXPECT_GT(r.segments, 0) << entry.name;
    }
}

TEST(Baselines, GenerativeEvaluationIntegratesDecode)
{
    ChipConfig chip = ChipConfig::dynaplasia();
    auto compiler = makeCmSwitchCompiler(chip);
    TransformerConfig cfg = TransformerConfig::opt6_7b();
    cfg.layers = 2;
    EndToEndResult r = evaluateGenerative(*compiler, cfg, 1, 32, 64, 2);
    EXPECT_GT(r.prefillCycles, 0);
    EXPECT_GT(r.decodeCycles, 0);
    // Decode dominates for long outputs on weight-streaming models.
    EXPECT_GT(r.decodeCycles, r.prefillCycles);
}

} // namespace
} // namespace cmswitch
